"""Tests for the simulation driver (config, runner, results, sweep)."""

import pytest

from repro.sim import (
    PREFETCHERS,
    SimulationConfig,
    Sweep,
    improvement_table,
    prefetcher_factory,
    simulate,
    simulate_suite,
)
from repro.sim.config import register_prefetcher
from repro.sim.runner import clear_cache
from repro.workloads import Scale


class TestConfig:
    def test_registry_contains_paper_designs(self):
        for name in ("none", "tcp-8k", "tcp-8m", "dbcp-2m", "hybrid-8k"):
            assert name in PREFETCHERS

    def test_unknown_prefetcher_rejected(self):
        with pytest.raises(KeyError):
            prefetcher_factory("warp-drive")

    def test_register_prefetcher(self):
        name = register_prefetcher("test-null", PREFETCHERS["none"])
        assert prefetcher_factory(name) is PREFETCHERS["none"]

    def test_labels(self):
        assert SimulationConfig.baseline().resolved_label() == "base"
        assert SimulationConfig.for_prefetcher("tcp-8k").resolved_label() == "tcp-8k"

    def test_hybrid_gets_dedicated_bus(self):
        config = SimulationConfig.for_prefetcher("hybrid-8k")
        assert config.hierarchy.dedicated_prefetch_bus
        assert not SimulationConfig.for_prefetcher("tcp-8k").hierarchy.dedicated_prefetch_bus

    def test_ideal_l2_flag(self):
        assert SimulationConfig.ideal_l2().hierarchy.ideal_l2

    def test_with_hierarchy_override(self):
        config = SimulationConfig.baseline().with_hierarchy(memory_latency=200)
        assert config.hierarchy.memory_latency == 200

    def test_config_hashable(self):
        assert hash(SimulationConfig.baseline()) == hash(SimulationConfig.baseline())


class TestRunner:
    def test_result_fields(self):
        result = simulate("fma3d", SimulationConfig.baseline(), Scale.QUICK)
        assert result.workload == "fma3d"
        assert result.config_label == "base"
        assert result.ipc > 0
        assert result.memory.demand_accesses > 0

    def test_cache_returns_same_object(self):
        clear_cache()
        first = simulate("fma3d", SimulationConfig.baseline(), Scale.QUICK)
        second = simulate("fma3d", SimulationConfig.baseline(), Scale.QUICK)
        assert first is second

    def test_cache_bypass(self):
        first = simulate("fma3d", SimulationConfig.baseline(), Scale.QUICK)
        fresh = simulate(
            "fma3d", SimulationConfig.baseline(), Scale.QUICK, use_cache=False
        )
        assert fresh is not first
        assert fresh.ipc == pytest.approx(first.ipc)

    def test_deterministic_across_runs(self):
        a = simulate("eon", SimulationConfig.baseline(), Scale.QUICK, use_cache=False)
        b = simulate("eon", SimulationConfig.baseline(), Scale.QUICK, use_cache=False)
        assert a.ipc == b.ipc
        assert a.memory.l1_misses == b.memory.l1_misses

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            simulate("fma3d", scale=Scale.QUICK, warmup_fraction=1.5)

    def test_raw_access_count_scale(self):
        result = simulate(
            "fma3d", SimulationConfig.baseline(), 5000, use_cache=False
        )
        assert result.ipc > 0
        # a custom count simulates fewer accesses than the quick preset
        quick = simulate("fma3d", SimulationConfig.baseline(), Scale.QUICK)
        assert result.memory.demand_accesses < quick.memory.demand_accesses

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError):
            simulate("fma3d", SimulationConfig.baseline(), 0)
        with pytest.raises(ValueError):
            simulate("fma3d", SimulationConfig.baseline(), -100)

    def test_prebuilt_trace_rejects_non_default_scale(self):
        from repro.workloads import generate

        trace = generate("fma3d", Scale.QUICK)
        with pytest.raises(ValueError, match="prebuilt Trace"):
            simulate(trace, SimulationConfig.baseline(), Scale.QUICK)

    def test_prebuilt_trace_with_default_scale_ok(self):
        from repro.workloads import generate

        trace = generate("fma3d", Scale.QUICK)
        result = simulate(trace, SimulationConfig.baseline())
        assert result.workload == "fma3d"

    def test_improvement_requires_same_workload(self):
        a = simulate("fma3d", SimulationConfig.baseline(), Scale.QUICK)
        b = simulate("eon", SimulationConfig.baseline(), Scale.QUICK)
        with pytest.raises(ValueError):
            b.improvement_over(a)

    def test_summary_string(self):
        result = simulate("fma3d", SimulationConfig.baseline(), Scale.QUICK)
        text = result.summary()
        assert "fma3d" in text and "ipc=" in text


class TestSuiteAndSweep:
    BENCHES = ("fma3d", "eon", "art")

    def test_simulate_suite_subset(self):
        suite = simulate_suite(SimulationConfig.baseline(), Scale.QUICK, self.BENCHES)
        assert set(suite.runs) == set(self.BENCHES)
        assert suite.geomean_ipc() > 0

    def test_suite_improvements(self):
        base = simulate_suite(SimulationConfig.baseline(), Scale.QUICK, self.BENCHES)
        tcp = simulate_suite(
            SimulationConfig.for_prefetcher("tcp-8k"), Scale.QUICK, self.BENCHES
        )
        improvements = tcp.improvements_over(base)
        assert set(improvements) == set(self.BENCHES)
        geomean = tcp.geomean_improvement(base)
        assert isinstance(geomean, float)

    def test_sweep_requires_unique_labels(self):
        with pytest.raises(ValueError):
            Sweep([SimulationConfig.baseline(), SimulationConfig.baseline()])

    def test_sweep_improvements(self):
        sweep = Sweep(
            [SimulationConfig.baseline(), SimulationConfig.for_prefetcher("tcp-8k")],
            Scale.QUICK,
            self.BENCHES,
        )
        improvements = sweep.improvements("base")
        assert "tcp-8k" in improvements
        table = improvement_table(improvements, self.BENCHES)
        assert "geomean" in table
        assert "tcp-8k" in table

    def test_sweep_missing_baseline(self):
        sweep = Sweep([SimulationConfig.for_prefetcher("tcp-8k")], Scale.QUICK, self.BENCHES)
        with pytest.raises(KeyError):
            sweep.improvements("base")

    def test_l2_breakdowns_shape(self):
        suite = simulate_suite(
            SimulationConfig.for_prefetcher("tcp-8k"), Scale.QUICK, self.BENCHES
        )
        breakdowns = suite.l2_breakdowns()
        for name in self.BENCHES:
            categories = breakdowns[name]
            assert set(categories) == {
                "prefetched_original", "non_prefetched_original", "prefetched_extra",
            }
