"""Regenerate Table 1: the simulated machine configuration."""

from conftest import run_once

from repro.experiments import run_experiment


def test_table1_machine_configuration(benchmark, scale):
    result = run_once(benchmark, run_experiment, "table1", scale)
    print()
    print(result.render())
    values = dict(result.rows)
    assert values["Issue width"].startswith("8")
    assert "128-RUU" in values["Instruction window"]
    assert "32KB, direct-mapped, 32B blocks" in values["L1 Dcache"]
    assert "64 MSHRs" in values["L1 Dcache"]
    assert "1024KB, 4-way, 64B blocks" in values["L2 I/D"]
    assert "12-cycle" in values["L2 I/D"]
    assert values["Memory latency"] == "70 cycles"
