"""Shared experiment plumbing: the result container and helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.tables import format_table
from repro.workloads import BENCHMARK_ORDER

__all__ = ["ExperimentResult", "suite_order"]


def suite_order(benchmarks: Optional[Sequence[str]] = None) -> Tuple[str, ...]:
    """Resolve the benchmark list (default: the paper's Figure 1 order)."""
    if benchmarks is None:
        return BENCHMARK_ORDER
    unknown = [name for name in benchmarks if name not in BENCHMARK_ORDER]
    if unknown:
        raise KeyError(f"unknown benchmarks: {unknown}")
    return tuple(benchmarks)


@dataclass
class ExperimentResult:
    """The reproduced content of one paper table/figure.

    ``rows`` is the tabular data (first column is usually the
    benchmark); ``series`` holds the same data keyed for programmatic
    consumers (benches assert on it); ``notes`` records derived
    headline numbers and paper-comparison remarks.
    """

    experiment: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Full plain-text rendering: table plus notes."""
        parts = [format_table(self.headers, self.rows, title=f"[{self.experiment}] {self.title}")]
        for note in self.notes:
            parts.append(f"  * {note}")
        return "\n".join(parts)

    def column(self, header: str) -> Dict[str, object]:
        """Extract one column keyed by the first column's values."""
        if header not in self.headers:
            raise KeyError(f"no column {header!r} in {self.headers}")
        position = self.headers.index(header)
        return {row[0]: row[position] for row in self.rows}
