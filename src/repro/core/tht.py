"""The Tag History Table (first level of the TCP, Figure 8).

The THT has one row per L1 data-cache set, indexed directly by the miss
index so lookup can proceed in parallel with the L1 lookup itself.
Each row stores the last ``k`` miss tags observed at that set, oldest
first.  THT size is ``rows × k × tag_bytes`` (the paper's formula in
Section 4); the evaluated design uses ``k = 2``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.util.bitops import is_power_of_two

__all__ = ["TagHistoryTable"]


class TagHistoryTable:
    """Per-set shift registers of recent miss tags."""

    def __init__(self, rows: int, depth: int, tag_bytes: int = 2) -> None:
        if not is_power_of_two(rows):
            raise ValueError(f"THT row count must be a power of two, got {rows}")
        if depth <= 0:
            raise ValueError(f"THT depth (k) must be positive, got {depth}")
        if tag_bytes <= 0:
            raise ValueError(f"tag storage width must be positive, got {tag_bytes}")
        self.rows = rows
        self.depth = depth
        self.tag_bytes = tag_bytes
        # Row storage: a flat list of lists; row i holds [tag1..tagk],
        # index 0 oldest.  Initialised to zeros, matching cold hardware.
        self._history: List[List[int]] = [[0] * depth for _ in range(rows)]

    def read(self, index: int) -> Tuple[int, ...]:
        """Return the tag sequence at ``index`` (oldest first)."""
        return tuple(self._history[index])

    def push(self, index: int, tag: int) -> Tuple[int, ...]:
        """Shift ``tag`` into row ``index``; return the NEW sequence.

        This is the THT half of the paper's update operation: the row
        ``(tag1 .. tagk)`` becomes ``(tag2 .. tagk, miss_tag)``,
        establishing the miss tag as the most recent history.
        """
        row = self._history[index]
        row.pop(0)
        row.append(tag)
        return tuple(row)

    def storage_bytes(self) -> int:
        """Hardware budget: rows × k × bytes-per-tag."""
        return self.rows * self.depth * self.tag_bytes

    def reset(self) -> None:
        """Zero all rows."""
        for row in self._history:
            for position in range(self.depth):
                row[position] = 0

    def __repr__(self) -> str:
        return (
            f"TagHistoryTable(rows={self.rows}, k={self.depth}, "
            f"{self.storage_bytes()}B)"
        )
