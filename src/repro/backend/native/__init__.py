"""The compiled-epilogue backend (``--backend native``).

:class:`NativeBackend` routes a run to :class:`~repro.backend.native.
engine.NativeCore` — the numpy engine's batch path with the scalar
epilogue compiled to C (:mod:`repro.backend.native._native`).  It
degrades loudly-but-gracefully, in two tiers:

* configurations the batch model cannot represent (set-associative
  L1D, access-stream prefetchers, gated L1 promotions, direct-mapped
  L2) fall back to the reference interpreted loop — the same config-
  level fallback the numpy backend takes;
* when the ``_native`` extension cannot be imported or built (no C
  compiler, ``REPRO_NATIVE=0``, a failed compile), the run falls back
  to the numpy batch engine, so a pure-Python install keeps working
  everywhere at numpy speed.

Both fallbacks warn once per process and record the reason in
``last_engine_stats["fallback"]``, which the runner copies into
``SimResult.backend_fallback``.  Either way results are bit-identical
to the python backend; fallbacks only cost speed, never correctness.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence, Set

from repro.backend.base import Backend
from repro.backend.native import build
from repro.backend.native.engine import NativeCore
from repro.backend.vector import VectorCore, _fallback_reason
from repro.cpu.core import CoreParams, CoreResult, OutOfOrderCore
from repro.engine.probes import Probe
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.trace import Trace

__all__ = ["NativeBackend", "NativeCore"]

#: fallback reasons already warned about (once per process, not per run).
_WARNED_FALLBACKS: Set[str] = set()


def _warn_once(reason: str, target: str) -> None:
    if reason in _WARNED_FALLBACKS:
        return
    _WARNED_FALLBACKS.add(reason)
    warnings.warn(
        f"native backend: {reason}; this configuration runs on the "
        f"(bit-identical) {target}",
        RuntimeWarning,
        stacklevel=3,
    )


class NativeBackend(Backend):
    """Batch-stepping engine with a C-compiled scalar epilogue."""

    name = "native"

    def __init__(self, vector_min: Optional[int] = None) -> None:
        self.vector_min = vector_min
        #: engine accounting for the last run: NativeCore.engine_stats
        #: when the compiled path ran; the numpy engine's stats plus a
        #: ``fallback`` reason when the extension was unavailable; or
        #: ``{"fallback": reason}`` for config-level fallbacks.
        self.last_engine_stats: dict = {}

    def run(
        self,
        trace: Trace,
        hierarchy: MemoryHierarchy,
        params: CoreParams,
        warmup: int = 0,
        probes: Optional[Sequence[Probe]] = None,
    ) -> CoreResult:
        reason = _fallback_reason(hierarchy)
        if reason is not None:
            _warn_once(reason, "python reference loop")
            self.last_engine_stats = {"fallback": reason}
            core = OutOfOrderCore(params)
            return core.run(trace, hierarchy, warmup=warmup, probes=probes)
        if build.load() is None:
            reason = f"native extension unavailable ({build.load_error()})"
            _warn_once(reason, "numpy batch engine")
            if self.vector_min is not None:
                core = VectorCore(params, vector_min=self.vector_min)
            else:
                core = VectorCore(params)
            result = core.run(trace, hierarchy, warmup=warmup, probes=probes)
            self.last_engine_stats = dict(core.engine_stats)
            self.last_engine_stats["fallback"] = reason
            return result
        if self.vector_min is not None:
            core = NativeCore(params, vector_min=self.vector_min)
        else:
            core = NativeCore(params)
        result = core.run(trace, hierarchy, warmup=warmup, probes=probes)
        self.last_engine_stats = core.engine_stats
        return result
