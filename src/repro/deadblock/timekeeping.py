"""Timekeeping dead-block predictor (Hu, Kaxiras & Martonosi, ISCA 2002).

The observation behind timekeeping: a cache block's **live time** — the
interval from fill to last access before eviction — is strongly
repetitive across the block's generations.  A block that has gone
unaccessed for longer than (a small multiple of) its historical live
time is therefore very likely dead.

The predictor keeps a small LRU table of per-block live-time history.
On every L1 eviction it records the victim's observed live time; when
asked whether a resident line is dead it compares the line's idle time
against the recorded live time for that block (scaled by
``dead_factor``), falling back to a fixed idle threshold for blocks
with no history yet.

The hybrid TCP (Section 5.2.2 of the TCP paper) uses this as the gate
for promoting prefetched data from L2 into L1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.prefetchers.base import EvictionEvent
from repro.util.bitops import is_power_of_two
from repro.util.lruset import LRUSet

__all__ = ["DeadBlockConfig", "TimekeepingDeadBlockPredictor"]


@dataclass(frozen=True)
class DeadBlockConfig:
    """Live-time history table geometry and decision thresholds."""

    sets: int = 512
    ways: int = 8
    #: a line is dead when idle for ``dead_factor`` × its past live time.
    dead_factor: float = 2.0
    #: idle-cycles threshold for blocks with no recorded history.
    default_idle_threshold: float = 4096.0
    #: never declare a line dead before it has been idle this long.
    min_idle: float = 256.0
    #: bytes per history entry (block tag + live time).
    entry_bytes: int = 8

    def __post_init__(self) -> None:
        if not is_power_of_two(self.sets):
            raise ValueError(f"history sets must be a power of two, got {self.sets}")
        if self.dead_factor <= 0:
            raise ValueError("dead_factor must be positive")

    @property
    def entries(self) -> int:
        return self.sets * self.ways


class TimekeepingDeadBlockPredictor:
    """Per-block live-time history with an idle-time death test."""

    def __init__(self, config: DeadBlockConfig = DeadBlockConfig()) -> None:
        self.config = config
        self._history = [LRUSet(config.ways) for _ in range(config.sets)]
        self.evictions_recorded = 0
        self.queries = 0
        self.dead_verdicts = 0

    def _lookup(self, block: int) -> LRUSet:
        return self._history[block & (self.config.sets - 1)]

    def observe_eviction(self, evt: EvictionEvent) -> None:
        """Record the victim's live time for its next generation.

        A smoothing average (old + new) / 2 damps one-off outliers, the
        same stabilisation the timekeeping paper applies.
        """
        live_time = max(0.0, evt.last_access - evt.fill_time)
        lru = self._lookup(evt.block)
        previous = lru.peek(evt.block)
        if previous is not None:
            live_time = (previous + live_time) / 2.0
        lru.put(evt.block, live_time)
        self.evictions_recorded += 1

    def is_dead(self, block: int, fill_time: float, last_access: float, now: float) -> bool:
        """Decide whether a resident line is dead at time ``now``."""
        self.queries += 1
        cfg = self.config
        idle = now - last_access
        if idle < cfg.min_idle:
            return False
        history = self._lookup(block).peek(block)
        if history is None:
            dead = idle > cfg.default_idle_threshold
        else:
            dead = idle > max(cfg.min_idle, history * cfg.dead_factor)
        if dead:
            self.dead_verdicts += 1
        return dead

    def storage_bytes(self) -> int:
        """History-table hardware budget."""
        return self.config.entries * self.config.entry_bytes

    def reset(self) -> None:
        """Drop all learned live times."""
        for lru in self._history:
            lru.clear()
        self.evictions_recorded = 0
        self.queries = 0
        self.dead_verdicts = 0
