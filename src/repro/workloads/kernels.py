"""Memory-access kernel generators and the trace builder.

Each kernel produces the access pattern of one program idiom — strided
array sweeps, pointer chasing, hash probing, hot-loop compute, random
scans — as vectorised numpy arrays appended to a :class:`TraceBuilder`.
The benchmark suite (:mod:`repro.workloads.suite`) composes kernels
into 26 SPEC2000-like workloads.

Design notes that matter for the reproduction:

* **Alignment controls tag-sequence sharing.**  Arrays based at
  multiples of the L1 tag granularity (32 KB here) produce the *same*
  per-set tag sequence in every cache set — the inter-set pattern
  sharing that TCP-8K exploits (paper Figures 4/7).  Misaligned bases
  give different sets different sequences, which is what makes TCP-8M's
  private history win on the paper's facerec/gcc/art/mcf/ammp class.
* **Pointer chases carry ``dep = k``** so the CPU model serializes
  them: dependent misses cannot overlap, which is why prefetching is so
  valuable there (Section 5.1).
* **Sub-block strides generate natural L1 hit padding** (a 4-byte
  stride touches each 32 B block eight times), so miss rates land in a
  realistic range without artificial noise records.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.trace import Trace

__all__ = [
    "TraceBuilder",
    "hash_table_walk",
    "hot_loop",
    "interleaved_sweep",
    "pointer_chase",
    "random_region",
    "sequential_bursts",
]

#: dtype used for every address/pc array.
_ADDR_DTYPE = np.uint64


class TraceBuilder:
    """Accumulates kernel output chunks and assembles a :class:`Trace`."""

    def __init__(self, name: str, base_ipc: float = 4.0) -> None:
        self.name = name
        self.base_ipc = base_ipc
        self._addrs: List[np.ndarray] = []
        self._pcs: List[np.ndarray] = []
        self._is_load: List[np.ndarray] = []
        self._gaps: List[np.ndarray] = []
        self._deps: List[np.ndarray] = []

    def add(
        self,
        addrs: np.ndarray,
        pcs: np.ndarray,
        is_load: np.ndarray,
        gaps: np.ndarray,
        deps: Optional[np.ndarray] = None,
    ) -> None:
        """Append one chunk of accesses (parallel arrays)."""
        n = len(addrs)
        if not (len(pcs) == len(is_load) == len(gaps) == n):
            raise ValueError("kernel chunk arrays must have equal length")
        if deps is None:
            deps = np.zeros(n, dtype=np.int32)
        elif len(deps) != n:
            raise ValueError("deps array length mismatch")
        self._addrs.append(np.asarray(addrs, dtype=_ADDR_DTYPE))
        self._pcs.append(np.asarray(pcs, dtype=_ADDR_DTYPE))
        self._is_load.append(np.asarray(is_load, dtype=bool))
        self._gaps.append(np.asarray(gaps, dtype=np.uint16))
        self._deps.append(np.asarray(deps, dtype=np.int32))

    def __len__(self) -> int:
        return sum(len(chunk) for chunk in self._addrs)

    def build(self) -> Trace:
        """Concatenate all chunks into the final trace.

        Dependence distances are chunk-local by construction (kernels
        never emit a dep pointing before their own chunk), so plain
        concatenation preserves validity — except for the first records
        of each chunk, which are checked here.
        """
        if not self._addrs:
            raise ValueError(f"trace '{self.name}' has no accesses")
        deps = np.concatenate(self._deps)
        trace = Trace(
            name=self.name,
            addrs=np.concatenate(self._addrs),
            pcs=np.concatenate(self._pcs),
            is_load=np.concatenate(self._is_load),
            gaps=np.concatenate(self._gaps),
            deps=deps,
            base_ipc=self.base_ipc,
        )
        return trace


def _gaps(rng: np.random.Generator, n: int, gap_range: Tuple[int, int]) -> np.ndarray:
    """Sample per-access non-memory instruction gaps."""
    lo, hi = gap_range
    if lo == hi:
        return np.full(n, lo, dtype=np.uint16)
    return rng.integers(lo, hi + 1, n, dtype=np.uint16)


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------


def interleaved_sweep(
    builder: TraceBuilder,
    rng: np.random.Generator,
    bases: Sequence[int],
    sizes: Sequence[int],
    stride: int,
    iterations: int,
    pc_base: int,
    gap_range: Tuple[int, int] = (3, 8),
    store_streams: Sequence[int] = (),
    start_offset: int = 0,
) -> None:
    """Loop ``for i: touch a[i], b[i], c[i], ...`` over several arrays.

    The scientific-code idiom (swim/applu/wupwise class).  Each array
    ``j`` is swept with ``stride`` bytes per iteration, wrapping at its
    own ``size`` (so unequal sizes yield multi-pass behaviour on the
    smaller arrays).  Streams listed in ``store_streams`` are written
    (think ``c[i] = a[i] + b[i]``).
    """
    if len(bases) != len(sizes) or not bases:
        raise ValueError("need matching, non-empty bases and sizes")
    if stride <= 0 or iterations <= 0:
        raise ValueError("stride and iterations must be positive")
    k = len(bases)
    n = iterations * k
    offsets = (start_offset + np.arange(iterations, dtype=np.int64) * stride)
    addrs = np.empty(n, dtype=_ADDR_DTYPE)
    pcs = np.empty(n, dtype=_ADDR_DTYPE)
    is_load = np.ones(n, dtype=bool)
    for j, (base, size) in enumerate(zip(bases, sizes)):
        addrs[j::k] = (base + (offsets % size)).astype(_ADDR_DTYPE)
        pcs[j::k] = pc_base + j * 8
        if j in store_streams:
            is_load[j::k] = False
    builder.add(addrs, pcs, is_load, _gaps(rng, n, gap_range))


def pointer_chase(
    builder: TraceBuilder,
    rng: np.random.Generator,
    base: int,
    nodes: int,
    node_stride: int,
    steps: int,
    pc_base: int,
    gap_range: Tuple[int, int] = (2, 6),
    payload: int = 0,
    payload_store: bool = False,
    order: Optional[np.ndarray] = None,
    start: int = 0,
) -> None:
    """Traverse a linked structure laid out pseudo-randomly in memory.

    The mcf/parser idiom.  Node visit order is a fixed random
    permutation of the ``nodes`` slots, walked cyclically for ``steps``
    node visits — the same order every lap, exactly like chasing a
    list whose layout was randomised at build time.  Each node visit is
    a load with ``dep = payload + 1`` (its address came from the
    previous node's data, so it cannot issue earlier), followed by
    ``payload`` accesses to the node's other fields (``dep`` back to
    the node load).

    Callers emitting the chase in several chunks pass the same
    ``order`` permutation and a cumulative ``start`` position so the
    traversal continues instead of restarting — the repetition across
    laps is what correlation prefetchers learn from.
    """
    if nodes <= 1 or steps <= 0 or node_stride <= 0:
        raise ValueError("nodes, steps, node_stride must be positive (nodes > 1)")
    if order is None:
        order = rng.permutation(nodes)
    elif len(order) != nodes:
        raise ValueError("order permutation length must equal nodes")
    positions = (start + np.arange(steps, dtype=np.int64)) % nodes
    visit = np.asarray(order)[positions]
    k = payload + 1
    n = steps * k
    addrs = np.empty(n, dtype=_ADDR_DTYPE)
    pcs = np.empty(n, dtype=_ADDR_DTYPE)
    is_load = np.ones(n, dtype=bool)
    deps = np.empty(n, dtype=np.int32)
    node_addr = (base + visit.astype(np.int64) * node_stride).astype(_ADDR_DTYPE)
    addrs[0::k] = node_addr
    pcs[0::k] = pc_base
    deps[0::k] = k  # next-pointer loads chain on the previous node
    for f in range(1, k):
        addrs[f::k] = node_addr + _ADDR_DTYPE(8 * f)
        pcs[f::k] = pc_base + 8 * f
        deps[f::k] = f  # field access depends on this node's load
        if payload_store and f == k - 1:
            is_load[f::k] = False
    deps[0] = 0  # the very first node address is architectural state
    builder.add(addrs, pcs, is_load, _gaps(rng, n, gap_range), deps)


def random_region(
    builder: TraceBuilder,
    rng: np.random.Generator,
    base: int,
    size: int,
    count: int,
    pc_base: int,
    gap_range: Tuple[int, int] = (4, 10),
    granularity: int = 32,
    store_fraction: float = 0.0,
    pc_sites: int = 4,
    window: int = 0,
) -> None:
    """Uniformly random accesses within a region (crafty/twolf idiom).

    Each access lands on a random ``granularity``-aligned offset — the
    unlearnable miss stream that correlation prefetchers waste traffic
    on (the paper's Figure 5 outliers).

    With ``window > 0`` the probes are drawn from a window of that many
    bytes that drifts across the region over the course of the call —
    the working set ages (entries are allocated and retired), so the
    region never becomes fully cache-resident and its misses stay
    unlearnable rather than decaying into a warm-up artefact.
    """
    if size < granularity or count <= 0:
        raise ValueError("region must hold at least one granule; count positive")
    if window:
        if not granularity <= window <= size:
            raise ValueError("drift window must lie between granularity and size")
        span_slots = window // granularity
        drift = np.linspace(0, size - window, count).astype(np.int64)
        drift -= drift % granularity
        offsets = drift + rng.integers(0, span_slots, count).astype(np.int64) * granularity
    else:
        slots = size // granularity
        offsets = rng.integers(0, slots, count).astype(np.int64) * granularity
    addrs = (base + offsets).astype(_ADDR_DTYPE)
    pcs = (pc_base + rng.integers(0, pc_sites, count).astype(np.int64) * 8).astype(
        _ADDR_DTYPE
    )
    is_load = rng.random(count) >= store_fraction
    builder.add(addrs, pcs, is_load, _gaps(rng, count, gap_range))


def hot_loop(
    builder: TraceBuilder,
    rng: np.random.Generator,
    base: int,
    size: int,
    count: int,
    pc_base: int,
    gap_range: Tuple[int, int] = (5, 12),
    stride: int = 8,
    store_fraction: float = 0.1,
) -> None:
    """Cycle through a small, L1-resident working set (compute idiom).

    The eon/fma3d class: after warmup nearly every access hits in L1,
    so this kernel supplies the instruction stream between misses.
    """
    if size <= 0 or count <= 0 or stride <= 0:
        raise ValueError("size, count, stride must be positive")
    offsets = (np.arange(count, dtype=np.int64) * stride) % size
    addrs = (base + offsets).astype(_ADDR_DTYPE)
    pcs = (pc_base + (np.arange(count, dtype=np.int64) % 6) * 8).astype(_ADDR_DTYPE)
    is_load = rng.random(count) >= store_fraction
    builder.add(addrs, pcs, is_load, _gaps(rng, count, gap_range))


def sequential_bursts(
    builder: TraceBuilder,
    rng: np.random.Generator,
    base: int,
    size: int,
    count: int,
    pc_base: int,
    gap_range: Tuple[int, int] = (3, 8),
    burst_range: Tuple[int, int] = (32, 256),
    stride: int = 8,
) -> None:
    """Sequential runs with random restart points (gzip/bzip2 idiom).

    Produces long forward streams (stream-buffer food) broken by jumps
    (back-references), all inside one large buffer.
    """
    if count <= 0 or size <= stride:
        raise ValueError("count positive and size > stride required")
    offsets = np.empty(count, dtype=np.int64)
    produced = 0
    position = 0
    while produced < count:
        burst = int(rng.integers(burst_range[0], burst_range[1] + 1))
        burst = min(burst, count - produced)
        offsets[produced : produced + burst] = (
            position + np.arange(burst, dtype=np.int64) * stride
        ) % size
        produced += burst
        position = int(rng.integers(0, size))
    addrs = (base + offsets).astype(_ADDR_DTYPE)
    pcs = np.full(count, pc_base, dtype=_ADDR_DTYPE)
    is_load = np.ones(count, dtype=bool)
    builder.add(addrs, pcs, is_load, _gaps(rng, count, gap_range))


def hash_table_walk(
    builder: TraceBuilder,
    rng: np.random.Generator,
    base: int,
    buckets: int,
    count: int,
    pc_base: int,
    gap_range: Tuple[int, int] = (4, 9),
    bucket_stride: int = 64,
    chain: int = 1,
) -> None:
    """Random bucket probes each followed by a short dependent chain.

    The gap/perlbmk idiom: the bucket index is data-computed (no dep),
    the chain hops depend on the previous load (``dep = 1``).
    """
    if buckets <= 0 or count <= 0 or chain < 0:
        raise ValueError("buckets and count positive, chain non-negative")
    k = chain + 1
    probes = -(-count // k)
    bucket = rng.integers(0, buckets, probes).astype(np.int64)
    n = probes * k
    addrs = np.empty(n, dtype=_ADDR_DTYPE)
    pcs = np.empty(n, dtype=_ADDR_DTYPE)
    deps = np.zeros(n, dtype=np.int32)
    head = (base + bucket * bucket_stride).astype(_ADDR_DTYPE)
    addrs[0::k] = head
    pcs[0::k] = pc_base
    for hop in range(1, k):
        # Chain nodes live in the same region at a hashed displacement.
        displacement = ((bucket * 2654435761 + hop * 97) % buckets) * bucket_stride
        addrs[hop::k] = (base + displacement).astype(_ADDR_DTYPE)
        pcs[hop::k] = pc_base + 8 * hop
        deps[hop::k] = 1
    addrs = addrs[:count]
    pcs = pcs[:count]
    deps = deps[:count]
    is_load = np.ones(count, dtype=bool)
    builder.add(addrs, pcs, is_load, _gaps(rng, count, gap_range), deps)
