"""Reference driver reproducing the pre-engine per-access call pattern.

This is the control arm of the hot-path benchmark.  It simulates the
same trace against the same component objects (caches, MSHR file,
buses, DRAM, prefetcher), but performs each access the way the
pre-refactor tree did.  The engine refactor is a pure performance
change, so "how much faster is it?" can only be answered by keeping
the old pathway runnable; this module is that pathway, ported
line-for-line from the pre-engine ``MemoryHierarchy`` and CPU loop:

* every trace column is read per access by numpy scalar indexing and
  converted with ``int()``/``bool()`` at each use (the engine loop
  converts each column once with ``tolist``);
* the L1 probe goes through the generic ``lookup`` method (not the
  inlined direct-mapped probe), and a non-slotted result object plus
  non-slotted events are allocated per access/observation (replicas of
  the old classes, below);
* machine parameters are read through ``params`` attribute chains and
  cache-geometry values (``sets``, ``index_bits``, ``offset_bits``)
  are re-derived from the raw fields at every use — the property
  derivation the old ``CacheGeometry`` paid on each read;
* bus transfers are scheduled as ``request(...)`` + ``beats(...)``
  call pairs with the seed's separate ``beats`` method call, the MSHR
  is reaped unconditionally on every acquire/register, and every
  instruction slot calls the instruction-fetch path (the engine loop
  inlines the sequential-block filter).

Timing the same machine under this driver and under
:meth:`~repro.cpu.core.OutOfOrderCore.run` isolates the engine-layer
changes from host speed: the ratio of the two throughputs is the
refactor's speedup and is comparable across machines, which is what
the CI perf gate checks.

The timing model itself is identical; for any trace and hierarchy this
driver commits the same cycles as the engine loop (asserted by
``benchmarks/test_hotpath_perf.py`` and checked on every benchmark
run).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.cpu.core import CoreParams, CoreResult
from repro.memory.bus import Bus
from repro.memory.dram import MainMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.mshr import MSHRFile
from repro.util.bitops import log2_exact
from repro.workloads.trace import Trace

__all__ = ["legacy_access", "run_legacy"]


# ----------------------------------------------------------------------
# Replicas of the pre-refactor event/outcome classes: frozen (or plain)
# dataclasses WITHOUT __slots__, so each allocation builds an instance
# dict and each frozen field assignment routes through
# object.__setattr__ — the per-event cost the engine's slotted events
# removed.  Prefetchers consume them duck-typed, so training behaviour
# is identical.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _SeedMissEvent:
    index: int
    tag: int
    block: int
    pc: int
    is_write: bool
    now: float


@dataclass(frozen=True)
class _SeedAccessEvent:
    index: int
    tag: int
    block: int
    pc: int
    is_write: bool
    hit: bool
    now: float


@dataclass(frozen=True)
class _SeedEvictionEvent:
    index: int
    tag: int
    block: int
    now: float
    fill_time: float = 0.0
    last_access: float = 0.0


@dataclass
class _SeedAccessResult:
    completion: float
    l1_hit: bool
    l2_hit: bool = True


# ----------------------------------------------------------------------
# The old CacheGeometry derived these through @property on every read
# (``sets`` as a division, ``index_bits``/``offset_bits`` as its log);
# the replicas reproduce that per-read work against the raw fields.
# ----------------------------------------------------------------------

def _seed_sets(geometry) -> int:
    return geometry.size_bytes // (geometry.ways * geometry.block_bytes)


def _seed_index_bits(geometry) -> int:
    return log2_exact(_seed_sets(geometry))


def _seed_offset_bits(geometry) -> int:
    return log2_exact(geometry.block_bytes)


# ----------------------------------------------------------------------
# Seed component call patterns.  The state mutations are arithmetic-
# identical to the current component methods (which fused or skipped
# some of these steps), so a legacy run leaves every component in
# exactly the state an engine run would.
# ----------------------------------------------------------------------

def _seed_bus_request(bus: Bus, now: float, payload_bytes: int) -> float:
    """Seed ``Bus.request``: the beats count came from a method call."""
    beats = bus.beats(payload_bytes)
    start = now if now > bus.next_free else bus.next_free
    bus.next_free = start + beats
    bus.busy_cycles += beats
    bus.queued_cycles += start - now
    bus.transfers += 1
    return start


def _seed_memory_fetch(memory: MainMemory, now: float, block_bytes: int) -> float:
    """Seed ``MainMemory.fetch``: data return as request + beats calls."""
    start = _seed_bus_request(memory.addr_bus, now, 0) + 1
    completions = memory._completions
    if len(completions) >= memory.max_concurrent:
        completions.sort()
        earliest = completions[0]
        if earliest > start:
            start = earliest
        memory._completions = completions = [t for t in completions if t > start]
    data_ready = start + memory.latency
    transfer_start = _seed_bus_request(memory.data_bus, data_ready, block_bytes)
    done = transfer_start + memory.data_bus.beats(block_bytes)
    completions.append(done)
    memory.accesses += 1
    return done


def _seed_memory_writeback(memory: MainMemory, now: float, block_bytes: int) -> float:
    """Seed ``MainMemory.writeback``: data transfer as request + beats."""
    start = _seed_bus_request(memory.data_bus, now, block_bytes)
    return start + memory.data_bus.beats(block_bytes)


def _seed_mshr_reap(mshr: MSHRFile, now: float) -> None:
    """Seed ``MSHRFile._reap``: an unconditional scan, no earliest hint.

    The hint is still kept exact so the shared MSHR object stays
    coherent for any later (engine-path) use.
    """
    inflight = mshr._inflight
    if not inflight:
        return
    done = [block for block, t in inflight.items() if t <= now]
    for block in done:
        del inflight[block]
    mshr._earliest = min(inflight.values(), default=float("inf"))


def _seed_mshr_acquire(mshr: MSHRFile, now: float) -> float:
    _seed_mshr_reap(mshr, now)
    if len(mshr._inflight) < mshr.entries:
        return now
    start = min(mshr._inflight.values())
    mshr.full_stalls += 1
    _seed_mshr_reap(mshr, start)
    return start


def _seed_mshr_register(
    mshr: MSHRFile, block: int, completion: float, now: float
) -> None:
    _seed_mshr_reap(mshr, now)
    inflight = mshr._inflight
    inflight[block] = completion
    if completion < mshr._earliest:
        mshr._earliest = completion
    if len(inflight) > mshr.peak_occupancy:
        mshr.peak_occupancy = len(inflight)


# ----------------------------------------------------------------------
# Seed hierarchy helpers (fill / prefetch / promotion / ifetch paths).
# ----------------------------------------------------------------------

def _seed_fill_l1(
    self: MemoryHierarchy, index: int, tag: int, now: float,
    prefetched: bool, dirty: bool,
) -> None:
    """Seed ``_fill_l1``: generic cache fill, Eviction wrapper included."""
    eviction = self.l1d.fill(index, tag, now, prefetched=prefetched, dirty=dirty)
    if eviction is None:
        return
    if eviction.dirty:
        self.stats.writebacks_l1 += 1
        _seed_bus_request(self.l1l2_data_bus, now, self.params.l1d.block_bytes)
    if self._needs_evict:
        victim = eviction.line
        block = (victim.tag << _seed_index_bits(self.params.l1d)) | index
        self.prefetcher.observe_eviction(  # type: ignore[union-attr]
            _SeedEvictionEvent(
                index, victim.tag, block, now, victim.fill_time, victim.last_access
            )
        )


def _seed_fill_l2(
    self: MemoryHierarchy, index: int, tag: int, now: float, prefetched: bool
) -> None:
    lru_insert = prefetched and self.params.prefetch_insert_policy == "lru"
    eviction = self.l2d.fill(index, tag, now, prefetched=prefetched,
                             lru_insert=lru_insert)
    if eviction is None:
        return
    if eviction.line.prefetched:
        self.stats.prefetch_evicted_unused += 1
    if eviction.dirty:
        self.stats.writebacks_l2 += 1
        _seed_memory_writeback(self.memory, now, self.params.l2.block_bytes)


def _seed_issue_prefetch(self: MemoryHierarchy, request, now: float) -> bool:
    p = self.params
    stats = self.stats
    stats.prefetches_requested += 1
    l1_block = request.block
    l2_block = l1_block >> self._l2_shift
    l2_index = l2_block & self._l2_index_mask
    l2_tag = l2_block >> _seed_index_bits(p.l2)

    resident = self.l2d.probe(l2_index, l2_tag)
    if resident is not None:
        stats.prefetch_redundant += 1
        if request.into_l1 and self._promotions_enabled:
            ready = max(now, resident.fill_time)
            self._pending_l1[l1_block & (_seed_sets(p.l1d) - 1)] = (l1_block, ready)
        return False

    inflight = self._pf_inflight
    if inflight:
        self._pf_inflight = inflight = [t for t in inflight if t > now]
    if len(inflight) >= p.max_outstanding_prefetches:
        stats.prefetch_dropped_queue += 1
        return False
    if self.memory.backlog(now) > p.prefetch_busy_threshold:
        stats.prefetch_dropped_busy += 1
        return False

    done = _seed_memory_fetch(self.memory, now + p.l2_hit_latency, p.l2.block_bytes)
    inflight.append(done)
    stats.prefetches_issued += 1
    _seed_fill_l2(self, l2_index, l2_tag, done, prefetched=True)
    if request.into_l1 and self._promotions_enabled:
        self._pending_l1[l1_block & (_seed_sets(p.l1d) - 1)] = (l1_block, done)
    return True


def _seed_try_promote(self: MemoryHierarchy, index: int, now: float) -> None:
    pending = self._pending_l1.get(index)
    if pending is None:
        return
    l1_block, ready = pending
    if ready > now:
        return
    p = self.params
    if now - ready > p.promotion_ttl:
        del self._pending_l1[index]
        return
    l2_block = l1_block >> self._l2_shift
    l2_index = l2_block & self._l2_index_mask
    l2_tag = l2_block >> _seed_index_bits(p.l2)
    if self.l2d.probe(l2_index, l2_tag) is None:
        del self._pending_l1[index]
        return
    tag = l1_block >> _seed_index_bits(p.l1d)
    if self.l1d.probe(index, tag) is not None:
        del self._pending_l1[index]
        return
    victim = self.l1d.victim_line(index)
    if victim is not None and not self._l1_gate(victim, index, now):  # type: ignore[misc]
        return
    l2_line = self.l2d.lookup(l2_index, l2_tag, False, now)
    if l2_line is not None and l2_line.prefetched:
        l2_line.prefetched = False
        self.stats.useful_prefetches += 1
    bus = self.prefetch_bus if self.prefetch_bus is not None else self.l1l2_data_bus
    start = _seed_bus_request(bus, now, self.params.l1d.block_bytes)
    _seed_fill_l1(
        self, index, tag, start + bus.beats(self.params.l1d.block_bytes),
        prefetched=True, dirty=False,
    )
    self.stats.l1_promotions += 1
    del self._pending_l1[index]


def _seed_run_prefetcher(self: MemoryHierarchy, miss: _SeedMissEvent) -> None:
    requests = self.prefetcher.observe_miss(miss)  # type: ignore[union-attr]
    if not requests:
        return
    launch = miss.now + self.params.prefetch_issue_delay
    for request in requests:
        _seed_issue_prefetch(self, request, launch)


def _seed_instruction_fetch(self: MemoryHierarchy, now: float, pc: int) -> float:
    """Seed ``instruction_fetch``: geometry re-derived at every use."""
    p = self.params
    block = pc >> _seed_offset_bits(p.l1i)
    if block == self._last_ifetch_block:
        return 0.0
    self._last_ifetch_block = block
    self.stats.ifetch_accesses += 1
    index = block & (_seed_sets(p.l1i) - 1)
    tag = block >> _seed_index_bits(p.l1i)
    if self.l1i.lookup(index, tag, False, now) is not None:
        return 0.0
    self.stats.ifetch_misses += 1
    l2_block = block >> self._l2_shift
    l2_index = l2_block & self._l2_index_mask
    l2_tag = l2_block >> _seed_index_bits(p.l2)
    arrival = _seed_bus_request(self.l1l2_addr_bus, now, 0) + 1
    if self.l2i.lookup(l2_index, l2_tag, False, arrival) is not None:
        ready = arrival + p.l2_hit_latency
    else:
        ready = _seed_memory_fetch(self.memory, arrival + p.l2_hit_latency,
                                   p.l2.block_bytes)
        self.l2i.fill(l2_index, l2_tag, ready)
    self.l1i.fill(index, tag, ready)
    return max(0.0, ready - now)


# ----------------------------------------------------------------------
# The demand access path.
# ----------------------------------------------------------------------

def legacy_access(
    hierarchy: MemoryHierarchy,
    now: float,
    index: int,
    tag: int,
    block: int,
    is_write: bool,
    pc: int,
) -> _SeedAccessResult:
    """One demand access via the pre-refactor call pattern.

    A line-for-line port of the old ``MemoryHierarchy.access`` and
    ``_demand_l2`` (see this module's docstring); the arithmetic is
    identical to :meth:`~repro.memory.hierarchy.MemoryHierarchy.
    access_time`, so state and committed cycles match the engine
    exactly.
    """
    self = hierarchy
    p = self.params
    stats = self.stats
    stats.demand_accesses += 1
    if is_write:
        stats.stores += 1
    else:
        stats.loads += 1

    if self._promotions_enabled and self._pending_l1:
        _seed_try_promote(self, index, now)

    line = self.l1d.lookup(index, tag, is_write, now)
    if line is not None:
        stats.l1_hits += 1
        if self._promotions_enabled and line.prefetched:
            line.prefetched = False
            stats.l1_promotion_hits += 1
            if self.prefetcher is not None:
                _seed_run_prefetcher(
                    self, _SeedMissEvent(index, tag, block, pc, is_write, now)
                )
        if self._needs_access:
            requests = self.prefetcher.observe_access(  # type: ignore[union-attr]
                _SeedAccessEvent(index, tag, block, pc, is_write, True, now)
            )
            if requests:
                for request in requests:
                    _seed_issue_prefetch(
                        self, request, now + self.params.prefetch_issue_delay
                    )
        return _SeedAccessResult(now + self.params.l1_hit_latency, True)

    # ----- L1 miss -----------------------------------------------------
    stats.l1_misses += 1
    if self._needs_access:
        requests = self.prefetcher.observe_access(  # type: ignore[union-attr]
            _SeedAccessEvent(index, tag, block, pc, is_write, False, now)
        )
        if requests:
            for request in requests:
                _seed_issue_prefetch(
                    self, request, now + self.params.prefetch_issue_delay
                )

    if self._promotions_enabled:
        pending = self._pending_l1.get(index)
        if pending is not None and pending[0] == block:
            del self._pending_l1[index]

    merged = self.mshr.lookup(block, now)
    if merged is not None:
        stats.mshr_merges += 1
        return _SeedAccessResult(merged, False)

    start = _seed_mshr_acquire(self.mshr, now)
    stats.mshr_full_stalls = self.mshr.full_stalls

    # ----- demand L2 fetch (the old _demand_l2 helper) -----------------
    request_start = _seed_bus_request(
        self.l1l2_addr_bus, start + p.l1_hit_latency, 0
    )
    arrival = request_start + 1
    stats.l2_demand_accesses += 1

    l2_block = block >> self._l2_shift
    l2_index = l2_block & self._l2_index_mask
    l2_tag = l2_block >> _seed_index_bits(p.l2)

    l2_line = self.l2d.lookup(l2_index, l2_tag, False, arrival)
    if l2_line is not None or p.ideal_l2:
        stats.l2_demand_hits += 1
        data_ready = arrival + p.l2_hit_latency
        if l2_line is not None:
            if l2_line.prefetched:
                l2_line.prefetched = False
                stats.prefetched_original += 1
                stats.useful_prefetches += 1
            if l2_line.fill_time > arrival:
                data_ready = max(data_ready, l2_line.fill_time)
        l2_hit = True
    else:
        stats.l2_demand_misses += 1
        data_ready = _seed_memory_fetch(
            self.memory, arrival + p.l2_hit_latency, p.l2.block_bytes
        )
        _seed_fill_l2(self, l2_index, l2_tag, data_ready, prefetched=False)
        l2_hit = False

    # Data return to L1 over the L1/L2 data channel.
    xfer = _seed_bus_request(self.l1l2_data_bus, data_ready, p.l1d.block_bytes)
    completion = xfer + self.l1l2_data_bus.beats(self.params.l1d.block_bytes)
    _seed_mshr_register(self.mshr, block, completion, now)

    _seed_fill_l1(self, index, tag, completion, prefetched=False, dirty=is_write)

    if self.prefetcher is not None:
        _seed_run_prefetcher(
            self, _SeedMissEvent(index, tag, block, pc, is_write, now)
        )
    return _SeedAccessResult(completion, False, l2_hit)


def run_legacy(
    trace: Trace,
    hierarchy: MemoryHierarchy,
    params: CoreParams = CoreParams(),
    warmup: int = 0,
) -> CoreResult:
    """Simulate ``trace`` with the pre-engine per-access call pattern."""
    n = len(trace)
    if not 0 <= warmup < max(n, 1):
        raise ValueError(f"warmup ({warmup}) must be < trace length ({n})")
    if n == 0:
        return CoreResult(0, 0.0, 0)

    geometry = hierarchy.params.l1d
    blocks, indices, tags = geometry.decompose_array(trace.addrs)
    gaps = trace.gaps
    deps = trace.deps
    is_load = trace.is_load
    pcs = trace.pcs
    model_icache = hierarchy.params.model_icache

    dispatch_rate = min(float(params.issue_width), trace.base_ipc)
    commit_rate = float(params.issue_width)
    window = params.window
    lsq = params.lsq
    ls_interval = 1.0 / params.ls_units

    max_dep = int(deps.max()) if n else 0
    ring = 1
    while ring < max(lsq, max_dep + 1, 512):
        ring <<= 1
    ring_mask = ring - 1
    completions = [0.0] * ring
    commits = [0.0] * ring

    rob: deque = deque()

    now_dispatch = float(params.frontend_depth)
    last_mem_issue = 0.0
    last_commit = 0.0
    instr_num = 0
    warmup_instr = 0
    warmup_commit = 0.0

    # Uninstrumented run: the sentinel mark never fires, as in the seed.
    next_mark = n + 1
    mark_interval = 0

    for i in range(n):
        if i == warmup and warmup:
            warmup_instr = instr_num
            warmup_commit = last_commit
            hierarchy.mark_warmup_end()
        gap = int(gaps[i])
        instr_num += gap + 1

        now_dispatch += (gap + 1) / dispatch_rate
        window_floor = instr_num - window
        while rob and rob[0][0] <= window_floor:
            entry = rob.popleft()
            if entry[1] > now_dispatch:
                now_dispatch = entry[1]
        if i >= lsq:
            lsq_release = commits[(i - lsq) & ring_mask]
            if lsq_release > now_dispatch:
                now_dispatch = lsq_release

        if model_icache:
            penalty = _seed_instruction_fetch(hierarchy, now_dispatch, int(pcs[i]))
            if penalty > 0.0:
                now_dispatch += penalty

        issue = now_dispatch
        if last_mem_issue + ls_interval > issue:
            issue = last_mem_issue + ls_interval
        dep = deps[i]
        if dep:
            data_ready = completions[(i - dep) & ring_mask]
            if data_ready > issue:
                issue = data_ready
        last_mem_issue = issue

        load = bool(is_load[i])
        result = legacy_access(
            hierarchy, issue,
            int(indices[i]), int(tags[i]), int(blocks[i]), not load, int(pcs[i]),
        )
        if load:
            completion = result.completion
        else:
            completion = issue + 1.0
        completions[i & ring_mask] = completion

        commit = last_commit + 1.0 / commit_rate
        if completion > commit:
            commit = completion
        last_commit = commit
        commits[i & ring_mask] = commit
        rob.append((instr_num, commit))

        if i + 1 == next_mark:
            next_mark += mark_interval

    total_instructions = trace.instruction_count
    trailing = total_instructions - instr_num
    measured_instructions = total_instructions - warmup_instr
    cycles = last_commit + trailing / dispatch_rate - warmup_commit
    return CoreResult(measured_instructions, cycles, n - warmup)
