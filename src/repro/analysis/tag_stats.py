"""Single-tag and single-address recurrence statistics (Figures 2–4).

From a workload's L1 miss stream this module computes:

* Figure 2: the number of unique tags and the mean number of times
  each tag (re)appears;
* Figure 3: the same for full block addresses — expected to show
  orders of magnitude *more* unique items recurring far *less* often,
  the asymmetry that motivates tag-based correlation;
* Figure 4: the mean number of distinct sets each tag appears in
  (spatial spread) and the mean number of appearances per (tag, set)
  pair (temporal recurrence within a set).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Union

from repro.analysis.miss_stream import MissStream, capture_miss_stream
from repro.workloads import Scale, Trace

__all__ = ["TagStats", "tag_stats"]


@dataclass(frozen=True)
class TagStats:
    """Recurrence metrics of one workload's miss stream."""

    workload: str
    misses: int
    # --- Figure 2 ---
    unique_tags: int
    mean_tag_occurrences: float
    # --- Figure 3 ---
    unique_blocks: int
    mean_block_occurrences: float
    # --- Figure 4 ---
    mean_sets_per_tag: float
    mean_occurrences_per_tag_set: float

    @property
    def block_to_tag_ratio(self) -> float:
        """How many distinct addresses share one tag, on average.

        The paper's space argument: this is the factor by which a
        tag-indexed table can be smaller than an address-indexed one.
        """
        if self.unique_tags == 0:
            return 0.0
        return self.unique_blocks / self.unique_tags


def tag_stats(
    workload: Union[str, Trace, MissStream],
    scale: Scale = Scale.STANDARD,
) -> TagStats:
    """Compute Figure 2/3/4 metrics for ``workload``."""
    if isinstance(workload, MissStream):
        stream = workload
    else:
        stream = capture_miss_stream(workload, scale)

    misses = len(stream)
    if misses == 0:
        return TagStats(stream.workload, 0, 0, 0.0, 0, 0.0, 0.0, 0.0)

    tag_counts: Counter = Counter()
    block_counts: Counter = Counter()
    tag_set_counts: Counter = Counter()
    tags = stream.tags
    blocks = stream.blocks
    indices = stream.indices
    for position in range(misses):
        tag = int(tags[position])
        tag_counts[tag] += 1
        block_counts[int(blocks[position])] += 1
        tag_set_counts[(tag, int(indices[position]))] += 1

    unique_tags = len(tag_counts)
    unique_blocks = len(block_counts)
    sets_per_tag: Counter = Counter()
    for (tag, _index) in tag_set_counts:
        sets_per_tag[tag] += 1

    return TagStats(
        workload=stream.workload,
        misses=misses,
        unique_tags=unique_tags,
        mean_tag_occurrences=misses / unique_tags,
        unique_blocks=unique_blocks,
        mean_block_occurrences=misses / unique_blocks,
        mean_sets_per_tag=sum(sets_per_tag.values()) / unique_tags,
        mean_occurrences_per_tag_set=misses / len(tag_set_counts),
    )
