"""Multi-host campaign fabric: shard a sweep across hosts, survive them.

Paper-scale regenerations (26 benchmarks x many TCP/DBCP configs) want
more than one machine.  This module treats *hosts* the way the
:mod:`repro.sim.resilience` pool treats worker processes: a coordinator
partitions the campaign's jobs by workload affinity across a set of
host agents, tracks per-host liveness through the existing heartbeat
pipeline, and when a host dies, stalls, or partitions, reassigns that
host's undispatched and in-flight jobs to the survivors with the same
attempt-numbering discipline the pool uses for its per-attempt
fallback.  Losing any host loses no results.

Pieces:

* **Transports.**  :class:`LocalTransport` launches agents as local
  subprocesses (tests and CI simulate a fleet on one machine);
  :class:`SSHTransport` remote-execs ``python -m repro.sim.fabric
  --agent`` over ``ssh -o BatchMode=yes``.  Either way the wire is
  newline-delimited JSON over the agent's stdin/stdout, mirroring the
  pool workers' tagged-tuple framing: coordinator→agent ``["job", key,
  payload, attempt]`` / ``["slow", seconds]`` / ``["stop"]``;
  agent→coordinator ``["ready", meta]`` / ``["hb", key, done, total,
  sim_time]`` / ``["ok", key, result]`` / ``["err", key, kind, msg]``
  / ``["sp", span_event]``.
* **Agents.**  One agent process per host slot
  (:func:`run_agent`).  An agent runs jobs in-process with
  ``simulate()``, streams rate-limited heartbeats, forwards span
  events when ``REPRO_OBS`` tracing is on, and — crucially — appends
  every finished result to its *own* store shard
  (``shard-<host>.jsonl``) before reporting it, so a result survives
  even if the coordinator dies the next instant.
* **Shards.**  Per-host shards are folded into the main log by
  :func:`repro.sim.store.merge_shards` through the PR 6 locking/CRC
  machinery, deduped by config fingerprint.  ``prewarm`` merges
  before its pending scan (fleet-wide resume after a coordinator
  crash) and again after the run.
* **Fault kinds.**  ``host-lost`` / ``host-partition`` / ``host-slow``
  (:data:`~repro.sim.resilience.HOST_FAULT_KINDS`) are injected at the
  coordinator, deterministically keyed by ``(host, dispatch)``, so
  fleet recovery is testable exactly like worker recovery.
* **Degradation.**  When every host is unreachable (or none launch),
  the campaign does not die: the remaining jobs run through the local
  supervisor, the report carries
  :class:`~repro.sim.resilience.FleetDegraded`'s name, and the CLI
  exits nonzero.

Remote caveats: ``SSHTransport`` assumes the repository is importable
by ``REPRO_FABRIC_PYTHON`` (default ``python3``) on the remote host
and that shard merging sees the store directory via a shared
filesystem.  Only prefetchers in the standard registry resolve by name
on a remote agent; dynamically registered factories (e.g. Figure 13
sweep points) exist only in the coordinator process.
"""

from __future__ import annotations

import dataclasses
import json
import os
import queue
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.sim.config import SimulationConfig
from repro.sim.resilience import (
    CampaignReport,
    CorruptResult,
    HEARTBEAT_MIN_INTERVAL,
    HostLost,
    HostPartition,
    JobFailure,
    JobTimeout,
    RetryPolicy,
    SimulationError,
    is_retryable,
    maybe_inject_host_fault,
    set_heartbeat_sink,
    shutdown_requested,
)
from repro.sim.results import SimResult, validate_result

__all__ = [
    "FABRIC_PYTHON_ENV",
    "FLEET_STALL_DEFAULT",
    "HOSTS_ENV",
    "HostSpec",
    "LocalTransport",
    "SSHTransport",
    "Transport",
    "config_from_wire",
    "config_to_wire",
    "fleet_status",
    "job_from_wire",
    "job_to_wire",
    "parse_hosts",
    "run_agent",
    "run_fleet",
]

#: default host list for ``--hosts`` (same grammar), e.g.
#: ``local:2`` or ``ssh:node-a:4,ssh:node-b:4``.
HOSTS_ENV = "REPRO_HOSTS"

#: interpreter used on the far side of an SSH transport.
FABRIC_PYTHON_ENV = "REPRO_FABRIC_PYTHON"

#: a host with a job in flight that has sent *nothing* (heartbeat,
#: span, result) for this long is declared partitioned and its work is
#: reassigned.  ``RetryPolicy.stall_timeout`` overrides; the default is
#: deliberately generous because trace generation on a cold agent emits
#: no heartbeats.  A host whose agent process actually dies is detected
#: immediately via stream EOF, not via this window.
FLEET_STALL_DEFAULT = 300.0

#: how long an injected ``host-slow`` fault stretches a dispatch.
_SLOW_STRETCH = 1.0

#: (workload name, config, accesses) — the same shape parallel.py uses.
FleetJob = Tuple[str, SimulationConfig, int]


# ---------------------------------------------------------------------------
# Host specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HostSpec:
    """One host slot: a transport kind, an address, and a unique id."""

    #: ``local`` or ``ssh``.
    kind: str
    #: remote address for ``ssh`` (empty for ``local``).
    address: str
    #: unique agent/shard identity, e.g. ``local-1`` or ``node-a-2``.
    id: str


def parse_hosts(spec: Optional[str]) -> List[HostSpec]:
    """Parse a host list: ``entry[,entry...]`` (commas or whitespace).

    Each entry is ``local[:N]`` (N local agents, default 1) or
    ``[ssh:]hostname[:N]`` (N agents on that host over SSH).  Agent ids
    are ``<name>-<i>`` when N > 1, the bare name otherwise — the id is
    also the shard name (``shard-<id>.jsonl``), so it must be unique.
    """
    if spec is None:
        spec = os.environ.get(HOSTS_ENV, "")
    entries = [e for chunk in spec.split(",") for e in chunk.split()]
    hosts: List[HostSpec] = []
    seen: set = set()
    for entry in entries:
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if parts[0] == "local":
            kind, name, rest = "local", "local", parts[1:]
        elif parts[0] == "ssh":
            if len(parts) < 2 or not parts[1]:
                raise ValueError(f"host entry {entry!r} names no host")
            kind, name, rest = "ssh", parts[1], parts[2:]
        else:
            kind, name, rest = "ssh", parts[0], parts[1:]
        if len(rest) > 1:
            raise ValueError(f"host entry {entry!r} has too many ':' fields")
        count = 1
        if rest:
            try:
                count = int(rest[0])
            except ValueError:
                raise ValueError(
                    f"host entry {entry!r}: slot count {rest[0]!r} is not an integer"
                ) from None
            if count < 1:
                raise ValueError(f"host entry {entry!r}: slot count must be >= 1")
        address = "" if kind == "local" else name
        for i in range(1, count + 1):
            host_id = name if count == 1 else f"{name}-{i}"
            if host_id in seen:
                raise ValueError(f"duplicate host id {host_id!r} in {spec!r}")
            seen.add(host_id)
            hosts.append(HostSpec(kind=kind, address=address, id=host_id))
    return hosts


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------
#
# Jobs cross the wire as plain JSON.  SimulationConfig is a frozen
# dataclass tree of scalars, so dataclasses.asdict round-trips it
# exactly (CacheGeometry's derived attributes are computed in
# __post_init__, not stored), and the reconstructed config hashes to
# the same store fingerprint as the original.


def config_to_wire(config: SimulationConfig) -> Dict[str, Any]:
    """JSON-safe encoding of a configuration (registry prefetchers only)."""
    return {
        "prefetcher": config.prefetcher,
        "core": dataclasses.asdict(config.core),
        "hierarchy": dataclasses.asdict(config.hierarchy),
        "label": config.label,
        "sanitize": config.sanitize,
        "backend": config.backend,
        "cores": config.cores,
        "mix": list(config.mix) if config.mix is not None else None,
        "shared_pht": config.shared_pht,
    }


def config_from_wire(payload: Dict[str, Any]) -> SimulationConfig:
    """Rebuild a configuration from :func:`config_to_wire` output."""
    from repro.cpu import CoreParams
    from repro.memory import HierarchyParams
    from repro.memory.address import CacheGeometry

    hierarchy = dict(payload["hierarchy"])
    for level in ("l1d", "l1i", "l2"):
        hierarchy[level] = CacheGeometry(**hierarchy[level])
    return SimulationConfig(
        prefetcher=str(payload["prefetcher"]),
        core=CoreParams(**payload["core"]),
        hierarchy=HierarchyParams(**hierarchy),
        label=payload.get("label"),
        sanitize=payload.get("sanitize"),
        backend=payload.get("backend"),
        cores=int(payload.get("cores", 1)),
        mix=tuple(payload["mix"]) if payload.get("mix") is not None else None,
        shared_pht=bool(payload.get("shared_pht", False)),
    )


def job_to_wire(job: FleetJob) -> Dict[str, Any]:
    workload, config, accesses = job
    return {
        "workload": workload,
        "accesses": int(accesses),
        "config": config_to_wire(config),
    }


def job_from_wire(payload: Dict[str, Any]) -> FleetJob:
    return (
        str(payload["workload"]),
        config_from_wire(payload["config"]),
        int(payload["accesses"]),
    )


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------


def _agent_argv(host: HostSpec, store_dir: Optional[str]) -> List[str]:
    argv = ["-m", "repro.sim.fabric", "--agent", "--host-id", host.id]
    if store_dir:
        argv += ["--store-dir", str(store_dir)]
    return argv


class Transport:
    """How agent processes are launched for one kind of host."""

    kind = "base"

    def command(self, host: HostSpec, store_dir: Optional[str]) -> List[str]:
        raise NotImplementedError

    def launch(
        self, host: HostSpec, store_dir: Optional[str]
    ) -> subprocess.Popen:
        """Start one agent; stdout/stdin are the JSONL wire."""
        return subprocess.Popen(
            self.command(host, store_dir),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # agent diagnostics interleave with the parent's
            text=True,
            bufsize=1,
        )


class LocalTransport(Transport):
    """Agents as local subprocesses of this interpreter.

    Used by tests and CI to exercise the whole fleet path — dispatch,
    heartbeats, shard writes, loss recovery, merging — on one machine:
    each "host" is simply an agent process that can be killed.
    """

    kind = "local"

    def command(self, host: HostSpec, store_dir: Optional[str]) -> List[str]:
        return [sys.executable] + _agent_argv(host, store_dir)


#: environment the coordinator forwards to remote agents (everything a
#: simulation's semantics or observability can depend on).
_SSH_FORWARD_ENV = (
    "REPRO_SANITIZE",
    "REPRO_BACKEND",
    "REPRO_OBS",
    "REPRO_TRACE_CACHE",
    "REPRO_STORE_LOCK_TIMEOUT",
)


class SSHTransport(Transport):
    """Agents over ``ssh -o BatchMode=yes`` (key-based auth only).

    The remote interpreter (``REPRO_FABRIC_PYTHON``, default
    ``python3``) must be able to ``import repro``; shard merging
    assumes the store directory is on a filesystem both sides see.
    """

    kind = "ssh"

    def __init__(self, python: Optional[str] = None) -> None:
        self.python = python or os.environ.get(FABRIC_PYTHON_ENV) or "python3"

    def command(self, host: HostSpec, store_dir: Optional[str]) -> List[str]:
        forwarded = [
            f"{name}={os.environ[name]}"
            for name in _SSH_FORWARD_ENV
            if os.environ.get(name)
        ]
        remote = ["env"] + forwarded if forwarded else []
        remote += [self.python] + _agent_argv(host, store_dir)
        return ["ssh", "-o", "BatchMode=yes", host.address] + remote


def transport_for(host: HostSpec) -> Transport:
    return LocalTransport() if host.kind == "local" else SSHTransport()


# ---------------------------------------------------------------------------
# The agent
# ---------------------------------------------------------------------------


def _agent_heartbeat(
    send: Callable[[List[Any]], None], job_key: str
) -> Callable[[int, int, float], None]:
    """A rate-limited heartbeat sink writing to the protocol stream."""
    last_sent = [0.0]

    def beat(done: int, total: int, sim_time: float) -> None:
        now = time.monotonic()
        if now - last_sent[0] < HEARTBEAT_MIN_INTERVAL:
            return
        last_sent[0] = now
        send(["hb", job_key, int(done), int(total), float(sim_time)])

    return beat


def run_agent(host_id: str, store_dir: Optional[str]) -> int:
    """Agent main loop: read jobs from stdin, answer on stdout.

    Results are appended to this host's own shard
    (``shard-<host_id>.jsonl``) *before* the ``ok`` message is sent, so
    a coordinator crash after the send loses nothing — the shard merge
    recovers the result.  The main store is explicitly silenced: two
    agents writing the main log through a non-shared lock would race.
    stdout is reserved for the protocol; stray prints are re-routed to
    stderr.
    """
    from repro.sim import store as store_mod
    from repro.sim.runner import simulate
    from repro.sim.store import ResultStore

    out = sys.stdout
    sys.stdout = sys.stderr  # protect the protocol stream
    store_mod.set_active_store(None)
    shard: Optional[ResultStore] = None
    if store_dir:
        try:
            shard = ResultStore(store_dir, results_name=f"shard-{host_id}.jsonl")
        except OSError as exc:
            print(
                f"fabric agent {host_id}: cannot open shard in {store_dir}: {exc}",
                file=sys.stderr,
            )

    def send(message: List[Any]) -> None:
        try:
            out.write(json.dumps(message, separators=(",", ":")) + "\n")
            out.flush()
        except (BrokenPipeError, OSError, ValueError):
            # Coordinator gone: anything already computed is safe in the
            # shard; there is nobody left to talk to.
            raise SystemExit(0)

    if obs_metrics.resolve_obs().trace:
        obs_spans.set_span_sink(lambda event: send(["sp", event]))

    send(["ready", {"pid": os.getpid(), "host": host_id}])
    pending_slow = 0.0
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        try:
            message = json.loads(line)
        except ValueError:
            continue  # garbage on the wire; the coordinator watches liveness
        if not isinstance(message, list) or not message:
            continue
        tag = message[0]
        if tag == "stop":
            break
        if tag == "slow" and len(message) == 2:
            try:
                pending_slow = float(message[1])
            except (TypeError, ValueError):
                pending_slow = 0.0
            continue
        if tag != "job" or len(message) != 4:
            continue
        _, job_key, payload, attempt = message
        try:
            workload, config, accesses = job_from_wire(payload)
        except Exception as exc:
            send(["err", job_key, "SimulationError", f"bad job payload: {exc}"])
            continue
        if pending_slow > 0:
            # Injected host-slow: stretch turnaround, keep proving
            # liveness so the watchdog never mistakes slow for dead.
            until = time.monotonic() + pending_slow
            pending_slow = 0.0
            while time.monotonic() < until:
                send(["hb", job_key, 0, 0, 0.0])
                time.sleep(0.05)
        set_heartbeat_sink(_agent_heartbeat(send, job_key))
        try:
            with obs_spans.span(
                "host-job", key=job_key, host=host_id, attempt=attempt
            ):
                result = simulate(workload, config, accesses, use_cache=False)
            validate_result(result)
            if shard is not None:
                shard.put(workload, accesses, config, result)
            send(["ok", job_key, result.to_dict()])
        except SimulationError as exc:
            send(["err", job_key, type(exc).__name__, str(exc)])
        except BaseException as exc:  # classify unexpected agent bugs too
            send(["err", job_key, "SimulationError", f"{type(exc).__name__}: {exc}"])
        finally:
            set_heartbeat_sink(None)
    return 0


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------

#: queue item: (job, key, attempt, earliest start time).
_Item = Tuple[Any, str, int, float]


@dataclass
class _FleetHost:
    spec: HostSpec
    proc: subprocess.Popen
    stdin: IO[str]
    #: this host's affinity-partitioned job queue.
    queue: List[_Item] = field(default_factory=list)
    #: in-flight job as (job, key, attempt), or None when idle.
    current: Optional[Tuple[Any, str, int]] = None
    deadline: Optional[float] = None
    last_beat: float = 0.0
    #: injected partition: the wire eats everything this host says.
    muted: bool = False
    dispatches: int = 0
    #: forwarded span begins not yet matched by an end (see _run_pool).
    open_spans: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def id(self) -> str:
        return self.spec.id


def _reader(
    host_id: str, stream: IO[str], inbox: "queue.Queue[Tuple[str, Any]]"
) -> None:
    """Per-agent reader thread: parsed messages (or EOF None) → inbox."""
    try:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                message = json.loads(line)
            except ValueError:
                continue
            if isinstance(message, list) and message:
                inbox.put((host_id, message))
    except (OSError, ValueError):
        pass
    finally:
        inbox.put((host_id, None))


def _count(name: str, delta: int = 1) -> None:
    registry = obs_metrics.active_registry()
    if registry is not None and delta:
        registry.counter(name).inc(delta)


def run_fleet(
    jobs: Sequence[FleetJob],
    *,
    hosts: Sequence[HostSpec],
    key: Callable[[FleetJob], str],
    store_root: Optional[Union[str, Path]] = None,
    policy: Optional[RetryPolicy] = None,
    group: Optional[Callable[[FleetJob], str]] = None,
    progress: Optional[Callable[[int, int, str, str], None]] = None,
    heartbeat: Optional[Callable[[str, int, int, float], None]] = None,
    span: Optional[Callable[[Dict[str, Any]], None]] = None,
    fallback: Optional[Callable[[List[FleetJob], int], CampaignReport]] = None,
) -> CampaignReport:
    """Supervise ``jobs`` across ``hosts``; never raises.

    The host-level mirror of :func:`repro.sim.resilience.run_supervised`:
    jobs are partitioned by affinity ``group`` (default: the workload
    name) across hosts with greedy least-loaded placement, each host
    runs one job at a time (one agent per host *slot*), idle hosts
    steal from the deepest surviving queue, and per-host liveness is
    tracked through the same heartbeat pipeline worker processes use.

    Host loss (agent EOF / injected ``host-lost``), partition (message
    silence past the stall window / injected ``host-partition``), and
    per-job wall-clock overruns all reclaim the host's work: the
    in-flight job is requeued at ``attempt + 1`` — the pool's
    attempt-numbering discipline, so retry budgets and backoff hashes
    match a single-host run — and undispatched jobs redistribute to
    survivors at their original attempt numbers.  When *every* host is
    gone with work remaining, the leftover jobs run through
    ``fallback(jobs, settled)`` (the local supervisor) and the report
    carries ``fleet_degraded``.

    ``progress`` / ``heartbeat`` / ``span`` match ``run_supervised``;
    forwarded span events additionally carry a ``host`` tag.
    """
    policy = policy or RetryPolicy()
    jobs = list(jobs)
    report = CampaignReport()
    if not jobs:
        return report
    total = len(jobs)
    group_of = group or (lambda job: job[0])
    stall_window = (
        policy.stall_timeout if policy.stall_timeout is not None else FLEET_STALL_DEFAULT
    )
    store_dir = str(store_root) if store_root is not None else None

    inbox: "queue.Queue[Tuple[str, Any]]" = queue.Queue()
    alive: Dict[str, _FleetHost] = {}
    #: reassigned / retried / stolen work any idle host may claim.
    spill: List[_Item] = []

    # -- launch -------------------------------------------------------------
    for spec in hosts:
        if spec.id in alive:
            continue
        try:
            proc = transport_for(spec).launch(spec, store_dir)
        except OSError as exc:
            print(
                f"fabric: host {spec.id} failed to launch: {exc}", file=sys.stderr
            )
            continue
        host = _FleetHost(spec=spec, proc=proc, stdin=proc.stdin)
        host.last_beat = time.monotonic()
        alive[spec.id] = host
        threading.Thread(
            target=_reader,
            args=(spec.id, proc.stdout, inbox),
            name=f"fabric-reader-{spec.id}",
            daemon=True,
        ).start()

    # -- partition: whole affinity groups, greedy least-loaded --------------
    groups: Dict[str, List[_Item]] = {}
    for job in jobs:
        groups.setdefault(group_of(job), []).append((job, key(job), 1, 0.0))
    if alive:
        ring = list(alive.values())
        for items in groups.values():  # caller pre-orders longest-first
            target = min(ring, key=lambda h: len(h.queue))
            target.queue.extend(items)
    else:
        for items in groups.values():
            spill.extend(items)

    # -- helpers ------------------------------------------------------------

    def _send(host: _FleetHost, message: List[Any]) -> bool:
        try:
            host.stdin.write(json.dumps(message, separators=(",", ":")) + "\n")
            host.stdin.flush()
            return True
        except (BrokenPipeError, OSError, ValueError):
            return False

    def _pop_ready(items: List[_Item], now: float) -> Optional[_Item]:
        for i, item in enumerate(items):
            if item[3] <= now:
                return items.pop(i)
        return None

    def _take_next(host: _FleetHost) -> Optional[_Item]:
        now = time.monotonic()
        item = _pop_ready(host.queue, now)
        if item is None:
            item = _pop_ready(spill, now)
        if item is None:
            # Tail rebalancing: steal from the deepest other queue so a
            # slow (or slow-faulted) host never serialises the finish.
            victim = max(
                (h for h in alive.values() if h is not host and h.queue),
                key=lambda h: len(h.queue),
                default=None,
            )
            if victim is not None:
                item = _pop_ready(victim.queue, now)
        return item

    def _dispatch(host: _FleetHost) -> bool:
        item = _take_next(host)
        if item is None:
            return False
        job, job_key, attempt, _ = item
        host.dispatches += 1
        fault = maybe_inject_host_fault(host.id, host.dispatches)
        if fault == "host-slow":
            _send(host, ["slow", _SLOW_STRETCH])
        if not _send(host, ["job", job_key, job_to_wire(job), attempt]):
            # Dead before we noticed: the job was never attempted; the
            # EOF sentinel path will reclaim the host.
            spill.insert(0, item)
            return False
        now = time.monotonic()
        host.current = (job, job_key, attempt)
        host.deadline = now + policy.timeout if policy.timeout else None
        host.last_beat = now
        if fault == "host-lost":
            host.proc.kill()
        elif fault == "host-partition":
            host.muted = True
        return True

    def _requeue_or_fail(
        job: Any, job_key: str, attempt: int, error: SimulationError
    ) -> bool:
        """Charge one failed attempt; True when the job was requeued."""
        if attempt <= policy.retries and is_retryable(error):
            report.retried += 1
            spill.append(
                (job, job_key, attempt + 1,
                 time.monotonic() + policy.backoff(job_key, attempt + 1))
            )
            return True
        report.failures.append(
            JobFailure(job_key, type(error).__name__, str(error), attempt)
        )
        if progress is not None:
            progress(report.executed + report.failed, total, job_key, "FAILED")
        return False

    def _abort_spans(host: _FleetHost) -> None:
        if span is not None:
            for begin in host.open_spans.values():
                span(obs_spans.synthesize_abort(begin))
        host.open_spans.clear()

    def _stop_agent(host: _FleetHost, grace: float = 2.0) -> None:
        _send(host, ["stop"])
        try:
            host.stdin.close()
        except OSError:
            pass
        try:
            host.proc.wait(timeout=grace)
        except subprocess.TimeoutExpired:
            host.proc.terminate()
            try:
                host.proc.wait(timeout=grace)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck agent
                host.proc.kill()
                host.proc.wait()

    def _lose(host: _FleetHost, error: SimulationError) -> None:
        """Reclaim one dead/partitioned host: reassign all its work."""
        del alive[host.id]
        report.hosts_lost += 1
        _count("fleet.hosts_lost")
        _abort_spans(host)
        try:
            host.proc.kill()
        except OSError:
            pass
        try:
            host.stdin.close()
        except OSError:
            pass
        host.proc.wait()
        if host.current is not None:
            job, job_key, attempt = host.current
            host.current = None
            if _requeue_or_fail(job, job_key, attempt, error):
                report.reassigned += 1
                _count("fleet.reassigned")
        if host.queue:
            report.reassigned += len(host.queue)
            _count("fleet.reassigned", len(host.queue))
            spill.extend(host.queue)
            host.queue = []

    def _complete(host: _FleetHost, job_key: str, payload: Any) -> None:
        if host.current is None or host.current[1] != job_key:
            return  # stale answer for a job already reassigned elsewhere
        job, _, attempt = host.current
        try:
            result = SimResult.from_dict(payload)
            validate_result(result)
        except Exception as exc:
            host.current = None
            host.deadline = None
            _requeue_or_fail(job, job_key, attempt, CorruptResult(f"{job_key}: {exc}"))
            _dispatch(host)
            return
        host.current = None
        host.deadline = None
        report.completed[job_key] = result
        report.per_host[host.id] = report.per_host.get(host.id, 0) + 1
        _count(f"fleet.host.{host.id}.completed")
        if progress is not None:
            progress(report.executed + report.failed, total, job_key, "ok")
        _dispatch(host)

    def _fail(host: _FleetHost, job_key: str, kind: str, message: str) -> None:
        if host.current is None or host.current[1] != job_key:
            return
        from repro.sim.resilience import _rebuild_error

        job, _, attempt = host.current
        host.current = None
        host.deadline = None
        _requeue_or_fail(job, job_key, attempt, _rebuild_error(kind, message))
        _dispatch(host)

    def _work_remaining() -> bool:
        return bool(
            spill
            or any(h.queue for h in alive.values())
            or any(h.current is not None for h in alive.values())
        )

    # -- main loop ----------------------------------------------------------
    try:
        for host in list(alive.values()):
            _dispatch(host)

        while alive and _work_remaining():
            if shutdown_requested():
                report.interrupted = True
                break
            if (
                policy.max_failures is not None
                and report.failed >= policy.max_failures
            ):
                report.aborted = (
                    f"stopped after {report.failed} permanent failure(s) "
                    f"(max-failures={policy.max_failures})"
                )
                break
            now = time.monotonic()
            for host in list(alive.values()):
                if host.current is None:
                    _dispatch(host)
                    continue
                if host.deadline is not None and now > host.deadline:
                    # No way to cancel a remote job short of restarting
                    # the agent: a single-slot host *is* its attempt.
                    _lose(
                        host,
                        JobTimeout(
                            f"host {host.id}: attempt exceeded "
                            f"{policy.timeout:.3g}s (attempt {host.current[2]})"
                        ),
                    )
                elif now - host.last_beat > stall_window:
                    _lose(
                        host,
                        HostPartition(
                            f"host {host.id}: no message for "
                            f"{stall_window:.3g}s with a job in flight "
                            f"(attempt {host.current[2]})"
                        ),
                    )
            try:
                host_id, message = inbox.get(timeout=0.2)
            except queue.Empty:
                continue
            while True:
                host = alive.get(host_id)
                if host is not None:
                    if message is None:
                        code = host.proc.poll()
                        _lose(
                            host,
                            HostLost(
                                f"host {host.id}: agent exited (code {code})"
                            ),
                        )
                    elif not host.muted:
                        host.last_beat = time.monotonic()
                        tag = message[0]
                        if tag == "hb" and len(message) == 5:
                            if heartbeat is not None and host.current is not None:
                                heartbeat(
                                    message[1], message[2], message[3], message[4]
                                )
                        elif tag == "sp" and len(message) == 2:
                            event = dict(message[1])
                            event.setdefault("host", host.id)
                            if event.get("ev") == "begin":
                                host.open_spans[event["span"]] = event
                            elif event.get("ev") == "end":
                                host.open_spans.pop(event.get("span"), None)
                            if span is not None:
                                span(event)
                        elif tag == "ok" and len(message) == 3:
                            _complete(host, message[1], message[2])
                        elif tag == "err" and len(message) == 4:
                            _fail(host, message[1], message[2], message[3])
                        # "ready" and anything else: liveness only.
                try:
                    host_id, message = inbox.get_nowait()
                except queue.Empty:
                    break
    finally:
        for host in list(alive.values()):
            _abort_spans(host)
            _stop_agent(host)

    # -- degradation / leftovers -------------------------------------------
    leftover: List[_Item] = list(spill)
    for host in alive.values():
        leftover.extend(host.queue)
    if leftover and not report.interrupted and report.aborted is None:
        reason = (
            f"all {len(list(hosts))} host(s) unreachable or lost; "
            f"{len(leftover)} job(s) re-run on the local host"
            if report.hosts_lost or not alive
            else f"{len(leftover)} job(s) left unscheduled"
        )
        if fallback is not None:
            report.fleet_degraded = reason
            _count("fleet.degraded")
            settled = report.executed + report.failed
            sub = fallback([item[0] for item in leftover], settled)
            report.merge(sub)
        else:
            for job, job_key, attempt, _ in leftover:
                report.failures.append(
                    JobFailure(
                        job_key,
                        "HostLost",
                        f"no surviving host to run {job_key} and no local fallback",
                        attempt,
                    )
                )
            report.fleet_degraded = reason
    return report


# ---------------------------------------------------------------------------
# Fleet status (CLI helper)
# ---------------------------------------------------------------------------


def fleet_status(store_root: Union[str, Path]) -> Dict[str, Any]:
    """Shard inventory of a store directory, for ``repro-tcp fleet``."""
    from repro.sim.store import ResultStore, list_shards

    store = ResultStore(store_root)
    shards = []
    for path in list_shards(store):
        shard = ResultStore(store.root, results_name=path.name)
        info = shard.verify()
        shards.append(
            {
                "host": path.stem[len("shard-"):],
                "path": str(path),
                "records": info["records"],
                "live": info["live"],
                "bad": len(info["bad"]),
            }
        )
    main = store.verify()
    return {
        "root": str(store.root),
        "main_records": main["records"],
        "main_live": main["live"],
        "shards": shards,
    }


# ---------------------------------------------------------------------------
# CLI entry: python -m repro.sim.fabric --agent ...
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.sim.fabric",
        description="campaign fabric agent (launched by the fleet coordinator)",
    )
    parser.add_argument("--agent", action="store_true", help="run as a host agent")
    parser.add_argument("--host-id", default="local", help="unique agent identity")
    parser.add_argument(
        "--store-dir", default=None, help="store root for this host's shard"
    )
    args = parser.parse_args(argv)
    if not args.agent:
        parser.error("only agent mode is supported (--agent)")
    return run_agent(args.host_id, args.store_dir)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
