"""Parallel pre-warming of the simulation result cache.

A full-scale regeneration of the paper's evaluation is ~150 independent
(workload, configuration) simulations; they share nothing at runtime
except the result cache, so they parallelise embarrassingly.

``prewarm`` runs a batch of simulations in a process pool and installs
the results into this process's cache
(:mod:`repro.sim.runner`); afterwards the experiments replay from cache
at zero cost.  The CLI exposes it as ``repro-tcp run ... --jobs N``.

Workers re-derive everything from the (workload name, config, scale)
key — traces are regenerated deterministically per worker — so nothing
large crosses process boundaries except the finished
:class:`~repro.sim.results.SimResult` objects.
"""

from __future__ import annotations

import multiprocessing
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.sim.config import SimulationConfig
from repro.sim.results import SimResult
from repro.sim.runner import _RESULT_CACHE, simulate
from repro.workloads import BENCHMARK_ORDER, Scale

__all__ = ["experiment_configs", "prewarm"]

Job = Tuple[str, SimulationConfig, int]


def _run_job(job: Job) -> Tuple[Job, SimResult]:
    """Worker entry point: run one simulation, return its result."""
    workload, config, accesses = job
    result = simulate(workload, config, Scale(accesses))
    return job, result


def experiment_configs() -> List[SimulationConfig]:
    """The configurations the main experiments (fig 1/11/12/14) need.

    Figure 13's sweep points are registered dynamically and excluded
    here; prewarming the seven standing configurations already covers
    the bulk of a full regeneration.
    """
    return [
        SimulationConfig.baseline(),
        SimulationConfig.ideal_l2(),
        SimulationConfig.for_prefetcher("tcp-8k"),
        SimulationConfig.for_prefetcher("tcp-8m"),
        SimulationConfig.for_prefetcher("dbcp-2m"),
        SimulationConfig.for_prefetcher("hybrid-8k"),
    ]


def prewarm(
    configs: Optional[Iterable[SimulationConfig]] = None,
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
    jobs: int = 0,
) -> int:
    """Fill the result cache for ``configs`` x ``benchmarks`` in parallel.

    ``jobs``: worker processes (0 = cpu count).  Returns the number of
    simulations executed (cached entries are skipped).  With ``jobs=1``
    the work runs in-process, which keeps the function usable where
    multiprocessing is unavailable.
    """
    config_list = list(configs) if configs is not None else experiment_configs()
    names = tuple(benchmarks) if benchmarks is not None else BENCHMARK_ORDER
    pending: List[Job] = []
    for config in config_list:
        for name in names:
            if (name, scale.accesses, config) not in _RESULT_CACHE:
                pending.append((name, config, scale.accesses))
    if not pending:
        return 0

    if jobs == 1 or len(pending) == 1:
        for job in pending:
            _run_job(job)  # simulate() itself installs the cache entry
        return len(pending)

    workers = jobs if jobs > 0 else (multiprocessing.cpu_count() or 2)
    workers = min(workers, len(pending))
    with multiprocessing.get_context("fork").Pool(workers) as pool:
        for job, result in pool.imap_unordered(_run_job, pending):
            workload, config, accesses = job
            _RESULT_CACHE[(workload, accesses, config)] = result
    return len(pending)
