"""Tests for the Tag Correlating Prefetcher (repro.core.tcp)."""

import pytest

from repro.core.pht import PHTConfig
from repro.core.tcp import TagCorrelatingPrefetcher, TCPConfig, tcp_8k, tcp_8m, tcp_with_pht
from repro.prefetchers.base import MissEvent


def miss(index: int, tag: int, pc: int = 0x1000, now: float = 0.0) -> MissEvent:
    return MissEvent(index, tag, (tag << 10) | index, pc, False, now)


def small_tcp(**pht_kwargs) -> TagCorrelatingPrefetcher:
    pht = PHTConfig(sets=64, ways=4, **pht_kwargs)
    return TagCorrelatingPrefetcher(TCPConfig(tht_rows=1024, pht=pht))


class TestFactories:
    def test_tcp_8k_budget(self):
        prefetcher = tcp_8k()
        assert prefetcher.pht.storage_bytes() == 8 * 1024
        assert prefetcher.tht.storage_bytes() == 4 * 1024
        assert prefetcher.name == "tcp-8K"

    def test_tcp_8m_budget(self):
        prefetcher = tcp_8m()
        assert prefetcher.pht.storage_bytes() == 8 * 1024 * 1024
        assert prefetcher.config.pht.miss_index_bits == 10

    def test_tcp_with_pht_sizes(self):
        for size_kb in (2, 8, 32, 128, 512, 2048, 8192):
            prefetcher = tcp_with_pht(size_kb * 1024)
            assert prefetcher.pht.storage_bytes() == size_kb * 1024

    def test_tcp_with_pht_rejects_unrealisable(self):
        with pytest.raises(ValueError):
            tcp_with_pht(1000)  # not a power-of-two set count


class TestOperation:
    def test_learns_three_tag_pattern(self):
        """With the cyclic miss pattern A, B, C the PHT learns
        (B, C) -> A; after the next C the history is (B, C) and A is
        prefetched — the pattern continues."""
        prefetcher = small_tcp()
        pattern = [0xA, 0xB, 0xC]
        requests = []
        for repeat in range(3):
            for tag in pattern:
                requests = prefetcher.observe_miss(miss(5, tag))
        # Last miss was 0xC with history (0xB, 0xC): successor is 0xA.
        assert [r.block for r in requests] == [(0xA << 10) | 5]

    def test_prediction_reconstructs_block_address(self):
        prefetcher = small_tcp()
        for tag in (1, 2, 3, 1, 2):
            requests = prefetcher.observe_miss(miss(7, tag))
        assert requests
        assert requests[0].block == (3 << 10) | 7
        assert not requests[0].into_l1

    def test_cross_set_sharing(self):
        """A pattern learned at set 5 predicts at set 900 (the paper's
        central space-saving claim)."""
        prefetcher = small_tcp(miss_index_bits=0)
        for tag in (1, 2, 3):
            prefetcher.observe_miss(miss(5, tag))
        # Other set, same tag sequence: prediction available immediately
        # after history (1, 2) forms.
        requests = []
        for tag in (1, 2):
            requests = prefetcher.observe_miss(miss(900, tag))
        assert [r.block for r in requests] == [(3 << 10) | 900]

    def test_private_history_blocks_sharing(self):
        prefetcher = small_tcp(miss_index_bits=6)  # 64-set PHT, full split
        for tag in (1, 2, 3):
            prefetcher.observe_miss(miss(5, tag))
        requests = []
        for tag in (1, 2):
            requests = prefetcher.observe_miss(miss(32, tag))
        assert requests == []

    def test_no_prediction_for_cold_history(self):
        prefetcher = small_tcp()
        assert prefetcher.observe_miss(miss(0, 42)) == []

    def test_skips_prefetch_of_missing_block_itself(self):
        """A learned self-successor (A -> A) must not re-request the
        block that is already being demand-fetched."""
        prefetcher = small_tcp()
        for _ in range(6):
            requests = prefetcher.observe_miss(miss(3, 0xA))
        assert requests == []

    def test_stats_accumulate(self):
        prefetcher = small_tcp()
        for tag in (1, 2, 3, 1, 2):
            prefetcher.observe_miss(miss(0, tag))
        assert prefetcher.stats.lookups == 5
        assert prefetcher.stats.updates == 5
        assert prefetcher.stats.predictions >= 1

    def test_reset_clears_everything(self):
        prefetcher = small_tcp()
        for tag in (1, 2, 3, 1, 2):
            prefetcher.observe_miss(miss(0, tag))
        prefetcher.reset()
        assert prefetcher.stats.lookups == 0
        assert prefetcher.pht.occupancy() == 0
        for tag in (1, 2):
            requests = prefetcher.observe_miss(miss(0, tag))
        assert requests == []

    def test_update_precedes_lookup(self):
        """The paper's ordering: the THT is refreshed before the lookup,
        so the lookup uses the sequence including the current miss."""
        prefetcher = small_tcp()
        prefetcher.observe_miss(miss(2, 0xA))
        prefetcher.observe_miss(miss(2, 0xB))
        assert prefetcher.tht.read(2) == (0xA, 0xB)

    def test_storage_includes_tht_and_pht(self):
        prefetcher = small_tcp()
        assert prefetcher.storage_bytes() == (
            prefetcher.tht.storage_bytes() + prefetcher.pht.storage_bytes()
        )


class TestHistoryLengths:
    def test_k1_history(self):
        config = TCPConfig(tht_rows=64, history_length=1, pht=PHTConfig(sets=32, ways=2))
        prefetcher = TagCorrelatingPrefetcher(config)
        # Pattern: A -> B (pairwise correlation).
        for tag in (1, 2, 1, 2, 1):
            requests = prefetcher.observe_miss(miss(0, tag))
        assert [r.block for r in requests] == [2 << 6]

    def test_k3_history(self):
        config = TCPConfig(tht_rows=64, history_length=3, pht=PHTConfig(sets=32, ways=2))
        prefetcher = TagCorrelatingPrefetcher(config)
        pattern = [1, 2, 3, 4]
        requests = []
        for _ in range(3):
            for tag in pattern:
                requests = prefetcher.observe_miss(miss(0, tag))
        # history after last miss (tag 4... pattern end): (2,3,4) -> 1
        assert [r.block for r in requests] == [(1 << 6) | 0]
