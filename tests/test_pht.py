"""Tests for repro.core.pht.PatternHistoryTable."""

import pytest

from repro.core.indexing import IndexFunction
from repro.core.pht import PatternHistoryTable, PHTConfig


class TestConfig:
    def test_paper_tcp_8k_budget(self):
        config = PHTConfig(sets=256, ways=8, miss_index_bits=0)
        assert config.storage_bytes() == 8 * 1024

    def test_paper_tcp_8m_budget(self):
        config = PHTConfig(sets=262144, ways=8, miss_index_bits=10)
        assert config.storage_bytes() == 8 * 1024 * 1024

    def test_invalid_sets(self):
        with pytest.raises(ValueError):
            PHTConfig(sets=100)

    def test_invalid_ways(self):
        with pytest.raises(ValueError):
            PHTConfig(ways=0)

    def test_invalid_targets(self):
        with pytest.raises(ValueError):
            PHTConfig(targets=0)

    def test_too_many_index_bits(self):
        with pytest.raises(ValueError):
            PHTConfig(sets=256, miss_index_bits=9)

    def test_multi_target_budget_grows(self):
        single = PHTConfig(sets=256, ways=8, targets=1).storage_bytes()
        double = PHTConfig(sets=256, ways=8, targets=2).storage_bytes()
        assert double == single * 3 // 2  # (1+2)/(1+1) fields


class TestUpdatePredict:
    def test_learn_then_predict(self):
        pht = PatternHistoryTable(PHTConfig(sets=16, ways=2))
        pht.update((1, 2), 0, 3)
        assert pht.predict((1, 2), 0) == [3]

    def test_unknown_sequence_misses(self):
        pht = PatternHistoryTable(PHTConfig(sets=16, ways=2))
        assert pht.predict((9, 9), 0) is None

    def test_overwrite_single_target(self):
        pht = PatternHistoryTable(PHTConfig(sets=16, ways=2, targets=1))
        pht.update((1, 2), 0, 3)
        pht.update((1, 2), 0, 4)
        assert pht.predict((1, 2), 0) == [4]

    def test_multi_target_mru_order(self):
        pht = PatternHistoryTable(PHTConfig(sets=16, ways=2, targets=2))
        pht.update((1, 2), 0, 3)
        pht.update((1, 2), 0, 4)
        assert pht.predict((1, 2), 0) == [4, 3]
        pht.update((1, 2), 0, 3)
        assert pht.predict((1, 2), 0) == [3, 4]

    def test_multi_target_capacity(self):
        pht = PatternHistoryTable(PHTConfig(sets=16, ways=2, targets=2))
        for successor in (3, 4, 5):
            pht.update((1, 2), 0, successor)
        assert pht.predict((1, 2), 0) == [5, 4]

    def test_entry_tagged_by_most_recent_tag(self):
        # Sequences with the same truncated sum but different final tag
        # land in the same set yet stay distinct entries.
        pht = PatternHistoryTable(PHTConfig(sets=16, ways=2))
        pht.update((1, 4), 0, 100)  # sum 5, entry tag 4
        pht.update((2, 3), 0, 200)  # sum 5, entry tag 3
        assert pht.predict((1, 4), 0) == [100]
        assert pht.predict((2, 3), 0) == [200]

    def test_associativity_eviction(self):
        pht = PatternHistoryTable(PHTConfig(sets=4, ways=1))
        pht.update((0, 1), 0, 10)  # set 1, entry tag 1
        pht.update((0, 5), 0, 50)  # sum 5 -> set 1, entry tag 5: evicts
        assert pht.predict((0, 1), 0) is None
        assert pht.predict((0, 5), 0) == [50]

    def test_miss_index_bits_separate_history(self):
        pht = PatternHistoryTable(PHTConfig(sets=16, ways=2, miss_index_bits=2))
        pht.update((1, 2), 0, 3)
        assert pht.predict((1, 2), 0) == [3]
        assert pht.predict((1, 2), 1) is None  # different sub-table

    def test_shared_pht_serves_all_sets(self):
        pht = PatternHistoryTable(PHTConfig(sets=16, ways=2, miss_index_bits=0))
        pht.update((1, 2), 17, 3)
        # A completely different cache set sees the same prediction.
        assert pht.predict((1, 2), 900) == [3]

    def test_predict_returns_copy(self):
        pht = PatternHistoryTable(PHTConfig(sets=16, ways=2, targets=2))
        pht.update((1, 2), 0, 3)
        predicted = pht.predict((1, 2), 0)
        predicted.append(999)
        assert pht.predict((1, 2), 0) == [3]


class TestStats:
    def test_hit_rate(self):
        pht = PatternHistoryTable(PHTConfig(sets=16, ways=2))
        pht.update((1, 2), 0, 3)
        pht.predict((1, 2), 0)
        pht.predict((7, 7), 0)
        assert pht.hit_rate == pytest.approx(0.5)
        assert pht.lookups == 2
        assert pht.hits == 1
        assert pht.updates == 1

    def test_occupancy(self):
        pht = PatternHistoryTable(PHTConfig(sets=16, ways=2))
        assert pht.occupancy() == 0
        pht.update((1, 2), 0, 3)
        pht.update((4, 5), 0, 6)
        assert pht.occupancy() == 2

    def test_reset(self):
        pht = PatternHistoryTable(PHTConfig(sets=16, ways=2))
        pht.update((1, 2), 0, 3)
        pht.predict((1, 2), 0)
        pht.reset()
        assert pht.occupancy() == 0
        assert pht.lookups == 0
        assert pht.predict((1, 2), 0) is None

    def test_xor_fold_variant_works(self):
        pht = PatternHistoryTable(
            PHTConfig(sets=16, ways=2, index_function=IndexFunction.XOR_FOLD)
        )
        pht.update((1, 2), 0, 3)
        assert pht.predict((1, 2), 0) == [3]
