"""Cross-module property tests: implementations vs reference oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pht import PHTConfig
from repro.core.tcp import TagCorrelatingPrefetcher, TCPConfig
from repro.memory.address import CacheGeometry
from repro.memory.cache import SetAssociativeCache
from repro.memory.hierarchy import HierarchyParams, MemoryHierarchy
from repro.prefetchers.base import MissEvent


class TestDirectMappedVsReference:
    """The direct-mapped fast path must match a plain dict model."""

    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 5)), max_size=120))
    def test_hit_miss_sequence_matches(self, accesses):
        cache = SetAssociativeCache(CacheGeometry(8 * 32, 1, 32), "dm")
        model = {}
        time = 0.0
        for index, tag in accesses:
            time += 1.0
            hit = cache.lookup(index, tag, False, time) is not None
            expected = model.get(index) == tag
            assert hit == expected
            if not hit:
                cache.fill(index, tag, time)
                model[index] = tag


class TestTCPVsOracle:
    """A TCP with an over-provisioned PHT must agree with an unbounded
    dict-based oracle of the paper's algorithm."""

    @settings(deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(1, 6)), max_size=150))
    def test_predictions_match(self, misses):
        config = TCPConfig(
            tht_rows=4, history_length=2,
            pht=PHTConfig(sets=65536, ways=64, miss_index_bits=2),
        )
        tcp = TagCorrelatingPrefetcher(config)

        # oracle state: per-set history + exact pattern map
        history = {index: (0, 0) for index in range(4)}
        patterns = {}

        for index, tag in misses:
            requests = tcp.observe_miss(
                MissEvent(index, tag, (tag << 2) | index, 0, False, 0.0)
            )
            old = history[index]
            patterns[(old, index)] = tag  # full miss index = private history
            new = (old[1], tag)
            history[index] = new
            predicted = patterns.get((new, index))
            expected = []
            if predicted is not None:
                block = (predicted << 2) | index
                if block != ((tag << 2) | index):
                    expected = [block]
            assert [r.block for r in requests] == expected

    def test_oracle_note(self):
        """The oracle equivalence above holds because miss_index_bits=2
        covers all four sets (fully private history, no aliasing) and
        the PHT is too large to evict."""
        assert PHTConfig(sets=65536, ways=64).storage_bytes() > 10**7


class TestHierarchyTimingProperties:
    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.tuples(st.integers(0, 2**20), st.booleans()), max_size=80))
    def test_completions_never_precede_requests(self, accesses):
        h = MemoryHierarchy(HierarchyParams(model_icache=False))
        geometry = h.params.l1d
        now = 0.0
        for addr, is_write in accesses:
            block = geometry.block_address(addr)
            result = h.access(
                now, geometry.index_of(addr), geometry.tag_of(addr), block,
                is_write, 0x1000,
            )
            assert result.completion >= now
            now += 3.0

    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.integers(0, 2**16), min_size=1, max_size=80))
    def test_stats_conservation(self, addrs):
        h = MemoryHierarchy(HierarchyParams(model_icache=False))
        geometry = h.params.l1d
        for position, addr in enumerate(addrs):
            block = geometry.block_address(addr)
            h.access(
                float(position * 5), geometry.index_of(addr),
                geometry.tag_of(addr), block, False, 0x1000,
            )
        stats = h.stats
        assert stats.l1_hits + stats.l1_misses == len(addrs)
        assert stats.l2_demand_accesses + stats.mshr_merges == stats.l1_misses
        assert stats.l2_demand_hits + stats.l2_demand_misses == stats.l2_demand_accesses


class TestCoreTimingProperties:
    @settings(deadline=None, max_examples=20)
    @given(
        st.lists(st.integers(0, 2**16), min_size=2, max_size=60),
        st.integers(1, 8),
    )
    def test_ipc_positive_and_bounded(self, addrs, width):
        from repro.cpu import CoreParams, OutOfOrderCore
        from repro.workloads.trace import Trace

        n = len(addrs)
        trace = Trace(
            name="p",
            addrs=np.array(addrs, dtype=np.uint64),
            pcs=np.full(n, 0x1000, dtype=np.uint64),
            is_load=np.ones(n, dtype=bool),
            gaps=np.full(n, 2, dtype=np.uint16),
            deps=np.zeros(n, dtype=np.int32),
            base_ipc=float(width),
        )
        h = MemoryHierarchy(HierarchyParams(model_icache=False))
        result = OutOfOrderCore(CoreParams(issue_width=width)).run(trace, h)
        assert 0 < result.ipc <= width + 1e-9


class TestObsProperties:
    """Conservation laws for the observability layer (repro.obs)."""

    @settings(deadline=None, max_examples=50)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            max_size=100,
        )
    )
    def test_histogram_conserves_observations(self, values):
        import math

        from repro.obs.metrics import Histogram

        h = Histogram("h", buckets=(1.0, 10.0, 1000.0))
        for v in values:
            h.observe(v)
        d = h.to_dict()
        # Every observation lands in exactly one bucket.
        assert sum(d["counts"]) == d["count"] == len(values)
        assert d["sum"] == pytest.approx(math.fsum(values), abs=1e-6)
        if values:
            assert d["min"] == min(values)
            assert d["max"] == max(values)
            assert d["min"] <= h.mean <= d["max"] or d["count"] == 0

    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.booleans(), max_size=40))
    def test_spans_are_well_nested(self, script):
        """Arbitrary open/close interleavings produce a well-nested
        tree: each span's parent is whatever was open when it began,
        and all durations are non-negative."""
        from repro.obs import spans as obs_spans
        from repro.obs.trace import pair_spans

        collector = obs_spans.TraceCollector()
        opened = []
        expect_parent = {}
        try:
            with obs_spans.use_span_sink(collector.sink):
                for do_open in script:
                    if do_open or not opened:
                        parent = opened[-1].span_id if opened else None
                        span = obs_spans.span(f"n{len(expect_parent)}")
                        span.__enter__()
                        expect_parent[span.span_id] = parent
                        opened.append(span)
                    else:
                        opened.pop().__exit__(None, None, None)
                while opened:
                    opened.pop().__exit__(None, None, None)
        finally:
            del obs_spans._OPEN_STACK[:]
        closed, dangling = pair_spans(collector.sorted_events())
        assert dangling == []
        assert len(closed) == len(expect_parent)
        for record in closed:
            assert record["parent"] == expect_parent[record["span"]]
            assert record["dur"] >= 0
            assert record["end_t"] >= record["begin_t"]

    def test_run_metrics_conservation(self):
        """The probe's per-interval histograms partition its counters:
        interval deltas must sum to the final totals, which in turn
        equal the simulator's own statistics."""
        from repro.obs import metrics as obs_metrics
        from repro.sim import SimulationConfig, simulate
        from repro.sim.runner import clear_cache
        from repro.workloads import Scale

        clear_cache()
        registry = obs_metrics.MetricsRegistry()
        with obs_metrics.use_registry(registry):
            result = simulate(
                "swim", SimulationConfig.for_prefetcher("tcp-8k"),
                Scale.QUICK, use_cache=False, warmup_fraction=0.0,
            )
        snap = registry.to_dict()
        for name in ("l1.hits", "l1.misses", "l2.hits", "l2.misses"):
            assert snap[f"interval.{name}"]["sum"] == snap[name]["value"]
        assert snap["l1.hits"]["value"] == result.memory.l1_hits
        assert snap["l1.misses"]["value"] == result.memory.l1_misses
