"""End-to-end integration tests: the paper's claims at reduced scale.

These run full simulations (baseline + prefetchers) on a handful of
benchmarks at STANDARD scale, so they are the slowest tests in the
suite (~30s total).  They pin down the qualitative results everything
else exists for.
"""

import pytest

from repro import Scale, SimulationConfig, simulate
from repro.util.stats import geometric_mean

SCALE = Scale.STANDARD


def improvement(workload: str, prefetcher: str) -> float:
    base = simulate(workload, SimulationConfig.baseline(), SCALE)
    result = simulate(workload, SimulationConfig.for_prefetcher(prefetcher), SCALE)
    return result.improvement_over(base)


class TestHeadlineClaims:
    SWEEPS = ("swim", "applu", "art", "lucas")

    def test_tcp_8k_accelerates_regular_sweeps(self):
        """The core claim: an 8 KB tag-correlating table produces
        double-digit speedups on the regular memory-bound workloads."""
        gains = [improvement(name, "tcp-8k") for name in self.SWEEPS]
        geomean = (geometric_mean(1 + g / 100 for g in gains) - 1) * 100
        assert geomean > 10.0, gains

    def test_tcp_8k_beats_dbcp_on_streaming(self):
        """Cross-set pattern sharing lets TCP cover streaming sweeps that
        address-correlation cannot learn (each block dies once)."""
        tcp = improvement("applu", "tcp-8k")
        dbcp = improvement("applu", "dbcp-2m")
        assert tcp > dbcp + 5.0, (tcp, dbcp)

    def test_private_history_wins_on_pointer_chasing(self):
        """mcf's per-set-private sequences defeat the shared 8 KB PHT but
        yield to TCP-8M — the paper's Section 5.1 sharing analysis."""
        shared = improvement("mcf", "tcp-8k")
        private = improvement("mcf", "tcp-8m")
        assert private > shared + 10.0, (shared, private)

    def test_shared_history_wins_on_cross_set_patterns(self):
        """lucas's strided streams share one pattern across all sets:
        the shared PHT learns from one set and serves the rest."""
        shared = improvement("lucas", "tcp-8k")
        private = improvement("lucas", "tcp-8m")
        assert shared > private, (shared, private)

    def test_random_workload_not_helped_nor_wrecked(self):
        """twolf's random probes are unlearnable; the prefetcher must not
        destroy performance chasing them (paper Figure 11 shows only
        small negatives)."""
        gain = improvement("twolf", "tcp-8k")
        assert -8.0 < gain < 8.0, gain

    def test_hybrid_never_collapses(self):
        """Dead-block gating keeps L1 prefetching safe (Figure 14)."""
        for name in ("applu", "art", "mcf"):
            tcp = improvement(name, "tcp-8k")
            hybrid = improvement(name, "hybrid-8k")
            assert hybrid > tcp - 3.0, (name, tcp, hybrid)

    def test_ideal_l2_spread(self):
        """Figure 1's premise: potential spans near-zero to huge."""
        base_f = simulate("fma3d", SimulationConfig.baseline(), SCALE)
        ideal_f = simulate("fma3d", SimulationConfig.ideal_l2(), SCALE)
        base_m = simulate("mcf", SimulationConfig.baseline(), SCALE)
        ideal_m = simulate("mcf", SimulationConfig.ideal_l2(), SCALE)
        assert ideal_f.improvement_over(base_f) < 30.0
        assert ideal_m.improvement_over(base_m) > 150.0


class TestBudgetClaims:
    def test_tcp_8k_budget_vs_dbcp(self):
        tcp = simulate("fma3d", SimulationConfig.for_prefetcher("tcp-8k"), Scale.QUICK)
        dbcp = simulate("fma3d", SimulationConfig.for_prefetcher("dbcp-2m"), Scale.QUICK)
        # the paper's 8KB-vs-2MB asymmetry (THT adds 4KB to TCP)
        assert tcp.prefetcher_storage_bytes <= 16 * 1024
        assert dbcp.prefetcher_storage_bytes == 2 * 1024 * 1024
        assert dbcp.prefetcher_storage_bytes / tcp.prefetcher_storage_bytes > 100


class TestConservationInvariants:
    @pytest.mark.parametrize("prefetcher", ["none", "tcp-8k", "dbcp-2m", "hybrid-8k"])
    def test_l2_accounting_consistent(self, prefetcher):
        result = simulate("art", SimulationConfig.for_prefetcher(prefetcher), Scale.QUICK)
        m = result.memory
        assert m.l1_hits + m.l1_misses == m.demand_accesses
        assert m.l2_demand_hits + m.l2_demand_misses == m.l2_demand_accesses
        assert 0 <= m.prefetched_original <= m.l2_demand_accesses
        assert m.prefetches_issued <= m.prefetches_requested
        assert (
            m.prefetches_issued
            + m.prefetch_redundant
            + m.prefetch_dropped_queue
            + m.prefetch_dropped_busy
            == m.prefetches_requested
        )
