"""Tests for the parallel result-cache prewarmer (repro.sim.parallel)."""

import pytest

from repro.sim import SimulationConfig, experiment_configs, prewarm, simulate
from repro.sim.resilience import default_workers, supervision_context
from repro.sim.runner import _RESULT_CACHE, clear_cache
from repro.workloads import Scale

BENCHES = ("fma3d", "eon")


class TestExperimentConfigs:
    def test_covers_main_experiments(self):
        labels = {config.resolved_label() for config in experiment_configs()}
        assert {"base", "ideal-l2", "tcp-8k", "tcp-8m", "dbcp-2m", "hybrid-8k"} <= labels


class TestPrewarm:
    def test_inprocess_prewarm_fills_cache(self):
        clear_cache()
        configs = [SimulationConfig.baseline()]
        report = prewarm(configs, Scale.QUICK, BENCHES, jobs=1)
        assert report.executed == 2
        assert report.ok
        for name in BENCHES:
            assert (name, Scale.QUICK.accesses, configs[0]) in _RESULT_CACHE

    def test_prewarm_skips_cached(self):
        clear_cache()
        configs = [SimulationConfig.baseline()]
        prewarm(configs, Scale.QUICK, BENCHES, jobs=1)
        report = prewarm(configs, Scale.QUICK, BENCHES, jobs=1)
        assert report.executed == 0
        assert report.skipped == 2

    def test_parallel_matches_serial(self):
        configs = [SimulationConfig.for_prefetcher("tcp-8k")]
        clear_cache()
        prewarm(configs, Scale.QUICK, BENCHES, jobs=2)
        parallel_ipc = {
            name: simulate(name, configs[0], Scale.QUICK).ipc for name in BENCHES
        }
        clear_cache()
        serial_ipc = {
            name: simulate(name, configs[0], Scale.QUICK).ipc for name in BENCHES
        }
        assert parallel_ipc == serial_ipc

    def test_experiments_consume_prewarmed_results(self):
        from repro.experiments import run_experiment

        clear_cache()
        prewarm(
            [SimulationConfig.baseline(), SimulationConfig.ideal_l2()],
            Scale.QUICK, BENCHES, jobs=2,
        )
        result = run_experiment("fig1", Scale.QUICK, BENCHES)
        assert len(result.rows) == 2

    def test_success_count_excludes_failures(self, monkeypatch):
        """The report never counts a failed job as executed."""
        from repro.sim import resilience

        monkeypatch.setattr(
            resilience,
            "_FAULT_INJECTOR",
            lambda key, attempt: "error" if key.startswith("fma3d") else None,
        )
        clear_cache()
        report = prewarm(
            [SimulationConfig.baseline()], Scale.QUICK, BENCHES, jobs=2, retries=1
        )
        assert report.executed == 1
        assert report.failed == 1
        assert report.executed + report.failed == len(BENCHES)


class TestPlatformFallbacks:
    def test_default_workers_explicit(self):
        assert default_workers(3) == 3

    def test_default_workers_survives_missing_cpu_count(self, monkeypatch):
        import multiprocessing

        def boom():
            raise NotImplementedError

        monkeypatch.setattr(multiprocessing, "cpu_count", boom)
        assert default_workers(0) == 2

    def test_context_fallback_order(self, monkeypatch):
        import multiprocessing

        calls = []
        real = multiprocessing.get_context

        def failing_fork(method=None):
            calls.append(method)
            if method == "fork":
                raise ValueError("fork unavailable")
            return real(method)

        monkeypatch.setattr(multiprocessing, "get_context", failing_fork)
        context = supervision_context()
        assert calls[0] == "fork"
        assert context is not None
        assert context.get_start_method() == "spawn"

    def test_context_env_forces_inprocess(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "inprocess")
        assert supervision_context() is None

    def test_prewarm_inprocess_fallback(self, monkeypatch):
        """With no usable start method the campaign still completes."""
        monkeypatch.setenv("REPRO_START_METHOD", "inprocess")
        clear_cache()
        report = prewarm([SimulationConfig.baseline()], Scale.QUICK, BENCHES, jobs=2)
        assert report.executed == 2
        assert report.ok
