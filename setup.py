"""Setup shim for environments without the `wheel` package.

`pip install -e .` needs `wheel` to build editable metadata; fully
offline environments may lack it.  `python setup.py develop` (or adding
`src/` to a .pth file) installs the package equivalently.
"""
from setuptools import setup

setup()
