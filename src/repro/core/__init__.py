"""TCP: the Tag Correlating Prefetcher (the paper's contribution).

The prefetcher has the two-level structure of Figure 8:

* :class:`repro.core.tht.TagHistoryTable` — one row per L1 set,
  holding the last *k* miss tags seen at that set;
* :class:`repro.core.pht.PatternHistoryTable` — an 8-way associative
  table mapping a tag-sequence (hashed with the truncated-add scheme of
  Figure 9, optionally mixed with miss-index bits) to the predicted
  next tag.

:class:`repro.core.tcp.TagCorrelatingPrefetcher` glues them together
behind the common :class:`repro.prefetchers.base.Prefetcher` interface;
``tcp_8k()`` and ``tcp_8m()`` build the paper's two evaluated
configurations.  :mod:`repro.core.hybrid` adds the Section 5.2.2
prefetch-into-L1 hybrid (dead-block gated), and :mod:`repro.core.variants`
implements the Section 6 future-work designs (multi-target entries and
stride-augmented TCP).  :mod:`repro.core.strided` detects the strided
tag sequences of Figure 15.
"""

from repro.core.hybrid import HybridTCP, hybrid_8k
from repro.core.indexing import IndexFunction, PHTIndexScheme
from repro.core.pht import PatternHistoryTable, PHTConfig
from repro.core.strided import StridedSequenceDetector, strided_fraction
from repro.core.tcp import TagCorrelatingPrefetcher, TCPConfig, tcp_8k, tcp_8m, tcp_with_pht
from repro.core.tht import TagHistoryTable
from repro.core.variants import (
    ConfidenceFilteredTCP,
    LookaheadTCP,
    MultiTargetTCP,
    StrideFilteredTCP,
)

__all__ = [
    "ConfidenceFilteredTCP",
    "HybridTCP",
    "LookaheadTCP",
    "IndexFunction",
    "MultiTargetTCP",
    "PHTConfig",
    "PHTIndexScheme",
    "PatternHistoryTable",
    "StrideFilteredTCP",
    "StridedSequenceDetector",
    "TCPConfig",
    "TagCorrelatingPrefetcher",
    "TagHistoryTable",
    "hybrid_8k",
    "strided_fraction",
    "tcp_8k",
    "tcp_8m",
    "tcp_with_pht",
]
