"""Regenerate Figure 4: tag spread across sets, recurrence within sets."""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig04_tag_spread(benchmark, scale, strict):
    result = run_once(benchmark, run_experiment, "fig4", scale)
    print()
    print(result.render())

    spread = result.series["sets_per_tag"]
    per_set = result.series["occurrences_per_tag_set"]
    # Bounds: a tag can at most appear in every one of the 1024 sets.
    assert all(1.0 <= value <= 1024.0 for value in spread.values())
    assert all(value >= 1.0 for value in per_set.values())
    if strict:
        # Sweeping benchmarks spread each tag across most of the cache
        # (the paper's gzip/apsi/wupwise/lucas/swim approach the 1024
        # limit); the art-analogue recurs heavily within sets.
        assert spread["swim"] > 400
        assert spread["wupwise"] > 400
        assert per_set["art"] > 20
