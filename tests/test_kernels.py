"""Tests for the workload kernel generators."""

import numpy as np
import pytest

from repro.util.rng import make_rng
from repro.workloads.kernels import (
    TraceBuilder,
    hash_table_walk,
    hot_loop,
    interleaved_sweep,
    pointer_chase,
    random_region,
    sequential_bursts,
)


def build(kernel, *args, **kwargs):
    builder = TraceBuilder("test")
    kernel(builder, make_rng("kernel-test"), *args, **kwargs)
    return builder.build()


class TestBuilder:
    def test_empty_builder_rejected(self):
        with pytest.raises(ValueError):
            TraceBuilder("empty").build()

    def test_chunk_length_mismatch_rejected(self):
        builder = TraceBuilder("bad")
        with pytest.raises(ValueError):
            builder.add(
                np.zeros(3, dtype=np.uint64),
                np.zeros(2, dtype=np.uint64),
                np.ones(3, dtype=bool),
                np.zeros(3, dtype=np.uint16),
            )

    def test_concatenates_chunks(self):
        builder = TraceBuilder("two")
        for _ in range(2):
            hot_loop(builder, make_rng("x"), 0x1000, 1024, 50, 0x400000)
        assert len(builder.build()) == 100


class TestInterleavedSweep:
    def test_round_robin_interleave(self):
        trace = build(
            interleaved_sweep, [0x10000, 0x20000], [4096, 4096], 8, 4, 0x400000
        )
        assert len(trace) == 8
        # arrays alternate a, b, a, b ...
        assert trace.addrs[0] == 0x10000
        assert trace.addrs[1] == 0x20000
        assert trace.addrs[2] == 0x10008

    def test_wraps_at_array_size(self):
        trace = build(interleaved_sweep, [0x10000], [64], 8, 10, 0x400000)
        assert trace.addrs.max() < 0x10000 + 64

    def test_start_offset_continues(self):
        trace = build(
            interleaved_sweep, [0x10000], [4096], 8, 4, 0x400000, start_offset=80
        )
        assert trace.addrs[0] == 0x10000 + 80

    def test_store_streams_marked(self):
        trace = build(
            interleaved_sweep, [0x10000, 0x20000], [4096, 4096], 8, 4, 0x400000,
            store_streams=(1,),
        )
        assert trace.is_load[0::2].all()
        assert not trace.is_load[1::2].any()

    def test_per_stream_pcs(self):
        trace = build(
            interleaved_sweep, [0x10000, 0x20000], [4096, 4096], 8, 4, 0x400000
        )
        assert len(set(trace.pcs[0::2])) == 1
        assert trace.pcs[0] != trace.pcs[1]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build(interleaved_sweep, [], [], 8, 4, 0)
        with pytest.raises(ValueError):
            build(interleaved_sweep, [0x1000], [64], 0, 4, 0)


class TestPointerChase:
    def test_dependence_structure(self):
        trace = build(pointer_chase, 0x10000, 64, 64, 10, 0x400000, payload=1)
        # records alternate: chase (dep=2), payload (dep=1)
        assert trace.deps[0] == 0  # first address is architectural
        assert trace.deps[2] == 2
        assert trace.deps[1] == 1
        assert trace.deps[3] == 1

    def test_same_order_each_lap(self):
        trace = build(pointer_chase, 0x10000, 8, 64, 16, 0x400000)
        first_lap = trace.addrs[:8]
        second_lap = trace.addrs[8:16]
        assert (first_lap == second_lap).all()

    def test_order_and_start_continue_traversal(self):
        rng = make_rng("chase")
        order = rng.permutation(8)
        builder = TraceBuilder("chase")
        pointer_chase(builder, rng, 0x10000, 8, 64, 5, 0x400000, order=order, start=0)
        pointer_chase(builder, rng, 0x10000, 8, 64, 5, 0x400000, order=order, start=5)
        trace = builder.build()
        expected = [0x10000 + order[i % 8] * 64 for i in range(10)]
        assert list(trace.addrs) == expected

    def test_payload_store(self):
        trace = build(
            pointer_chase, 0x10000, 16, 64, 8, 0x400000, payload=2, payload_store=True
        )
        # last payload access of each node is a store
        assert not trace.is_load[2::3].any()
        assert trace.is_load[0::3].all()

    def test_wrong_order_length_rejected(self):
        with pytest.raises(ValueError):
            build(pointer_chase, 0x10000, 8, 64, 5, 0x400000, order=np.arange(4))


class TestRandomRegion:
    def test_within_bounds(self):
        trace = build(random_region, 0x10000, 4096, 200, 0x400000)
        assert (trace.addrs >= 0x10000).all()
        assert (trace.addrs < 0x10000 + 4096).all()

    def test_granularity_aligned(self):
        trace = build(random_region, 0x10000, 4096, 200, 0x400000, granularity=64)
        assert ((trace.addrs - 0x10000) % 64 == 0).all()

    def test_drift_window_progresses(self):
        trace = build(
            random_region, 0x10000, 1 << 20, 1000, 0x400000, window=4096
        )
        first_quarter = trace.addrs[:250].mean()
        last_quarter = trace.addrs[-250:].mean()
        assert last_quarter > first_quarter  # the window drifted forward

    def test_drift_window_validation(self):
        with pytest.raises(ValueError):
            build(random_region, 0x10000, 4096, 10, 0x400000, window=8192)

    def test_store_fraction(self):
        trace = build(
            random_region, 0x10000, 4096, 2000, 0x400000, store_fraction=0.5
        )
        stores = (~trace.is_load).sum()
        assert 700 < stores < 1300


class TestHotLoop:
    def test_cycles_through_region(self):
        trace = build(hot_loop, 0x10000, 256, 100, 0x400000, stride=8)
        assert (trace.addrs < 0x10000 + 256).all()
        assert trace.addrs[0] == trace.addrs[32]  # 256/8 = 32 period


class TestSequentialBursts:
    def test_runs_are_sequential(self):
        trace = build(
            sequential_bursts, 0x10000, 1 << 20, 300, 0x400000,
            burst_range=(50, 50), stride=8,
        )
        # within the first burst, addresses advance by the stride
        deltas = np.diff(trace.addrs[:50].astype(np.int64))
        assert (deltas == 8).all()

    def test_exact_count(self):
        trace = build(sequential_bursts, 0x10000, 1 << 20, 123, 0x400000)
        assert len(trace) == 123


class TestHashTableWalk:
    def test_chain_dependences(self):
        trace = build(hash_table_walk, 0x10000, 64, 30, 0x400000, chain=2)
        assert trace.deps[0] == 0
        assert trace.deps[1] == 1
        assert trace.deps[2] == 1

    def test_exact_count(self):
        trace = build(hash_table_walk, 0x10000, 64, 31, 0x400000, chain=1)
        assert len(trace) == 31
