"""Robustness tests: pathological configurations must degrade, not break."""

import numpy as np
import pytest

from repro.cpu import CoreParams, OutOfOrderCore
from repro.memory import HierarchyParams, MemoryHierarchy
from repro.memory.address import CacheGeometry
from repro.workloads.trace import Trace


def make_trace(n=3000, span_blocks=4096, gap=3, name="stress"):
    addrs = (np.arange(n, dtype=np.uint64) * 32 * 7) % (span_blocks * 32)
    return Trace(
        name=name,
        addrs=addrs,
        pcs=np.full(n, 0x1000, dtype=np.uint64),
        is_load=np.ones(n, dtype=bool),
        gaps=np.full(n, gap, dtype=np.uint16),
        deps=np.zeros(n, dtype=np.int32),
    )


def run(params: HierarchyParams, core=CoreParams(), trace=None):
    trace = trace or make_trace()
    hierarchy = MemoryHierarchy(params)
    return OutOfOrderCore(core).run(trace, hierarchy), hierarchy


class TestPathologicalConfigs:
    def test_single_mshr(self):
        result, h = run(HierarchyParams(mshr_entries=1, model_icache=False))
        assert result.ipc > 0
        # with one MSHR, overlapping misses must stall
        assert h.mshr.full_stalls > 0

    def test_tiny_l2(self):
        params = HierarchyParams(
            l2=CacheGeometry(8 * 1024, 4, 64), model_icache=False
        )
        result, h = run(params)
        assert result.ipc > 0
        assert h.stats.l2_demand_misses > 0

    def test_narrow_buses(self):
        params = HierarchyParams(
            l1l2_bus_bytes_per_cycle=1, mem_bus_bytes_per_cycle=1,
            model_icache=False,
        )
        wide, _h1 = run(HierarchyParams(model_icache=False))
        narrow, h2 = run(params)
        assert narrow.ipc < wide.ipc  # bandwidth bound
        assert h2.mem_data_bus.busy_cycles > 0

    def test_memory_concurrency_one(self):
        params = HierarchyParams(memory_concurrency=1, model_icache=False)
        serial, _h = run(params)
        parallel, _h = run(HierarchyParams(model_icache=False))
        assert serial.ipc <= parallel.ipc + 1e-9

    def test_single_entry_window(self):
        result, _h = run(
            HierarchyParams(model_icache=False),
            core=CoreParams(window=1, lsq=1, issue_width=1, ls_units=1),
        )
        assert 0 < result.ipc <= 1.0

    def test_huge_latency_memory(self):
        params = HierarchyParams(memory_latency=5000, model_icache=False)
        slow, _h = run(params)
        fast, _h = run(HierarchyParams(model_icache=False))
        assert slow.ipc < fast.ipc

    def test_equal_block_sizes_l1_l2(self):
        params = HierarchyParams(
            l2=CacheGeometry(1024 * 1024, 4, 32), model_icache=False
        )
        result, h = run(params)
        assert result.ipc > 0
        # 1:1 block mapping: sibling sharing disappears
        assert h._l2_shift == 0

    def test_zero_gap_trace(self):
        trace = make_trace(gap=0)
        result, _h = run(HierarchyParams(model_icache=False), trace=trace)
        assert result.ipc > 0

    def test_all_stores_trace(self):
        trace = make_trace()
        trace = Trace(
            name="stores", addrs=trace.addrs, pcs=trace.pcs,
            is_load=np.zeros(len(trace), dtype=bool),
            gaps=trace.gaps, deps=trace.deps,
        )
        result, h = run(HierarchyParams(model_icache=False), trace=trace)
        assert result.ipc > 0
        assert h.stats.stores == len(trace)
        assert h.stats.writebacks_l1 > 0  # dirty conflict evictions

    def test_icache_path_under_pc_churn(self):
        n = 2000
        trace = Trace(
            name="pcchurn",
            addrs=np.full(n, 0x1000, dtype=np.uint64),
            pcs=(np.arange(n, dtype=np.uint64) * 4096),  # new I-block each time
            is_load=np.ones(n, dtype=bool),
            gaps=np.full(n, 3, dtype=np.uint16),
            deps=np.zeros(n, dtype=np.int32),
        )
        result, h = run(HierarchyParams(model_icache=True), trace=trace)
        assert result.ipc > 0
        assert h.stats.ifetch_misses > 100


class TestCoreStructuralConstraints:
    def test_lsq_limits_outstanding_memory_ops(self):
        """With a tiny LSQ, long-latency misses serialize in batches."""
        addrs = np.arange(2000, dtype=np.uint64) * 32
        trace = Trace(
            name="lsq", addrs=addrs,
            pcs=np.full(2000, 0x1000, dtype=np.uint64),
            is_load=np.ones(2000, dtype=bool),
            gaps=np.full(2000, 1, dtype=np.uint16),
            deps=np.zeros(2000, dtype=np.int32),
        )
        big, _ = run(HierarchyParams(model_icache=False),
                     CoreParams(window=512, lsq=128), trace)
        small, _ = run(HierarchyParams(model_icache=False),
                       CoreParams(window=512, lsq=2), trace)
        assert big.ipc > small.ipc

    def test_ls_units_throughput(self):
        trace = make_trace(gap=0, span_blocks=64)  # L1-resident, mem-op dense
        many, _ = run(HierarchyParams(model_icache=False),
                      CoreParams(ls_units=4, issue_width=8), trace)
        one, _ = run(HierarchyParams(model_icache=False),
                     CoreParams(ls_units=1, issue_width=8), trace)
        assert many.ipc > one.ipc
