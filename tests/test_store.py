"""Tests for the persistent checkpointed result store (repro.sim.store)."""

import json

import pytest

from repro.sim import SimulationConfig, simulate
from repro.sim import store as store_mod
from repro.sim.runner import clear_cache
from repro.sim.store import ResultStore, SCHEMA_VERSION, config_fingerprint
from repro.workloads import Scale

BASE = SimulationConfig.baseline()
TCP = SimulationConfig.for_prefetcher("tcp-8k")


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "store")


@pytest.fixture()
def result():
    clear_cache()
    return simulate("eon", BASE, Scale.QUICK)


class TestFingerprint:
    def test_stable(self):
        assert config_fingerprint(BASE) == config_fingerprint(SimulationConfig.baseline())

    def test_any_parameter_change_invalidates(self):
        assert config_fingerprint(BASE) != config_fingerprint(TCP)
        tweaked = BASE.with_hierarchy(memory_latency=71)
        assert config_fingerprint(BASE) != config_fingerprint(tweaked)


class TestRoundTrip:
    def test_put_get(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        loaded = store.get("eon", Scale.QUICK.accesses, BASE)
        assert loaded is not None
        assert loaded.ipc == result.ipc
        assert loaded.memory.l1_misses == result.memory.l1_misses

    def test_survives_reopen(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        reopened = ResultStore(store.root)
        loaded = reopened.get("eon", Scale.QUICK.accesses, BASE)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()

    def test_miss_on_other_key(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        assert store.get("eon", Scale.QUICK.accesses, TCP) is None
        assert store.get("eon", Scale.STANDARD.accesses, BASE) is None
        assert store.get("swim", Scale.QUICK.accesses, BASE) is None

    def test_last_write_wins(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        reopened = ResultStore(store.root)
        assert len(reopened) == 1

    def test_put_rejects_invalid(self, store, result):
        import dataclasses

        bad = dataclasses.replace(
            result, core=dataclasses.replace(result.core, cycles=float("nan"))
        )
        with pytest.raises(ValueError):
            store.put("eon", Scale.QUICK.accesses, BASE, bad)
        assert len(store) == 0


class TestQuarantine:
    def test_garbage_line_quarantined(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write("{this is not json\n")
        reopened = ResultStore(store.root)
        assert reopened.get("eon", Scale.QUICK.accesses, BASE) is not None
        assert reopened.quarantined == 1
        assert reopened.quarantine_path.exists()
        # the store file was rewritten clean: a third open quarantines nothing
        assert ResultStore(store.root).quarantined == 0

    def test_invariant_violation_quarantined(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        record = json.loads(store.path.read_text().strip())
        record["result"]["core"]["cycles"] = -1.0
        store.path.write_text(json.dumps(record) + "\n")
        reopened = ResultStore(store.root)
        assert reopened.get("eon", Scale.QUICK.accesses, BASE) is None
        assert reopened.quarantined == 1

    def test_truncated_payload_quarantined(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        record = json.loads(store.path.read_text().strip())
        del record["result"]["core"]
        store.path.write_text(json.dumps(record) + "\n")
        reopened = ResultStore(store.root)
        assert reopened.get("eon", Scale.QUICK.accesses, BASE) is None
        assert reopened.quarantined == 1

    def test_foreign_schema_ignored_not_quarantined(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        record = json.loads(store.path.read_text().strip())
        record["schema"] = SCHEMA_VERSION + 1
        store.path.write_text(json.dumps(record) + "\n")
        reopened = ResultStore(store.root)
        assert reopened.get("eon", Scale.QUICK.accesses, BASE) is None
        assert reopened.stale == 1
        assert reopened.quarantined == 0


class TestActiveStore:
    def test_simulate_writes_through_and_resumes(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        clear_cache()
        with store_mod.use_store(store):
            first = simulate("eon", BASE, Scale.QUICK)
            assert len(store) == 1
            # a fresh process is simulated by clearing the in-memory cache:
            clear_cache()
            executions = []
            from repro.sim import runner

            real = runner._execute
            monkeypatch.setattr(
                runner, "_execute", lambda *a, **k: executions.append(1) or real(*a, **k)
            )
            resumed = simulate("eon", BASE, Scale.QUICK)
            assert executions == []  # resumed from disk, not re-run
            assert resumed.to_dict() == first.to_dict()

    def test_no_store_env_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        assert store_mod.active_store() is not None
        monkeypatch.setenv("REPRO_NO_STORE", "1")
        assert store_mod.active_store() is None

    def test_store_dir_env_enables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        store = store_mod.active_store()
        assert store is not None
        assert store.root == tmp_path

    def test_corrupt_checkpoint_is_rerun(self, tmp_path, monkeypatch):
        """A corrupt store entry is quarantined and the job re-executed."""
        store = ResultStore(tmp_path)
        clear_cache()
        with store_mod.use_store(store):
            simulate("eon", BASE, Scale.QUICK)
        # corrupt the checkpoint on disk
        record = json.loads(store.path.read_text().strip())
        record["result"]["memory"]["l1_hits"] += 1  # breaks hits+misses==accesses
        store.path.write_text(json.dumps(record) + "\n")
        clear_cache()
        executions = []
        from repro.sim import runner

        real = runner._execute
        monkeypatch.setattr(
            runner, "_execute", lambda *a, **k: executions.append(1) or real(*a, **k)
        )
        with store_mod.use_store(ResultStore(tmp_path)):
            rerun = simulate("eon", BASE, Scale.QUICK)
        assert executions == [1]  # quarantined entry forced a real re-run
        rerun.validate()
