"""Trace-driven out-of-order core timing model.

The model walks the memory-access trace once, in program order, and
computes for every access its dispatch, issue, completion, and commit
times under the structural constraints of the paper's core (Table 1):

* **Frontend / dispatch**: instructions enter the window at
  ``min(issue_width, workload base ILP)`` per cycle.  Instruction-cache
  misses (modelled by the hierarchy) stall dispatch.
* **Window (RUU)**: instruction *i* cannot dispatch until instruction
  ``i - window`` has committed.  This is what bounds memory-level
  parallelism: once the window fills behind a long miss, the machine
  stalls — exactly the behaviour Section 5.1 describes.
* **LSQ**: at most ``lsq`` memory operations between dispatch and
  commit.
* **Load/store units**: memory operations issue at most
  ``ls_units`` per cycle.
* **Dependences**: an access whose address depends on an earlier
  load's data (``deps[i] = d``) cannot issue before that load
  completes — dependent misses serialize (pointer chasing).
* **Commit**: in order; a load commits when its data has returned,
  a store retires into the store buffer one cycle after issue.

The result is the classic "windowed" analytic OoO model: exact for the
mechanisms above, abstracting register-level scheduling, which is
sufficient (and standard) for studying cache/prefetcher trade-offs.

Hot-loop engineering notes
--------------------------
* The vectorised address split and every trace column are converted to
  plain Python lists once per run (``.tolist()``): per-element numpy
  scalar indexing plus ``int()`` conversion costs more than the whole
  rest of the loop body for hit-dominated workloads.
* The loop calls :meth:`~repro.memory.hierarchy.MemoryHierarchy.
  access_time` — the engine's float-returning fast path — so the
  common L1-hit access allocates nothing.
* Observation (progress heartbeats, the runtime sanitizer, custom
  taps) attaches through :mod:`repro.engine.probes`; the loop itself
  pays one integer compare per access and fires all probes at shared
  periodic marks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.engine.probes import CoreMark, Probe, resolve_probes
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.trace import Trace

__all__ = ["CoreParams", "CoreResult", "OutOfOrderCore"]


@dataclass(frozen=True)
class CoreParams:
    """Core parameters (defaults are the paper's Table 1)."""

    issue_width: int = 8
    window: int = 128  # RUU entries
    lsq: int = 128
    ls_units: int = 4
    #: pipeline depth charged once at the start of the run.
    frontend_depth: int = 10

    def __post_init__(self) -> None:
        if min(self.issue_width, self.window, self.lsq, self.ls_units) <= 0:
            raise ValueError("all core resources must be positive")


@dataclass
class CoreResult:
    """Timing outcome of one run."""

    instructions: int
    cycles: float
    accesses: int

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0


class OutOfOrderCore:
    """Runs a trace against a memory hierarchy and reports IPC."""

    def __init__(self, params: CoreParams = CoreParams()) -> None:
        self.params = params

    def run(
        self,
        trace: Trace,
        hierarchy: MemoryHierarchy,
        warmup: int = 0,
        progress: Optional[Callable[[int, int, float], None]] = None,
        progress_interval: int = 2048,
        sanitizer: Optional[object] = None,
        probes: Optional[Sequence[Probe]] = None,
    ) -> CoreResult:
        """Simulate the whole trace; returns the timing result.

        ``warmup`` accesses at the start train all state (caches,
        predictors, prefetchers) but are excluded from the reported
        instruction/cycle counts — the analogue of the paper skipping
        the first billion instructions.  The hierarchy accumulates its
        own statistics during the run; callers read them from
        ``hierarchy.stats`` (and snapshot/``since`` for warmup
        exclusion).

        Observation attaches through probes (:mod:`repro.engine.
        probes`).  ``progress`` and ``sanitizer`` are convenience
        keywords wrapped into :class:`~repro.engine.probes.
        ProgressProbe` / :class:`~repro.engine.probes.SanitizerProbe`;
        ``probes`` passes additional taps directly.  All probes fire at
        shared marks spaced by the smallest attached interval,
        progress-style hooks before checking ones; an uninstrumented
        run pays exactly one integer compare per access.  Probes'
        ``on_finalize`` is NOT called here — end-of-run hooks belong to
        the caller, after ``hierarchy.finalize()``.
        """
        params = self.params
        n = len(trace)
        if not 0 <= warmup < max(n, 1):
            raise ValueError(f"warmup ({warmup}) must be < trace length ({n})")
        if n == 0:
            return CoreResult(0, 0.0, 0)
        active_probes = resolve_probes(progress, progress_interval, sanitizer, probes)

        geometry = hierarchy.params.l1d
        blocks_arr, indices_arr, tags_arr = geometry.decompose_array(trace.addrs)
        max_dep = int(trace.deps.max()) if n else 0
        # One bulk conversion to Python scalars: list indexing yields
        # ready-to-use ints/bools, where numpy scalar indexing would
        # box a numpy scalar per element and need an int() call on
        # every use.
        blocks = blocks_arr.tolist()
        indices = indices_arr.tolist()
        tags = tags_arr.tolist()
        gaps = trace.gaps.tolist()
        deps = trace.deps.tolist()
        is_load = trace.is_load.tolist()
        pcs = trace.pcs.tolist()
        model_icache = hierarchy.params.model_icache
        access_time = hierarchy.access_time
        ifetch = hierarchy.instruction_fetch
        # The sequential-fetch filter (same instruction block as last
        # cycle -> no cache activity) is inlined here; the hierarchy
        # applies the identical check inside instruction_fetch, so the
        # two block trackers stay in lockstep.
        ifetch_offset_bits = hierarchy.params.l1i.offset_bits
        last_ifetch_block = hierarchy._last_ifetch_block

        dispatch_rate = min(float(params.issue_width), trace.base_ipc)
        commit_rate = float(params.issue_width)
        window = params.window
        lsq = params.lsq
        ls_interval = 1.0 / params.ls_units

        # Ring buffers sized to the maximum lookback any constraint
        # needs: the LSQ depth, and the longest dependence distance in
        # the trace (suite workloads use short distances, but imported
        # traces may not).
        ring = 1
        while ring < max(lsq, max_dep + 1, 512):
            ring <<= 1
        ring_mask = ring - 1
        completions = [0.0] * ring  # data-ready time per access
        commits = [0.0] * ring      # commit time per access

        # Window occupancy: (instruction number, commit time) of
        # in-flight memory accesses, in program order.
        rob: deque = deque()
        rob_append = rob.append
        rob_popleft = rob.popleft

        now_dispatch = float(params.frontend_depth)
        last_mem_issue = 0.0
        last_commit = 0.0
        instr_num = 0
        warmup_instr = 0
        warmup_commit = 0.0
        inv_commit_rate = 1.0 / commit_rate

        if active_probes:
            mark_interval = min(probe.interval for probe in active_probes)
            next_mark = mark_interval
        else:
            # The sentinel n + 1 never matches, so an uninstrumented
            # run pays exactly one integer compare per access.
            mark_interval = 0
            next_mark = n + 1

        for i in range(n):
            if i == warmup and warmup:
                warmup_instr = instr_num
                warmup_commit = last_commit
                hierarchy.mark_warmup_end()
            gap = gaps[i]
            instr_num += gap + 1

            # --- dispatch: frontend bandwidth + window occupancy ------
            now_dispatch += (gap + 1) / dispatch_rate
            window_floor = instr_num - window
            while rob and rob[0][0] <= window_floor:
                entry = rob_popleft()
                if entry[1] > now_dispatch:
                    now_dispatch = entry[1]
            if i >= lsq:
                lsq_release = commits[(i - lsq) & ring_mask]
                if lsq_release > now_dispatch:
                    now_dispatch = lsq_release

            if model_icache:
                pc = pcs[i]
                fetch_block = pc >> ifetch_offset_bits
                if fetch_block != last_ifetch_block:
                    last_ifetch_block = fetch_block
                    penalty = ifetch(now_dispatch, pc)
                    if penalty > 0.0:
                        now_dispatch += penalty

            # --- issue: LS-unit throughput + address dependence -------
            issue = now_dispatch
            if last_mem_issue + ls_interval > issue:
                issue = last_mem_issue + ls_interval
            dep = deps[i]
            if dep:
                data_ready = completions[(i - dep) & ring_mask]
                if data_ready > issue:
                    issue = data_ready
            last_mem_issue = issue

            # --- memory access ----------------------------------------
            load = is_load[i]
            completion = access_time(
                issue, indices[i], tags[i], blocks[i], not load, pcs[i]
            )
            if not load:
                # Stores retire into the store buffer; the cache/bus
                # work was performed above for state and bandwidth.
                completion = issue + 1.0
            completions[i & ring_mask] = completion

            # --- in-order commit --------------------------------------
            commit = last_commit + inv_commit_rate
            if completion > commit:
                commit = completion
            last_commit = commit
            commits[i & ring_mask] = commit
            rob_append((instr_num, commit))

            if i + 1 == next_mark:
                next_mark += mark_interval
                mark = CoreMark(i + 1, n, len(rob), window, last_commit, now_dispatch)
                for probe in active_probes:
                    probe.on_mark(mark, hierarchy)

        total_instructions = trace.instruction_count
        trailing = total_instructions - instr_num
        measured_instructions = total_instructions - warmup_instr
        cycles = last_commit + trailing / dispatch_rate - warmup_commit
        return CoreResult(measured_instructions, cycles, n - warmup)
