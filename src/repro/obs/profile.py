"""Opt-in per-job profiling hooks (``REPRO_PROFILE``).

When a campaign cell is slow the metrics say *which stage*; the
profiler says *which function*.  Two modes, selected by the
``REPRO_PROFILE`` environment variable (opt-in precisely because both
perturb timing — never enabled implicitly):

``cprofile``
    Wraps the job in :mod:`cProfile` and dumps a standard ``.prof``
    file per cell (load with ``pstats`` or ``snakeviz``).  High
    per-call overhead, exact call counts.
``interval``
    A sampling thread captures the worker's main-thread stack every
    ``REPRO_PROFILE_INTERVAL_MS`` milliseconds (default 10) and writes
    collapsed-stack lines (``a;b;c <count>`` — flamegraph-ready).  Low
    overhead, statistical.

Output lands next to the result store (``REPRO_PROFILE_DIR`` or
``<store dir>/profiles``), one file per job labelled by its campaign
key, and campaign summaries point at the directory.  Because the
setting travels through the environment, campaign workers (fork or
spawn) inherit it with no plumbing.
"""

from __future__ import annotations

import os
import re
import sys
import threading
from collections import Counter as _TallyCounter
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

__all__ = [
    "PROFILE_DIR_ENV",
    "PROFILE_ENV",
    "maybe_profile",
    "profile_dir",
    "profile_mode",
]

PROFILE_ENV = "REPRO_PROFILE"
PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"
PROFILE_INTERVAL_ENV = "REPRO_PROFILE_INTERVAL_MS"

_MODES = ("cprofile", "interval")
_OFF_VALUES = frozenset({"", "0", "off", "none", "no", "false"})


def profile_mode() -> Optional[str]:
    """The requested mode (``cprofile``/``interval``) or ``None``.

    An unrecognised value raises ``ValueError`` — a typo must not
    silently run unprofiled.
    """
    raw = os.environ.get(PROFILE_ENV, "").strip().lower()
    if raw in _OFF_VALUES:
        return None
    if raw not in _MODES:
        raise ValueError(
            f"{PROFILE_ENV}={raw!r}: expected one of {_MODES} (or unset)"
        )
    return raw


def profile_dir() -> Path:
    """Where profile files land: ``REPRO_PROFILE_DIR`` or next to the store.

    Campaign parents pin the resolved directory into
    ``REPRO_PROFILE_DIR`` before spawning workers: a worker runs with
    its store silenced, so without the pin its fallback would disagree
    with the parent's store-relative default.
    """
    env = os.environ.get(PROFILE_DIR_ENV)
    if env:
        return Path(env)
    from repro.sim.store import active_store, default_store_dir  # lazy: avoid cycle

    store = active_store()
    root = Path(store.root) if store is not None else default_store_dir()
    return root / "profiles"


def _safe_label(label: str) -> str:
    """Filesystem-safe version of a campaign job key."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label).strip("_") or "job"


class _IntervalSampler:
    """Background thread sampling the calling thread's stack."""

    def __init__(self, target_thread_id: int, interval_s: float) -> None:
        self._target = target_thread_id
        self._interval = interval_s
        self._stop = threading.Event()
        self._tally: "_TallyCounter[str]" = _TallyCounter()
        self.samples = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            frame = sys._current_frames().get(self._target)
            if frame is None:
                continue
            stack = []
            while frame is not None:
                code = frame.f_code
                stack.append(f"{code.co_name} ({code.co_filename}:{code.co_firstlineno})")
                frame = frame.f_back
            self._tally[";".join(reversed(stack))] += 1
            self.samples += 1

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def write(self, path: Path) -> None:
        with path.open("w", encoding="utf-8") as handle:
            for stack, count in self._tally.most_common():
                handle.write(f"{stack} {count}\n")


@contextmanager
def maybe_profile(
    label: str, out_dir: Union[None, str, Path] = None
) -> Iterator[Optional[Path]]:
    """Profile the body per ``REPRO_PROFILE``; yields the output path.

    Yields ``None`` when profiling is off (the common case — the
    disabled cost is one env read per *job*).  Output file name is the
    sanitised ``label`` plus ``.prof`` (cprofile) or ``.stacks``
    (interval).  Write failures are deliberately loud: a user who
    opted into profiling should never get silence.
    """
    mode = profile_mode()
    if mode is None:
        yield None
        return
    root = Path(out_dir) if out_dir is not None else profile_dir()
    root.mkdir(parents=True, exist_ok=True)
    if mode == "cprofile":
        import cProfile

        path = root / f"{_safe_label(label)}.prof"
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            yield path
        finally:
            profiler.disable()
            profiler.dump_stats(str(path))
    else:
        interval_ms = float(os.environ.get(PROFILE_INTERVAL_ENV, "10"))
        path = root / f"{_safe_label(label)}.stacks"
        sampler = _IntervalSampler(
            threading.get_ident(), max(interval_ms, 0.1) / 1000.0
        )
        sampler.start()
        try:
            yield path
        finally:
            sampler.stop()
            sampler.write(path)
