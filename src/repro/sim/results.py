"""Result containers for simulation runs.

``SimResult`` captures one (workload, configuration) run: the CPU
timing outcome, the hierarchy statistics (including the Figure 12
L2-access taxonomy), and the prefetcher's own counters.  ``SuiteResult``
aggregates per-benchmark results for one configuration across the suite
and computes the paper's suite-wide metrics (geometric-mean IPC and
improvement over a baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from repro.cpu.core import CoreResult
from repro.memory.hierarchy import HierarchyStats
from repro.util.stats import geometric_mean, percent_change

__all__ = ["SimResult", "SuiteResult"]


@dataclass
class SimResult:
    """Outcome of simulating one workload under one configuration."""

    workload: str
    config_label: str
    core: CoreResult
    memory: HierarchyStats
    prefetcher_name: str
    prefetcher_storage_bytes: int
    prefetcher_predictions: int

    @property
    def ipc(self) -> float:
        return self.core.ipc

    def improvement_over(self, baseline: "SimResult") -> float:
        """IPC improvement in percent relative to ``baseline``."""
        if baseline.workload != self.workload:
            raise ValueError(
                f"cannot compare {self.workload} against baseline "
                f"{baseline.workload}"
            )
        return percent_change(baseline.ipc, self.ipc)

    def summary(self) -> str:
        """One-line human-readable digest."""
        m = self.memory
        return (
            f"{self.workload:<10} {self.config_label:<10} ipc={self.ipc:6.3f} "
            f"l1mr={m.l1_miss_rate:6.2%} l2mr={m.l2_demand_miss_rate:6.2%} "
            f"pf={m.prefetches_issued}"
        )


@dataclass
class SuiteResult:
    """Per-benchmark results of one configuration over the whole suite."""

    config_label: str
    runs: Dict[str, SimResult]

    def ipc(self, workload: str) -> float:
        return self.runs[workload].ipc

    def geomean_ipc(self, order: Optional[Iterable[str]] = None) -> float:
        names = list(order) if order is not None else list(self.runs)
        return geometric_mean(self.runs[name].ipc for name in names)

    def improvements_over(self, baseline: "SuiteResult") -> Dict[str, float]:
        """Per-benchmark IPC improvement (%) over ``baseline``."""
        return {
            name: run.improvement_over(baseline.runs[name])
            for name, run in self.runs.items()
            if name in baseline.runs
        }

    def geomean_improvement(self, baseline: "SuiteResult") -> float:
        """Suite-wide improvement (%): geomean of per-benchmark IPC
        ratios, expressed as a percentage — the paper's headline metric."""
        ratios = [
            run.ipc / baseline.runs[name].ipc
            for name, run in self.runs.items()
            if name in baseline.runs
        ]
        return (geometric_mean(ratios) - 1.0) * 100.0

    def l2_breakdowns(self) -> Mapping[str, Mapping[str, float]]:
        """Figure 12 taxonomy per benchmark (fractions of original)."""
        return {
            name: run.memory.breakdown_vs_original() for name, run in self.runs.items()
        }
