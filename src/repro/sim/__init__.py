"""The simulation driver: wiring workloads, core, hierarchy, prefetchers.

:func:`repro.sim.runner.simulate` is the single entry point every
example, test, and experiment uses: give it a workload name (or a
:class:`~repro.workloads.trace.Trace`), a prefetcher factory, and a
machine configuration; it returns a :class:`repro.sim.results.SimResult`
with IPC, miss rates, the Figure 12 L2-access taxonomy, and prefetcher
statistics.  :mod:`repro.sim.sweep` runs labelled configuration
matrices over the suite with a process-level result cache (experiments
share baseline runs).
"""

from repro.sim.config import PREFETCHERS, SimulationConfig, prefetcher_factory
from repro.sim.parallel import experiment_configs, prewarm
from repro.sim.results import SimResult, SuiteResult
from repro.sim.runner import simulate, simulate_suite
from repro.sim.sweep import Sweep, improvement_table

__all__ = [
    "PREFETCHERS",
    "experiment_configs",
    "prewarm",
    "SimResult",
    "SimulationConfig",
    "SuiteResult",
    "Sweep",
    "improvement_table",
    "prefetcher_factory",
    "simulate",
    "simulate_suite",
]
