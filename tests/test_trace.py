"""Tests for the trace container (repro.workloads.trace)."""

import numpy as np
import pytest

from repro.workloads.trace import Scale, Trace


def make_trace(n=10, deps=None):
    return Trace(
        name="t",
        addrs=np.arange(n, dtype=np.uint64) * 32,
        pcs=np.full(n, 0x400000, dtype=np.uint64),
        is_load=np.ones(n, dtype=bool),
        gaps=np.full(n, 3, dtype=np.uint16),
        deps=(np.zeros(n, dtype=np.int32) if deps is None
              else np.asarray(deps, dtype=np.int32)),
    )


class TestValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                name="bad",
                addrs=np.zeros(3, dtype=np.uint64),
                pcs=np.zeros(2, dtype=np.uint64),
                is_load=np.ones(3, dtype=bool),
                gaps=np.zeros(3, dtype=np.uint16),
                deps=np.zeros(3, dtype=np.int32),
            )

    def test_dep_before_start_rejected(self):
        with pytest.raises(ValueError):
            make_trace(3, deps=[1, 0, 0])  # record 0 depends on record -1

    def test_valid_deps_accepted(self):
        trace = make_trace(3, deps=[0, 1, 2])
        assert len(trace) == 3

    def test_nonpositive_base_ipc_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                name="bad",
                addrs=np.zeros(1, dtype=np.uint64),
                pcs=np.zeros(1, dtype=np.uint64),
                is_load=np.ones(1, dtype=bool),
                gaps=np.zeros(1, dtype=np.uint16),
                deps=np.zeros(1, dtype=np.int32),
                base_ipc=0.0,
            )


class TestProperties:
    def test_instruction_count(self):
        trace = make_trace(10)
        assert trace.instruction_count == 10 + 30

    def test_describe(self):
        text = make_trace(10).describe()
        assert "t:" in text and "10" in text


class TestSlice:
    def test_slice_shortens(self):
        trace = make_trace(10)
        assert len(trace.slice(4)) == 4

    def test_slice_beyond_length_is_identity(self):
        trace = make_trace(5)
        assert trace.slice(100) is trace

    def test_slice_clamps_dangling_deps(self):
        trace = make_trace(6, deps=[0, 1, 1, 3, 1, 1])
        cut = trace.slice(4)
        # record 3 depended on record 0 (distance 3) - still valid;
        # nothing points before the cut.
        assert (cut.deps <= np.arange(4)).all()

    def test_scale_enum(self):
        assert Scale.QUICK.accesses < Scale.STANDARD.accesses < Scale.FULL.accesses
