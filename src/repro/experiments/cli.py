"""``repro-tcp``: the command-line front end for the reproduction.

Examples
--------
List everything::

    repro-tcp list

Regenerate one figure at the standard scale::

    repro-tcp run fig11

Regenerate the whole evaluation at full scale (what EXPERIMENTS.md
records)::

    repro-tcp run all --scale full

Simulate one benchmark under one prefetcher::

    repro-tcp simulate swim --prefetcher tcp-8k --scale quick
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.sim import PREFETCHERS, SimulationConfig, simulate
from repro.workloads import BENCHMARK_ORDER, SUITE, Scale

__all__ = ["main"]


def _parse_scale(text: str) -> Scale:
    try:
        return Scale[text.upper()]
    except KeyError:
        raise argparse.ArgumentTypeError(
            f"unknown scale {text!r}; choose from "
            + ", ".join(s.name.lower() for s in Scale)
        )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tcp",
        description="Reproduction of 'TCP: Tag Correlating Prefetchers' (HPCA 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser("list", help="list experiments, benchmarks, prefetchers")
    listing.set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="regenerate a paper table/figure")
    run.add_argument("experiment", help="fig1..fig15, table1, or 'all'")
    run.add_argument("--scale", type=_parse_scale, default=Scale.STANDARD,
                     help="quick | standard | full (default standard)")
    run.add_argument("--benchmarks", nargs="*", default=None,
                     help="subset of benchmarks (default: whole suite)")
    run.add_argument("--jobs", type=int, default=1,
                     help="parallel workers to pre-warm simulations (0 = cpus)")
    run.set_defaults(func=_cmd_run)

    simulate_cmd = sub.add_parser("simulate", help="simulate one benchmark")
    simulate_cmd.add_argument("benchmark", choices=sorted(SUITE))
    simulate_cmd.add_argument("--prefetcher", default="none",
                              choices=sorted(PREFETCHERS))
    simulate_cmd.add_argument("--scale", type=_parse_scale, default=Scale.STANDARD)
    simulate_cmd.set_defaults(func=_cmd_simulate)

    trace_cmd = sub.add_parser(
        "trace", help="export a benchmark's memory trace to a .npz file"
    )
    trace_cmd.add_argument("benchmark", choices=sorted(SUITE))
    trace_cmd.add_argument("--scale", type=_parse_scale, default=Scale.STANDARD)
    trace_cmd.add_argument("--output", default=None,
                           help="output path (default <benchmark>-<scale>.npz)")
    trace_cmd.set_defaults(func=_cmd_trace)
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("\nbenchmarks (paper's Figure 1 order):")
    for name in BENCHMARK_ORDER:
        print(f"  {name:10s} {SUITE[name].summary}")
    print("\nprefetchers:")
    for name in sorted(PREFETCHERS):
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names: List[str] = (
        list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    for name in names:
        if name not in EXPERIMENTS:
            print(f"error: unknown experiment {name!r}", file=sys.stderr)
            return 2
    if args.jobs != 1:
        from repro.sim import prewarm

        started = time.time()
        executed = prewarm(scale=args.scale, benchmarks=args.benchmarks,
                           jobs=args.jobs)
        print(f"pre-warmed {executed} simulations in "
              f"{time.time() - started:.1f}s with jobs={args.jobs}\n")
    for name in names:
        started = time.time()
        result = run_experiment(name, scale=args.scale, benchmarks=args.benchmarks)
        print(result.render())
        print(f"  ({time.time() - started:.1f}s at scale={args.scale.name.lower()})\n")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    base = simulate(args.benchmark, SimulationConfig.baseline(), args.scale)
    config = SimulationConfig.for_prefetcher(args.prefetcher)
    result = simulate(args.benchmark, config, args.scale)
    print(base.summary())
    print(result.summary())
    if args.prefetcher != "none":
        print(f"IPC improvement over baseline: {result.improvement_over(base):+.1f}%")
        breakdown = result.memory.breakdown_vs_original()
        print(
            "L2 access taxonomy: "
            + ", ".join(f"{key}={value:.1%}" for key, value in breakdown.items())
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workloads import generate, save_trace

    trace = generate(args.benchmark, args.scale)
    output = args.output or f"{args.benchmark}-{args.scale.name.lower()}.npz"
    path = save_trace(trace, output)
    print(f"wrote {path} ({trace.describe()})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (console script ``repro-tcp``)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
