"""Tests for repro.memory.bus.Bus (occupancy model)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.bus import Bus


class TestBeats:
    def test_exact_multiple(self):
        assert Bus("b", 32).beats(64) == 2

    def test_rounds_up(self):
        assert Bus("b", 32).beats(33) == 2

    def test_command_takes_one_beat(self):
        assert Bus("b", 32).beats(0) == 1

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            Bus("b", 0)


class TestRequest:
    def test_idle_bus_starts_immediately(self):
        bus = Bus("b", 32)
        assert bus.request(10.0, 32) == 10.0
        assert bus.next_free == 11.0

    def test_back_to_back_queues(self):
        bus = Bus("b", 32)
        bus.request(10.0, 64)          # occupies [10, 12)
        start = bus.request(10.5, 32)  # must wait
        assert start == 12.0
        assert bus.queued_cycles == pytest.approx(1.5)

    def test_gap_leaves_idle_time(self):
        bus = Bus("b", 32)
        bus.request(0.0, 32)
        start = bus.request(100.0, 32)
        assert start == 100.0

    def test_busy_cycles_accumulate(self):
        bus = Bus("b", 32)
        bus.request(0.0, 64)
        bus.request(0.0, 64)
        assert bus.busy_cycles == 4.0
        assert bus.transfers == 2

    def test_occupancy(self):
        bus = Bus("b", 32)
        bus.request(0.0, 64)
        assert bus.occupancy(8.0) == pytest.approx(0.25)
        assert bus.occupancy(0.0) == 0.0
        assert bus.occupancy(1.0) == 1.0  # clamped

    def test_reset(self):
        bus = Bus("b", 32)
        bus.request(0.0, 64)
        bus.reset()
        assert bus.next_free == 0.0
        assert bus.busy_cycles == 0.0
        assert bus.transfers == 0

    @given(st.lists(st.tuples(st.floats(0, 1000), st.integers(0, 256)), max_size=50))
    def test_start_times_never_overlap(self, requests):
        bus = Bus("b", 16)
        intervals = []
        for now, payload in requests:
            start = bus.request(now, payload)
            assert start >= now
            end = start + bus.beats(payload)
            intervals.append((start, end))
        intervals.sort()
        for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1  # transfers are serialized
