"""Trace persistence: save and load traces as ``.npz`` files.

Downstream users of the simulator often want to run the same trace
through many configurations, hand traces between machines, or feed in
traces captured from real programs (e.g. converted Pin/Valgrind logs).
This module defines the on-disk format:

* a compressed numpy ``.npz`` archive with the five trace arrays
  (``addrs``, ``pcs``, ``is_load``, ``gaps``, ``deps``);
* a JSON-encoded metadata entry (``meta``) carrying the trace name,
  its ILP parameter, and a format version for forward compatibility.

``save_trace``/``load_trace`` round-trip exactly; ``load_trace``
validates the arrays through the normal :class:`Trace` constructor, so
corrupt or inconsistent files fail loudly rather than simulating
garbage.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.workloads.trace import Trace

__all__ = ["FORMAT_VERSION", "load_trace", "save_trace"]

#: bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1

_REQUIRED_KEYS = ("addrs", "pcs", "is_load", "gaps", "deps", "meta")


def save_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` (``.npz`` appended if missing).

    Returns the path actually written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = json.dumps(
        {
            "version": FORMAT_VERSION,
            "name": trace.name,
            "base_ipc": trace.base_ipc,
            "accesses": len(trace),
            "instructions": trace.instruction_count,
        }
    )
    np.savez_compressed(
        path,
        addrs=trace.addrs,
        pcs=trace.pcs,
        is_load=trace.is_load,
        gaps=trace.gaps,
        deps=trace.deps,
        meta=np.frombuffer(meta.encode("utf-8"), dtype=np.uint8),
    )
    return path


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises :class:`ValueError` on missing arrays, version mismatch, or
    any inconsistency the :class:`Trace` constructor detects.
    """
    path = Path(path)
    with np.load(path) as archive:
        missing = [key for key in _REQUIRED_KEYS if key not in archive.files]
        if missing:
            raise ValueError(f"{path} is not a trace file (missing {missing})")
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        version = meta.get("version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{path} has trace-format version {version}; this library "
                f"reads version {FORMAT_VERSION}"
            )
        trace = Trace(
            name=str(meta["name"]),
            addrs=archive["addrs"].astype(np.uint64),
            pcs=archive["pcs"].astype(np.uint64),
            is_load=archive["is_load"].astype(bool),
            gaps=archive["gaps"].astype(np.uint16),
            deps=archive["deps"].astype(np.int32),
            base_ipc=float(meta["base_ipc"]),
        )
    declared = meta.get("accesses")
    if declared is not None and declared != len(trace):
        raise ValueError(
            f"{path} declares {declared} accesses but contains {len(trace)}"
        )
    return trace
