"""Dead-Block Correlating Prefetcher (Lai, Fide & Falsafi, ISCA 2001).

This is the paper's primary comparator: Figure 11 pits an 8 KB TCP
against a DBCP with a **2 MB** correlation table and shows TCP winning
(≈14% vs ≈7% suite-wide IPC improvement).

DBCP mechanics, as reproduced here:

* Every L1 cache block accumulates a *reference-trace signature* while
  resident: a truncated addition of the block address and the PCs of
  all memory instructions that touch it (the same truncated-add
  encoding the paper borrows for TCP's PHT index, Figure 9).
* When the block is evicted, its final signature is its *death
  signature*.  The correlation table learns
  ``death_signature -> block that missed next in this set`` — i.e.
  which block to fetch once this one dies.
* On every access, the block's running signature is checked against
  the table.  A match means "this block has now received the same
  reference trace that preceded its death last time": the block is
  predicted dead and the correlated successor is prefetched (into L2,
  the placement this paper uses for all its prefetchers, Figure 10).

The critical-miss filter of the original paper is intentionally NOT
implemented, matching Section 5.1: "this filter is not incorporated in
either DBCP or TCP".

Storage accounting: with the default geometry the table holds 2 MB of
(signature-tag, successor) pairs, plus the per-frame signature
registers, so the Figure 11 budget comparison (8 KB vs 2 MB) is honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.prefetchers.base import (
    AccessEvent,
    EvictionEvent,
    MissEvent,
    Prefetcher,
    PrefetchRequest,
)
from repro.util.bitops import is_power_of_two, mask
from repro.util.lruset import LRUSet

__all__ = ["DBCPConfig", "DeadBlockCorrelatingPrefetcher"]


@dataclass(frozen=True)
class DBCPConfig:
    """Correlation-table geometry (defaults give the paper's 2 MB)."""

    sets: int = 32768
    ways: int = 8
    #: truncated-add signature width in bits.
    signature_bits: int = 24
    #: bytes per entry: signature tag (3) + successor block address (5).
    entry_bytes: int = 8

    def __post_init__(self) -> None:
        if not is_power_of_two(self.sets):
            raise ValueError(f"table set count must be a power of two, got {self.sets}")
        if self.signature_bits <= 0:
            raise ValueError("signature width must be positive")

    @property
    def entries(self) -> int:
        return self.sets * self.ways


class DeadBlockCorrelatingPrefetcher(Prefetcher):
    """PC-trace + address correlating prefetcher with death prediction."""

    needs_access_stream = True
    needs_eviction_stream = True

    def __init__(self, config: DBCPConfig = DBCPConfig()) -> None:
        super().__init__("dbcp")
        self.config = config
        self._sig_mask = mask(config.signature_bits)
        self._table: List[LRUSet[int, int]] = [
            LRUSet(config.ways) for _ in range(config.sets)
        ]
        #: running signature of each resident L1 block, keyed by block number.
        self._live_signatures: Dict[int, int] = {}
        #: death signature waiting to learn its successor (set on
        #: eviction, consumed by the very next miss event).
        self._pending_death_signature: Optional[int] = None
        self.dead_predictions = 0

    # ------------------------------------------------------------------
    # Signature plumbing
    # ------------------------------------------------------------------

    def _probe(self, signature: int) -> Optional[int]:
        """Look up a death signature; return the correlated successor."""
        lru = self._table[signature & (self.config.sets - 1)]
        return lru.get(signature >> (self.config.sets.bit_length() - 1))

    def _learn(self, signature: int, successor: int) -> None:
        """Store ``death_signature -> successor block``."""
        lru = self._table[signature & (self.config.sets - 1)]
        lru.put(signature >> (self.config.sets.bit_length() - 1), successor)

    def observe_access(self, access: AccessEvent) -> List[PrefetchRequest]:
        """Accumulate the block's PC trace; predict death on a match."""
        sig_mask = self._sig_mask
        signatures = self._live_signatures
        if access.hit:
            signature = (signatures.get(access.block, access.block) + access.pc) & sig_mask
        else:
            # The fill that follows this miss starts a fresh trace.
            signature = (access.block + access.pc) & sig_mask
        signatures[access.block] = signature

        successor = self._probe(signature)
        if successor is None or successor == access.block:
            return []
        self.dead_predictions += 1
        self.stats.predictions += 1
        return [PrefetchRequest(successor)]

    def observe_eviction(self, evt: EvictionEvent) -> None:
        """The victim's final signature becomes a pending death signature."""
        signature = self._live_signatures.pop(evt.block, None)
        if signature is not None:
            self._pending_death_signature = signature

    def observe_miss(self, miss: MissEvent) -> List[PrefetchRequest]:
        """Learn ``pending death signature -> this miss`` (no prediction here;
        predictions ride on the access stream)."""
        self.stats.lookups += 1
        if self._pending_death_signature is not None:
            self._learn(self._pending_death_signature, miss.block)
            self._pending_death_signature = None
            self.stats.updates += 1
        return []

    def storage_bytes(self) -> int:
        return self.config.entries * self.config.entry_bytes

    def reset(self) -> None:
        super().reset()
        for lru in self._table:
            lru.clear()
        self._live_signatures.clear()
        self._pending_death_signature = None
        self.dead_predictions = 0
