"""Regenerate Figure 7: 3-tag sequence sharing across cache sets."""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig07_sequence_spread(benchmark, scale, strict):
    result = run_once(benchmark, run_experiment, "fig7", scale)
    print()
    print(result.render())

    spread = result.series["sets_per_sequence"]
    per_set = result.series["occurrences_per_sequence_set"]
    assert all(1.0 <= value <= 1024.0 for value in spread.values())
    assert all(value >= 1.0 for value in per_set.values())
    if strict:
        # The paper's key number: swim's sequences appear in hundreds of
        # sets (264 of 1024) — one PHT entry serves them all.
        assert spread["swim"] > 50
        # Pointer chases give each set private history: sequences stay
        # confined to very few sets.
        assert spread["mcf"] < 4
        assert spread["swim"] > 10 * spread["mcf"]
