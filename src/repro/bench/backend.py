"""The backend benchmark: pit simulation backends against each other.

For every (workload, prefetcher) pair the benchmark runs the same
trace twice — once under the ``python`` reference backend and once
under the ``numpy`` batch-stepping backend — each on a cold machine,
taking the best of ``repeats`` timed runs.  Both backends must commit
exactly the same cycles and hierarchy statistics (enforced here and by
``benchmarks/test_backend_perf.py``); their throughput ratio is the
backend layer's speedup.  Like the hot-path bench, the ratio compares
two arms timed on the same interpreter and host, so it is comparable
across machines even though raw accesses/sec are not.

Methodology notes:

* Arms share one trace object, so the numpy backend's per-trace plane
  cache (:mod:`repro.backend.vector.engine`) is warm after the first
  repeat — the reported number is steady-state throughput, matching
  how campaigns re-simulate one trace under many configurations.
* Each cell records the numpy engine's batch coverage (the fraction of
  accesses stepped in batches).  Coverage is the speedup's ceiling:
  accesses outside a batch run through the scalar epilogue, which is
  flattened but still interpreted per access.

The result is written to ``BENCH_backend.json``; the committed copy at
the repository root is the baseline the CI backend-parity job compares
against.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from repro.backend import get_backend
from repro.memory import MemoryHierarchy
from repro.sim.config import SimulationConfig
from repro.workloads import Scale, Trace, generate

__all__ = [
    "DEFAULT_PREFETCHERS",
    "DEFAULT_WORKLOADS",
    "SCHEMA",
    "run_backend_bench",
]

#: schema tag embedded in every result file (bump on layout changes).
SCHEMA = "repro-tcp/backend-bench/v1"

#: the fig11-mix defaults, matching the hot-path bench: a dense-stride
#: scientific workload, a pointer-chasing memory-bound one, and an
#: irregular instruction-heavy one, each under no prefetcher, the
#: next-line baseline, and the paper's TCP-8K.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("swim", "mcf", "gcc")
DEFAULT_PREFETCHERS: Tuple[str, ...] = ("none", "nextline", "tcp-8k")


def _time_backend(
    backend_name: str, trace: Trace, config: SimulationConfig
):
    """One cold run under ``backend_name``; returns (seconds, result,
    hierarchy, engine_stats)."""
    backend = get_backend(backend_name)
    hierarchy = MemoryHierarchy(config.hierarchy)
    hierarchy.attach_prefetcher(config.build_prefetcher())
    started = time.perf_counter()
    result = backend.run(trace, hierarchy, config.core)
    elapsed = time.perf_counter() - started
    stats = dict(getattr(backend, "last_engine_stats", None) or {})
    return elapsed, result, hierarchy, stats


def _best_of(runs: int, backend_name: str, trace: Trace, config: SimulationConfig):
    """Fastest of ``runs`` cold runs (best-of, not mean-of: scheduling
    noise only ever adds time)."""
    best = float("inf")
    result = hierarchy = None
    stats: Dict[str, object] = {}
    for _ in range(runs):
        elapsed, result, hierarchy, stats = _time_backend(
            backend_name, trace, config
        )
        if elapsed < best:
            best = elapsed
    return best, result, hierarchy, stats


def _geomean(values: Sequence[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0


def run_backend_bench(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    prefetchers: Sequence[str] = DEFAULT_PREFETCHERS,
    scale: Scale = Scale.STANDARD,
    repeats: int = 3,
    baseline: str = "python",
    contender: str = "numpy",
    output: Optional[str] = None,
    log: Optional[TextIO] = None,
) -> Dict[str, object]:
    """Run the backend benchmark; return (and optionally write) results.

    Parameters
    ----------
    workloads, prefetchers:
        The (workload, prefetcher) grid to time.
    scale:
        Trace length per run (``Scale.STANDARD`` = 120 000 accesses).
    repeats:
        Timed runs per cell per backend; the fastest is reported.
    baseline, contender:
        Backend names to pit against each other (defaults: the
        ``python`` reference vs the ``numpy`` batch engine).
    output:
        Path to write the JSON document to (``BENCH_backend.json``).
    log:
        Stream for one progress line per cell (e.g. ``sys.stdout``).
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    results: List[Dict[str, object]] = []
    for workload in workloads:
        trace = generate(workload, scale)
        accesses = len(trace)
        for name in prefetchers:
            config = SimulationConfig.for_prefetcher(name)
            base_s, base_res, base_hier, _ = _best_of(
                repeats, baseline, trace, config
            )
            cont_s, cont_res, cont_hier, engine_stats = _best_of(
                repeats, contender, trace, config
            )
            if base_res.cycles != cont_res.cycles:
                raise RuntimeError(
                    f"backend divergence on {workload}/{name}: {baseline} "
                    f"committed {base_res.cycles!r} cycles, {contender} "
                    f"{cont_res.cycles!r}"
                )
            if base_hier.stats != cont_hier.stats:
                raise RuntimeError(
                    f"backend divergence on {workload}/{name}: hierarchy "
                    f"statistics differ between {baseline} and {contender}"
                )
            batched = engine_stats.get("batched_accesses")
            coverage = (
                batched / accesses if isinstance(batched, int) else None
            )
            entry: Dict[str, object] = {
                "workload": workload,
                "prefetcher": name,
                "accesses": accesses,
                f"{baseline}_accesses_per_sec": accesses / base_s,
                f"{contender}_accesses_per_sec": accesses / cont_s,
                "speedup": base_s / cont_s,
                "batch_coverage": coverage,
                "fallback": engine_stats.get("fallback"),
                "cycles": base_res.cycles,
            }
            results.append(entry)
            if log is not None:
                cov = f"{coverage:.0%}" if coverage is not None else "n/a"
                log.write(
                    f"{workload:8s} {name:10s} "
                    f"{entry[f'{contender}_accesses_per_sec']:10.0f} acc/s  "
                    f"({baseline} {entry[f'{baseline}_accesses_per_sec']:10.0f}, "
                    f"speedup {entry['speedup']:.2f}x, batched {cov})\n"
                )
                log.flush()

    speedups = [entry["speedup"] for entry in results]
    document: Dict[str, object] = {
        "schema": SCHEMA,
        "scale": scale.name.lower(),
        "repeats": repeats,
        "baseline_backend": baseline,
        "contender_backend": contender,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "results": results,
        "geomean_speedup": _geomean(speedups),
        "min_speedup": min(speedups) if speedups else 0.0,
    }
    if output is not None:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=False)
            handle.write("\n")
    return document
