"""Tests for repro.util.tables (ASCII rendering)."""

import pytest

from repro.util.tables import format_barchart, format_table


class TestFormatTable:
    def test_headers_and_rows_present(self):
        text = format_table(["name", "value"], [["alpha", 1], ["beta", 22]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "alpha" in text and "22" in text

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_numeric_right_alignment(self):
        text = format_table(["n"], [[1], [1000]])
        lines = text.splitlines()
        # the short number is right-aligned to the column width
        assert lines[-2].endswith("1")
        assert lines[-1].endswith("1,000")

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159]])
        assert "3.142" in text

    def test_nan_rendering(self):
        text = format_table(["x"], [[float("nan")]])
        assert "nan" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestFormatBarchart:
    def test_bars_scale_to_max(self):
        text = format_barchart({"big": 10.0, "small": 5.0}, width=20)
        lines = text.splitlines()
        big_bar = lines[0].count("#")
        small_bar = lines[1].count("#")
        assert big_bar == 20
        assert small_bar == 10

    def test_negative_values_use_minus_bars(self):
        text = format_barchart({"down": -4.0, "up": 8.0}, width=10)
        down_line = [l for l in text.splitlines() if l.startswith("down")][0]
        assert "-" * 5 in down_line

    def test_empty_series(self):
        assert "(no data)" in format_barchart({})

    def test_title_first(self):
        text = format_barchart({"x": 1.0}, title="Chart")
        assert text.splitlines()[0] == "Chart"

    def test_zero_only_series(self):
        text = format_barchart({"x": 0.0})
        assert "x" in text

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            format_barchart({"x": 1.0}, width=0)

    def test_values_printed(self):
        text = format_barchart({"x": 12.345}, unit="%")
        assert "12.345%" in text
