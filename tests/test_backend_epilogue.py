"""Scalar-epilogue edge cases, differential across every backend.

The numpy and native backends share one epilogue specification — the
inlined miss path (MSHR, L2, buses, prefetch issue) plus the TCP fast
path (THT running sums, PHT truncated-add indexing).  These tests aim
adversarial traces at the three mechanisms most likely to diverge
between the Python and C transcriptions of that specification:

* the MSHR's lazy-deletion ready heap under merge storms — repeated
  same-block misses merging into in-flight entries while a tiny MSHR
  forces full-stall reaping of stale heap entries;
* the THT running-sum update at history length ``k`` — the sum is
  maintained incrementally (``sum - oldest + newest``) and must stay
  exact as tags rotate out of the window, for any ``k``;
* PHT truncated-add collisions — a tiny PHT where distinct tag
  sequences alias onto the same set, exercising eviction, successor
  MRU rotation, and collision-polluted predictions.

Each test also asserts the targeted machinery actually engaged on the
reference run, so a regression that silently bypasses the mechanism
(rather than diverging on it) still fails.
"""

import warnings

import numpy as np
import pytest

from repro.backend import get_backend
from repro.backend.native import build as native_build
from repro.core.pht import PHTConfig
from repro.core.tcp import TCPConfig, TagCorrelatingPrefetcher
from repro.cpu.core import CoreParams
from repro.memory import MemoryHierarchy
from repro.memory.hierarchy import HierarchyParams
from repro.sim.config import SimulationConfig
from repro.workloads import Trace

CONTENDERS = ("numpy", "native")


def _require(contender: str) -> None:
    if contender == "native" and native_build.load() is None:
        pytest.skip(f"native extension unavailable ({native_build.load_error()})")


def _trace(addrs, pcs=None, loads=None, gaps=None, deps=None, name="edge"):
    n = len(addrs)
    return Trace(
        name=name,
        addrs=np.asarray(addrs, dtype=np.uint64),
        pcs=(
            np.asarray(pcs, dtype=np.uint64)
            if pcs is not None
            else np.zeros(n, dtype=np.uint64)
        ),
        is_load=(
            np.asarray(loads, dtype=bool)
            if loads is not None
            else np.ones(n, dtype=bool)
        ),
        gaps=(
            np.asarray(gaps, dtype=np.int64)
            if gaps is not None
            else np.zeros(n, dtype=np.int64)
        ),
        deps=(
            np.asarray(deps, dtype=np.int64)
            if deps is not None
            else np.zeros(n, dtype=np.int64)
        ),
    )


def _run(backend_name, trace, hierarchy_params, make_prefetcher, params=None):
    machine = MemoryHierarchy(hierarchy_params)
    machine.attach_prefetcher(make_prefetcher())
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = get_backend(backend_name).run(
            trace, machine, params or CoreParams()
        )
    return result, machine


def _assert_parity(contender, trace, hierarchy_params, make_prefetcher,
                   params=None):
    """Run reference + contender; return the reference machine (for
    engagement assertions)."""
    ref, ref_machine = _run(
        "python", trace, hierarchy_params, make_prefetcher, params
    )
    new, new_machine = _run(
        contender, trace, hierarchy_params, make_prefetcher, params
    )
    assert new == ref
    assert new_machine.stats == ref_machine.stats
    return ref_machine


def _null_prefetcher():
    config = SimulationConfig.for_prefetcher("none")
    return config.build_prefetcher()


def _nextline_prefetcher():
    config = SimulationConfig.for_prefetcher("nextline")
    return config.build_prefetcher()


class TestMSHRMergeStorms:
    """The lazy-deletion ready heap: stale entries accumulate as blocks
    are merged into and deleted from the MSHR dict; a full MSHR must
    reap them in exactly the reference order."""

    @pytest.mark.parametrize("contender", CONTENDERS)
    @pytest.mark.parametrize("mshr_entries", (2, 3, 4))
    def test_merge_storm_with_tiny_mshr(self, contender, mshr_entries):
        _require(contender)
        # Same-set tag ping-pong: each fill conflict-evicts the other
        # tag, which re-misses while its original fetch is still in
        # flight — an MSHR merge (the MSHR is keyed by L1 block).
        # Every non-merged miss acquires an entry, so a tiny MSHR also
        # full-stalls and reaps, leaving dict deletions ahead of lazy
        # heap deletions.
        rng = np.random.default_rng(11)
        n = 3000
        sets = rng.integers(0, 4, n).astype(np.uint64)
        tags = rng.integers(0, 2, n).astype(np.uint64)
        addrs = (tags << np.uint64(15)) | (sets << np.uint64(5))
        trace = _trace(addrs, gaps=np.zeros(n, dtype=np.int64))
        hp = HierarchyParams(mshr_entries=mshr_entries)
        machine = _assert_parity(contender, trace, hp, _null_prefetcher)
        assert machine.stats.mshr_merges > 0
        assert machine.stats.mshr_full_stalls > 0

    @pytest.mark.parametrize("contender", CONTENDERS)
    def test_merge_storm_with_prefetch_traffic(self, contender):
        """Prefetch fills race demand misses for the same blocks while
        the MSHR thrashes — in-flight prefetch expiry and MSHR reaping
        interleave."""
        _require(contender)
        rng = np.random.default_rng(13)
        n = 4000
        sets = rng.integers(0, 16, n).astype(np.uint64)
        tags = rng.integers(0, 2, n).astype(np.uint64)
        addrs = (tags << np.uint64(15)) | (sets << np.uint64(5))
        trace = _trace(addrs)
        hp = HierarchyParams(mshr_entries=2, max_outstanding_prefetches=4)
        machine = _assert_parity(contender, trace, hp, _nextline_prefetcher)
        assert machine.stats.mshr_merges > 0
        assert machine.stats.mshr_full_stalls > 0
        assert machine.stats.prefetches_issued > 0


def _tcp_prefetcher(history_length, pht_sets=256, pht_ways=8):
    def make():
        pht = PHTConfig(sets=pht_sets, ways=pht_ways, miss_index_bits=0)
        return TagCorrelatingPrefetcher(
            TCPConfig(history_length=history_length, pht=pht)
        )

    return make


def _tag_rotation_trace(n_tags, n=4000, sets=3):
    """Misses rotating through ``n_tags`` distinct L1 tags over a few
    sets: every miss pushes a tag out of the THT window, so the
    running sum is exercised at each length-``k`` boundary."""
    i = np.arange(n, dtype=np.uint64)
    tag = (i * np.uint64(7)) % np.uint64(n_tags)
    index = i % np.uint64(sets)
    # L1 is 32 KB direct-mapped, 32 B blocks: 1024 sets, tag above bit 15.
    addrs = (tag << np.uint64(15)) | (index << np.uint64(5))
    return _trace(addrs, gaps=np.full(n, 1, dtype=np.int64))


class TestTHTRunningSum:
    """The incremental THT row sum must stay exact while tags rotate
    through the length-``k`` history window."""

    @pytest.mark.parametrize("contender", CONTENDERS)
    @pytest.mark.parametrize("history_length", (1, 2, 4, 7))
    def test_rotation_at_history_length_k(self, contender, history_length):
        _require(contender)
        trace = _tag_rotation_trace(n_tags=max(history_length + 1, 5))
        machine = _assert_parity(
            contender,
            trace,
            HierarchyParams(),
            _tcp_prefetcher(history_length),
        )
        prefetcher = machine.prefetcher
        assert prefetcher.stats.updates > 0
        assert prefetcher.stats.predictions > 0

    @pytest.mark.parametrize("contender", CONTENDERS)
    def test_repeating_pair_saturates_window(self, contender):
        """Exactly k distinct tags cycling: after warmup every push
        re-inserts a tag that just left the window — the running sum
        must land back on the same value, never drift."""
        _require(contender)
        trace = _tag_rotation_trace(n_tags=2, n=3000, sets=1)
        machine = _assert_parity(
            contender, trace, HierarchyParams(), _tcp_prefetcher(2)
        )
        assert machine.prefetcher.stats.predictions > 0


class TestPHTTruncatedAdd:
    """Truncated-add indexing into a deliberately tiny PHT: distinct
    sequences alias onto the same set, forcing evictions, successor
    rotation, and collision-polluted predictions — all of which must
    stay bit-identical."""

    @pytest.mark.parametrize("contender", CONTENDERS)
    @pytest.mark.parametrize("pht_sets,pht_ways", ((2, 2), (4, 1), (8, 4)))
    def test_collisions_in_tiny_pht(self, contender, pht_sets, pht_ways):
        _require(contender)
        rng = np.random.default_rng(17)
        n = 4000
        tag = rng.integers(0, 40, n).astype(np.uint64)
        index = rng.integers(0, 4, n).astype(np.uint64)
        addrs = (tag << np.uint64(15)) | (index << np.uint64(5))
        trace = _trace(addrs, gaps=np.full(n, 1, dtype=np.int64))
        machine = _assert_parity(
            contender,
            trace,
            HierarchyParams(),
            _tcp_prefetcher(2, pht_sets=pht_sets, pht_ways=pht_ways),
        )
        prefetcher = machine.prefetcher
        assert prefetcher.stats.updates > 0
        assert prefetcher.stats.predictions > 0

    @pytest.mark.parametrize("contender", CONTENDERS)
    def test_colliding_sums_same_set(self, contender):
        """Tag pairs chosen so different sequences share a truncated
        sum modulo the set count: successor lists for distinct
        sequences interleave in one PHT set."""
        _require(contender)
        # With sets=2, sequences whose tag-sums differ by 2 collide.
        pattern = np.array([1, 3, 5, 7, 2, 4, 6, 8], dtype=np.uint64)
        tag = np.tile(pattern, 500)
        addrs = (tag << np.uint64(15)) | (np.uint64(1) << np.uint64(5))
        trace = _trace(addrs, gaps=np.ones(len(tag), dtype=np.int64))
        machine = _assert_parity(
            contender,
            trace,
            HierarchyParams(),
            _tcp_prefetcher(2, pht_sets=2, pht_ways=2),
        )
        assert machine.prefetcher.stats.predictions > 0
