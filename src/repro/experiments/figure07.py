"""Figure 7: 3-tag sequence spread across sets and recurrence per set.

The top graph is the paper's key observation: one tag sequence appears
in many different cache sets (swim averages 264 of 1024), so a shared
pattern table can serve all of them with a single entry — and a tag
sequence appearing in N sets implies N distinct address sequences that
an address-correlating prefetcher would each need an entry for.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, suite_order
from repro.experiments.section3 import profile
from repro.workloads import Scale

__all__ = ["run"]


def run(
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = suite_order(benchmarks)
    rows = []
    series = {"sets_per_sequence": {}, "occurrences_per_sequence_set": {}}
    for name in names:
        stats = profile(name, scale).sequences
        series["sets_per_sequence"][name] = stats.mean_sets_per_sequence
        series["occurrences_per_sequence_set"][name] = (
            stats.mean_occurrences_per_sequence_set
        )
        rows.append(
            [
                name,
                stats.mean_sets_per_sequence,
                stats.mean_occurrences_per_sequence_set,
            ]
        )
    spread = series["sets_per_sequence"]
    widest = max(spread, key=spread.get)  # type: ignore[arg-type]
    notes = [
        f"Widest sequence sharing: {widest} ({spread[widest]:.1f} sets per "
        "sequence).  Sequences appearing in many sets are the space saving "
        "TCP-8K exploits; sequences confined to one set motivate TCP-8M.",
    ]
    return ExperimentResult(
        experiment="fig7",
        title="Mean sets per 3-tag sequence and appearances per (sequence, set)",
        headers=["benchmark", "mean sets/sequence", "mean occurrences/(sequence,set)"],
        rows=rows,
        series=series,
        notes=notes,
    )
