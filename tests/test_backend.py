"""The backend layer: selection, parity, and batch-boundary behaviour.

The backend contract (:mod:`repro.backend.base`) is strict
bit-identity: any backend, any configuration, same
:class:`~repro.sim.results.SimResult` and same hierarchy counters.
This module exercises the contract where it is most likely to break:

* selection precedence (config field > ``REPRO_BACKEND`` > default)
  and the invariant that the choice never enters result fingerprints;
* golden-corpus cells replayed under the numpy backend;
* the batch/epilogue boundary — window and LSQ cuts, MSHR merges into
  in-flight misses, warmup snapshots landing mid-run, probes observing
  identical progress marks;
* composition with the sanitizer (``REPRO_SANITIZE=full`` and injected
  state corruptions) — checking runs bit-identical to unchecked ones,
  corruption still caught under the batched engine;
* the fallback path for configurations the batch model cannot
  represent, and the single-slot plane cache across config switches.

``tests/test_backend_fuzz.py`` adds the randomized differential; the
benchmark-side gate lives in ``benchmarks/test_backend_perf.py``.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.backend import (
    BACKEND_ENV,
    NativeBackend,
    NumpyBackend,
    available_backends,
    backend_name,
    get_backend,
    resolve_backend,
)
from repro.backend import native as native_mod
from repro.backend import vector as vector_mod
from repro.backend.native import build as native_build
from repro.cpu.core import CoreParams, OutOfOrderCore
from repro.engine.probes import ProgressProbe
from repro.memory import MemoryHierarchy
from repro.sim import SimulationConfig, sanitizer as sanitizer_mod, simulate
from repro.sim.resilience import InvariantViolation
from repro.sim.runner import clear_cache
from repro.sim.sanitizer import schedule_state_corruption
from repro.sim.store import config_fingerprint
from repro.workloads import Scale, Trace, generate


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    monkeypatch.delenv(sanitizer_mod.SANITIZE_ENV, raising=False)
    clear_cache()
    yield
    clear_cache()
    sanitizer_mod.consume_scheduled_corruption()


#: every backend the differential tests compare against the reference:
#: numpy always, native when the compiled extension loads on this host.
CONTENDERS = ("numpy",) + (
    ("native",) if native_build.load() is not None else ()
)


def _run_pair(trace, config, params=None, warmup=0, probes=None):
    """One trace under the reference and every contender backend;
    returns (results, machines)."""
    params = params or config.core
    results, machines = {}, {}
    for name in ("python",) + CONTENDERS:
        machine = MemoryHierarchy(config.hierarchy)
        machine.attach_prefetcher(config.build_prefetcher())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            results[name] = get_backend(name).run(
                trace, machine, params, warmup=warmup,
                probes=probes[name] if probes else None,
            )
        machines[name] = machine
    return results, machines


def _assert_identical(results, machines):
    for name in CONTENDERS:
        assert results[name] == results["python"], name
        assert machines[name].stats == machines["python"].stats, name


def _loop_trace(n=6000, blocks=8, name="loop"):
    """A tight loop over a few blocks: all hits after the first touch,
    so the numpy engine steps almost the whole trace in batches."""
    addrs = (np.arange(n, dtype=np.uint64) % blocks) * np.uint64(64)
    pcs = np.arange(n, dtype=np.uint64) % np.uint64(4) * np.uint64(4)
    return Trace(
        name=name,
        addrs=addrs,
        pcs=pcs,
        is_load=np.ones(n, dtype=bool),
        gaps=np.full(n, 3, dtype=np.int64),
        deps=np.zeros(n, dtype=np.int64),
    )


class TestSelection:
    def test_registry_lists_all_backends(self):
        names = available_backends()
        assert "python" in names and "numpy" in names and "native" in names

    def test_default_is_python(self):
        assert backend_name() == "python"
        assert resolve_backend(None).name == "python"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert backend_name() == "numpy"
        assert resolve_backend(None).name == "numpy"

    def test_explicit_config_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert backend_name("python") == "python"

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(ValueError, match="python"):
            get_backend("fortran")

    def test_config_validates_backend_type(self):
        with pytest.raises(ValueError, match="backend"):
            dataclasses.replace(SimulationConfig.baseline(), backend=3)

    def test_fingerprint_ignores_backend(self):
        """Backends are interchangeable, so a checkpoint produced under
        one must be a valid cache hit for the other."""
        base = SimulationConfig.for_prefetcher("tcp-8k")
        as_numpy = dataclasses.replace(base, backend="numpy")
        assert config_fingerprint(base) == config_fingerprint(as_numpy)


class TestGoldenParity:
    """The golden-corpus cells, replayed under ``backend="numpy"``.

    ``tests/test_golden.py`` freezes these cells against the reference
    backend; asdict-equality between backend selections extends the
    freeze to the numpy engine (including its fallback configs).
    """

    CELLS = (("swim", "tcp-8k"), ("mcf", "tcp-8m"), ("gcc", "dbcp-2m"))

    @pytest.mark.parametrize("contender", CONTENDERS)
    @pytest.mark.parametrize("bench,label", CELLS)
    def test_simresults_match_bit_for_bit(self, bench, label, contender):
        config = SimulationConfig.for_prefetcher(label)
        ref = simulate(bench, config, Scale.QUICK, use_cache=False)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            new = simulate(
                bench,
                dataclasses.replace(config, backend=contender),
                Scale.QUICK,
                use_cache=False,
            )
        assert dataclasses.asdict(new) == dataclasses.asdict(ref)

    def test_env_selection_reaches_the_runner(self, monkeypatch):
        ref = simulate("swim", SimulationConfig.baseline(), Scale.QUICK,
                       use_cache=False)
        seen = {}
        original = NumpyBackend.run

        def spying(self, *args, **kwargs):
            result = original(self, *args, **kwargs)
            seen["stats"] = self.last_engine_stats
            return result

        monkeypatch.setattr(NumpyBackend, "run", spying)
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        new = simulate("swim", SimulationConfig.baseline(), Scale.QUICK,
                       use_cache=False)
        assert seen, "REPRO_BACKEND did not route the run to NumpyBackend"
        assert dataclasses.asdict(new) == dataclasses.asdict(ref)


class TestBatchBoundaries:
    """The cut points where a batch hands off to the scalar epilogue."""

    def test_loop_trace_engages_batches(self):
        trace = _loop_trace()
        config = SimulationConfig.baseline()
        backend = NumpyBackend()
        machine = MemoryHierarchy(config.hierarchy)
        machine.attach_prefetcher(config.build_prefetcher())
        result = backend.run(trace, machine, config.core)
        stats = backend.last_engine_stats
        assert stats["batches"] > 0
        assert stats["batched_accesses"] > len(trace) // 2
        assert stats["batched_accesses"] + stats["scalar_accesses"] == len(trace)
        # and the batched run is still bit-identical
        ref_machine = MemoryHierarchy(config.hierarchy)
        ref_machine.attach_prefetcher(config.build_prefetcher())
        ref = OutOfOrderCore(config.core).run(trace, ref_machine)
        assert result == ref
        assert machine.stats == ref_machine.stats

    @pytest.mark.parametrize("window,lsq", ((4, 128), (128, 2), (3, 3)))
    def test_window_and_lsq_cuts(self, window, lsq):
        """Tiny window/LSQ force mid-batch structural stalls; the batch
        must be cut and replayed without drifting from the reference."""
        trace = _loop_trace()
        config = SimulationConfig.baseline()
        params = CoreParams(window=window, lsq=lsq)
        results, machines = _run_pair(trace, config, params=params)
        _assert_identical(results, machines)

    def test_mshr_merge_into_inflight_miss(self):
        """Back-to-back accesses to the same cold block: the second
        merges into the first's in-flight MSHR entry (and poisons any
        batch covering it)."""
        n = 4000
        base = np.repeat(np.arange(n // 2, dtype=np.uint64), 2)
        addrs = base * np.uint64(64)
        trace = Trace(
            name="merge",
            addrs=addrs,
            pcs=np.zeros(n, dtype=np.uint64),
            is_load=np.ones(n, dtype=bool),
            gaps=np.zeros(n, dtype=np.int64),
            deps=np.zeros(n, dtype=np.int64),
        )
        results, machines = _run_pair(
            trace, SimulationConfig.for_prefetcher("nextline")
        )
        _assert_identical(results, machines)

    def test_stores_and_dependences(self):
        """Store overrides and pointer-chasing deps inside hit runs."""
        n = 5000
        rng = np.random.default_rng(7)
        deps = np.where(rng.random(n) < 0.2, 1, 0).astype(np.int64)
        deps[0] = 0  # a dependence cannot point before the trace start
        trace = Trace(
            name="mix",
            addrs=(rng.integers(0, 64, n).astype(np.uint64)) * np.uint64(64),
            pcs=rng.integers(0, 16, n).astype(np.uint64) * np.uint64(4),
            is_load=rng.random(n) < 0.7,
            gaps=rng.integers(0, 6, n).astype(np.int64),
            deps=deps,
        )
        results, machines = _run_pair(
            trace, SimulationConfig.for_prefetcher("tcp-8k")
        )
        _assert_identical(results, machines)

    def test_warmup_snapshot_mid_run(self):
        """The warmup boundary can land inside what would be a batch;
        the measured-window bookkeeping must still agree."""
        trace = _loop_trace()
        results, machines = _run_pair(
            trace, SimulationConfig.for_prefetcher("tcp-8k"),
            warmup=len(trace) // 3,
        )
        _assert_identical(results, machines)
        assert (
            machines["numpy"].warmup_stats == machines["python"].warmup_stats
        )

    def test_probes_see_identical_marks(self):
        """Progress probes fire at the shared periodic marks with the
        same (done, total, sim_time) under either backend."""
        trace = generate("fma3d", Scale.QUICK)
        marks = {name: [] for name in ("python",) + CONTENDERS}
        probes = {
            name: [ProgressProbe(
                lambda done, total, sim_time, _n=name:
                    marks[_n].append((done, total, sim_time))
            )]
            for name in marks
        }
        results, machines = _run_pair(
            trace, SimulationConfig.for_prefetcher("tcp-8k"), probes=probes
        )
        _assert_identical(results, machines)
        for name in CONTENDERS:
            assert marks[name] == marks["python"], name
        assert marks["python"], "no progress marks fired at all"


class TestSanitizerComposition:
    """``--sanitize full`` + ``--backend numpy`` compose."""

    def test_full_sanitize_matches_unsanitized(self):
        config = SimulationConfig.for_prefetcher("tcp-8k")
        plain = simulate("fma3d", config, Scale.QUICK, use_cache=False)
        checked = simulate(
            "fma3d",
            dataclasses.replace(config, sanitize="full", backend="numpy"),
            Scale.QUICK,
            use_cache=False,
        )
        assert dataclasses.asdict(checked) == dataclasses.asdict(plain)

    @pytest.mark.parametrize("kind,invariant", (
        ("stats-drift", "stats-l1-conservation"),
        ("cache-dup", "cache-set-duplicate"),
        ("tht-shape", "tht-history-length"),
    ))
    def test_corruption_still_caught_under_numpy(self, kind, invariant):
        """An injected state corruption must not hide behind the batch
        engine's local mirrors of hierarchy state."""
        config = dataclasses.replace(
            SimulationConfig.for_prefetcher("tcp-8k"),
            sanitize="full",
            backend="numpy",
        )
        schedule_state_corruption(kind)
        with pytest.raises(InvariantViolation) as excinfo:
            simulate("fma3d", config, Scale.QUICK, use_cache=False)
        assert excinfo.value.invariant == invariant


class TestFallbacks:
    """Configurations the batch model cannot represent run on the
    reference loop — with a one-line warning, never a wrong result."""

    @pytest.mark.parametrize("label,reason", (
        ("dbcp-2m", "prefetcher observes the access stream"),
        ("hybrid-8k", "gated L1 promotions"),
    ))
    def test_fallback_reason_reported(self, label, reason, monkeypatch):
        monkeypatch.setattr(vector_mod, "_WARNED_FALLBACKS", set())
        trace = generate("swim", Scale.QUICK)
        config = SimulationConfig.for_prefetcher(label)
        machine = MemoryHierarchy(config.hierarchy)
        machine.attach_prefetcher(config.build_prefetcher())
        backend = NumpyBackend()
        with pytest.warns(RuntimeWarning, match=reason):
            backend.run(trace, machine, config.core)
        assert backend.last_engine_stats == {"fallback": reason}

    def test_fallback_warns_once_per_process(self, monkeypatch):
        monkeypatch.setattr(vector_mod, "_WARNED_FALLBACKS", set())
        trace = generate("swim", Scale.QUICK)
        config = SimulationConfig.for_prefetcher("hybrid-8k")
        backend = NumpyBackend()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                machine = MemoryHierarchy(config.hierarchy)
                machine.attach_prefetcher(config.build_prefetcher())
                backend.run(trace, machine, config.core)
        relevant = [w for w in caught if "numpy backend" in str(w.message)]
        assert len(relevant) == 1


class TestNativeFallbacks:
    """The native backend's two-tier degradation: config-level
    fallbacks to the reference loop, extension-unavailable fallbacks
    to the numpy engine — loud once, then silent, never wrong."""

    @pytest.mark.parametrize("label,reason", (
        ("dbcp-2m", "prefetcher observes the access stream"),
        ("hybrid-8k", "gated L1 promotions"),
    ))
    def test_config_fallback_reason_reported(self, label, reason, monkeypatch):
        monkeypatch.setattr(native_mod, "_WARNED_FALLBACKS", set())
        trace = generate("swim", Scale.QUICK)
        config = SimulationConfig.for_prefetcher(label)
        machine = MemoryHierarchy(config.hierarchy)
        machine.attach_prefetcher(config.build_prefetcher())
        backend = NativeBackend()
        with pytest.warns(RuntimeWarning, match=reason):
            backend.run(trace, machine, config.core)
        assert backend.last_engine_stats == {"fallback": reason}

    def test_unavailable_extension_falls_back_to_numpy(self, monkeypatch):
        """With the extension refused (``REPRO_NATIVE=0``) the native
        backend runs the numpy engine, warns once, and records why —
        and the results are still bit-identical to the reference."""
        monkeypatch.setenv(native_build.NATIVE_ENV, "0")
        monkeypatch.setattr(native_build, "_MODULE", None)
        monkeypatch.setattr(native_build, "_ERROR", None)
        monkeypatch.setattr(native_build, "_TRIED", False)
        monkeypatch.setattr(native_mod, "_WARNED_FALLBACKS", set())
        try:
            trace = generate("swim", Scale.QUICK)
            config = SimulationConfig.for_prefetcher("tcp-8k")
            machine = MemoryHierarchy(config.hierarchy)
            machine.attach_prefetcher(config.build_prefetcher())
            backend = NativeBackend()
            with pytest.warns(RuntimeWarning, match="native extension "
                                                    "unavailable"):
                result = backend.run(trace, machine, config.core)
            stats = backend.last_engine_stats
            assert "disabled by REPRO_NATIVE=0" in stats["fallback"]
            # the numpy engine really ran: its accounting is present
            assert stats["batched_accesses"] + stats["scalar_accesses"] == len(
                trace
            )
            ref_machine = MemoryHierarchy(config.hierarchy)
            ref_machine.attach_prefetcher(config.build_prefetcher())
            ref = get_backend("python").run(trace, ref_machine, config.core)
            assert result == ref
            assert machine.stats == ref_machine.stats
        finally:
            # un-memoise the refused probe so later tests see the real
            # availability again (monkeypatch restores the env var)
            native_build.reset()

    def test_unavailable_warns_once_per_process(self, monkeypatch):
        monkeypatch.setenv(native_build.NATIVE_ENV, "0")
        monkeypatch.setattr(native_build, "_MODULE", None)
        monkeypatch.setattr(native_build, "_ERROR", None)
        monkeypatch.setattr(native_build, "_TRIED", False)
        monkeypatch.setattr(native_mod, "_WARNED_FALLBACKS", set())
        try:
            trace = generate("swim", Scale.QUICK)
            config = SimulationConfig.for_prefetcher("nextline")
            backend = NativeBackend()
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                for _ in range(3):
                    machine = MemoryHierarchy(config.hierarchy)
                    machine.attach_prefetcher(config.build_prefetcher())
                    backend.run(trace, machine, config.core)
            relevant = [
                w for w in caught
                if "native extension unavailable" in str(w.message)
            ]
            assert len(relevant) == 1
        finally:
            native_build.reset()

    def test_fallback_recorded_in_simresult(self, monkeypatch):
        """The runner copies the engine's fallback reason into
        ``SimResult.backend_fallback`` (provenance metadata only — it
        stays out of equality and asdict fingerprints)."""
        config = dataclasses.replace(
            SimulationConfig.for_prefetcher("hybrid-8k"), backend="native"
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = simulate("swim", config, Scale.QUICK, use_cache=False)
        assert result.backend_fallback == "gated L1 promotions"
        payload = result.to_dict()
        assert payload["backend_fallback"] == "gated L1 promotions"
        from repro.sim.results import SimResult

        rebuilt = SimResult.from_dict(payload)
        assert rebuilt.backend_fallback == "gated L1 promotions"
        assert rebuilt == result
        # a non-degraded run records nothing
        clean = simulate(
            "swim",
            dataclasses.replace(
                SimulationConfig.for_prefetcher("tcp-8k"), backend="numpy"
            ),
            Scale.QUICK,
            use_cache=False,
        )
        assert clean.backend_fallback is None
        assert "backend_fallback" not in clean.to_dict()


class TestPlaneCache:
    """The single-slot per-trace plane memo must never leak state
    between configurations or traces."""

    def test_reuse_across_configs_and_back(self):
        trace = _loop_trace()
        for label in ("tcp-8k", "nextline", "tcp-8k", "none"):
            config = SimulationConfig.for_prefetcher(label)
            results, machines = _run_pair(trace, config)
            _assert_identical(results, machines)

    def test_slot_eviction_on_new_trace(self):
        first = _loop_trace(name="first")
        second = _loop_trace(n=4096, blocks=5, name="second")
        config = SimulationConfig.for_prefetcher("tcp-8k")
        for trace in (first, second, first):
            results, machines = _run_pair(trace, config)
            _assert_identical(results, machines)
