"""The campaign layer: pool/attempt equivalence and throughput gate.

This PR's campaign optimizations (warm worker pool, workload-affinity
scheduling, the mmap-backed trace cache, the long-lived-worker GC
discipline) claim to be pure performance changes.  This module checks
both halves of that claim:

* **equivalence** — :func:`repro.bench.campaign.run_campaign_bench`
  itself raises if any fig11 cell's :class:`SimResult` differs between
  the warm-pool arm and the per-attempt arm, so a passing run *is* the
  equivalence proof (``test_campaign_arms_agree`` keeps the property
  visible as its own test);
* **performance** — the pool/attempt wall-clock ratio must stay at or
  above ``max(1.0, half the committed baseline)``
  (``BENCH_campaign.json`` at the repository root).  A ratio below 1.0
  means the "optimized" path is slower than the seed path outright; a
  collapse to half the baseline means a change gave back the campaign
  win.  Being a same-host two-arm ratio, the gate is meaningful on any
  CI machine even though absolute seconds are not.

The bench always runs at quick scale regardless of
``REPRO_BENCH_SCALE`` — the campaign layer's overhead is per job, so
short jobs probe it hardest; longer traces only dilute the signal.
"""

import json
import sys
from pathlib import Path

from repro.bench import run_campaign_bench
from repro.bench.campaign import SCHEMA
from repro.workloads import Scale

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"


def _fresh_bench(repeats: int = 2):
    return run_campaign_bench(scale=Scale.QUICK, repeats=repeats, log=sys.stderr)


def test_campaign_arms_agree():
    """Every fig11 cell is identical under pool and attempt modes.

    ``run_campaign_bench`` raises ``RuntimeError`` on any per-cell
    mismatch, so completing at all proves the equality; the document
    records it explicitly.
    """
    document = _fresh_bench(repeats=1)
    assert document["results_identical"] is True
    assert document["cells"] == 12


def test_campaign_speedup_has_not_regressed():
    """Fresh pool/attempt ratio holds the committed baseline's floor.

    This is the CI campaign-smoke gate: the fresh ratio must be >= 1.0
    (the warm pool must never lose to the per-attempt path) and >= half
    the committed baseline (a larger drop means a change gave back the
    campaign-layer win).
    """
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    assert baseline["schema"] == SCHEMA, (
        "BENCH_campaign.json was written by an incompatible benchmark "
        "version; regenerate it with `repro-tcp bench --campaign`"
    )
    assert baseline["speedup"] >= 1.3  # the claim the PR ships with
    fresh = _fresh_bench()
    floor = max(1.0, baseline["speedup"] * 0.5)
    assert fresh["speedup"] >= floor, (
        f"campaign speedup regressed: fresh pool/attempt ratio "
        f"{fresh['speedup']:.2f}x is below the floor {floor:.2f}x "
        f"(committed baseline {baseline['speedup']:.2f}x)"
    )
