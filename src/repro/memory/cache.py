"""A set-associative cache model with LRU replacement.

The cache is a pure state machine: it answers lookups, performs fills,
and reports evictions.  It deliberately knows nothing about latency,
buses, or statistics — those live in
:class:`repro.memory.hierarchy.MemoryHierarchy` — which keeps this class
small enough to verify exhaustively in unit and property tests.

Each resident line carries the metadata the paper's mechanisms need:

* ``dirty`` — writeback policy;
* ``prefetched`` — set when the line was installed by a prefetch and
  cleared on first demand touch; this bit drives the Figure 12
  "prefetched original / prefetched extra" taxonomy;
* ``fill_time`` / ``last_access`` — timestamps for the timekeeping
  dead-block predictor (Hu et al., used by the hybrid of Section 5.2.2);
* ``signature`` — the truncated-add PC-trace accumulator used by the
  DBCP baseline (Lai et al.).

Direct-mapped caches (the paper's L1D) use a flat-array fast path; the
generic path uses one :class:`repro.util.lruset.LRUSet` per set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.engine.component import Component
from repro.engine.events import MemoryEvent
from repro.memory.address import CacheGeometry
from repro.util.lruset import LRUSet

__all__ = ["CacheLine", "Eviction", "SetAssociativeCache"]


class CacheLine:
    """Metadata of one resident cache line."""

    __slots__ = ("tag", "dirty", "prefetched", "fill_time", "last_access", "signature")

    def __init__(
        self,
        tag: int,
        fill_time: float = 0.0,
        dirty: bool = False,
        prefetched: bool = False,
    ) -> None:
        self.tag = tag
        self.dirty = dirty
        self.prefetched = prefetched
        self.fill_time = fill_time
        self.last_access = fill_time
        self.signature = 0

    def __repr__(self) -> str:
        flags = "".join(
            flag for flag, on in (("D", self.dirty), ("P", self.prefetched)) if on
        )
        return f"CacheLine(tag={self.tag:#x}{', ' + flags if flags else ''})"


@dataclass
class Eviction:
    """A line pushed out of the cache by a fill (or invalidation)."""

    set_index: int
    line: CacheLine

    @property
    def tag(self) -> int:
        return self.line.tag

    @property
    def dirty(self) -> bool:
        return self.line.dirty


class SetAssociativeCache(Component):
    """LRU set-associative cache state (no timing, no statistics).

    The public operations are:

    ``lookup``
        Demand access.  On a hit, updates recency/dirty/last-access and
        returns the line; on a miss returns None.  The caller decides
        what a miss means (fetch from the next level, etc.).
    ``probe``
        Check residency without disturbing any state (used when
        deciding whether a prefetch target is already cached).
    ``fill``
        Install a block, returning the eviction it caused, if any.
    ``invalidate``
        Remove a block (used when promoting a block from L2 to L1 in
        exclusive-style experiments, and in tests).
    ``victim_line``
        Identify which line a fill to a given set would evict (the
        hybrid prefetcher asks this before deciding whether the victim
        is dead).
    """

    def __init__(self, geometry: CacheGeometry, name: str = "cache") -> None:
        self.geometry = geometry
        self.name = name
        self._direct_mapped = geometry.ways == 1
        if self._direct_mapped:
            self._lines: List[Optional[CacheLine]] = [None] * geometry.sets
            self._sets: List[LRUSet[int, CacheLine]] = []
        else:
            self._lines = []
            self._sets = [LRUSet(geometry.ways) for _ in range(geometry.sets)]

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def access(self, event: MemoryEvent) -> Optional[CacheLine]:
        """Component entry point: a demand lookup driven by one event.

        Returns the hit line or None, the cache's outcome under the
        engine contract.  Events without an ``is_write`` field (e.g.
        evictions replayed through a model) are treated as reads.
        """
        return self.lookup(
            event.index, event.tag, getattr(event, "is_write", False), event.now
        )

    def lookup(self, index: int, tag: int, is_write: bool, now: float) -> Optional[CacheLine]:
        """Access set ``index`` for ``tag``; return the line on a hit.

        A hit refreshes LRU order and ``last_access``; a write marks
        the line dirty; a demand touch on a prefetched line clears its
        ``prefetched`` bit (it has now been "used", for the Figure 12
        accounting done by the hierarchy).
        """
        if self._direct_mapped:
            line = self._lines[index]
            if line is None or line.tag != tag:
                return None
        else:
            line = self._sets[index].get(tag)
            if line is None:
                return None
        line.last_access = now
        if is_write:
            line.dirty = True
        return line

    def probe(self, index: int, tag: int) -> Optional[CacheLine]:
        """Return the resident line for ``(index, tag)`` without side effects."""
        if self._direct_mapped:
            line = self._lines[index]
            if line is not None and line.tag == tag:
                return line
            return None
        return self._sets[index].peek(tag)

    # ------------------------------------------------------------------
    # Fill / eviction path
    # ------------------------------------------------------------------

    def fill(
        self,
        index: int,
        tag: int,
        now: float,
        prefetched: bool = False,
        dirty: bool = False,
        lru_insert: bool = False,
    ) -> Optional[Eviction]:
        """Install ``(index, tag)``; return the displaced line, if any.

        Filling a block that is already resident refreshes its recency
        but does not reset its metadata (a prefetch landing on a
        resident demand block must not mark it prefetched).

        ``lru_insert`` places the new line at the LRU position instead
        of MRU — the standard low-priority insertion policy for
        prefetch fills, bounding how much a wrong prefetch can disturb
        the demand working set (meaningless for direct-mapped caches).
        """
        if self._direct_mapped:
            old = self._lines[index]
            if old is not None and old.tag == tag:
                old.last_access = now
                old.dirty = old.dirty or dirty
                return None
            self._lines[index] = CacheLine(tag, now, dirty=dirty, prefetched=prefetched)
            if old is None:
                return None
            return Eviction(index, old)
        lru = self._sets[index]
        existing = lru.get(tag)
        if existing is not None:
            existing.last_access = now
            existing.dirty = existing.dirty or dirty
            return None
        line = CacheLine(tag, now, dirty=dirty, prefetched=prefetched)
        victim = lru.put_lru(tag, line) if lru_insert else lru.put(tag, line)
        if victim is None:
            return None
        return Eviction(index, victim[1])

    def invalidate(self, index: int, tag: int) -> Optional[CacheLine]:
        """Remove ``(index, tag)`` from the cache; return the line."""
        if self._direct_mapped:
            line = self._lines[index]
            if line is not None and line.tag == tag:
                self._lines[index] = None
                return line
            return None
        return self._sets[index].pop(tag)

    def victim_line(self, index: int) -> Optional[CacheLine]:
        """Return the line a fill to set ``index`` would evict.

        For a direct-mapped cache this is the (single) resident line;
        for an associative cache the LRU line — None when the set has a
        free way (no eviction would occur).
        """
        if self._direct_mapped:
            return self._lines[index]
        lru = self._sets[index]
        if len(lru) < lru.ways:
            return None
        tag = lru.victim_key()
        return None if tag is None else lru.peek(tag)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def resident_lines(self, index: int) -> List[CacheLine]:
        """All lines currently resident in set ``index`` (LRU→MRU order)."""
        if self._direct_mapped:
            line = self._lines[index]
            return [] if line is None else [line]
        return [line for _, line in self._sets[index].items()]

    def occupancy(self) -> int:
        """Total number of resident lines."""
        if self._direct_mapped:
            return sum(1 for line in self._lines if line is not None)
        return sum(len(s) for s in self._sets)

    def storage_bytes(self) -> int:
        """Data capacity in bytes (tag/metadata overhead excluded)."""
        return self.geometry.size_bytes

    def reset(self) -> None:
        """Empty the cache (all sets cold) without reallocating arrays.

        In-place so that external bindings to the direct-mapped line
        array (the hierarchy's fast path holds one) stay valid.
        """
        if self._direct_mapped:
            lines = self._lines
            for index in range(len(lines)):
                lines[index] = None
        else:
            for lru in self._sets:
                lru.clear()

    def direct_array(self) -> Optional[List[Optional[CacheLine]]]:
        """The flat line array of a direct-mapped cache, else None.

        The hierarchy's hot path binds this once and performs the
        single-way lookup inline; any mutation must still go through
        ``fill``/``invalidate`` so eviction accounting stays correct.
        """
        return self._lines if self._direct_mapped else None

    def __repr__(self) -> str:
        return f"SetAssociativeCache({self.name}: {self.geometry.describe()})"
