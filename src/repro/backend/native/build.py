"""Locate, build, or gracefully fail to provide the ``_native`` extension.

Resolution order (memoised once per process):

1. ``REPRO_NATIVE=0`` disables the extension outright (the no-compiler
   CI job uses this to assert the clean numpy fallback).
2. A prebuilt ``_native`` importable from the package (what
   ``pip install .[native]`` leaves in site-packages).
3. A cached build under ``~/.cache/repro-tcp/native/<digest>/``, keyed
   by a hash of the C source and the interpreter ABI, so editable
   installs and source checkouts compile once and reuse the artifact
   across processes.
4. A fresh compile into that cache with the system C compiler
   (``$CC``, else ``cc``/``gcc``/``clang``).

Every failure mode raises nothing to the caller: :func:`load` returns
``None`` and :func:`load_error` the human-readable reason, which the
backend surfaces in its once-per-process fallback warning and records
into ``SimResult.backend_fallback``.
"""

from __future__ import annotations

import hashlib
import importlib
import importlib.machinery
import importlib.util
import os
import shutil
import subprocess
import sys
import sysconfig
from typing import Optional

__all__ = ["load", "load_error", "reset"]

#: environment variable: set to ``0`` to refuse the extension even when
#: a compiler or cached artifact is available.
NATIVE_ENV = "REPRO_NATIVE"

_MODULE = None
_ERROR: Optional[str] = None
_TRIED = False


def _source_path() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "_native.c")


def _cache_dir(source: str) -> str:
    with open(source, "rb") as handle:
        digest = hashlib.sha256(handle.read())
    digest.update(sys.implementation.cache_tag.encode())
    root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(root, "repro-tcp", "native", digest.hexdigest()[:16])


def _find_compiler() -> Optional[str]:
    cc = os.environ.get("CC")
    if cc:
        found = shutil.which(cc)
        if found:
            return found
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


def _load_from_file(path: str):
    loader = importlib.machinery.ExtensionFileLoader(
        "repro.backend.native._native", path
    )
    spec = importlib.util.spec_from_file_location(
        "repro.backend.native._native", path, loader=loader
    )
    module = importlib.util.module_from_spec(spec)
    loader.exec_module(module)
    return module


def _load_or_build():
    # 1. a prebuilt extension next to this module (pip install .[native])
    try:
        return importlib.import_module("repro.backend.native._native")
    except ImportError:
        pass
    # 2./3. the per-source cache
    source = _source_path()
    if not os.path.exists(source):
        raise RuntimeError("_native.c source not present in the package")
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    cache = _cache_dir(source)
    artifact = os.path.join(cache, "_native" + suffix)
    if os.path.exists(artifact):
        return _load_from_file(artifact)
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler found (install cc/gcc/clang)")
    os.makedirs(cache, exist_ok=True)
    include = sysconfig.get_paths()["include"]
    tmp = artifact + f".tmp{os.getpid()}"
    cmd = [
        compiler,
        "-O2",
        "-fPIC",
        "-shared",
        f"-I{include}",
        source,
        "-o",
        tmp,
    ]
    proc = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    if proc.returncode != 0:
        tail = (proc.stdout or "").strip().splitlines()[-6:]
        raise RuntimeError(
            "C compilation failed (%s): %s" % (compiler, " | ".join(tail))
        )
    # Atomic publish: concurrent processes race benignly to the same name.
    os.replace(tmp, artifact)
    return _load_from_file(artifact)


def load():
    """The ``_native`` module, or ``None`` (see :func:`load_error`)."""
    global _MODULE, _ERROR, _TRIED
    if _TRIED:
        return _MODULE
    _TRIED = True
    if os.environ.get(NATIVE_ENV, "").strip() == "0":
        _ERROR = f"disabled by {NATIVE_ENV}=0"
        return None
    try:
        _MODULE = _load_or_build()
    except Exception as exc:  # noqa: BLE001 - availability probe
        _ERROR = str(exc) or repr(exc)
        _MODULE = None
    return _MODULE


def load_error() -> Optional[str]:
    """Why :func:`load` returned ``None`` (``None`` when it succeeded)."""
    load()
    return _ERROR


def reset() -> None:
    """Forget the memoised availability probe (tests only)."""
    global _MODULE, _ERROR, _TRIED
    _MODULE = None
    _ERROR = None
    _TRIED = False
