"""Tests for the out-of-order core timing model (repro.cpu.core)."""

import numpy as np
import pytest

from repro.cpu import CoreParams, OutOfOrderCore
from repro.memory import HierarchyParams, MemoryHierarchy
from repro.workloads.trace import Trace


def make_trace(addrs, gaps=None, deps=None, is_load=None, base_ipc=4.0, name="t"):
    n = len(addrs)
    return Trace(
        name=name,
        addrs=np.asarray(addrs, dtype=np.uint64),
        pcs=np.full(n, 0x1000, dtype=np.uint64),
        is_load=(np.ones(n, dtype=bool) if is_load is None
                 else np.asarray(is_load, dtype=bool)),
        gaps=(np.full(n, 4, dtype=np.uint16) if gaps is None
              else np.asarray(gaps, dtype=np.uint16)),
        deps=(np.zeros(n, dtype=np.int32) if deps is None
              else np.asarray(deps, dtype=np.int32)),
        base_ipc=base_ipc,
    )


def hierarchy(ideal=True):
    return MemoryHierarchy(HierarchyParams(ideal_l2=ideal, model_icache=False))


def run(trace, h=None, params=CoreParams(), warmup=0):
    h = h or hierarchy()
    return OutOfOrderCore(params).run(trace, h, warmup=warmup)


class TestBasics:
    def test_empty_trace(self):
        result = run(make_trace([]))
        assert result.instructions == 0
        assert result.ipc == 0.0

    def test_ipc_bounded_by_dispatch_rate(self):
        # all-hit workload: IPC approaches min(width, base_ipc)
        trace = make_trace([0x100] * 2000, base_ipc=4.0)
        result = run(trace)
        assert result.ipc <= 4.0 + 1e-6
        assert result.ipc > 3.0

    def test_issue_width_caps_ipc(self):
        trace = make_trace([0x100] * 2000, base_ipc=100.0)
        result = run(trace, params=CoreParams(issue_width=8))
        assert result.ipc <= 8.0 + 1e-6

    def test_instruction_count_includes_gaps(self):
        trace = make_trace([0x100] * 10, gaps=[9] * 10)
        result = run(trace)
        assert result.instructions == 100

    def test_warmup_excludes_prefix(self):
        trace = make_trace([0x100] * 1000)
        full = run(trace)
        measured = run(trace, warmup=500)
        assert measured.instructions < full.instructions
        assert measured.cycles < full.cycles

    def test_warmup_bounds_checked(self):
        trace = make_trace([0x100] * 10)
        with pytest.raises(ValueError):
            run(trace, warmup=10)

    def test_invalid_core_params(self):
        with pytest.raises(ValueError):
            CoreParams(issue_width=0)


class TestMemoryBehaviour:
    def test_misses_reduce_ipc(self):
        hits = make_trace([0x100] * 3000)
        # stride through 4MB: every block a cold miss
        misses = make_trace(np.arange(3000, dtype=np.uint64) * 32 + 0x10000000)
        ipc_hits = run(hits, hierarchy(ideal=True)).ipc
        ipc_misses = run(misses, hierarchy(ideal=False)).ipc
        assert ipc_misses < ipc_hits * 0.7

    def test_independent_misses_overlap(self):
        """MLP: independent misses overlap inside the window; dependent
        ones serialize.  Same addresses, different dependence edges."""
        addrs = np.arange(2000, dtype=np.uint64) * 32 + 0x10000000
        independent = make_trace(addrs)
        chained = make_trace(addrs, deps=[0] + [1] * 1999)
        ipc_mlp = run(independent, hierarchy(ideal=False)).ipc
        ipc_serial = run(chained, hierarchy(ideal=False)).ipc
        assert ipc_mlp > 2.0 * ipc_serial

    def test_window_bounds_overlap(self):
        """A smaller instruction window exposes more miss latency."""
        addrs = np.arange(2000, dtype=np.uint64) * 32 + 0x10000000
        trace = make_trace(addrs, gaps=[2] * 2000)
        big = run(trace, hierarchy(ideal=False), CoreParams(window=256, lsq=256)).ipc
        small = run(trace, hierarchy(ideal=False), CoreParams(window=16, lsq=16)).ipc
        assert big > small

    def test_stores_do_not_stall_commit(self):
        addrs = np.arange(2000, dtype=np.uint64) * 32 + 0x10000000
        loads = make_trace(addrs)
        stores = make_trace(addrs, is_load=[False] * 2000)
        ipc_loads = run(loads, hierarchy(ideal=False)).ipc
        ipc_stores = run(stores, hierarchy(ideal=False)).ipc
        assert ipc_stores > ipc_loads  # store buffer hides the latency

    def test_l2_hits_mostly_tolerated(self):
        """The paper's Section 5.1: L2-hit latency is largely hidden by
        the window; memory latency is not."""
        addrs = (np.arange(4000, dtype=np.uint64) % 2048) * 32 + 0x10000000
        trace = make_trace(addrs, gaps=[6] * 4000)
        ideal = run(trace, hierarchy(ideal=True)).ipc
        l2_hits = run(trace.slice(4000), hierarchy(ideal=False))
        # (after the first lap the 2048 blocks fit in L2 but not in L1)
        assert l2_hits.ipc > 0.45 * ideal

    def test_deterministic(self):
        addrs = np.arange(1000, dtype=np.uint64) * 64
        first = run(make_trace(addrs), hierarchy(ideal=False))
        second = run(make_trace(addrs), hierarchy(ideal=False))
        assert first.cycles == second.cycles


class TestCoreResult:
    def test_cpi_is_inverse(self):
        result = run(make_trace([0x100] * 100))
        assert result.cpi == pytest.approx(1.0 / result.ipc)
