"""Tests for the simulator-state sanitizer, stall watchdog, and checkpoints.

Three proof obligations:

1. Clean code passes: seeded fuzz streams through the TCP structures
   and the caches under ``full`` sanitize raise nothing, and a
   full-sanitize simulation produces bit-identical results to an
   unsanitized one.
2. Broken state is caught: every ``CORRUPTION_KINDS`` member injected
   mid-run raises :class:`InvariantViolation` naming the right
   invariant, is classified non-retryable, and never reaches the
   result cache or the on-disk store.
3. The watchdog kills stalls, not slowness: a heartbeat-silent worker
   is reclaimed by ``stall_timeout`` while a slow-but-heartbeating job
   survives the same window.
"""

import dataclasses
import random
import time

import pytest

from repro.core import TagCorrelatingPrefetcher, TCPConfig
from repro.core.pht import PHTConfig, PatternHistoryTable
from repro.core.tht import TagHistoryTable
from repro.memory.address import CacheGeometry
from repro.memory.cache import SetAssociativeCache
from repro.memory.mshr import MSHRFile
from repro.prefetchers.base import MissEvent
from repro.sim import SimulationConfig, prewarm, simulate
from repro.sim import sanitizer as sanitizer_mod
from repro.sim import store as store_mod
from repro.sim.resilience import (
    CorruptResult,
    InvariantViolation,
    RetryPolicy,
    StallTimeout,
    emit_heartbeat,
    is_retryable,
    run_supervised,
    set_fault_injector,
)
from repro.sim.runner import _RESULT_CACHE, clear_cache
from repro.sim.sanitizer import (
    CORRUPTION_KINDS,
    Sanitizer,
    build_sanitizer,
    consume_scheduled_corruption,
    sanitize_level,
    schedule_state_corruption,
)
from repro.sim.store import ResultStore, config_fingerprint
from repro.workloads import Scale

BASE = SimulationConfig.baseline()
TCP8K = SimulationConfig.for_prefetcher("tcp-8k")


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv(sanitizer_mod.SANITIZE_ENV, raising=False)
    clear_cache()
    yield
    clear_cache()
    set_fault_injector(None)
    consume_scheduled_corruption()
    store_mod.clear_active_store()


class TestLevels:
    def test_resolution_order(self, monkeypatch):
        assert sanitize_level() == "off"
        monkeypatch.setenv(sanitizer_mod.SANITIZE_ENV, "cheap")
        assert sanitize_level() == "cheap"
        assert sanitize_level("full") == "full"  # explicit beats the env

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            sanitize_level("paranoid")
        with pytest.raises(ValueError):
            Sanitizer("off")

    def test_build_sanitizer(self, monkeypatch):
        assert build_sanitizer("off") is None
        assert build_sanitizer() is None
        assert build_sanitizer("cheap").interval == sanitizer_mod.CHEAP_INTERVAL
        monkeypatch.setenv(sanitizer_mod.SANITIZE_ENV, "full")
        assert build_sanitizer().interval == sanitizer_mod.FULL_INTERVAL

    def test_config_field_validation(self):
        with pytest.raises(ValueError):
            dataclasses.replace(BASE, sanitize="everything")
        assert dataclasses.replace(BASE, sanitize="full").sanitize == "full"

    def test_fingerprint_ignores_sanitize(self):
        for level in ("off", "cheap", "full"):
            sanitized = dataclasses.replace(TCP8K, sanitize=level)
            assert config_fingerprint(sanitized) == config_fingerprint(TCP8K)


class TestCleanRuns:
    """Full sanitize over correct code: zero violations, same numbers."""

    @pytest.mark.parametrize("config", [BASE, TCP8K], ids=["base", "tcp-8k"])
    def test_full_sanitize_matches_unsanitized(self, config):
        plain = simulate("fma3d", config, Scale.QUICK, use_cache=False)
        checked = simulate(
            "fma3d",
            dataclasses.replace(config, sanitize="full"),
            Scale.QUICK,
            use_cache=False,
        )
        assert checked.ipc == plain.ipc
        assert checked.memory == plain.memory

    def test_violation_snapshot_and_message(self):
        san = Sanitizer("cheap")
        with pytest.raises(InvariantViolation) as excinfo:
            san.require(False, "demo-invariant", "something broke", value=3)
        violation = excinfo.value
        assert violation.invariant == "demo-invariant"
        assert violation.snapshot == {"value": 3}
        assert "demo-invariant" in str(violation)
        assert "value=3" in str(violation)
        assert not is_retryable(violation)

    def test_check_core_bounds(self):
        san = Sanitizer("cheap")
        san.check_core(rob_len=4, window=64, last_commit=10.0, now_dispatch=11.0)
        with pytest.raises(InvariantViolation) as excinfo:
            san.check_core(rob_len=65, window=64, last_commit=12.0, now_dispatch=12.0)
        assert excinfo.value.invariant == "core-window-occupancy"
        with pytest.raises(InvariantViolation) as excinfo:
            san.check_core(rob_len=1, window=64, last_commit=5.0, now_dispatch=13.0)
        assert excinfo.value.invariant == "core-commit-monotonic"


class TestFuzz:
    """Seeded random streams through the structures under full scans."""

    def test_tcp_structures_survive_fuzz(self):
        rng = random.Random(0xC0FFEE)
        config = TCPConfig(
            tht_rows=64, history_length=2,
            pht=PHTConfig(sets=64, ways=4, targets=2),
        )
        tcp = TagCorrelatingPrefetcher(config)
        geometry = CacheGeometry(64 * 32, 1, 32)  # 64 sets, mirrors the THT
        assert geometry.sets == config.tht_rows
        san = Sanitizer("full")
        index_bits = config.tht_rows.bit_length() - 1
        for step in range(4000):
            index = rng.randrange(config.tht_rows)
            tag = rng.randrange(1 << 14)
            miss = MissEvent(
                index=index, tag=tag, block=(tag << index_bits) | index,
                pc=rng.randrange(1 << 20), is_write=rng.random() < 0.3,
                now=float(step),
            )
            tcp.observe_miss(miss)
            if step % 256 == 0:
                san._scan_tht(tcp.tht, geometry, sample=None)
                san._scan_pht(tcp.pht, sample=None)
                tcp.sanitize_check(san.require)
        san._scan_tht(tcp.tht, geometry, sample=None)
        san._scan_pht(tcp.pht, sample=None)

    def test_cache_and_mshr_survive_fuzz(self):
        rng = random.Random(0xBEEF)
        cache = SetAssociativeCache(CacheGeometry(4096, 4, 32), name="fuzz")
        mshr = MSHRFile(8)
        san = Sanitizer("full")
        now = 0.0
        for step in range(4000):
            now += rng.random()
            index = rng.randrange(cache.geometry.sets)
            tag = rng.randrange(1 << 10)
            if cache.lookup(index, tag, rng.random() < 0.3, now) is None:
                block = (tag << cache.geometry.index_bits) | index
                if mshr.lookup(block, now) is None:
                    start = mshr.acquire(now)
                    mshr.register(block, start + rng.uniform(1, 50), now)
                cache.fill(index, tag, now, prefetched=rng.random() < 0.2)
            if step % 256 == 0:
                san._scan_cache(cache, sample=None)
                assert len(mshr._inflight) <= mshr.entries
        san._scan_cache(cache, sample=None)
        assert mshr.peak_occupancy <= mshr.entries

    def test_rotating_cursor_visits_every_set(self):
        san = Sanitizer("full")
        visited = set()
        for _ in range(16):  # 16 scans x 8 samples over a 128-set table
            visited.update(san._scan_range("demo", 128, sample=8))
        assert visited == set(range(128))


class TestCorruptionDetection:
    """Every injected corruption is caught and named, never stored."""

    EXPECTED_INVARIANT = {
        "stats-drift": "stats-l1-conservation",
        "mshr-overflow": "mshr-occupancy",
        "cache-dup": "cache-set-duplicate",
        "tht-shape": "tht-history-length",
    }

    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_corruption_caught_with_invariant_name(self, kind, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = dataclasses.replace(TCP8K, sanitize="full")
        with store_mod.use_store(store):
            schedule_state_corruption(kind)
            with pytest.raises(InvariantViolation) as excinfo:
                simulate("fma3d", config, Scale.QUICK, use_cache=False)
        assert excinfo.value.invariant == self.EXPECTED_INVARIANT[kind]
        # The poisoned result reached neither the cache nor the store.
        assert not _RESULT_CACHE
        assert len(ResultStore(tmp_path / "store")) == 0

    def test_tht_shape_falls_back_without_tcp(self):
        schedule_state_corruption("tht-shape")
        config = dataclasses.replace(BASE, sanitize="cheap")
        with pytest.raises(InvariantViolation) as excinfo:
            simulate("fma3d", config, Scale.QUICK, use_cache=False)
        assert excinfo.value.invariant == "stats-l1-conservation"

    def test_schedule_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            schedule_state_corruption("gamma-ray")

    def test_state_corrupt_fault_is_not_retried(self, monkeypatch, tmp_path):
        """The supervisor classifies InvariantViolation as non-retryable."""
        monkeypatch.setenv("REPRO_START_METHOD", "inprocess")
        monkeypatch.setenv(sanitizer_mod.SANITIZE_ENV, "cheap")
        store = ResultStore(tmp_path / "store")
        set_fault_injector(lambda key, attempt: "state-corrupt")
        with store_mod.use_store(store):
            report = prewarm([BASE], Scale.QUICK, ("fma3d",), jobs=1, retries=3)
        assert report.failed == 1
        failure = report.failures[0]
        assert failure.error == "InvariantViolation"
        assert failure.attempts == 1  # deterministic breakage: no retries
        assert report.retried == 0
        assert len(ResultStore(tmp_path / "store")) == 0

    def test_state_corrupt_fault_across_process_boundary(self, monkeypatch):
        monkeypatch.setenv(sanitizer_mod.SANITIZE_ENV, "cheap")
        set_fault_injector(
            lambda key, attempt: "state-corrupt" if attempt == 1 else None
        )
        report = prewarm([BASE], Scale.QUICK, ("fma3d",), jobs=2, retries=0)
        assert report.failed == 1
        assert report.failures[0].error == "InvariantViolation"
        assert "invariant" in report.failures[0].message


class TestValidationBeforeStore:
    def test_invalid_result_never_reaches_cache_or_store(self, monkeypatch, tmp_path):
        from repro.sim import runner

        real = runner._execute

        def mangled(trace, config, warmup):
            result = real(trace, config, warmup)
            return dataclasses.replace(
                result, core=dataclasses.replace(result.core, cycles=float("nan"))
            )

        monkeypatch.setattr(runner, "_execute", mangled)
        store = ResultStore(tmp_path / "store")
        with store_mod.use_store(store):
            with pytest.raises(CorruptResult):
                simulate("fma3d", BASE, Scale.QUICK)
        assert not _RESULT_CACHE
        assert len(ResultStore(tmp_path / "store")) == 0


class TestStallWatchdog:
    def test_stalled_worker_is_reclaimed(self):
        set_fault_injector(lambda key, attempt: "stall")
        started = time.monotonic()
        report = run_supervised(
            ["job"],
            lambda job: job,
            workers=1,
            policy=RetryPolicy(retries=0, stall_timeout=0.5, backoff_base=0.0),
            key=str,
        )
        assert report.failed == 1
        assert report.failures[0].error == "StallTimeout"
        assert "no heartbeat" in report.failures[0].message
        assert time.monotonic() - started < 30.0  # watchdog, not a 3600s hang

    def test_stall_retries_then_succeeds(self):
        set_fault_injector(lambda key, attempt: "stall" if attempt == 1 else None)
        report = run_supervised(
            ["job"],
            lambda job: job * 2,
            workers=1,
            policy=RetryPolicy(retries=1, stall_timeout=0.5, backoff_base=0.0),
            key=str,
        )
        assert report.ok
        assert report.completed == {"job": "jobjob"}
        assert report.retried == 1

    def test_heartbeating_job_survives_the_stall_window(self):
        def slow_but_alive(job):
            # Runs 3x the stall window, but proves liveness throughout.
            for step in range(6):
                time.sleep(0.25)
                emit_heartbeat(step + 1, 6, float(step))
            return "done"

        beats = []
        report = run_supervised(
            ["job"],
            slow_but_alive,
            workers=1,
            policy=RetryPolicy(retries=0, stall_timeout=0.5, backoff_base=0.0),
            key=str,
            heartbeat=lambda key, done, total, t: beats.append((key, done, total)),
        )
        assert report.ok, report.summary()
        assert report.completed == {"job": "done"}
        assert beats and all(key == "job" for key, _, _ in beats)

    def test_stall_timeout_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(stall_timeout=0.0)
        assert issubclass(StallTimeout, Exception)

    def test_inprocess_stall_surfaces_as_stall_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "inprocess")
        set_fault_injector(lambda key, attempt: "stall")
        report = prewarm([BASE], Scale.QUICK, ("fma3d",), jobs=1, retries=0)
        assert report.failed == 1
        assert report.failures[0].error == "StallTimeout"


class TestMSHRPruning:
    def test_register_with_now_prunes_completed_entries(self):
        mshr = MSHRFile(4)
        for block in range(4):
            mshr.register(block, completion=10.0 + block)
        assert len(mshr._inflight) == 4
        # At t=20 everything has completed; registering prunes them all.
        mshr.register(100, completion=30.0, now=20.0)
        assert set(mshr._inflight) == {100}

    def test_peak_occupancy_tracks_high_water_mark(self):
        mshr = MSHRFile(8)
        for block in range(5):
            mshr.register(block, completion=100.0, now=0.0)
        assert mshr.peak_occupancy == 5
        mshr.register(99, completion=300.0, now=200.0)  # reaps the five
        assert len(mshr._inflight) == 1
        assert mshr.peak_occupancy == 5  # the high-water mark survives
        mshr.clear()
        assert mshr.peak_occupancy == 0


class TestProgressMarkers:
    def test_put_get_roundtrip_last_wins(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put_progress("swim", 1000, BASE, done=100, total=1000, sim_time=50.0)
        store.put_progress("swim", 1000, BASE, done=400, total=1000, sim_time=200.0)
        marker = store.get_progress("swim", 1000, BASE)
        assert marker["done"] == 400 and marker["total"] == 1000
        # A fresh instance replays the file and still sees the last write.
        reloaded = ResultStore(tmp_path / "store")
        assert reloaded.get_progress("swim", 1000, BASE)["done"] == 400
        assert len(reloaded.progress_entries()) == 1

    def test_torn_marker_lines_are_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put_progress("swim", 1000, BASE, done=100, total=1000, sim_time=1.0)
        with store.progress_path.open("a", encoding="utf-8") as handle:
            handle.write('{"workload": "swim", "acc')  # torn mid-write
        reloaded = ResultStore(tmp_path / "store")
        assert reloaded.get_progress("swim", 1000, BASE)["done"] == 100

    def test_clear_progress_removes_markers(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put_progress("swim", 1000, BASE, done=1, total=10, sim_time=0.5)
        store.clear_progress()
        assert store.get_progress("swim", 1000, BASE) is None
        assert not store.progress_path.exists()

    def test_campaign_heartbeats_leave_markers_when_interrupted(
        self, monkeypatch, tmp_path
    ):
        """A stalled campaign leaves a progress marker; success clears it."""
        monkeypatch.setenv("REPRO_START_METHOD", "inprocess")
        store = ResultStore(tmp_path / "store")
        # Force the heartbeat path: fail the job after its (synchronous,
        # in-process) heartbeats have flowed into put_progress.
        monkeypatch.setattr(
            "repro.sim.resilience.HEARTBEAT_MIN_INTERVAL", 0.0, raising=False
        )
        with store_mod.use_store(store):
            report = prewarm([BASE], Scale.QUICK, ("fma3d",), jobs=1, retries=0)
            assert report.ok
            # Completed campaign: markers are cleared.
            assert store.progress_entries() == {}
