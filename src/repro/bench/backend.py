"""The backend benchmark: pit simulation backends against each other.

For every (workload, prefetcher) pair the benchmark runs the same
trace under the ``python`` reference backend and under each contender
backend (by default ``numpy`` plus, when the compiled extension is
available, ``native``) — each on a cold machine, taking the best of
``repeats`` timed runs.  Every arm must commit exactly the same cycles
and hierarchy statistics (enforced here and by
``benchmarks/test_backend_perf.py``); the throughput ratios are the
backend layer's speedups.  Like the hot-path bench, the ratios compare
arms timed on the same interpreter and host, so they are comparable
across machines even though raw accesses/sec are not.

Methodology notes:

* Arms share one trace object, so the batch engines' per-trace plane
  cache (:mod:`repro.backend.vector.engine`) is warm after the first
  repeat — the reported number is steady-state throughput, matching
  how campaigns re-simulate one trace under many configurations.
* Each cell records every contender's batch coverage (the fraction of
  accesses stepped in batches).  Coverage is the speedup's ceiling:
  accesses outside a batch run through the scalar epilogue.
* The ``native`` engine times its compiled epilogue internally
  (``engine_stats["epilogue_ns"]``), so its cells also report the
  batch-vs-epilogue wall-time split — where a cell's remaining time
  goes once the epilogue is compiled.  The numpy engine's epilogue is
  interleaved Python and not separately clocked, so its split is null.

The result is written to ``BENCH_backend.json``; the committed copy at
the repository root is the baseline the CI backend-parity job compares
against.

Schema history: v1 had a single hard-wired contender with flat
``speedup``/``batch_coverage`` keys per row; v2 nests one record per
contender under ``contenders`` and adds the wall-time split.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from repro.backend import available_backends, get_backend
from repro.memory import MemoryHierarchy
from repro.sim.config import SimulationConfig
from repro.workloads import Scale, Trace, generate

__all__ = [
    "DEFAULT_PREFETCHERS",
    "DEFAULT_WORKLOADS",
    "SCHEMA",
    "default_contenders",
    "run_backend_bench",
]

#: schema tag embedded in every result file (bump on layout changes).
SCHEMA = "repro-tcp/backend-bench/v2"

#: the fig11-mix defaults, matching the hot-path bench: a dense-stride
#: scientific workload, a pointer-chasing memory-bound one, and an
#: irregular instruction-heavy one, each under no prefetcher, the
#: next-line baseline, and the paper's TCP-8K.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("swim", "mcf", "gcc")
DEFAULT_PREFETCHERS: Tuple[str, ...] = ("none", "nextline", "tcp-8k")


def default_contenders() -> Tuple[str, ...]:
    """The arms to pit against the reference on this host: ``numpy``
    always, plus ``native`` when the compiled extension loads (a
    native arm that silently fell back to numpy would just time numpy
    twice and report a misleading three-way comparison)."""
    from repro.backend.native import build

    if build.load() is not None:
        return ("numpy", "native")
    return ("numpy",)


def _check_backend_name(role: str, name: str) -> None:
    if name not in available_backends():
        registered = ", ".join(available_backends())
        raise ValueError(
            f"unknown {role} backend {name!r} "
            f"(registered backends: {registered})"
        )


def _time_backend(
    backend_name: str, trace: Trace, config: SimulationConfig
):
    """One cold run under ``backend_name``; returns (seconds, result,
    hierarchy, engine_stats)."""
    backend = get_backend(backend_name)
    hierarchy = MemoryHierarchy(config.hierarchy)
    hierarchy.attach_prefetcher(config.build_prefetcher())
    started = time.perf_counter()
    result = backend.run(trace, hierarchy, config.core)
    elapsed = time.perf_counter() - started
    stats = dict(getattr(backend, "last_engine_stats", None) or {})
    return elapsed, result, hierarchy, stats


def _best_of(runs: int, backend_name: str, trace: Trace, config: SimulationConfig):
    """Fastest of ``runs`` cold runs (best-of, not mean-of: scheduling
    noise only ever adds time).  The engine stats reported are the
    winning run's, so per-run clocks (the native epilogue split) match
    the elapsed time they are reported against."""
    best = float("inf")
    result = hierarchy = None
    stats: Dict[str, object] = {}
    for _ in range(runs):
        elapsed, run_res, run_hier, run_stats = _time_backend(
            backend_name, trace, config
        )
        if elapsed < best:
            best, result, hierarchy, stats = elapsed, run_res, run_hier, run_stats
    return best, result, hierarchy, stats


def _geomean(values: Sequence[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0


def run_backend_bench(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    prefetchers: Sequence[str] = DEFAULT_PREFETCHERS,
    scale: Scale = Scale.STANDARD,
    repeats: int = 3,
    baseline: str = "python",
    contenders: Optional[Sequence[str]] = None,
    output: Optional[str] = None,
    log: Optional[TextIO] = None,
) -> Dict[str, object]:
    """Run the backend benchmark; return (and optionally write) results.

    Parameters
    ----------
    workloads, prefetchers:
        The (workload, prefetcher) grid to time.
    scale:
        Trace length per run (``Scale.STANDARD`` = 120 000 accesses).
    repeats:
        Timed runs per cell per backend; the fastest is reported.
    baseline:
        The reference arm every contender is compared against
        (default: the ``python`` interpreted loop).
    contenders:
        Backend names to pit against the baseline.  Default:
        :func:`default_contenders` — ``numpy`` plus ``native`` when
        the compiled extension is available on this host.
    output:
        Path to write the JSON document to (``BENCH_backend.json``).
    log:
        Stream for one progress line per cell and arm
        (e.g. ``sys.stdout``).
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if contenders is None:
        contenders = default_contenders()
    contenders = tuple(contenders)
    if not contenders:
        raise ValueError("need at least one contender backend")
    _check_backend_name("baseline", baseline)
    for name in contenders:
        _check_backend_name("contender", name)
        if name == baseline:
            raise ValueError(f"contender {name!r} is the baseline")

    results: List[Dict[str, object]] = []
    for workload in workloads:
        trace = generate(workload, scale)
        accesses = len(trace)
        for pf_name in prefetchers:
            config = SimulationConfig.for_prefetcher(pf_name)
            base_s, base_res, base_hier, _ = _best_of(
                repeats, baseline, trace, config
            )
            entry: Dict[str, object] = {
                "workload": workload,
                "prefetcher": pf_name,
                "accesses": accesses,
                f"{baseline}_accesses_per_sec": accesses / base_s,
                "cycles": base_res.cycles,
                "contenders": {},
            }
            for cont in contenders:
                cont_s, cont_res, cont_hier, engine_stats = _best_of(
                    repeats, cont, trace, config
                )
                if base_res.cycles != cont_res.cycles:
                    raise RuntimeError(
                        f"backend divergence on {workload}/{pf_name}: "
                        f"{baseline} committed {base_res.cycles!r} cycles, "
                        f"{cont} {cont_res.cycles!r}"
                    )
                if base_hier.stats != cont_hier.stats:
                    raise RuntimeError(
                        f"backend divergence on {workload}/{pf_name}: "
                        f"hierarchy statistics differ between {baseline} "
                        f"and {cont}"
                    )
                batched = engine_stats.get("batched_accesses")
                coverage = (
                    batched / accesses if isinstance(batched, int) else None
                )
                epilogue_ns = engine_stats.get("epilogue_ns")
                if isinstance(epilogue_ns, int):
                    epilogue_s: Optional[float] = epilogue_ns / 1e9
                    batch_s: Optional[float] = max(cont_s - epilogue_s, 0.0)
                else:
                    epilogue_s = batch_s = None
                arm: Dict[str, object] = {
                    "accesses_per_sec": accesses / cont_s,
                    "speedup": base_s / cont_s,
                    "batch_coverage": coverage,
                    "fallback": engine_stats.get("fallback"),
                    "batch_seconds": batch_s,
                    "epilogue_seconds": epilogue_s,
                }
                entry["contenders"][cont] = arm  # type: ignore[index]
                if log is not None:
                    cov = f"{coverage:.0%}" if coverage is not None else "n/a"
                    split = (
                        f", epilogue {epilogue_s / cont_s:.0%} of wall"
                        if epilogue_s is not None and cont_s > 0
                        else ""
                    )
                    log.write(
                        f"{workload:8s} {pf_name:10s} {cont:6s} "
                        f"{arm['accesses_per_sec']:10.0f} acc/s  "
                        f"({baseline} "
                        f"{entry[f'{baseline}_accesses_per_sec']:10.0f}, "
                        f"speedup {arm['speedup']:.2f}x, batched {cov}"
                        f"{split})\n"
                    )
                    log.flush()
            results.append(entry)

    speedups_by_contender: Dict[str, Dict[str, float]] = {}
    for cont in contenders:
        values = [
            entry["contenders"][cont]["speedup"]  # type: ignore[index]
            for entry in results
        ]
        speedups_by_contender[cont] = {
            "geomean_speedup": _geomean(values),
            "min_speedup": min(values) if values else 0.0,
        }
    # The headline arm: the last contender (native when available).
    # The legacy top-level geomean/min keys mirror it so v1 consumers
    # of the summary line keep working.
    primary = contenders[-1]
    document: Dict[str, object] = {
        "schema": SCHEMA,
        "scale": scale.name.lower(),
        "repeats": repeats,
        "baseline_backend": baseline,
        "contender_backends": list(contenders),
        "primary_contender": primary,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "results": results,
        "speedups": speedups_by_contender,
        "geomean_speedup": speedups_by_contender[primary]["geomean_speedup"],
        "min_speedup": speedups_by_contender[primary]["min_speedup"],
    }
    if output is not None:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=False)
            handle.write("\n")
    return document
