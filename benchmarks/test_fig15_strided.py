"""Regenerate Figure 15: percentage of strided three-tag sequences."""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig15_strided_sequences(benchmark, scale, strict):
    result = run_once(benchmark, run_experiment, "fig15", scale)
    print()
    print(result.render())

    fractions = result.series["strided_fraction"]
    assert all(0.0 <= value <= 100.0 for value in fractions.values())
    if strict:
        # The paper's shape: swim is the clear maximum (>12%), most
        # benchmarks stay tiny (<2%).
        assert fractions["swim"] == max(fractions.values())
        assert fractions["swim"] > 8.0
        small = sum(1 for value in fractions.values() if value < 3.0)
        assert small >= len(fractions) // 2, fractions
