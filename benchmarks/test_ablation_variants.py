"""Ablation: the paper's Section 6 future-work TCP variants.

* Multi-target PHT entries (after Joseph & Grunwald): higher coverage,
  more traffic.
* Stride-filtered TCP: a tiny per-set stride detector handles strided
  sequences so the shared PHT keeps its capacity for irregular ones.
* Confidence-filtered TCP: two-bit counters suppress unconfirmed
  predictions (the branch-predictor lesson of Section 6).
* Lookahead TCP: the PHT is walked transitively two steps per miss.
"""

from conftest import run_once

from repro.sim import SimulationConfig, simulate
from repro.util.stats import geometric_mean
from repro.util.tables import format_table

WORKLOADS = ("swim", "applu", "art", "lucas", "mgrid", "mcf")
VARIANTS = ("tcp-8k", "tcp-multi2", "tcp-stride", "tcp-conf", "tcp-look2")


def test_ablation_section6_variants(benchmark, scale):
    def study():
        rows = []
        for name in VARIANTS:
            ratios = []
            traffic = 0
            for workload in WORKLOADS:
                base = simulate(workload, SimulationConfig.baseline(), scale)
                result = simulate(workload, SimulationConfig.for_prefetcher(name), scale)
                ratios.append(result.ipc / base.ipc)
                traffic += result.memory.prefetches_issued
            gain = (geometric_mean(ratios) - 1.0) * 100.0
            rows.append([name, gain, traffic])
        return rows

    rows = run_once(benchmark, study)
    print()
    print(format_table(
        ["variant", "geomean IPC gain %", "prefetches issued"],
        rows,
        title="Section 6 variant ablation",
    ))
    gains = {row[0]: row[1] for row in rows}
    traffic = {row[0]: row[2] for row in rows}
    assert all(value > 0 for value in gains.values())
    # Multi-target issues at least as much traffic as single-target,
    # and the confidence filter strictly reduces it.
    assert traffic["tcp-multi2"] >= traffic["tcp-8k"]
    assert traffic["tcp-conf"] <= traffic["tcp-8k"]
    # Every variant stays in the same performance class as the base TCP.
    for name in ("tcp-multi2", "tcp-stride", "tcp-conf", "tcp-look2"):
        assert gains[name] > 0.3 * gains["tcp-8k"], (name, gains)
