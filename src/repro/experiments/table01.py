"""Table 1: configuration of the simulated processor."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cpu import CoreParams
from repro.experiments.base import ExperimentResult
from repro.memory import HierarchyParams
from repro.workloads import Scale

__all__ = ["run"]


def run(
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Render the machine configuration (paper's Table 1).

    ``scale``/``benchmarks`` are accepted for registry uniformity; the
    configuration does not depend on them.
    """
    core = CoreParams()
    hierarchy = HierarchyParams()
    rows = [
        ["Instruction window", f"{core.window}-RUU, {core.lsq}-LSQ"],
        ["Issue width", f"{core.issue_width} instructions per cycle"],
        ["Load/store units", str(core.ls_units)],
        ["L1 Dcache", hierarchy.l1d.describe() + f", {hierarchy.mshr_entries} MSHRs"],
        ["L1 Icache", hierarchy.l1i.describe()],
        ["L1/L2 bus", f"{hierarchy.l1l2_bus_bytes_per_cycle}-byte wide, core clock"],
        ["L2 I/D", f"each {hierarchy.l2.describe()}, {hierarchy.l2_hit_latency}-cycle latency"],
        ["Memory latency", f"{hierarchy.memory_latency} cycles"],
        ["Memory concurrency", f"{hierarchy.memory_concurrency} overlapping accesses"],
    ]
    return ExperimentResult(
        experiment="table1",
        title="Configuration of simulated processor",
        headers=["parameter", "value"],
        rows=rows,
        notes=[
            "Matches the paper's Table 1 except the explicit memory "
            "concurrency limit and split address/data bus channels, which "
            "the paper's bus model embeds implicitly."
        ],
    )
