"""Figure 1: potential IPC improvement with an ideal L2 data cache.

For every benchmark: simulate the baseline machine and a machine whose
L2 data cache always hits, and report the IPC improvement.  This is
"the target we aim for in our memory optimizations" (Section 2) and
defines the benchmark ordering used by every later figure.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, suite_order
from repro.sim import SimulationConfig, simulate
from repro.workloads import Scale

__all__ = ["run"]


def run(
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = suite_order(benchmarks)
    rows = []
    series = {"potential": {}}
    for name in names:
        base = simulate(name, SimulationConfig.baseline(), scale)
        ideal = simulate(name, SimulationConfig.ideal_l2(), scale)
        potential = ideal.improvement_over(base)
        series["potential"][name] = potential
        rows.append([name, base.ipc, ideal.ipc, potential])

    ordered = sorted(series["potential"].items(), key=lambda item: item[1])
    notes = [
        "Benchmarks sorted by measured potential: "
        + ", ".join(name for name, _ in ordered),
        "The paper's Figure 1 spans roughly 0-400%; the suite-wide spread "
        f"here is {ordered[0][1]:.1f}% to {ordered[-1][1]:.1f}%.",
    ]
    return ExperimentResult(
        experiment="fig1",
        title="Potential IPC improvement with an ideal L2 data cache",
        headers=["benchmark", "base IPC", "ideal-L2 IPC", "improvement %"],
        rows=rows,
        series=series,
        notes=notes,
    )
