"""Tests for the parallel result-cache prewarmer (repro.sim.parallel)."""

import pytest

from repro.sim import SimulationConfig, experiment_configs, prewarm, simulate
from repro.sim.runner import _RESULT_CACHE, clear_cache
from repro.workloads import Scale

BENCHES = ("fma3d", "eon")


class TestExperimentConfigs:
    def test_covers_main_experiments(self):
        labels = {config.resolved_label() for config in experiment_configs()}
        assert {"base", "ideal-l2", "tcp-8k", "tcp-8m", "dbcp-2m", "hybrid-8k"} <= labels


class TestPrewarm:
    def test_inprocess_prewarm_fills_cache(self):
        clear_cache()
        configs = [SimulationConfig.baseline()]
        executed = prewarm(configs, Scale.QUICK, BENCHES, jobs=1)
        assert executed == 2
        for name in BENCHES:
            assert (name, Scale.QUICK.accesses, configs[0]) in _RESULT_CACHE

    def test_prewarm_skips_cached(self):
        clear_cache()
        configs = [SimulationConfig.baseline()]
        prewarm(configs, Scale.QUICK, BENCHES, jobs=1)
        assert prewarm(configs, Scale.QUICK, BENCHES, jobs=1) == 0

    def test_parallel_matches_serial(self):
        configs = [SimulationConfig.for_prefetcher("tcp-8k")]
        clear_cache()
        prewarm(configs, Scale.QUICK, BENCHES, jobs=2)
        parallel_ipc = {
            name: simulate(name, configs[0], Scale.QUICK).ipc for name in BENCHES
        }
        clear_cache()
        serial_ipc = {
            name: simulate(name, configs[0], Scale.QUICK).ipc for name in BENCHES
        }
        assert parallel_ipc == serial_ipc

    def test_experiments_consume_prewarmed_results(self):
        from repro.experiments import run_experiment

        clear_cache()
        prewarm(
            [SimulationConfig.baseline(), SimulationConfig.ideal_l2()],
            Scale.QUICK, BENCHES, jobs=2,
        )
        result = run_experiment("fig1", Scale.QUICK, BENCHES)
        assert len(result.rows) == 2
