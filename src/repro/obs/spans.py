"""Span tracing: where a run's wall-clock time actually goes.

A *span* is one named stage with a begin and an end —
``span("generate")``, ``span("simulate")``, ``span("store")`` — emitted
as JSON events (schema ``repro-tcp/obs/v1``) to the process's *span
sink*.  When no sink is installed, :func:`span` returns a shared no-op
context manager: disabled tracing costs one global read per stage (a
handful per simulation), never anything per access.

Event shapes (one JSON object per line in a trace file):

``begin``
    ``{"schema", "ev": "begin", "span", "name", "t", "pid", "parent",
    ...attrs}`` — ``span`` is a process-unique id (``"<pid>-<n>"``),
    ``parent`` the enclosing span's id or ``None``, ``t`` wall-clock
    seconds (``time.time``), extra keyword attrs inlined.
``end``
    ``{"schema", "ev": "end", "span", "name", "t", "pid", "dur",
    "status"}`` — ``dur`` from a monotonic clock, ``status`` one of
    ``ok`` / ``error`` / ``aborted``; a close synthesized by the
    campaign supervisor for a crashed worker additionally carries
    ``"synthesized": true``.
``metrics``
    ``{"schema", "ev": "metrics", "name", "t", "pid", "metrics"}`` — a
    :meth:`~repro.obs.metrics.MetricsRegistry.to_dict` snapshot riding
    in the trace stream so one file carries both signals.

Campaign workers install a sink that forwards events over the existing
duplex-pipe protocol (:mod:`repro.sim.resilience`); the parent folds
them into a :class:`TraceCollector` together with its own spans and
writes one merged, chronologically ordered trace per campaign.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union
from contextlib import contextmanager

__all__ = [
    "SCHEMA",
    "TraceCollector",
    "span",
    "span_sink",
    "set_span_sink",
    "synthesize_abort",
    "use_span_sink",
]

#: schema tag stamped on every event line (bump on layout changes).
SCHEMA = "repro-tcp/obs/v1"

#: sink signature: receives one event dict, must not mutate it.
SpanSink = Callable[[Dict[str, Any]], None]

_SINK: Optional[SpanSink] = None

#: per-process monotonic span-id counter.
_NEXT_ID = 0

#: stack of open span ids in this process (the sim is single-threaded;
#: nesting is lexical).
_OPEN_STACK: List[str] = []


def set_span_sink(sink: Optional[SpanSink]) -> Optional[SpanSink]:
    """Install the event sink for this process; returns the old one."""
    global _SINK
    previous = _SINK
    _SINK = sink
    return previous


def span_sink() -> Optional[SpanSink]:
    """The active sink, or ``None`` when tracing is disabled."""
    return _SINK


@contextmanager
def use_span_sink(sink: Optional[SpanSink]) -> Iterator[Optional[SpanSink]]:
    """Context manager: temporarily install ``sink``."""
    previous = set_span_sink(sink)
    try:
        yield sink
    finally:
        set_span_sink(previous)


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NOOP = _NoopSpan()


class _Span:
    """A live span: emits ``begin`` on enter, ``end`` on exit."""

    __slots__ = ("name", "attrs", "span_id", "_t0", "_mono0")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = ""
        self._t0 = 0.0
        self._mono0 = 0.0

    def __enter__(self) -> "_Span":
        global _NEXT_ID
        sink = _SINK
        if sink is None:  # sink removed between span() and enter: no-op
            return self
        _NEXT_ID += 1
        self.span_id = f"{os.getpid()}-{_NEXT_ID}"
        self._t0 = time.time()
        self._mono0 = time.perf_counter()
        event: Dict[str, Any] = {
            "schema": SCHEMA,
            "ev": "begin",
            "span": self.span_id,
            "name": self.name,
            "t": self._t0,
            "pid": os.getpid(),
            "parent": _OPEN_STACK[-1] if _OPEN_STACK else None,
        }
        for key, value in self.attrs.items():
            event.setdefault(key, value)
        _OPEN_STACK.append(self.span_id)
        sink(event)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if not self.span_id:
            return
        if _OPEN_STACK and _OPEN_STACK[-1] == self.span_id:
            _OPEN_STACK.pop()
        sink = _SINK
        if sink is None:
            return
        sink(
            {
                "schema": SCHEMA,
                "ev": "end",
                "span": self.span_id,
                "name": self.name,
                "t": time.time(),
                "pid": os.getpid(),
                "dur": time.perf_counter() - self._mono0,
                "status": "ok" if exc_type is None else "error",
            }
        )


def span(name: str, **attrs: Any) -> Union[_NoopSpan, _Span]:
    """A traced stage: ``with span("simulate", workload="swim"): ...``.

    With no sink installed this returns a shared no-op object — the
    disabled cost is one global read and one branch per *stage*.
    """
    if _SINK is None:
        return _NOOP
    return _Span(name, attrs)


def emit_metrics(name: str, snapshot: Dict[str, Any]) -> None:
    """Emit a metrics snapshot into the trace stream (no-op unsinked)."""
    sink = _SINK
    if sink is None:
        return
    sink(
        {
            "schema": SCHEMA,
            "ev": "metrics",
            "name": name,
            "t": time.time(),
            "pid": os.getpid(),
            "metrics": snapshot,
        }
    )


def synthesize_abort(begin_event: Dict[str, Any], t: Optional[float] = None) -> Dict[str, Any]:
    """Build the ``aborted`` close for a span whose owner died.

    The campaign supervisor calls this from its recycle path with the
    forwarded ``begin`` event of each span a crashed worker left open;
    the synthesized ``end`` keeps the trace well-formed (every begin
    has exactly one close) and marks the loss explicitly rather than
    leaving a dangling span.
    """
    now = time.time() if t is None else t
    return {
        "schema": SCHEMA,
        "ev": "end",
        "span": begin_event["span"],
        "name": begin_event.get("name", "?"),
        "t": now,
        "pid": begin_event.get("pid"),
        "dur": max(0.0, now - float(begin_event.get("t", now))),
        "status": "aborted",
        "synthesized": True,
    }


class TraceCollector:
    """Accumulates events from this process and forwarded workers.

    ``sink`` is installable as the process span sink; ``add`` folds in
    events forwarded over a worker pipe.  :meth:`write` sorts the
    buffer chronologically (by wall-clock ``t``, then span id for a
    stable tie-break) and writes one JSONL file — the merged campaign
    trace.
    """

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def sink(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    add = sink

    def open_spans(self) -> Dict[str, Dict[str, Any]]:
        """Begin events not yet matched by an end, keyed by span id."""
        open_by_id: Dict[str, Dict[str, Any]] = {}
        for event in self.events:
            kind = event.get("ev")
            if kind == "begin":
                open_by_id[event.get("span")] = event
            elif kind == "end":
                open_by_id.pop(event.get("span"), None)
        return open_by_id

    def close_aborted(self, span_ids: Optional[Iterator[str]] = None) -> int:
        """Synthesize ``aborted`` closes for open spans; returns count.

        With ``span_ids`` the closes are limited to those ids (the
        supervisor passes the spans owned by one dead worker); without,
        every open span is closed — the end-of-campaign sweep.
        """
        open_by_id = self.open_spans()
        if span_ids is not None:
            wanted = set(span_ids)
            open_by_id = {
                sid: ev for sid, ev in open_by_id.items() if sid in wanted
            }
        for begin in open_by_id.values():
            self.events.append(synthesize_abort(begin))
        return len(open_by_id)

    def sorted_events(self) -> List[Dict[str, Any]]:
        return sorted(
            self.events,
            key=lambda e: (e.get("t", 0.0), str(e.get("span", ""))),
        )

    def write(self, path: Union[str, Path]) -> Path:
        """Write the merged chronologically ordered JSONL trace."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".{os.getpid()}.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for event in self.sorted_events():
                handle.write(
                    json.dumps(event, separators=(",", ":"), allow_nan=False)
                )
                handle.write("\n")
        os.replace(tmp, path)
        return path
