"""Hardware prefetchers: the common interface and the baselines.

The paper compares TCP against the Dead-Block Correlating Prefetcher
(DBCP, Lai et al. ISCA'01) and discusses stride prefetchers (Baer &
Chen), stream buffers (Jouppi), and Markov prefetchers (Joseph &
Grunwald) as related work.  All of them are implemented here behind one
interface (:class:`repro.prefetchers.base.Prefetcher`) so the simulator
and the benchmark harness can swap them freely.  TCP itself — the
paper's contribution — lives in :mod:`repro.core`.
"""

from repro.prefetchers.base import (
    AccessEvent,
    EvictionEvent,
    MissEvent,
    Prefetcher,
    PrefetchRequest,
)
from repro.prefetchers.dbcp import DBCPConfig, DeadBlockCorrelatingPrefetcher
from repro.prefetchers.markov import MarkovConfig, MarkovPrefetcher
from repro.prefetchers.nextline import NextLinePrefetcher
from repro.prefetchers.null import NullPrefetcher
from repro.prefetchers.stream import StreamBufferConfig, StreamBufferPrefetcher
from repro.prefetchers.stride import StrideConfig, StridePrefetcher

__all__ = [
    "AccessEvent",
    "DBCPConfig",
    "DeadBlockCorrelatingPrefetcher",
    "EvictionEvent",
    "MarkovConfig",
    "MarkovPrefetcher",
    "MissEvent",
    "NextLinePrefetcher",
    "NullPrefetcher",
    "Prefetcher",
    "PrefetchRequest",
    "StreamBufferConfig",
    "StreamBufferPrefetcher",
    "StrideConfig",
    "StridePrefetcher",
]
