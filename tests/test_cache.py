"""Tests for repro.memory.cache.SetAssociativeCache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.address import CacheGeometry
from repro.memory.cache import CacheLine, SetAssociativeCache


def small_dm() -> SetAssociativeCache:
    """4-set direct-mapped cache with 32B blocks (128B total)."""
    return SetAssociativeCache(CacheGeometry(128, 1, 32), "dm")


def small_assoc(ways: int = 2) -> SetAssociativeCache:
    return SetAssociativeCache(CacheGeometry(128 * ways, ways, 32), "sa")


class TestDirectMapped:
    def test_miss_then_hit(self):
        cache = small_dm()
        assert cache.lookup(0, 7, False, 0.0) is None
        cache.fill(0, 7, 1.0)
        line = cache.lookup(0, 7, False, 2.0)
        assert line is not None
        assert line.last_access == 2.0

    def test_conflict_eviction(self):
        cache = small_dm()
        cache.fill(0, 1, 0.0)
        eviction = cache.fill(0, 2, 1.0)
        assert eviction is not None
        assert eviction.tag == 1
        assert cache.lookup(0, 1, False, 2.0) is None
        assert cache.lookup(0, 2, False, 2.0) is not None

    def test_fill_empty_set_no_eviction(self):
        cache = small_dm()
        assert cache.fill(1, 5, 0.0) is None

    def test_write_sets_dirty(self):
        cache = small_dm()
        cache.fill(0, 3, 0.0)
        cache.lookup(0, 3, True, 1.0)
        assert cache.probe(0, 3).dirty

    def test_refill_resident_keeps_metadata(self):
        cache = small_dm()
        cache.fill(0, 3, 0.0)
        cache.lookup(0, 3, True, 1.0)  # dirty
        eviction = cache.fill(0, 3, 2.0, prefetched=True)
        assert eviction is None
        line = cache.probe(0, 3)
        assert line.dirty  # not reset
        assert not line.prefetched  # a prefetch onto a demand block

    def test_probe_no_side_effects(self):
        cache = small_dm()
        cache.fill(0, 3, 0.0)
        line = cache.probe(0, 3)
        assert line.last_access == 0.0
        assert cache.probe(0, 99) is None

    def test_invalidate(self):
        cache = small_dm()
        cache.fill(0, 3, 0.0)
        line = cache.invalidate(0, 3)
        assert line is not None
        assert cache.probe(0, 3) is None
        assert cache.invalidate(0, 3) is None

    def test_victim_line(self):
        cache = small_dm()
        assert cache.victim_line(0) is None
        cache.fill(0, 3, 0.0)
        assert cache.victim_line(0).tag == 3


class TestSetAssociative:
    def test_lru_eviction_order(self):
        cache = small_assoc(2)
        cache.fill(0, 1, 0.0)
        cache.fill(0, 2, 1.0)
        cache.lookup(0, 1, False, 2.0)  # 2 becomes LRU
        eviction = cache.fill(0, 3, 3.0)
        assert eviction.tag == 2

    def test_no_eviction_with_free_way(self):
        cache = small_assoc(2)
        assert cache.fill(0, 1, 0.0) is None
        assert cache.fill(0, 2, 1.0) is None
        assert cache.victim_line(0) is None or True  # set now full

    def test_victim_line_none_when_free_way(self):
        cache = small_assoc(2)
        cache.fill(0, 1, 0.0)
        assert cache.victim_line(0) is None
        cache.fill(0, 2, 1.0)
        assert cache.victim_line(0).tag == 1

    def test_resident_lines_order(self):
        cache = small_assoc(4)
        for tag in (1, 2, 3):
            cache.fill(0, tag, float(tag))
        tags = [line.tag for line in cache.resident_lines(0)]
        assert tags == [1, 2, 3]

    def test_occupancy(self):
        cache = small_assoc(2)
        assert cache.occupancy() == 0
        cache.fill(0, 1, 0.0)
        cache.fill(1, 1, 0.0)
        assert cache.occupancy() == 2

    def test_prefetched_flag_set_on_fill(self):
        cache = small_assoc(2)
        cache.fill(0, 1, 0.0, prefetched=True)
        assert cache.probe(0, 1).prefetched

    def test_storage_bytes(self):
        assert small_assoc(4).storage_bytes() == 512


class TestCacheLine:
    def test_repr_flags(self):
        line = CacheLine(0xAB, dirty=True, prefetched=True)
        assert "DP" in repr(line)

    def test_defaults(self):
        line = CacheLine(1, 5.0)
        assert line.fill_time == 5.0
        assert line.last_access == 5.0
        assert not line.dirty and not line.prefetched
        assert line.signature == 0


class TestPropertyBased:
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 6)), max_size=80),
           st.integers(min_value=1, max_value=4))
    def test_occupancy_bounded_and_residency_consistent(self, accesses, ways):
        cache = SetAssociativeCache(CacheGeometry(128 * ways, ways, 32), "p")
        resident = {}
        time = 0.0
        for index, tag in accesses:
            time += 1.0
            if cache.lookup(index, tag, False, time) is None:
                eviction = cache.fill(index, tag, time)
                if eviction is not None:
                    resident.pop((eviction.set_index, eviction.tag), None)
                resident[(index, tag)] = True
            # invariants
            assert cache.occupancy() == len(resident)
            for set_index in range(4):
                assert len(cache.resident_lines(set_index)) <= ways
        for (index, tag) in resident:
            assert cache.probe(index, tag) is not None


class TestLruInsertFill:
    def test_prefetch_fill_at_lru_evicted_first(self):
        cache = small_assoc(2)
        cache.fill(0, 1, 0.0)
        cache.fill(0, 2, 1.0)
        cache.lookup(0, 1, False, 2.0)  # order now: 2 (LRU), 1 (MRU)
        # a low-priority fill displaces the LRU line and takes its place
        eviction = cache.fill(0, 9, 3.0, prefetched=True, lru_insert=True)
        assert eviction.tag == 2
        # the next fill evicts the prefetched line, not the demand line
        eviction = cache.fill(0, 5, 4.0)
        assert eviction.tag == 9
        assert cache.probe(0, 1) is not None

    def test_lru_insert_on_resident_block_keeps_recency(self):
        cache = small_assoc(2)
        cache.fill(0, 1, 0.0)
        cache.fill(0, 2, 1.0)
        assert cache.fill(0, 2, 2.0, lru_insert=True) is None
        eviction = cache.fill(0, 3, 3.0)
        assert eviction.tag == 1  # tag 2 kept its MRU position

    def test_direct_mapped_ignores_flag(self):
        cache = small_dm()
        cache.fill(0, 1, 0.0, lru_insert=True)
        assert cache.probe(0, 1) is not None
