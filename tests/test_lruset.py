"""Tests for repro.util.lruset — including a property-based model check."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.lruset import LRUSet


class TestBasics:
    def test_empty(self):
        lru = LRUSet(4)
        assert len(lru) == 0
        assert lru.get(1) is None
        assert lru.peek(1) is None
        assert lru.victim_key() is None

    def test_put_and_get(self):
        lru = LRUSet(2)
        assert lru.put("a", 1) is None
        assert lru.get("a") == 1
        assert "a" in lru

    def test_zero_ways_rejected(self):
        with pytest.raises(ValueError):
            LRUSet(0)

    def test_update_existing_key_no_eviction(self):
        lru = LRUSet(1)
        lru.put("a", 1)
        assert lru.put("a", 2) is None
        assert lru.get("a") == 2

    def test_eviction_order_is_lru(self):
        lru = LRUSet(2)
        lru.put("a", 1)
        lru.put("b", 2)
        victim = lru.put("c", 3)
        assert victim == ("a", 1)
        assert "a" not in lru
        assert "b" in lru and "c" in lru

    def test_get_promotes_to_mru(self):
        lru = LRUSet(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # now b is LRU
        victim = lru.put("c", 3)
        assert victim == ("b", 2)

    def test_peek_does_not_promote(self):
        lru = LRUSet(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.peek("a")  # a stays LRU
        victim = lru.put("c", 3)
        assert victim == ("a", 1)

    def test_touch_promotes(self):
        lru = LRUSet(2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.touch("a")
        victim = lru.put("c", 3)
        assert victim == ("b", 2)

    def test_touch_missing_returns_false(self):
        lru = LRUSet(2)
        assert not lru.touch("nope")

    def test_pop(self):
        lru = LRUSet(2)
        lru.put("a", 1)
        assert lru.pop("a") == 1
        assert lru.pop("a") is None
        assert len(lru) == 0

    def test_victim_key_is_lru(self):
        lru = LRUSet(3)
        for key in "abc":
            lru.put(key, key)
        assert lru.victim_key() == "a"
        lru.get("a")
        assert lru.victim_key() == "b"

    def test_items_lru_to_mru(self):
        lru = LRUSet(3)
        for key in "abc":
            lru.put(key, key.upper())
        assert list(lru.items()) == [("a", "A"), ("b", "B"), ("c", "C")]

    def test_clear(self):
        lru = LRUSet(2)
        lru.put("a", 1)
        lru.clear()
        assert len(lru) == 0

    def test_capacity_never_exceeded(self):
        lru = LRUSet(3)
        for n in range(100):
            lru.put(n, n)
            assert len(lru) <= 3


@st.composite
def operations(draw):
    ops = draw(st.lists(
        st.tuples(st.sampled_from(["put", "get", "pop", "touch"]),
                  st.integers(min_value=0, max_value=9)),
        max_size=60,
    ))
    return ops


class TestAgainstModel:
    """LRUSet must behave exactly like an ordered-dict reference model."""

    @given(st.integers(min_value=1, max_value=5), operations())
    def test_matches_reference(self, ways, ops):
        from collections import OrderedDict

        lru = LRUSet(ways)
        model = OrderedDict()
        for op, key in ops:
            if op == "put":
                victim = lru.put(key, key * 10)
                if key in model:
                    model.move_to_end(key)
                    model[key] = key * 10
                    assert victim is None
                else:
                    expected_victim = None
                    if len(model) >= ways:
                        expected_victim = model.popitem(last=False)
                    model[key] = key * 10
                    assert victim == expected_victim
            elif op == "get":
                value = lru.get(key)
                if key in model:
                    model.move_to_end(key)
                    assert value == model[key]
                else:
                    assert value is None
            elif op == "pop":
                assert lru.pop(key) == model.pop(key, None)
            else:  # touch
                touched = lru.touch(key)
                assert touched == (key in model)
                if key in model:
                    model.move_to_end(key)
            assert list(lru) == list(model)


class TestPutLru:
    def test_inserted_entry_is_next_victim(self):
        lru = LRUSet(3)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put_lru("p", 99)
        assert lru.victim_key() == "p"

    def test_put_lru_evicts_old_lru_when_full(self):
        lru = LRUSet(2)
        lru.put("a", 1)
        lru.put("b", 2)
        victim = lru.put_lru("p", 99)
        assert victim == ("a", 1)
        assert lru.victim_key() == "p"
        assert "b" in lru

    def test_put_lru_existing_key_keeps_recency(self):
        lru = LRUSet(3)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put_lru("b", 20)  # update value, keep MRU position
        assert lru.victim_key() == "a"
        assert lru.peek("b") == 20

    def test_promotion_on_get_still_works(self):
        lru = LRUSet(2)
        lru.put("a", 1)
        lru.put_lru("p", 9)
        assert lru.get("p") == 9  # touch promotes
        assert lru.victim_key() == "a"

    def test_capacity_respected(self):
        lru = LRUSet(2)
        for n in range(10):
            lru.put_lru(n, n)
            assert len(lru) <= 2
