"""Main memory model.

The paper's machine has a flat 70-cycle memory latency (Table 1) behind
the L2/memory bus.  We model exactly that — a fixed access latency plus
bus occupancy for the data transfer — with an optional bank-level
concurrency limit so that a burst of prefetches cannot fetch unbounded
blocks in parallel (a mild but realistic throttle on prefetch storms).
"""

from __future__ import annotations

from typing import List

from repro.engine.component import Component
from repro.engine.events import MemoryEvent
from repro.memory.bus import Bus

__all__ = ["MainMemory"]


class MainMemory(Component):
    """Fixed-latency DRAM behind a split-transaction bus.

    The L2/memory link is modelled as two channels, matching real
    split-transaction buses: a narrow *address* channel carrying
    commands (one beat each) and a *data* channel carrying block
    transfers.  Splitting them matters for correctness of the queueing
    model: commands are issued at request time while data returns are
    scheduled ``latency`` cycles later, so a single FIFO for both would
    make new commands spuriously queue behind earlier fetches' future
    data beats.

    Parameters
    ----------
    latency:
        Cycles from command acceptance to data available (the paper's
        70-cycle memory).
    data_bus:
        The data channel; every fetch/writeback occupies it for the
        block transfer.
    addr_bus:
        The command channel (one beat per request).
    max_concurrent:
        Maximum overlapping DRAM accesses (channel/bank parallelism).
    block_bytes:
        Default transfer size for event-driven ``access`` calls (the
        L2 block size in the paper's hierarchy).
    """

    def __init__(
        self,
        latency: int,
        data_bus: Bus,
        addr_bus: Bus,
        max_concurrent: int = 8,
        block_bytes: int = 64,
    ) -> None:
        if latency <= 0:
            raise ValueError(f"memory latency must be positive, got {latency}")
        if max_concurrent <= 0:
            raise ValueError(f"concurrency must be positive, got {max_concurrent}")
        if block_bytes <= 0:
            raise ValueError(f"block size must be positive, got {block_bytes}")
        self.latency = latency
        self.data_bus = data_bus
        self.addr_bus = addr_bus
        self.max_concurrent = max_concurrent
        self.block_bytes = block_bytes
        self._completions: List[float] = []
        self.accesses = 0

    def access(self, event: MemoryEvent) -> float:
        """Component entry point: fetch the event's block.

        The outcome is the completion time of a full-block fetch of the
        default ``block_bytes`` transfer size.
        """
        return self.fetch(event.now, self.block_bytes)

    def fetch(self, now: float, block_bytes: int) -> float:
        """Fetch one block; return the completion time.

        The command arbitrates for the address channel, waits for a
        DRAM slot if all banks are busy, spends ``latency`` cycles in
        the array, and finally transfers the block over the data
        channel.
        """
        start = self.addr_bus.request(now, 0) + 1
        completions = self._completions
        if len(completions) >= self.max_concurrent:
            completions.sort()
            earliest = completions[0]
            if earliest > start:
                start = earliest
            # keep only slots still busy at the chosen start time
            self._completions = completions = [t for t in completions if t > start]
        data_ready = start + self.latency
        done = self.data_bus.transfer(data_ready, block_bytes)
        completions.append(done)
        self.accesses += 1
        return done

    def writeback(self, now: float, block_bytes: int) -> float:
        """Write a dirty block back; returns when the data transfer ends.

        Writebacks occupy the data channel (stealing bandwidth from
        fetch returns) but complete in the write buffer, so callers
        normally ignore the returned time.
        """
        return self.data_bus.transfer(now, block_bytes)

    def backlog(self, now: float) -> float:
        """Cycles of data-channel work booked beyond the earliest time a
        request issued at ``now`` could need it.

        This is the congestion signal low-priority prefetches consult:
        positive values mean demand traffic has the data channel booked
        past this request's natural slot.
        """
        horizon = now + 1 + self.latency
        return self.data_bus.next_free - horizon

    def reset(self) -> None:
        """Clear in-flight state and statistics (buses reset separately)."""
        self._completions.clear()
        self.accesses = 0
