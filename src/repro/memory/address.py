"""Cache geometry and address decomposition.

The whole paper revolves around the split of a memory address into
``tag | index | offset``: the Tag History Table is indexed by the miss
*index* and stores miss *tags*, and a predicted tag recombined with the
miss index reconstructs a full prefetch address.  This module owns that
arithmetic so every component (caches, prefetchers, analysis passes)
splits addresses identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.util.bitops import log2_exact, mask

__all__ = ["CacheGeometry"]


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache level.

    Parameters
    ----------
    size_bytes:
        Total data capacity.  Must be ``ways * block_bytes * 2**k``.
    ways:
        Associativity; 1 means direct-mapped.
    block_bytes:
        Cache line size in bytes (power of two).
    """

    size_bytes: int
    ways: int
    block_bytes: int

    def __post_init__(self) -> None:
        if self.ways <= 0:
            raise ValueError(f"associativity must be positive, got {self.ways}")
        log2_exact(self.block_bytes)
        if self.size_bytes % (self.ways * self.block_bytes) != 0:
            raise ValueError(
                f"cache size {self.size_bytes} is not a multiple of "
                f"ways*block ({self.ways}*{self.block_bytes})"
            )
        log2_exact(self.sets)

    @property
    def sets(self) -> int:
        """Number of cache sets."""
        return self.size_bytes // (self.ways * self.block_bytes)

    @property
    def offset_bits(self) -> int:
        """Number of block-offset bits."""
        return log2_exact(self.block_bytes)

    @property
    def index_bits(self) -> int:
        """Number of set-index bits."""
        return log2_exact(self.sets)

    def block_address(self, addr: int) -> int:
        """Return the block-aligned address number (addr without offset)."""
        return addr >> self.offset_bits

    def split(self, addr: int) -> Tuple[int, int]:
        """Split a byte address into ``(tag, index)``."""
        block = addr >> self.offset_bits
        return block >> self.index_bits, block & mask(self.index_bits)

    def tag_of(self, addr: int) -> int:
        """Return the tag of a byte address."""
        return addr >> (self.offset_bits + self.index_bits)

    def index_of(self, addr: int) -> int:
        """Return the set index of a byte address."""
        return (addr >> self.offset_bits) & mask(self.index_bits)

    def compose(self, tag: int, index: int) -> int:
        """Rebuild a block-aligned byte address from ``(tag, index)``.

        This is the final step of the TCP lookup (Section 4 of the
        paper): the predicted next tag, combined with the current miss
        index, forms a complete cache-line address for the prefetch.
        """
        return ((tag << self.index_bits) | (index & mask(self.index_bits))) << self.offset_bits

    def split_block(self, block: int) -> Tuple[int, int]:
        """Split a block address number into ``(tag, index)``."""
        return block >> self.index_bits, block & mask(self.index_bits)

    def compose_block(self, tag: int, index: int) -> int:
        """Rebuild a block address number from ``(tag, index)``."""
        return (tag << self.index_bits) | (index & mask(self.index_bits))

    def decompose_array(self, addrs: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised split of a whole address trace.

        Returns ``(blocks, indices, tags)`` as int64 arrays.  The hot
        simulation loop precomputes these once per run instead of
        re-splitting every address in Python.
        """
        blocks = (addrs >> np.uint64(self.offset_bits)).astype(np.int64)
        indices = blocks & np.int64(mask(self.index_bits))
        tags = blocks >> np.int64(self.index_bits)
        return blocks, indices, tags

    def describe(self) -> str:
        """Human-readable one-line geometry summary."""
        assoc = "direct-mapped" if self.ways == 1 else f"{self.ways}-way"
        return (
            f"{self.size_bytes // 1024}KB, {assoc}, {self.block_bytes}B blocks, "
            f"{self.sets} sets"
        )
