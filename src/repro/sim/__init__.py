"""The simulation driver: wiring workloads, core, hierarchy, prefetchers.

:func:`repro.sim.runner.simulate` is the single entry point every
example, test, and experiment uses: give it a workload name (or a
:class:`~repro.workloads.trace.Trace`), a prefetcher factory, and a
machine configuration; it returns a :class:`repro.sim.results.SimResult`
with IPC, miss rates, the Figure 12 L2-access taxonomy, and prefetcher
statistics.  :mod:`repro.sim.sweep` runs labelled configuration
matrices over the suite with a process-level result cache (experiments
share baseline runs).

Campaign fault tolerance lives in three modules:
:mod:`repro.sim.store` is the persistent checkpoint tier below the
in-process cache (validated, schema-versioned, config-hash keyed),
:mod:`repro.sim.resilience` supervises parallel campaigns — crash
isolation, per-job timeouts, bounded retries, structured error
taxonomy, graceful shutdown, and a deterministic fault injector for
testing — and :mod:`repro.sim.fabric` shards a campaign across hosts,
surviving lost, partitioned, or slow ones.
"""

from repro.sim.config import PREFETCHERS, SimulationConfig, prefetcher_factory
from repro.sim.parallel import experiment_configs, prewarm
from repro.sim.resilience import (
    WORKER_MODES,
    CampaignInterrupted,
    CampaignReport,
    CorruptResult,
    FleetDegraded,
    HostLost,
    HostPartition,
    InvariantViolation,
    JobFailure,
    JobTimeout,
    RetryPolicy,
    SimulationError,
    StallTimeout,
    StoreDegraded,
    WorkerCrash,
    resolve_worker_mode,
)
from repro.sim.results import SimResult, SuiteResult, validate_result
from repro.sim.runner import simulate, simulate_suite
from repro.sim.sanitizer import Sanitizer, build_sanitizer, sanitize_level
from repro.sim.store import ResultStore, active_store, set_active_store, use_store
from repro.sim.sweep import Sweep, improvement_table


def __getattr__(name):
    # Lazy re-exports: fabric must stay importable as ``python -m
    # repro.sim.fabric`` (the agent entry point) without tripping
    # runpy's already-in-sys.modules warning, so the package does not
    # import it eagerly.  The multicore names live in repro.multicore
    # (which imports this package), so they are lazy for the same
    # cycle-avoidance reason.
    if name in ("HostSpec", "parse_hosts"):
        from repro.sim import fabric

        return getattr(fabric, name)
    if name in ("MIXES", "MixResult", "MixSpec", "mix_config", "resolve_mix"):
        from repro import multicore

        return getattr(multicore, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "MIXES",
    "MixResult",
    "MixSpec",
    "PREFETCHERS",
    "CampaignInterrupted",
    "CampaignReport",
    "CorruptResult",
    "FleetDegraded",
    "HostLost",
    "HostPartition",
    "HostSpec",
    "InvariantViolation",
    "JobFailure",
    "JobTimeout",
    "ResultStore",
    "RetryPolicy",
    "Sanitizer",
    "SimResult",
    "SimulationConfig",
    "SimulationError",
    "StallTimeout",
    "StoreDegraded",
    "SuiteResult",
    "Sweep",
    "WORKER_MODES",
    "WorkerCrash",
    "active_store",
    "build_sanitizer",
    "experiment_configs",
    "improvement_table",
    "mix_config",
    "parse_hosts",
    "prefetcher_factory",
    "prewarm",
    "resolve_mix",
    "resolve_worker_mode",
    "sanitize_level",
    "set_active_store",
    "simulate",
    "simulate_suite",
    "use_store",
    "validate_result",
]
