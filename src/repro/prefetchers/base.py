"""The prefetcher interface shared by TCP and every baseline.

The paper positions all the prefetchers it studies between the L1 data
cache and the L2 (Figure 10): they observe the **L1 miss address
stream** and issue prefetches that fill **L2 only** (the hybrid variant
additionally promotes blocks into L1, but that path is driven by the
hierarchy, not by this interface).

Design notes
------------
* The event/outcome types (:class:`MissEvent`, :class:`AccessEvent`,
  :class:`EvictionEvent`, :class:`PrefetchRequest`) are the slotted
  frozen dataclasses of :mod:`repro.engine.events`; they are
  re-exported here so prefetcher code keeps importing them from the
  layer it talks to.
* The primary hook is :meth:`Prefetcher.observe_miss`, called once per
  L1 demand miss with the split ``(tag, index)`` — exactly the
  information a prefetcher sitting on the L1 miss port would see.
* DBCP additionally needs the PC of *every* L1 access (hits included)
  to build its per-block reference traces, and the dead-block
  predictors need eviction notifications.  Those hooks exist but are
  gated by the ``needs_access_stream`` / ``needs_eviction_stream``
  flags so that the common case (TCP, stride, ...) pays nothing for
  them in the hot simulation loop.
* Every observer returns a (possibly empty) list of
  :class:`PrefetchRequest` — never None — so the hierarchy's call
  sites iterate the result without a null check.
* Every prefetcher reports its table budget via ``storage_bytes`` —
  the paper's space-efficiency claims ("8KB TCP beats 2MB DBCP") are
  asserted against these numbers in the test suite.
"""

from __future__ import annotations

from abc import abstractmethod
from dataclasses import dataclass, field
from typing import List

from repro.engine.component import Component
from repro.engine.events import (
    AccessEvent,
    EvictionEvent,
    MemoryEvent,
    MissEvent,
)

__all__ = [
    "AccessEvent",
    "EvictionEvent",
    "MemoryEvent",
    "MissEvent",
    "Prefetcher",
    "PrefetchRequest",
]

#: no prefetches — the shared empty result of the default observers.
#: Immutable by convention: call sites only iterate it.
_NO_REQUESTS: List["PrefetchRequest"] = []


@dataclass(frozen=True, slots=True)
class PrefetchRequest:
    """A prefetch the hierarchy should issue.

    ``block`` is an L1-geometry block address number (the hierarchy
    converts to byte addresses / L2 blocks as needed).  ``into_l1``
    requests promotion to L1 once the hybrid's dead-block condition is
    met; plain requests fill L2 only.
    """

    block: int
    into_l1: bool = False


@dataclass
class PrefetcherStats:
    """Counters every prefetcher maintains uniformly."""

    lookups: int = 0
    predictions: int = 0
    updates: int = 0

    def reset(self) -> None:
        self.lookups = 0
        self.predictions = 0
        self.updates = 0


class Prefetcher(Component):
    """Abstract base class for L1-miss-stream prefetchers.

    A prefetcher is an engine :class:`~repro.engine.component.
    Component`: :meth:`access` is the uniform entry point that
    dispatches on event type, while the ``observe_*`` methods remain
    the concrete hooks the hierarchy's hot path binds directly.
    """

    #: set True when the prefetcher must see every L1 access (DBCP).
    needs_access_stream: bool = False
    #: set True when the prefetcher must see L1 evictions.
    needs_eviction_stream: bool = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = PrefetcherStats()

    def access(self, event: MemoryEvent) -> List[PrefetchRequest]:
        """Uniform component entry point: dispatch on the event type.

        Misses train and predict, accesses feed the PC-trace stream,
        evictions train dead-block state (and never predict).  Always
        returns a list, possibly empty.
        """
        if isinstance(event, MissEvent):
            return self.observe_miss(event)
        if isinstance(event, AccessEvent):
            return self.observe_access(event)
        if isinstance(event, EvictionEvent):
            self.observe_eviction(event)
            return _NO_REQUESTS
        raise TypeError(f"prefetcher cannot observe {type(event).__name__}")

    @abstractmethod
    def observe_miss(self, miss: MissEvent) -> List[PrefetchRequest]:
        """Process one L1 demand miss; return prefetches to issue."""

    def observe_access(self, access: AccessEvent) -> List[PrefetchRequest]:
        """Process one L1 access (only called if ``needs_access_stream``).

        May return prefetch requests: DBCP predicts a block dead — and
        prefetches its correlated successor — the moment the block's
        PC-trace signature matches a learned death signature, which can
        happen on a *hit*, not only on a miss.  Returns an empty list
        when there is nothing to prefetch (never None).
        """
        return _NO_REQUESTS

    def observe_eviction(self, evt: EvictionEvent) -> None:
        """Process one L1 eviction (only called if ``needs_eviction_stream``)."""

    def sanitize_check(self, require) -> None:
        """Structural self-checks for the runtime sanitizer (full tier).

        ``require`` is :meth:`repro.sim.sanitizer.Sanitizer.require`:
        ``require(condition, invariant_name, message, **snapshot)``.
        Subclasses with private tables should extend this (call
        ``super().sanitize_check(require)`` first); the TCP's THT/PHT
        are scanned by the sanitizer itself via duck typing.
        """
        s = self.stats
        require(
            s.lookups >= 0 and s.predictions >= 0 and s.updates >= 0,
            "prefetcher-stats-domain",
            f"{self.name} prefetcher counters went negative",
            lookups=s.lookups, predictions=s.predictions, updates=s.updates,
        )

    @abstractmethod
    def storage_bytes(self) -> int:
        """Total hardware table budget in bytes."""

    def reset(self) -> None:
        """Clear all learned state (between simulation runs)."""
        self.stats.reset()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, {self.storage_bytes()}B)"


@dataclass
class _NullStats:
    """Placeholder kept for API symmetry in tests."""

    issued: int = 0
    notes: List[str] = field(default_factory=list)
