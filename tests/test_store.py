"""Tests for the persistent checkpointed result store (repro.sim.store)."""

import errno
import json
import os

import pytest

from repro.sim import SimulationConfig, simulate
from repro.sim import resilience
from repro.sim import store as store_mod
from repro.sim.runner import clear_cache
from repro.sim.store import (
    COMPACT_MIN_RECORDS,
    ResultStore,
    SCHEMA_MINOR,
    SCHEMA_VERSION,
    config_fingerprint,
)
from repro.workloads import Scale

BASE = SimulationConfig.baseline()
TCP = SimulationConfig.for_prefetcher("tcp-8k")


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "store")


@pytest.fixture()
def result():
    clear_cache()
    return simulate("eon", BASE, Scale.QUICK)


@pytest.fixture()
def io_faults():
    """Install an I/O fault injector for the test, cleared afterwards."""
    yield resilience.set_io_fault_injector
    resilience.set_io_fault_injector(None)


class TestFingerprint:
    def test_stable(self):
        assert config_fingerprint(BASE) == config_fingerprint(SimulationConfig.baseline())

    def test_any_parameter_change_invalidates(self):
        assert config_fingerprint(BASE) != config_fingerprint(TCP)
        tweaked = BASE.with_hierarchy(memory_latency=71)
        assert config_fingerprint(BASE) != config_fingerprint(tweaked)


class TestRoundTrip:
    def test_put_get(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        loaded = store.get("eon", Scale.QUICK.accesses, BASE)
        assert loaded is not None
        assert loaded.ipc == result.ipc
        assert loaded.memory.l1_misses == result.memory.l1_misses

    def test_survives_reopen(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        reopened = ResultStore(store.root)
        loaded = reopened.get("eon", Scale.QUICK.accesses, BASE)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()

    def test_miss_on_other_key(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        assert store.get("eon", Scale.QUICK.accesses, TCP) is None
        assert store.get("eon", Scale.STANDARD.accesses, BASE) is None
        assert store.get("swim", Scale.QUICK.accesses, BASE) is None

    def test_last_write_wins(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        reopened = ResultStore(store.root)
        assert len(reopened) == 1

    def test_put_rejects_invalid(self, store, result):
        import dataclasses

        bad = dataclasses.replace(
            result, core=dataclasses.replace(result.core, cycles=float("nan"))
        )
        with pytest.raises(ValueError):
            store.put("eon", Scale.QUICK.accesses, BASE, bad)
        assert len(store) == 0


class TestQuarantine:
    def test_garbage_line_quarantined(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write("{this is not json\n")
        reopened = ResultStore(store.root)
        assert reopened.get("eon", Scale.QUICK.accesses, BASE) is not None
        assert reopened.quarantined == 1
        assert reopened.quarantine_path.exists()
        # the store file was rewritten clean: a third open quarantines nothing
        assert ResultStore(store.root).quarantined == 0

    def test_invariant_violation_quarantined(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        record = json.loads(store.path.read_text().strip())
        record["result"]["core"]["cycles"] = -1.0
        store.path.write_text(json.dumps(record) + "\n")
        reopened = ResultStore(store.root)
        assert reopened.get("eon", Scale.QUICK.accesses, BASE) is None
        assert reopened.quarantined == 1

    def test_truncated_payload_quarantined(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        record = json.loads(store.path.read_text().strip())
        del record["result"]["core"]
        store.path.write_text(json.dumps(record) + "\n")
        reopened = ResultStore(store.root)
        assert reopened.get("eon", Scale.QUICK.accesses, BASE) is None
        assert reopened.quarantined == 1

    def test_foreign_schema_ignored_not_quarantined(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        record = json.loads(store.path.read_text().strip())
        record["schema"] = SCHEMA_VERSION + 1
        store.path.write_text(json.dumps(record) + "\n")
        reopened = ResultStore(store.root)
        assert reopened.get("eon", Scale.QUICK.accesses, BASE) is None
        assert reopened.stale == 1
        assert reopened.quarantined == 0


class TestChecksums:
    def test_records_carry_crc_and_minor(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        record = json.loads(store.path.read_text().strip())
        assert record["minor"] == SCHEMA_MINOR
        assert record["crc"] == store_mod._checksum(record)

    def test_checksum_catches_payload_tamper(self, store, result):
        """A field invariants can't check (the label) is still protected."""
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        record = json.loads(store.path.read_text().strip())
        record["config_label"] = "tampered"
        store.path.write_text(json.dumps(record) + "\n")
        reopened = ResultStore(store.root)
        assert reopened.get("eon", Scale.QUICK.accesses, BASE) is None
        assert reopened.quarantined == 1

    def test_legacy_record_without_crc_still_loads(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        record = json.loads(store.path.read_text().strip())
        del record["crc"]
        del record["minor"]
        store.path.write_text(json.dumps(record) + "\n")
        reopened = ResultStore(store.root)
        assert reopened.get("eon", Scale.QUICK.accesses, BASE) is not None
        assert reopened.quarantined == 0
        report = reopened.verify()
        assert report["legacy"] == 1 and report["checksummed"] == 0


class TestTornTail:
    def test_partial_tail_truncated_not_quarantined(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        whole = store.path.read_text()
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write(whole.strip()[: len(whole) // 2])  # no newline
        reopened = ResultStore(store.root)
        assert reopened.get("eon", Scale.QUICK.accesses, BASE) is not None
        assert reopened.torn_truncated == 1
        assert reopened.quarantined == 0
        assert store.path.read_bytes().endswith(b"\n")
        third = ResultStore(store.root)
        assert len(third) == 1 and third.torn_truncated == 0

    def test_put_repairs_torn_tail_first(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "partial')  # torn append, no newline
        writer = ResultStore(store.root)
        writer.put("eon", 54321, BASE, result)
        assert writer.torn_truncated == 1
        reopened = ResultStore(store.root)
        assert len(reopened) == 2
        assert reopened.quarantined == 0 and reopened.get("eon", 54321, BASE)

    def test_torn_only_file_truncates_to_empty(self, store, result):
        store.path.write_bytes(b'{"schema": 1, "partial')
        assert len(store) == 0
        assert store.torn_truncated == 1
        assert store.path.read_bytes() == b""


class TestConcurrentVisibility:
    def test_appends_visible_across_objects(self, tmp_path, result):
        writer = ResultStore(tmp_path)
        reader = ResultStore(tmp_path)
        assert len(reader) == 0  # index loaded while empty
        writer.put("eon", Scale.QUICK.accesses, BASE, result)
        # mtime/size invalidation: the stale index refreshes on read
        assert reader.get("eon", Scale.QUICK.accesses, BASE) is not None


class TestCompaction:
    def _lines(self, store):
        return [
            line
            for line in store.path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]

    def test_explicit_compact_keeps_last_write(self, store, result):
        for _ in range(5):
            store.put("eon", Scale.QUICK.accesses, BASE, result)
        assert len(self._lines(store)) == 5
        dropped = store.compact(force=True)
        assert dropped == 4
        assert len(self._lines(store)) == 1
        reopened = ResultStore(store.root)
        assert reopened.get("eon", Scale.QUICK.accesses, BASE) is not None

    def test_auto_compaction_bounds_garbage(self, store, result):
        for _ in range(COMPACT_MIN_RECORDS + 5):
            store.put("eon", Scale.QUICK.accesses, BASE, result)
        assert len(self._lines(store)) < COMPACT_MIN_RECORDS
        assert store.compacted >= COMPACT_MIN_RECORDS - 1
        assert ResultStore(store.root).get("eon", Scale.QUICK.accesses, BASE)

    def test_compaction_preserves_foreign_schema_lines(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        foreign = json.dumps({"schema": SCHEMA_VERSION + 1, "payload": "keep me"})
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write(foreign + "\n")
        compactor = ResultStore(store.root)
        assert compactor.compact(force=True) == 1
        text = store.path.read_text(encoding="utf-8")
        assert "keep me" in text
        assert len(self._lines(compactor)) == 2  # foreign + live record


class TestDegradation:
    def test_persistent_write_failure_degrades_to_memory(
        self, store, result, io_faults
    ):
        io_faults(lambda op, attempt: "io-enospc" if op.startswith("store|") else None)
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        assert store.degraded
        assert store.lost_writes == 1
        assert "ENOSPC" in store.degraded_reason or "28" in store.degraded_reason
        # the result is still served from memory; nothing reached disk
        assert store.get("eon", Scale.QUICK.accesses, BASE) is not None
        assert not store.path.exists() or store.path.stat().st_size == 0
        store.put("eon", 54321, BASE, result)  # further puts don't raise
        assert store.lost_writes == 2
        health = store.health()
        assert health["degraded"] and health["lost_writes"] == 2

    def test_transient_write_failure_is_retried(self, store, result, io_faults):
        io_faults(
            lambda op, attempt: "io-eio"
            if attempt == 1 and op.startswith("store|")
            else None
        )
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        assert not store.degraded
        reopened = ResultStore(store.root)
        assert reopened.get("eon", Scale.QUICK.accesses, BASE) is not None

    def test_torn_write_truncated_on_next_load(self, store, result, io_faults):
        io_faults(lambda op, attempt: "io-torn" if op.startswith("store|") else None)
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        assert not store.degraded  # a torn write looks like success
        assert store.get("eon", Scale.QUICK.accesses, BASE) is not None  # memory
        resilience.set_io_fault_injector(None)
        reopened = ResultStore(store.root)
        assert reopened.get("eon", Scale.QUICK.accesses, BASE) is None
        assert reopened.torn_truncated == 1
        assert reopened.quarantined == 0

    def test_lock_timeout_degrades_instead_of_hanging(self, tmp_path, result):
        from repro.util.locking import FileLock

        store = ResultStore(tmp_path)
        blocker = FileLock(tmp_path / "store.lock")
        blocker.acquire(exclusive=True)
        try:
            store._lock.timeout = 0.2
            store.put("eon", Scale.QUICK.accesses, BASE, result)
        finally:
            blocker.release()
        assert store.degraded and store.lost_writes == 1
        assert store.get("eon", Scale.QUICK.accesses, BASE) is not None


class TestVerifyRepair:
    def test_verify_is_readonly_and_reports(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write("{not json}\n")
            handle.write('{"schema": 1, "torn')  # partial tail
        before = store.path.read_bytes()
        fresh = ResultStore(store.root)
        report = fresh.verify()
        assert report["records"] == 1 and report["live"] == 1
        assert len(report["bad"]) == 1
        assert report["torn_tail"] is True
        assert store.path.read_bytes() == before  # untouched

    def test_repair_quarantines_and_truncates(self, store, result):
        store.put("eon", Scale.QUICK.accesses, BASE, result)
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write("{not json}\n")
            handle.write('{"schema": 1, "torn')
        fresh = ResultStore(store.root)
        health = fresh.repair()
        assert health["records"] == 1
        assert health["quarantined"] == 1
        assert health["torn_truncated"] == 1
        assert fresh.quarantine_path.exists()
        clean = ResultStore(store.root)
        report = clean.verify()
        assert not report["bad"] and not report["torn_tail"]


class TestSatelliteFixes:
    def test_clear_also_clears_progress(self, store):
        store.put_progress("eon", 1000, BASE, 5, 10, 1.0)
        assert store.progress_entries()
        assert store.progress_path.exists()
        store.clear()
        assert store.progress_entries() == {}
        assert not store.progress_path.exists()
        assert ResultStore(store.root).progress_entries() == {}

    def test_rewrite_failure_leaves_no_tmp(self, store, monkeypatch):
        def boom(fd):
            raise OSError(errno.ENOSPC, "no space left on device")

        monkeypatch.setattr(os, "fsync", boom)
        with pytest.raises(OSError):
            store._rewrite(['{"schema": 1}'])
        assert not list(store.root.glob("*.tmp"))

    def test_progress_markers_checksummed_torn_skipped(self, store):
        store.put_progress("eon", 1000, BASE, 5, 10, 1.0)
        marker = json.loads(store.progress_path.read_text().strip())
        assert marker["crc"] == store_mod._checksum(marker)
        with store.progress_path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "torn')  # partial marker line
        reopened = ResultStore(store.root)
        entries = reopened.progress_entries()
        assert len(entries) == 1  # the damaged marker is skipped, not fatal


class TestActiveStore:
    def test_simulate_writes_through_and_resumes(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        clear_cache()
        with store_mod.use_store(store):
            first = simulate("eon", BASE, Scale.QUICK)
            assert len(store) == 1
            # a fresh process is simulated by clearing the in-memory cache:
            clear_cache()
            executions = []
            from repro.sim import runner

            real = runner._execute
            monkeypatch.setattr(
                runner, "_execute", lambda *a, **k: executions.append(1) or real(*a, **k)
            )
            resumed = simulate("eon", BASE, Scale.QUICK)
            assert executions == []  # resumed from disk, not re-run
            assert resumed.to_dict() == first.to_dict()

    def test_no_store_env_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        assert store_mod.active_store() is not None
        monkeypatch.setenv("REPRO_NO_STORE", "1")
        assert store_mod.active_store() is None

    def test_store_dir_env_enables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        store = store_mod.active_store()
        assert store is not None
        assert store.root == tmp_path

    def test_corrupt_checkpoint_is_rerun(self, tmp_path, monkeypatch):
        """A corrupt store entry is quarantined and the job re-executed."""
        store = ResultStore(tmp_path)
        clear_cache()
        with store_mod.use_store(store):
            simulate("eon", BASE, Scale.QUICK)
        # corrupt the checkpoint on disk
        record = json.loads(store.path.read_text().strip())
        record["result"]["memory"]["l1_hits"] += 1  # breaks hits+misses==accesses
        store.path.write_text(json.dumps(record) + "\n")
        clear_cache()
        executions = []
        from repro.sim import runner

        real = runner._execute
        monkeypatch.setattr(
            runner, "_execute", lambda *a, **k: executions.append(1) or real(*a, **k)
        )
        with store_mod.use_store(ResultStore(tmp_path)):
            rerun = simulate("eon", BASE, Scale.QUICK)
        assert executions == [1]  # quarantined entry forced a real re-run
        rerun.validate()
