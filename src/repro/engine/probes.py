"""Pluggable observation taps for the CPU simulation loop.

The seed tree wired progress heartbeats and the runtime sanitizer into
:meth:`repro.cpu.core.OutOfOrderCore.run` as inline branches.  Probes
replace that: the loop keeps exactly one integer compare per access
(``i + 1 == next_mark``) and, when a mark fires, hands control to a
small list of :class:`Probe` objects.  Adding a new observation — a
checkpoint writer, an IPC sampler, a trace recorder — means writing a
probe, not editing the hot loop.

Mark cadence: the loop fires marks at the *smallest* interval any
attached probe requests, and every probe runs at every mark.  This
reproduces the seed semantics where an attached sanitizer tightened
the progress cadence to its own interval (the sanitizer must observe
state at the same mark where a fault-injection hook may have corrupted
it — see :func:`repro.sim.runner._execute`).

Ordering: probes run in list order.  :func:`resolve_probes` puts the
progress probe first and the sanitizer probe last, preserving the
seed's documented "progress before checks" contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple

__all__ = [
    "CoreMark",
    "MetricsProbe",
    "Probe",
    "ProgressProbe",
    "SanitizerProbe",
    "resolve_probes",
]

#: progress-callback signature: (accesses_done, accesses_total, sim_time).
ProgressCallback = Callable[[int, int, float], None]

#: default accesses between marks when only a progress callback is attached.
DEFAULT_INTERVAL = 2048


@dataclass(frozen=True, slots=True)
class CoreMark:
    """Snapshot of the CPU loop's state at one mark.

    Allocated once per mark (marks are thousands of accesses apart),
    never on the per-access path.
    """

    done: int
    total: int
    rob_len: int
    window: int
    last_commit: float
    now_dispatch: float


class Probe:
    """One observation tap on the simulation loop.

    ``interval`` is the probe's *requested* cadence in accesses; the
    loop fires every probe at the minimum cadence across attached
    probes, so ``on_mark`` may run more often than requested — never
    less.
    """

    interval: int = DEFAULT_INTERVAL

    def on_mark(self, mark: CoreMark, hierarchy: Any) -> None:
        """Called at each periodic mark with the loop state snapshot."""

    def on_finalize(self, hierarchy: Any) -> None:
        """Called once after the run (after ``hierarchy.finalize()``)."""


class ProgressProbe(Probe):
    """Adapts a ``(done, total, sim_time)`` callback to the probe API.

    This is the hook behind campaign heartbeats and mid-run checkpoint
    markers (:mod:`repro.sim.resilience` / :mod:`repro.sim.store`).
    """

    def __init__(self, callback: ProgressCallback, interval: int = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError(f"progress interval must be positive, got {interval}")
        self.callback = callback
        self.interval = interval

    def on_mark(self, mark: CoreMark, hierarchy: Any) -> None:
        self.callback(mark.done, mark.total, mark.last_commit)


#: (metric name, HierarchyStats attribute) pairs the probe histograms
#: per interval and totals at finalize.  Every entry is a plain int
#: counter on the stats object — reading them cannot perturb the run.
_STAT_METRICS = (
    ("l1.hits", "l1_hits"),
    ("l1.misses", "l1_misses"),
    ("l2.hits", "l2_demand_hits"),
    ("l2.misses", "l2_demand_misses"),
    ("mshr.merges", "mshr_merges"),
    ("mshr.full_stalls", "mshr_full_stalls"),
    ("prefetch.requested", "prefetches_requested"),
    ("prefetch.issued", "prefetches_issued"),
    ("prefetch.dropped_queue", "prefetch_dropped_queue"),
    ("prefetch.dropped_busy", "prefetch_dropped_busy"),
    ("prefetch.redundant", "prefetch_redundant"),
    ("prefetch.useful", "useful_prefetches"),
)

#: subset whose per-interval deltas are worth a histogram (the rest
#: only get end-of-run totals).
_INTERVAL_METRICS = (
    ("l1.hits", "l1_hits"),
    ("l1.misses", "l1_misses"),
    ("l2.hits", "l2_demand_hits"),
    ("l2.misses", "l2_demand_misses"),
)


class MetricsProbe(Probe):
    """Samples hierarchy/prefetcher state into a metrics registry.

    **Strictly read-only.**  The probe reads plain integer counters off
    :class:`~repro.memory.hierarchy.HierarchyStats` and samples sizes
    of internal structures; it must never call anything that mutates —
    in particular not :meth:`MSHRFile.outstanding`, whose reap would
    shift acquire times (it uses the read-only
    :meth:`~repro.memory.mshr.MSHRFile.occupancy` instead).  The
    enabled-vs-disabled differential test holds this to *bit identical*
    results.

    At each mark: per-interval hit/miss deltas go into histograms
    (``interval.<name>``), MSHR occupancy and the in-flight prefetch
    queue into gauges.  At finalize: one final partial-interval
    observation (so every histogram's ``sum`` equals the run total —
    the conservation law the property tests assert), then end-of-run
    counter totals plus prefetcher/PHT/bus internals.
    """

    def __init__(self, registry: Any, interval: int = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError(f"metrics interval must be positive, got {interval}")
        self.registry = registry
        self.interval = interval
        self._prev = {attr: 0 for _, attr in _INTERVAL_METRICS}
        self._marks = 0

    def _observe_interval(self, stats: Any) -> None:
        prev = self._prev
        histogram = self.registry.histogram
        for name, attr in _INTERVAL_METRICS:
            value = getattr(stats, attr)
            histogram(f"interval.{name}").observe(value - prev[attr])
            prev[attr] = value

    def on_mark(self, mark: CoreMark, hierarchy: Any) -> None:
        self._marks += 1
        self._observe_interval(hierarchy.stats)
        gauge = self.registry.gauge
        gauge("mshr.occupancy").set(hierarchy.mshr.occupancy())
        gauge("prefetch.inflight").set(len(hierarchy._pf_inflight))
        gauge("core.rob").set(mark.rob_len)

    def on_finalize(self, hierarchy: Any) -> None:
        registry = self.registry
        stats = hierarchy.stats
        # Close the last partial interval first: histogram sums must
        # equal the whole-run totals.
        self._observe_interval(stats)
        counter = registry.counter
        counter("sim.marks").inc(self._marks)
        for name, attr in _STAT_METRICS:
            counter(name).inc(getattr(stats, attr))
        counter("prefetch.evicted_unused").inc(stats.prefetch_evicted_unused)
        counter("prefetch.residual_unused").inc(stats.prefetch_residual_unused)
        counter("ifetch.accesses").inc(stats.ifetch_accesses)
        counter("ifetch.misses").inc(stats.ifetch_misses)
        for label, bus in (
            ("l1l2_data", hierarchy.l1l2_data_bus),
            ("mem_data", hierarchy.mem_data_bus),
        ):
            counter(f"bus.{label}.transfers").inc(bus.transfers)
            counter(f"bus.{label}.busy_cycles").inc(int(bus.busy_cycles))
        prefetcher = getattr(hierarchy, "prefetcher", None)
        if prefetcher is None:
            return
        pstats = getattr(prefetcher, "stats", None)
        if pstats is not None:
            counter("prefetcher.lookups").inc(pstats.lookups)
            counter("prefetcher.predictions").inc(pstats.predictions)
            counter("prefetcher.updates").inc(pstats.updates)
        pht = getattr(prefetcher, "pht", None)
        if pht is not None:
            counter("pht.lookups").inc(pht.lookups)
            counter("pht.hits").inc(pht.hits)
            counter("pht.updates").inc(pht.updates)
            occupancy = getattr(pht, "occupancy", None)
            if callable(occupancy):
                registry.gauge("pht.occupancy").set(occupancy())
        tht = getattr(prefetcher, "tht", None)
        if tht is not None:
            counter("tht.reads").inc(getattr(tht, "reads", 0))
            counter("tht.pushes").inc(getattr(tht, "pushes", 0))
            occupancy = getattr(tht, "occupancy", None)
            if callable(occupancy):
                registry.gauge("tht.occupancy").set(occupancy())


class SanitizerProbe(Probe):
    """Runs a :class:`repro.sim.sanitizer.Sanitizer` at each mark.

    The probe inherits the sanitizer's own tier-dependent interval and
    forwards the core-side state (ROB occupancy, commit/dispatch
    monotonicity) plus the hierarchy scan.  ``on_finalize`` runs the
    sanitizer's end-of-run conservation checks — callers must invoke
    it *after* :meth:`MemoryHierarchy.finalize` so residual unused
    prefetches have been accounted.
    """

    def __init__(self, sanitizer: Any) -> None:
        self.sanitizer = sanitizer
        self.interval = int(sanitizer.interval)

    def on_mark(self, mark: CoreMark, hierarchy: Any) -> None:
        self.sanitizer.check_core(
            mark.rob_len, mark.window, mark.last_commit, mark.now_dispatch
        )
        self.sanitizer.check(hierarchy, mark.last_commit)

    def on_finalize(self, hierarchy: Any) -> None:
        self.sanitizer.finalize(hierarchy)


def resolve_probes(
    progress: Optional[ProgressCallback],
    progress_interval: int,
    sanitizer: Optional[Any],
    probes: Optional[Sequence[Probe]],
) -> Tuple[Probe, ...]:
    """Merge the legacy keyword hooks and explicit probes into one list.

    Order: progress first, explicit probes in caller order, sanitizer
    last ("progress before checks": a fault-injection progress hook
    must corrupt state *before* the sanitizer observes the same mark).
    """
    if progress_interval <= 0:
        raise ValueError(
            f"progress interval must be positive, got {progress_interval}"
        )
    resolved: list = []
    if progress is not None:
        resolved.append(ProgressProbe(progress, progress_interval))
    if probes:
        resolved.extend(probes)
    if sanitizer is not None:
        resolved.append(SanitizerProbe(sanitizer))
    return tuple(resolved)
