"""Multi-core workload mixes over a shared L2/bus/DRAM hierarchy.

The multicore front end: named workload mixes (:data:`MIXES`,
``mix1``–``mix7``), the per-core/shared-fabric engine, and the
:class:`MixResult` containers with weighted-speedup and fairness
metrics.  Entry points:

* :func:`mix_config` — a fingerprinted ``SimulationConfig`` for a mix;
* :func:`repro.sim.simulate` with that config and the mix's canonical
  name runs it (caching/checkpointing like any other cell);
* :func:`execute_mix` — the raw uncached engine entry.
"""

from repro.multicore.mix import (
    MIXES,
    MixSpec,
    canonical_mix_name,
    mix_config,
    resolve_mix,
)
from repro.multicore.results import CoreAttribution, MixCoreResult, MixResult

__all__ = [
    "MIXES",
    "CoreAttribution",
    "MixCoreResult",
    "MixResult",
    "MixSpec",
    "canonical_mix_name",
    "execute_mix",
    "mix_config",
    "resolve_mix",
]


def __getattr__(name: str):
    # execute_mix pulls in the engine (and repro.sim.runner); loaded
    # lazily so `import repro.multicore` stays light.
    if name == "execute_mix":
        from repro.multicore.runner import execute_mix

        return execute_mix
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
