"""Regenerate Figure 1: IPC potential with an ideal L2 data cache."""

from conftest import run_once

from repro.experiments import run_experiment
from repro.util.tables import format_barchart

LOW_GROUP = ("fma3d", "eon", "equake")
HIGH_GROUP = ("swim", "ammp", "mcf", "mgrid")


def test_fig01_ideal_l2_potential(benchmark, scale, strict):
    result = run_once(benchmark, run_experiment, "fig1", scale)
    print()
    print(result.render())
    print()
    print(format_barchart(result.series["potential"],
                          title="IPC improvement with ideal L2 (%)", unit="%"))

    potential = result.series["potential"]
    assert set(potential) >= set(LOW_GROUP) | set(HIGH_GROUP)
    # Potentials are non-negative improvements (tiny numeric noise aside).
    assert all(value > -2.0 for value in potential.values())
    if strict:
        # The paper's defining shape: compute-bound benchmarks gain
        # little from a perfect L2; memory-bound ones gain enormously.
        low = max(potential[name] for name in LOW_GROUP)
        high = min(potential[name] for name in HIGH_GROUP)
        assert high > low, f"memory-bound floor {high:.0f}% <= compute ceiling {low:.0f}%"
        assert max(potential.values()) > 100.0, "suite should span >100% potential"
