"""Tests for repro.util.rng — determinism guarantees."""

from repro.util.rng import make_rng, stream_seed


class TestStreamSeed:
    def test_stable_for_same_name(self):
        assert stream_seed("swim") == stream_seed("swim")

    def test_differs_across_names(self):
        assert stream_seed("swim") != stream_seed("mcf")

    def test_salt_changes_seed(self):
        assert stream_seed("swim", 0) != stream_seed("swim", 1)

    def test_64_bit_range(self):
        for name in ("a", "swim", "very-long-stream-name-with-detail"):
            assert 0 <= stream_seed(name) < 2**64


class TestMakeRng:
    def test_reproducible_sequence(self):
        a = make_rng("test-stream").integers(0, 1_000_000, 32)
        b = make_rng("test-stream").integers(0, 1_000_000, 32)
        assert (a == b).all()

    def test_independent_streams(self):
        a = make_rng("stream-a").integers(0, 1_000_000, 32)
        b = make_rng("stream-b").integers(0, 1_000_000, 32)
        assert (a != b).any()
