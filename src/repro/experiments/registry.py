"""Registry mapping paper labels to experiment runners."""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Optional, Sequence

from repro.experiments import (
    figure01,
    figure02,
    figure03,
    figure04,
    figure05,
    figure06,
    figure07,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure_mix,
    table01,
)
from repro.experiments.base import ExperimentResult
from repro.workloads import Scale

__all__ = ["EXPERIMENTS", "run_experiment"]

Runner = Callable[..., ExperimentResult]

EXPERIMENTS: Dict[str, Runner] = {
    "table1": table01.run,
    "fig1": figure01.run,
    "fig2": figure02.run,
    "fig3": figure03.run,
    "fig4": figure04.run,
    "fig5": figure05.run,
    "fig6": figure06.run,
    "fig7": figure07.run,
    "fig11": figure11.run,
    "fig12": figure12.run,
    "fig13": figure13.run,
    "fig14": figure14.run,
    "fig15": figure15.run,
    "mix": figure_mix.run,
}


def run_experiment(
    name: str,
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
    mix: Optional[str] = None,
) -> ExperimentResult:
    """Run one experiment by its paper label (e.g. ``"fig11"``).

    ``mix`` selects the workload mix for experiments that take one
    (currently ``"mix"``); passing it to an experiment that does not is
    an error rather than a silent ignore.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    kwargs = {"scale": scale, "benchmarks": benchmarks}
    takes_mix = "mix" in inspect.signature(runner).parameters
    if takes_mix:
        kwargs["mix"] = mix
    elif mix is not None:
        raise ValueError(f"experiment {name!r} does not take a --mix")
    return runner(**kwargs)
