"""One module per table/figure of the paper's evaluation.

Every experiment module exposes ``run(scale, benchmarks=None) ->
ExperimentResult``; the registry in :mod:`repro.experiments.registry`
maps the paper's labels (``table1``, ``fig1`` … ``fig15``) to those
functions, and :mod:`repro.experiments.cli` is the ``repro-tcp``
command-line entry point that regenerates any of them.

The mapping to the paper:

=========  ==========================================================
table1     simulated machine configuration
fig1       IPC improvement with an ideal L2 per benchmark
fig2       unique tags / mean recurrences per tag (L1D miss stream)
fig3       unique addresses / mean recurrences per address
fig4       tag spread across sets / recurrences per (tag, set)
fig5       unique 3-tag sequences as % of the upper limit
fig6       unique 3-tag sequences / mean recurrences per sequence
fig7       sequence spread across sets / recurrences per (seq, set)
fig11      IPC improvement: TCP-8K vs TCP-8M vs DBCP-2M (+ headline)
fig12      L2-access taxonomy for TCP-8K and TCP-8M
fig13      mean IPC vs PHT size; mean IPC vs miss-index bits
fig14      TCP-8K vs Hybrid-8K (prefetch into L1)
fig15      % strided three-tag sequences
=========  ==========================================================
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "ExperimentResult", "run_experiment"]
