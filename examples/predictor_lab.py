#!/usr/bin/env python3
"""Predictor lab: offline coverage/accuracy iteration without timing.

Developing a prefetcher means many evaluate-tweak cycles; running the
full timing simulator for each is wasteful.  This example shows the
two-stage methodology the library supports:

1. **offline** — replay captured miss streams through candidate
   predictors and score coverage/accuracy/traffic in milliseconds
   (:func:`repro.analysis.score_prefetcher`);
2. **live-time check** — verify the dead-block premise behind the
   hybrid on the same traces (:func:`repro.analysis.live_time_stats`);
3. only then burn cycles on timing runs for the shortlist.

Usage: ``python examples/predictor_lab.py [scale]``
"""

import sys

from repro import Scale
from repro.analysis import live_time_stats, score_prefetcher
from repro.core import (
    ConfidenceFilteredTCP,
    LookaheadTCP,
    MultiTargetTCP,
    StrideFilteredTCP,
    tcp_8k,
)
from repro.prefetchers import MarkovPrefetcher, StridePrefetcher
from repro.util.tables import format_table

WORKLOADS = ("applu", "art", "mcf", "twolf")

CANDIDATES = (
    ("stride-rpt", StridePrefetcher),
    ("markov", MarkovPrefetcher),
    ("tcp-8k", tcp_8k),
    ("tcp-conf", ConfidenceFilteredTCP),
    ("tcp-look2", LookaheadTCP),
    ("tcp-multi2", MultiTargetTCP),
    ("tcp-stride", StrideFilteredTCP),
)


def main() -> int:
    scale = Scale[(sys.argv[1] if len(sys.argv) > 1 else "quick").upper()]

    rows = []
    for workload in WORKLOADS:
        for label, factory in CANDIDATES:
            score = score_prefetcher(factory(), workload, scale)
            rows.append(
                [
                    workload,
                    label,
                    score.coverage * 100.0,
                    score.accuracy * 100.0,
                    score.predictions_per_miss,
                    score.storage_bytes / 1024.0,
                ]
            )
    print(
        format_table(
            ["workload", "predictor", "coverage %", "accuracy %",
             "preds/miss", "budget KB"],
            rows,
            title=f"Offline predictor scores (scale={scale.name.lower()})",
        )
    )

    print()
    live_rows = []
    for workload in WORKLOADS:
        stats = live_time_stats(workload, scale)
        live_rows.append(
            [
                workload,
                stats.generations,
                stats.mean_live,
                stats.mean_dead,
                stats.dead_to_live_ratio,
                stats.live_time_repeatability * 100.0,
            ]
        )
    print(
        format_table(
            ["workload", "generations", "mean live", "mean dead",
             "dead/live", "live repeatability %"],
            live_rows,
            title="Block live/dead times (in accesses) — the dead-block premise",
        )
    )
    print(
        "\nReading guide: blocks die young and stay dead long (large\n"
        "dead/live ratios), and live times repeat across generations —\n"
        "which is why the hybrid's timekeeping gate works."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
