"""Figure 15: percentage of strided three-tag sequences.

Strided per-set tag sequences admit much cheaper hardware than a
general correlation table (the paper's Section 6 future work, realised
here as :class:`repro.core.variants.StrideFilteredTCP`).  The paper
finds swim the clear maximum (>12%) with most benchmarks under 2%.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, suite_order
from repro.experiments.section3 import profile
from repro.workloads import Scale

__all__ = ["run"]


def run(
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = suite_order(benchmarks)
    rows = []
    series = {"strided_fraction": {}}
    for name in names:
        data = profile(name, scale)
        percent = data.strided_fraction * 100.0
        series["strided_fraction"][name] = percent
        rows.append([name, data.sequences.windows, percent])
    fractions = series["strided_fraction"]
    top = max(fractions, key=fractions.get)  # type: ignore[arg-type]
    notes = [
        f"Maximum strided share: {top} ({fractions[top]:.1f}%) — the paper's "
        "maximum is swim at just over 12%.",
        "Only intra-set strides are counted, as in the paper.",
    ]
    return ExperimentResult(
        experiment="fig15",
        title="Percentage of strided three-tag sequences",
        headers=["benchmark", "3-tag windows", "% strided"],
        rows=rows,
        series=series,
        notes=notes,
    )
