"""Regenerate Figure 3: unique addresses and recurrences per address."""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig03_address_recurrence(benchmark, scale):
    fig2 = run_experiment("fig2", scale)
    result = run_once(benchmark, run_experiment, "fig3", scale)
    print()
    print(result.render())

    unique_blocks = result.series["unique_blocks"]
    unique_tags = fig2.series["unique_tags"]
    block_occ = result.series["mean_block_occurrences"]
    tag_occ = fig2.series["mean_tag_occurrences"]

    for name in unique_blocks:
        # The paper's central asymmetry, per benchmark: many more unique
        # addresses than tags...
        assert unique_blocks[name] > unique_tags[name]
        # ...and each tag recurs more often than each address.
        assert tag_occ[name] > block_occ[name]

    # Suite-wide the gap is at least an order of magnitude for the
    # tag-friendly benchmarks.
    assert unique_blocks["swim"] / unique_tags["swim"] > 50
