"""The slotted event/outcome protocol of the engine layer.

Everything that crosses a layer boundary on the per-access hot path is
one of these frozen ``__slots__`` dataclasses.  They replace the ad-hoc
event objects and return tuples the seed tree used: slotted instances
allocate one compact object (no per-instance ``__dict__``), attribute
reads compile to fixed-offset loads, and frozen semantics guarantee an
event observed by a prefetcher cannot mutate hierarchy state.

Event flow (Figure 10 of the paper):

* the hierarchy emits :class:`MissEvent` for every L1 demand miss (the
  primary prefetcher training signal);
* :class:`AccessEvent` for every L1 access, hits included — delivered
  only to observers that declare ``needs_access_stream`` (DBCP);
* :class:`EvictionEvent` for L1 evictions — delivered only to
  observers that declare ``needs_eviction_stream`` (dead-block
  predictors);
* the CPU model receives an :class:`AccessOutcome` per demand access.

``MemoryEvent`` is the structural protocol the :class:`~repro.engine.
component.Component` contract is written against: any object carrying
``(index, tag, block, now)`` can traverse a component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = [
    "AccessEvent",
    "AccessOutcome",
    "EvictionEvent",
    "MemoryEvent",
    "MissEvent",
]


@runtime_checkable
class MemoryEvent(Protocol):
    """Structural type of every event on the engine's access path.

    ``index``/``tag`` are the **L1-geometry** split of the address (the
    split the whole paper revolves around), ``block`` the L1 block
    address number (``tag << index_bits | index``), and ``now`` the
    simulation time the event was generated.
    """

    index: int
    tag: int
    block: int
    now: float


@dataclass(frozen=True, slots=True)
class MissEvent:
    """One L1 demand miss, as seen at the L1 miss port.

    ``tag`` and ``index`` are split using the **L1** geometry — that
    split is the whole point of the paper.  ``block`` is the L1 block
    address number (``tag << index_bits | index``).
    """

    index: int
    tag: int
    block: int
    pc: int
    is_write: bool
    now: float


@dataclass(frozen=True, slots=True)
class AccessEvent:
    """One L1 access (hit or miss); delivered only to prefetchers that
    set ``needs_access_stream`` (e.g. DBCP's PC-trace accumulation)."""

    index: int
    tag: int
    block: int
    pc: int
    is_write: bool
    hit: bool
    now: float


@dataclass(frozen=True, slots=True)
class EvictionEvent:
    """An L1 eviction; delivered only when ``needs_eviction_stream``.

    ``fill_time`` and ``last_access`` are the victim line's lifetime
    timestamps — the raw material of the timekeeping dead-block
    predictor (live time = ``last_access - fill_time``).
    """

    index: int
    tag: int
    block: int
    now: float
    fill_time: float = 0.0
    last_access: float = 0.0


@dataclass(frozen=True, slots=True)
class AccessOutcome:
    """Outcome of one demand access, returned to the CPU model.

    ``completion`` is the cycle the data is available to the core;
    ``l1_hit``/``l2_hit`` classify the access for the Figure 12
    taxonomy (an MSHR merge reports ``l1_hit=False, l2_hit=True`` —
    the demand rode an earlier fetch and never re-accessed L2).

    The CPU hot loop does NOT allocate these: it calls
    :meth:`~repro.memory.hierarchy.MemoryHierarchy.access_time`, which
    returns the bare completion time.  ``AccessOutcome`` is built only
    by the structured :meth:`~repro.memory.hierarchy.MemoryHierarchy.
    access` wrapper that tests and analysis passes consume.
    """

    completion: float
    l1_hit: bool
    l2_hit: bool = True
