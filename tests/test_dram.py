"""Tests for repro.memory.dram.MainMemory."""

import pytest

from repro.memory.bus import Bus
from repro.memory.dram import MainMemory


def make_memory(latency=70, width=32, concurrency=4):
    data = Bus("mem-data", width)
    addr = Bus("mem-addr", width)
    return MainMemory(latency, data, addr, concurrency), data, addr


class TestFetch:
    def test_idle_fetch_latency(self):
        memory, data, _addr = make_memory()
        done = memory.fetch(0.0, 64)
        # command beat (1) + array latency (70) + transfer (2 beats)
        assert done == pytest.approx(1 + 70 + 2)
        assert memory.accesses == 1

    def test_fetches_overlap_up_to_concurrency(self):
        memory, _data, _addr = make_memory(concurrency=4)
        completions = [memory.fetch(float(t), 64) for t in range(4)]
        # each completes ~73 cycles after its own start: full overlap
        for t, done in enumerate(completions):
            assert done < 80 + t + 4

    def test_concurrency_limit_delays_excess(self):
        memory, _data, _addr = make_memory(concurrency=2)
        first = memory.fetch(0.0, 64)
        memory.fetch(0.0, 64)
        third = memory.fetch(0.0, 64)
        # the third fetch had to wait for a bank slot
        assert third >= first + 70

    def test_invalid_params(self):
        data, addr = Bus("d", 8), Bus("a", 8)
        with pytest.raises(ValueError):
            MainMemory(0, data, addr)
        with pytest.raises(ValueError):
            MainMemory(70, data, addr, max_concurrent=0)


class TestWriteback:
    def test_writeback_occupies_data_bus(self):
        memory, data, _addr = make_memory()
        memory.writeback(0.0, 64)
        assert data.busy_cycles == 2.0

    def test_writeback_delays_fetch_data(self):
        memory, data, _addr = make_memory(latency=10)
        # book a long writeback right where the fetch data would return
        memory.writeback(11.0, 64 * 32)
        done = memory.fetch(0.0, 64)
        assert done > 11 + 10


class TestBacklog:
    def test_idle_backlog_negative(self):
        memory, _data, _addr = make_memory()
        assert memory.backlog(0.0) < 0

    def test_backlog_grows_with_demand(self):
        memory, _data, _addr = make_memory(concurrency=16)
        for _ in range(32):
            memory.fetch(0.0, 64)
        assert memory.backlog(0.0) > 0

    def test_reset(self):
        memory, _data, _addr = make_memory()
        memory.fetch(0.0, 64)
        memory.reset()
        assert memory.accesses == 0
