"""Regenerate Figure 14: prefetching into L2 vs into L1 (hybrid)."""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig14_hybrid_vs_tcp(benchmark, scale, strict):
    result = run_once(benchmark, run_experiment, "fig14", scale)
    print()
    print(result.render())

    tcp = result.series["tcp-8k"]
    hybrid = result.series["hybrid-8k"]
    promotions = result.series["promotions"]
    assert set(tcp) == set(hybrid)
    assert all(value >= 0 for value in promotions.values())

    if strict:
        # The dead-block gate makes L1 prefetching safe: the hybrid never
        # loses meaningfully to the base TCP anywhere...
        for name in tcp:
            assert hybrid[name] >= tcp[name] - 3.0, (name, tcp[name], hybrid[name])
        # ...and some memory-bound benchmark actually gains from it
        # (the paper names gcc, art, applu, mgrid, swim, mcf).
        gainers = [n for n in tcp if hybrid[n] > tcp[n] + 0.5]
        assert gainers, "hybrid should beat plain TCP somewhere"
        # Promotions really happen on the strided memory-bound group.
        assert promotions["applu"] > 100
