"""``python -m repro.bench`` — alias for ``repro-tcp bench``."""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
