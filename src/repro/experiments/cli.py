"""``repro-tcp``: the command-line front end for the reproduction.

Examples
--------
List everything::

    repro-tcp list

Regenerate one figure at the standard scale::

    repro-tcp run fig11

Regenerate the whole evaluation at full scale (what EXPERIMENTS.md
records)::

    repro-tcp run all --scale full

Simulate one benchmark under one prefetcher::

    repro-tcp simulate swim --prefetcher tcp-8k --scale quick

Resumable campaigns: ``--resume`` checkpoints every finished
simulation to an on-disk store and, on restart, re-runs only the
missing (workload, configuration) pairs::

    repro-tcp run all --scale full --jobs 8 --resume --retries 3 --timeout 600
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.backend import BACKEND_ENV, available_backends
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs import metrics as obs_metrics
from repro.sim import (
    PREFETCHERS,
    WORKER_MODES,
    SimulationConfig,
    SimulationError,
    simulate,
)
from repro.sim import sanitizer as sanitizer_mod
from repro.sim import store as store_mod
from repro.workloads import BENCHMARK_ORDER, SUITE, Scale

__all__ = ["main"]


def _parse_scale(text: str) -> Scale:
    try:
        return Scale[text.upper()]
    except KeyError:
        raise argparse.ArgumentTypeError(
            f"unknown scale {text!r}; choose from "
            + ", ".join(s.name.lower() for s in Scale)
        )


def _parse_retries(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"retries must be an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"retries must be >= 0, got {value}")
    return value


def _parse_max_failures(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"max-failures must be an integer, got {text!r}"
        )
    if value < 1:
        raise argparse.ArgumentTypeError(f"max-failures must be >= 1, got {value}")
    return value


def _parse_timeout(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"timeout must be a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"timeout must be positive, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tcp",
        description="Reproduction of 'TCP: Tag Correlating Prefetchers' (HPCA 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser("list", help="list experiments, benchmarks, prefetchers")
    listing.set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="regenerate a paper table/figure")
    run.add_argument("experiment", help="fig1..fig15, table1, or 'all'")
    run.add_argument("--scale", type=_parse_scale, default=Scale.STANDARD,
                     help="quick | standard | full (default standard)")
    run.add_argument("--benchmarks", nargs="*", default=None,
                     help="subset of benchmarks (default: whole suite)")
    run.add_argument("--mix", default=None, metavar="MIX",
                     help="workload mix for the 'mix' experiment: a named "
                          "mix (mix1..mix7) or benchmarks joined with '+' "
                          "(default mix2)")
    run.add_argument("--jobs", type=int, default=1,
                     help="parallel workers to pre-warm simulations (0 = cpus)")
    run.add_argument("--worker-mode", choices=WORKER_MODES, default=None,
                     help="campaign worker strategy: 'pool' keeps warm "
                          "workers draining the job queue, 'attempt' spawns "
                          "one process per attempt (default: "
                          "$REPRO_WORKER_MODE or pool)")
    run.add_argument("--resume", action="store_true",
                     help="checkpoint results to the on-disk store and "
                          "re-run only the missing (workload, config) pairs")
    run.add_argument("--store-dir", default=None, metavar="DIR",
                     help="store directory (implies --resume; default "
                          "$REPRO_STORE_DIR or ~/.cache/repro-tcp)")
    run.add_argument("--no-store", action="store_true",
                     help="disable result persistence entirely")
    run.add_argument("--retries", type=_parse_retries, default=2, metavar="N",
                     help="extra attempts per failed simulation (default 2)")
    run.add_argument("--timeout", type=_parse_timeout, default=None,
                     metavar="SECONDS",
                     help="per-simulation wall-clock budget (default none)")
    run.add_argument("--stall-timeout", type=_parse_timeout, default=None,
                     metavar="SECONDS",
                     help="kill a worker that emits no progress heartbeat "
                          "for this long (a slow-but-progressing job is "
                          "never killed; default off)")
    run.add_argument("--max-failures", type=_parse_max_failures, default=None,
                     metavar="N",
                     help="abort the campaign once N jobs have permanently "
                          "failed instead of draining the whole sweep "
                          "(default: drain)")
    run.add_argument("--hosts", default=None, metavar="SPEC",
                     help="shard the campaign across a host fleet: "
                          "'local[:N]' or '[ssh:]host[:N]', comma separated "
                          "(default: $REPRO_HOSTS, else single-host)")
    run.add_argument("--backend", choices=available_backends(), default=None,
                     help="simulation backend for every run in the campaign "
                          "(workers inherit it; default: REPRO_BACKEND or "
                          "'python'; results are bit-identical either way)")
    run.add_argument("--sanitize", choices=sanitizer_mod.LEVELS, default=None,
                     help="runtime invariant checking tier (default: "
                          "$REPRO_SANITIZE or off)")
    run.add_argument("--obs", choices=obs_metrics.OBS_CHOICES, default=None,
                     help="observability: metrics, span tracing, or both "
                          "(default: $REPRO_OBS or off)")
    run.set_defaults(func=_cmd_run)

    simulate_cmd = sub.add_parser(
        "simulate", help="simulate one benchmark or one workload mix"
    )
    simulate_cmd.add_argument("benchmark", nargs="?", default=None,
                              choices=sorted(SUITE))
    simulate_cmd.add_argument("--mix", default=None, metavar="MIX",
                              help="co-schedule a workload mix instead of one "
                                   "benchmark: a named mix (mix1..mix7) or "
                                   "benchmarks joined with '+' (one core "
                                   "each, shared L2/bus/DRAM)")
    simulate_cmd.add_argument("--prefetcher", default="none",
                              choices=sorted(PREFETCHERS))
    simulate_cmd.add_argument("--shared-pht", action="store_true",
                              help="with --mix: all cores share core 0's "
                                   "pattern history table")
    simulate_cmd.add_argument("--scale", type=_parse_scale, default=Scale.STANDARD)
    simulate_cmd.add_argument("--backend", choices=available_backends(),
                              default=None,
                              help="simulation backend (default: REPRO_BACKEND "
                                   "or 'python'; results are bit-identical "
                                   "either way)")
    simulate_cmd.add_argument("--sanitize", choices=sanitizer_mod.LEVELS,
                              default=None,
                              help="runtime invariant checking tier (default: "
                                   "$REPRO_SANITIZE or off)")
    simulate_cmd.add_argument("--obs", choices=obs_metrics.OBS_CHOICES,
                              default=None,
                              help="observability: metrics, span tracing, or "
                                   "both (default: $REPRO_OBS or off)")
    simulate_cmd.set_defaults(func=_cmd_simulate)

    bench = sub.add_parser(
        "bench", help="measure hot-path or campaign-layer throughput"
    )
    bench.add_argument("--campaign", action="store_true",
                       help="benchmark the campaign layer (warm pool + trace "
                            "cache vs the per-attempt path) instead of the "
                            "per-access hot path")
    bench.add_argument("--scale", type=_parse_scale, default=None,
                       help="trace length per run (default standard; "
                            "quick with --campaign)")
    bench.add_argument("--repeats", type=int, default=3, metavar="N",
                       help="timed runs per cell; fastest wins (default 3)")
    bench.add_argument("--workloads", nargs="*", default=None,
                       choices=sorted(SUITE), metavar="NAME",
                       help="workloads to time (default: the fig11 mix)")
    bench.add_argument("--prefetchers", nargs="*", default=None,
                       choices=sorted(PREFETCHERS), metavar="NAME",
                       help="hot-path prefetchers to time "
                            "(default none/nextline/tcp-8k)")
    # Free-form on purpose: backends register at import time, so a
    # frozen choices= tuple here would go stale (and argparse's
    # "invalid choice" names the flag, not the registry).  _cmd_bench
    # validates explicitly and lists what is actually registered.
    bench.add_argument("--backend", default=None, metavar="NAME",
                       help="without --campaign: pit this backend against the "
                            "python reference per (workload, prefetcher) cell "
                            "and write BENCH_backend.json; with --campaign: "
                            "run the campaign bench under this backend")
    bench.add_argument("--jobs", type=int, default=0, metavar="N",
                       help="campaign worker count (0 = each mode's default)")
    bench.add_argument("--output", default=None, metavar="PATH",
                       help="result file (default BENCH_hotpath.json, or "
                            "BENCH_campaign.json with --campaign; "
                            "'-' skips writing)")
    bench.set_defaults(func=_cmd_bench)

    trace_cmd = sub.add_parser(
        "trace",
        help="export a benchmark's memory trace, or summarize an "
             "observability span trace",
    )
    trace_cmd.add_argument(
        "target",
        metavar="BENCHMARK|summarize",
        help="a benchmark name (export its memory trace to .npz) or "
             "'summarize' (per-stage breakdown of a span-trace .jsonl)",
    )
    trace_cmd.add_argument(
        "path", nargs="?", default=None,
        help="with 'summarize': the trace file (default: the newest "
             "trace under the store's obs directory)",
    )
    trace_cmd.add_argument("--scale", type=_parse_scale, default=Scale.STANDARD)
    trace_cmd.add_argument("--output", default=None,
                           help="output path (default <benchmark>-<scale>.npz)")
    trace_cmd.add_argument("--top", type=int, default=5, metavar="N",
                           help="with 'summarize': slowest spans to show "
                                "(default 5)")
    trace_cmd.set_defaults(func=_cmd_trace)

    store_cmd = sub.add_parser(
        "store", help="inspect and maintain the on-disk result store"
    )
    store_cmd.add_argument(
        "action",
        choices=("status", "verify", "compact", "repair"),
        help="status: read-only overview; verify: read-only integrity "
             "scan (exit 1 on bad records); compact: drop superseded "
             "duplicate records; repair: quarantine bad records and "
             "truncate any torn tail",
    )
    store_cmd.add_argument("--store-dir", default=None, metavar="DIR",
                           help="store directory (default $REPRO_STORE_DIR "
                                "or ~/.cache/repro-tcp)")
    store_cmd.set_defaults(func=_cmd_store)

    fleet_cmd = sub.add_parser(
        "fleet", help="inspect and merge multi-host campaign shards"
    )
    fleet_cmd.add_argument(
        "action",
        choices=("status", "merge"),
        help="status: list per-host store shards and their record "
             "counts; merge: fold every shard into the main result log "
             "(deduped by config fingerprint) and remove it",
    )
    fleet_cmd.add_argument("--store-dir", default=None, metavar="DIR",
                           help="store directory (default $REPRO_STORE_DIR "
                                "or ~/.cache/repro-tcp)")
    fleet_cmd.set_defaults(func=_cmd_fleet)
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.multicore import MIXES

    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("\nbenchmarks (paper's Figure 1 order):")
    for name in BENCHMARK_ORDER:
        print(f"  {name:10s} {SUITE[name].summary}")
    print("\nprefetchers:")
    for name in sorted(PREFETCHERS):
        print(f"  {name}")
    print("\nmixes (ascending aggregate MPKI; one core per benchmark):")
    for spec in MIXES.values():
        print(f"  {spec.name:6s} {'+'.join(spec.benchmarks)}")
    return 0


def _resolve_store(args: argparse.Namespace) -> Optional[store_mod.ResultStore]:
    """Map the store flags onto a (possibly absent) result store.

    ``--no-store`` wins over everything; ``--store-dir`` and
    ``--resume`` enable persistence explicitly; otherwise the
    environment decides (``REPRO_STORE_DIR`` / ``REPRO_NO_STORE``).
    """
    if args.no_store:
        return None
    if args.store_dir:
        return store_mod.ResultStore(args.store_dir)
    if args.resume:
        return store_mod.ResultStore(store_mod.default_store_dir())
    return store_mod.store_from_env()


def _cmd_store(args: argparse.Namespace) -> int:
    root = args.store_dir or store_mod.default_store_dir()
    store = store_mod.ResultStore(root)

    if args.action in ("status", "verify"):
        report = store.verify()  # read-only scan, never repairs
        print(f"store:       {report['path']} ({report['size_bytes']} bytes)")
        print(
            f"records:     {report['records']} "
            f"({report['live']} live, {report['garbage']} superseded)"
        )
        print(
            f"integrity:   {report['checksummed']} checksummed, "
            f"{report['legacy']} legacy (pre-checksum), "
            f"{report['stale']} foreign-schema"
        )
        if report["torn_tail"]:
            print(
                "torn tail:   yes — a partial record from an interrupted "
                "write; truncated automatically on the next load (or by "
                "'store repair')"
            )
        if args.action == "status":
            markers = store.progress_entries()
            if markers:
                print(f"in-progress: {len(markers)} incomplete job marker(s)")
            if store.quarantine_path.exists():
                count = sum(
                    1
                    for line in store.quarantine_path.read_text(
                        encoding="utf-8"
                    ).splitlines()
                    if line.strip()
                )
                print(f"quarantine:  {count} record(s) in {store.quarantine_path}")
        if report["bad"]:
            print(f"bad records: {len(report['bad'])}")
            for entry in report["bad"]:
                print(f"  - {entry}")
            if args.action == "verify":
                print(
                    "verify: FAILED — run 'repro-tcp store repair' to "
                    "quarantine these records",
                    file=sys.stderr,
                )
                return 1
        elif args.action == "verify":
            print("verify: OK")
        return 0

    if args.action == "compact":
        before = len(store)
        dropped = store.compact(force=True)
        print(
            f"compacted {store.path}: dropped {dropped} superseded "
            f"record(s), {before} live record(s) kept"
        )
        return 0

    # repair: a forced repairing load — quarantines bad records,
    # truncates any torn tail, then reports the resulting health.
    health = store.repair()
    print(
        f"repaired {store.path}: {health['records']} live record(s), "
        f"{health['quarantined']} quarantined, "
        f"{health['torn_truncated']} torn tail(s) truncated"
    )
    if health["quarantined"]:
        print(f"quarantine:  {store.quarantine_path}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.sim import fabric as fabric_mod

    root = args.store_dir or store_mod.default_store_dir()
    status = fabric_mod.fleet_status(root)
    print(
        f"store:  {status['root']} ({status['main_live']} live record(s) "
        f"in the main log)"
    )
    if not status["shards"]:
        print("shards: none")
        return 0
    for shard in status["shards"]:
        line = (
            f"  shard {shard['host']}: {shard['live']} live record(s) "
            f"({shard['records']} total)"
        )
        if shard["bad"]:
            line += f", {shard['bad']} bad"
        print(line)
    if args.action == "status":
        return 0

    store = store_mod.ResultStore(root)
    merged, adopted = store_mod.merge_shards(store)
    print(
        f"merged {merged} shard(s): adopted {adopted} new record(s) "
        f"into {store.path}"
    )
    if store.degraded:
        print(
            f"error: StoreDegraded: merge fell back to in-memory-only "
            f"({store.degraded_reason}); shards were kept on disk",
            file=sys.stderr,
        )
        return 1
    return 0


def _campaign_progress(done: int, total: int, key: str, status: str) -> None:
    print(f"  [{done}/{total}] {key}: {status}", flush=True)


def _apply_sanitize(level: Optional[str]) -> None:
    """Install a ``--sanitize`` choice for this process *and* workers.

    Experiments build their configurations internally, so the tier is
    carried by the environment (which worker processes inherit) rather
    than by threading a flag through every experiment.
    """
    if level is not None:
        os.environ[sanitizer_mod.SANITIZE_ENV] = level


def _apply_obs(value: Optional[str]) -> None:
    """Install an ``--obs`` choice for this process *and* workers.

    Carried by the environment for the same reason as ``--sanitize``:
    campaign workers inherit it without threading a flag through every
    layer.
    """
    if value is not None:
        os.environ[obs_metrics.OBS_ENV] = value


def _apply_backend(name: Optional[str]) -> None:
    """Install a ``--backend`` choice for this process *and* workers.

    Carried by the environment for the same reason as ``--sanitize``:
    campaign workers inherit it without threading a flag through every
    layer.  Safe precisely because backends are bit-identical by
    contract — the selection can never change a result, only its cost.
    """
    if name is not None:
        os.environ[BACKEND_ENV] = name


def _cmd_run(args: argparse.Namespace) -> int:
    names: List[str] = (
        list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    for name in names:
        if name not in EXPERIMENTS:
            print(f"error: unknown experiment {name!r}", file=sys.stderr)
            return 2

    mix_spec = None
    if "mix" in names:
        from repro.experiments.figure_mix import DEFAULT_MIX
        from repro.multicore import resolve_mix

        if args.experiment == "mix" and args.benchmarks:
            print(
                "error: the 'mix' experiment draws its benchmarks from "
                "--mix, not --benchmarks",
                file=sys.stderr,
            )
            return 2
        try:
            mix_spec = resolve_mix(args.mix or DEFAULT_MIX)
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.mix is not None:
        print(
            "error: --mix only applies to the 'mix' experiment",
            file=sys.stderr,
        )
        return 2

    _apply_backend(args.backend)
    _apply_sanitize(args.sanitize)
    _apply_obs(args.obs)
    store = _resolve_store(args)
    store_mod.set_active_store(store)
    if store is not None:
        print(f"result store: {store.root} ({len(store)} checkpointed result(s))")
        if store.quarantined:
            print(
                f"warning: quarantined {store.quarantined} corrupt store "
                f"record(s) to {store.quarantine_path}; they will be re-run",
                file=sys.stderr,
            )
        if store.torn_truncated:
            print(
                f"note: truncated {store.torn_truncated} torn record "
                f"tail(s) left by an interrupted write; the affected "
                f"job(s) will be re-run"
            )
        for marker in store.progress_entries().values():
            done, total = marker.get("done", 0), marker.get("total", 0)
            if total:
                print(
                    f"  incomplete: {marker['workload']}@{marker['accesses']} "
                    f"reached {done}/{total} accesses "
                    f"({100.0 * done / total:.0f}%) before interruption"
                )

    hosts = args.hosts if args.hosts is not None else os.environ.get("REPRO_HOSTS")
    failures = 0
    if args.jobs != 1 or hosts:
        from repro.sim import prewarm

        # One campaign per cell family: the standing experiment configs
        # cross the benchmark list; the mix experiment warms its solo
        # baselines (per prefetcher, mix members only) plus one mix cell
        # per prefetcher (a mix config is a single cell — see prewarm).
        campaigns = []
        if any(name != "mix" for name in names):
            campaigns.append({"benchmarks": args.benchmarks})
        if mix_spec is not None:
            from repro.multicore import mix_config

            campaigns.append({
                "configs": (
                    [SimulationConfig.for_prefetcher(p) for p in PREFETCHERS]
                    + [mix_config(mix_spec, prefetcher=p) for p in PREFETCHERS]
                ),
                "benchmarks": list(dict.fromkeys(mix_spec.benchmarks)),
            })
        for campaign in campaigns:
            started = time.time()
            report = prewarm(
                scale=args.scale,
                jobs=args.jobs,
                retries=args.retries,
                timeout=args.timeout,
                stall_timeout=args.stall_timeout,
                progress=_campaign_progress,
                worker_mode=args.worker_mode,
                hosts=hosts,
                max_failures=args.max_failures,
                **campaign,
            )
            recycled = (
                f", {report.recycled} worker(s) recycled" if report.recycled else ""
            )
            print(
                f"pre-warmed {report.executed} simulation(s) in "
                f"{time.time() - started:.1f}s with jobs={args.jobs} "
                f"({report.skipped} skipped, {report.retried} attempt(s) "
                f"retried{recycled})"
            )
            if report.per_host:
                shares = ", ".join(
                    f"{host}={count}" for host, count in sorted(report.per_host.items())
                )
                print(f"fleet: {shares}")
            if report.hosts_lost:
                print(
                    f"fleet losses: {report.hosts_lost} host(s) lost, "
                    f"{report.reassigned} job(s) reassigned"
                )
            health_line = report.store_health_line()
            if health_line:
                print(health_line)
            if report.trace_path:
                print(f"campaign trace: {report.trace_path}")
                print("  (inspect with: repro-tcp trace summarize)")
            if report.profile_dir:
                print(f"profiles: {report.profile_dir}")
            print()
            if report.interrupted:
                # A graceful SIGTERM/SIGINT: completed work is checkpointed;
                # resume with the same command to pick up where it stopped.
                print(report.summary(), file=sys.stderr)
                print(
                    "interrupted: campaign stopped by signal; completed results "
                    "were checkpointed — re-run with --resume to continue",
                    file=sys.stderr,
                )
                return 130
            if report.aborted is not None:
                print(report.summary(), file=sys.stderr)
                print(f"error: campaign aborted: {report.aborted}", file=sys.stderr)
                return 1
            if report.fleet_degraded is not None:
                # The campaign completed, but not on the fleet the user
                # asked for: report it under its taxonomy name and fail.
                print(
                    f"error: FleetDegraded: {report.fleet_degraded}",
                    file=sys.stderr,
                )
                failures += 1
            if not report.ok:
                print(report.summary(), file=sys.stderr)
                failures += report.failed

    for name in names:
        started = time.time()
        try:
            result = run_experiment(
                name,
                scale=args.scale,
                benchmarks=None if name == "mix" else args.benchmarks,
                mix=args.mix if name == "mix" else None,
            )
        except SimulationError as exc:
            print(
                f"error: experiment {name} failed with "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            failures += 1
            continue
        print(result.render())
        print(f"  ({time.time() - started:.1f}s at scale={args.scale.name.lower()})\n")

    if store is not None and store.degraded:
        # The campaign ran to completion on the in-memory fallback, but
        # results written after the degradation point were lost: report
        # it under its taxonomy name and fail the run.
        print(
            f"error: StoreDegraded: result store at {store.root} fell back "
            f"to in-memory-only ({store.degraded_reason}); "
            f"{store.lost_writes} result write(s) were not persisted and "
            f"will re-run on resume",
            file=sys.stderr,
        )
        failures += 1

    if failures:
        print(
            f"error: campaign finished with {failures} failure(s); "
            f"see the summary above",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_simulate_mix(args: argparse.Namespace) -> int:
    from repro.multicore import mix_config, resolve_mix

    if args.benchmark is not None:
        print(
            "error: pass either a benchmark or --mix, not both",
            file=sys.stderr,
        )
        return 2
    try:
        spec = resolve_mix(args.mix)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = mix_config(
        spec, prefetcher=args.prefetcher, shared_pht=args.shared_pht
    )
    result = simulate(spec.canonical, config, args.scale)
    solos = {
        name: simulate(
            name, SimulationConfig.for_prefetcher(args.prefetcher), args.scale
        )
        for name in dict.fromkeys(spec.benchmarks)
    }
    print(result.summary())
    for core, rel in zip(result.per_core, result.speedups(solos)):
        att = core.attribution
        print(
            f"  core {core.core_id} {core.workload:10s} "
            f"ipc {core.ipc:.3f} ({rel:.3f}x solo)  "
            f"L2 share {att.l2_occupancy_share:5.1%}  "
            f"bus stalls {att.bus_stall_cycles:,.0f}  "
            f"evicted-by-others {att.prefetches_evicted_by_others}"
        )
    print(
        f"weighted speedup {result.weighted_speedup(solos):.3f} "
        f"(max {result.cores}.0), harmonic-mean fairness "
        f"{result.hmean_fairness(solos):.3f}"
    )
    mode = obs_metrics.resolve_obs()
    if mode.metrics or mode.trace:
        print(f"observability artifacts: {store_mod.default_obs_dir()}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    _apply_backend(args.backend)
    _apply_sanitize(args.sanitize)
    _apply_obs(args.obs)
    if args.mix is not None:
        return _cmd_simulate_mix(args)
    if args.benchmark is None:
        print("error: pass a benchmark name or --mix", file=sys.stderr)
        return 2
    if args.shared_pht:
        print("error: --shared-pht requires --mix", file=sys.stderr)
        return 2
    base = simulate(args.benchmark, SimulationConfig.baseline(), args.scale)
    config = SimulationConfig.for_prefetcher(args.prefetcher)
    result = simulate(args.benchmark, config, args.scale)
    print(base.summary())
    print(result.summary())
    if args.prefetcher != "none":
        print(f"IPC improvement over baseline: {result.improvement_over(base):+.1f}%")
        breakdown = result.memory.breakdown_vs_original()
        print(
            "L2 access taxonomy: "
            + ", ".join(f"{key}={value:.1%}" for key, value in breakdown.items())
        )
    mode = obs_metrics.resolve_obs()
    if mode.metrics or mode.trace:
        print(f"observability artifacts: {store_mod.default_obs_dir()}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.backend is not None and args.backend not in available_backends():
        registered = ", ".join(available_backends())
        print(
            f"error: unknown backend {args.backend!r} "
            f"(registered backends: {registered})",
            file=sys.stderr,
        )
        return 2
    if args.campaign:
        _apply_backend(args.backend)
        return _cmd_bench_campaign(args)
    if args.backend is not None:
        return _cmd_bench_backend(args)
    from repro.bench import run_hotpath_bench
    from repro.bench.hotpath import DEFAULT_PREFETCHERS, DEFAULT_WORKLOADS

    output = args.output if args.output is not None else "BENCH_hotpath.json"
    output = None if output == "-" else output
    document = run_hotpath_bench(
        workloads=args.workloads or DEFAULT_WORKLOADS,
        prefetchers=args.prefetchers or DEFAULT_PREFETCHERS,
        scale=args.scale if args.scale is not None else Scale.STANDARD,
        repeats=args.repeats,
        output=output,
        log=sys.stdout,
    )
    print(
        f"geomean speedup over the legacy driver: "
        f"{document['geomean_speedup']:.2f}x "
        f"(min {document['min_speedup']:.2f}x)"
    )
    if output is not None:
        print(f"wrote {output}")
    return 0


def _cmd_bench_backend(args: argparse.Namespace) -> int:
    from repro.bench.backend import (
        DEFAULT_PREFETCHERS,
        DEFAULT_WORKLOADS,
        run_backend_bench,
    )

    if args.backend == "python":
        print(
            "error: the python backend is the bench's reference arm; "
            "pick a contender (numpy, native) or use --campaign",
            file=sys.stderr,
        )
        return 2

    output = args.output if args.output is not None else "BENCH_backend.json"
    output = None if output == "-" else output
    document = run_backend_bench(
        workloads=args.workloads or DEFAULT_WORKLOADS,
        prefetchers=args.prefetchers or DEFAULT_PREFETCHERS,
        scale=args.scale if args.scale is not None else Scale.STANDARD,
        repeats=args.repeats,
        contenders=(args.backend,),
        output=output,
        log=sys.stdout,
    )
    print(
        f"geomean speedup of the {args.backend} backend over the python "
        f"reference: {document['geomean_speedup']:.2f}x "
        f"(min {document['min_speedup']:.2f}x, results bit-identical)"
    )
    if output is not None:
        print(f"wrote {output}")
    return 0


def _cmd_bench_campaign(args: argparse.Namespace) -> int:
    from repro.bench import run_campaign_bench
    from repro.bench.campaign import DEFAULT_WORKLOADS

    output = args.output if args.output is not None else "BENCH_campaign.json"
    output = None if output == "-" else output
    document = run_campaign_bench(
        workloads=args.workloads or DEFAULT_WORKLOADS,
        scale=args.scale if args.scale is not None else Scale.QUICK,
        repeats=args.repeats,
        jobs=args.jobs,
        output=output,
        log=sys.stdout,
    )
    print(
        f"warm pool + trace cache vs per-attempt over "
        f"{document['cells']} cells: {document['speedup']:.2f}x "
        f"({document['attempt_seconds']:.2f}s -> "
        f"{document['pool_seconds']:.2f}s, results identical)"
    )
    if output is not None:
        print(f"wrote {output}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.target == "summarize":
        return _cmd_trace_summarize(args)
    if args.target not in SUITE:
        print(
            f"error: unknown benchmark {args.target!r}; choose from "
            + ", ".join(sorted(SUITE))
            + " (or 'summarize')",
            file=sys.stderr,
        )
        return 2
    from repro.workloads import generate, save_trace

    trace = generate(args.target, args.scale)
    output = args.output or f"{args.target}-{args.scale.name.lower()}.npz"
    path = save_trace(trace, output)
    print(f"wrote {path} ({trace.describe()})")
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from repro.obs import trace as obs_trace

    path = args.path
    if path is None:
        obs_dir = store_mod.default_obs_dir()
        candidates = sorted(
            obs_dir.glob("trace-*.jsonl"),
            key=lambda p: p.stat().st_mtime,
        )
        if not candidates:
            print(
                f"error: no trace files under {obs_dir}; run a campaign "
                f"with --obs trace (or REPRO_OBS=trace) first, or pass "
                f"a path",
                file=sys.stderr,
            )
            return 2
        path = candidates[-1]
    try:
        events = obs_trace.load_events(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"file:  {path}")
    print(obs_trace.render_summary(obs_trace.summarize(events, top=args.top)))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (console script ``repro-tcp``).

    Classified campaign failures exit with a readable one-line error
    (code 1), never an unhandled traceback.
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SimulationError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
