"""Shared low-level utilities for the TCP reproduction.

This package contains the non-architectural helpers that the rest of
the simulator is built from: bit manipulation (:mod:`repro.util.bitops`),
least-recently-used tracking (:mod:`repro.util.lruset`), running
statistics and summary math (:mod:`repro.util.stats`), plain-text table
and bar-chart rendering for experiment output (:mod:`repro.util.tables`),
and deterministic random number generator construction
(:mod:`repro.util.rng`).
"""

from repro.util.bitops import (
    bit_slice,
    fold_xor,
    is_power_of_two,
    log2_exact,
    mask,
    truncated_add,
)
from repro.util.lruset import LRUSet
from repro.util.rng import make_rng
from repro.util.stats import (
    RunningStat,
    geometric_mean,
    harmonic_mean,
    percent_change,
)
from repro.util.tables import format_barchart, format_table

__all__ = [
    "LRUSet",
    "RunningStat",
    "bit_slice",
    "fold_xor",
    "format_barchart",
    "format_table",
    "geometric_mean",
    "harmonic_mean",
    "is_power_of_two",
    "log2_exact",
    "make_rng",
    "mask",
    "percent_change",
    "truncated_add",
]
