"""Tests for repro.core.indexing.PHTIndexScheme (the Figure 9 hash)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.indexing import IndexFunction, PHTIndexScheme


class TestValidation:
    def test_negative_total_bits(self):
        with pytest.raises(ValueError):
            PHTIndexScheme(-1, 0)

    def test_miss_bits_exceeding_total(self):
        with pytest.raises(ValueError):
            PHTIndexScheme(4, 5)

    def test_sequence_bits(self):
        assert PHTIndexScheme(8, 3).sequence_bits == 5


class TestTruncatedAdd:
    def test_shared_index_ignores_miss_index(self):
        scheme = PHTIndexScheme(8, 0)
        assert scheme.compute((1, 2), 0) == scheme.compute((1, 2), 1023)

    def test_full_miss_index_separates_sets(self):
        scheme = PHTIndexScheme(18, 10)
        a = scheme.compute((1, 2), 5)
        b = scheme.compute((1, 2), 6)
        assert a != b
        assert a & 0x3FF == 5
        assert b & 0x3FF == 6

    def test_known_value(self):
        scheme = PHTIndexScheme(8, 0)
        assert scheme.compute((0x10, 0x20), 0) == 0x30

    def test_truncation(self):
        scheme = PHTIndexScheme(4, 0)
        assert scheme.compute((0xF, 0x1), 0) == 0x0

    def test_index_bits_in_low_positions(self):
        scheme = PHTIndexScheme(10, 2)
        value = scheme.compute((0, 0), 0b11)
        assert value & 0b11 == 0b11

    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=4),
           st.integers(0, 1023))
    def test_result_in_range(self, tags, miss_index):
        scheme = PHTIndexScheme(8, 2)
        assert 0 <= scheme.compute(tags, miss_index) < 256

    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=4),
           st.integers(0, 1023))
    def test_deterministic(self, tags, miss_index):
        scheme = PHTIndexScheme(8, 2)
        assert scheme.compute(tags, miss_index) == scheme.compute(tags, miss_index)


class TestXorFold:
    def test_xor_differs_from_add_generally(self):
        add = PHTIndexScheme(8, 0, IndexFunction.TRUNCATED_ADD)
        xor = PHTIndexScheme(8, 0, IndexFunction.XOR_FOLD)
        sequences = [(3, 5), (17, 99), (1000, 2000), (123, 321)]
        differing = sum(
            1 for seq in sequences if add.compute(seq, 0) != xor.compute(seq, 0)
        )
        assert differing >= 1

    def test_xor_order_sensitive(self):
        # Unlike truncated add, XOR folding of the concatenation
        # distinguishes (a, b) from (b, a) for most inputs.
        xor = PHTIndexScheme(16, 0, IndexFunction.XOR_FOLD)
        assert xor.compute((1, 2), 0) != xor.compute((2, 1), 0)

    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=4))
    def test_xor_in_range(self, tags):
        scheme = PHTIndexScheme(8, 0, IndexFunction.XOR_FOLD)
        assert 0 <= scheme.compute(tags, 0) < 256


class TestDescribe:
    def test_mentions_components(self):
        text = PHTIndexScheme(8, 2).describe()
        assert "truncated-add" in text
        assert "[1:6]" in text and "[1:2]" in text
