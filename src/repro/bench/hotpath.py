"""The hot-path benchmark: measure per-access simulator throughput.

For every (workload, prefetcher) pair the benchmark runs the same
trace twice — once under the engine loop
(:meth:`~repro.cpu.core.OutOfOrderCore.run`) and once under the
legacy reference driver (:func:`~repro.bench.legacy.run_legacy`) —
each on a cold machine, taking the best of ``repeats`` timed runs.
Both drivers must commit the same cycle count (checked here and
asserted by ``benchmarks/test_hotpath_perf.py``); their throughput
ratio is the engine layer's speedup, a number that is comparable
across hosts because both arms ran on the same interpreter and
machine.

The default mix covers the behaviours that dominate the Figure 11
campaign: a dense-stride scientific workload (``swim``), a
pointer-chasing memory-bound one (``mcf``), and an irregular
instruction-heavy one (``gcc``), each under no prefetcher, the
next-line baseline, and the paper's TCP-8K — so both the L1-hit fast
path and the miss/prefetch path are weighed.

The result is written to ``BENCH_hotpath.json``; the committed copy
at the repository root is the baseline the CI perf-smoke job compares
against.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from repro.bench.legacy import run_legacy
from repro.cpu import OutOfOrderCore
from repro.memory import MemoryHierarchy
from repro.sim.config import SimulationConfig
from repro.workloads import Scale, Trace, generate

__all__ = [
    "DEFAULT_PREFETCHERS",
    "DEFAULT_WORKLOADS",
    "SCHEMA",
    "run_hotpath_bench",
]

#: schema tag embedded in every result file (bump on layout changes).
SCHEMA = "repro-tcp/hotpath-bench/v1"

#: the fig11-mix defaults (see module docstring for the rationale).
DEFAULT_WORKLOADS: Tuple[str, ...] = ("swim", "mcf", "gcc")
DEFAULT_PREFETCHERS: Tuple[str, ...] = ("none", "nextline", "tcp-8k")


def _time_engine(trace: Trace, config: SimulationConfig) -> Tuple[float, float]:
    """One cold engine-loop run; returns (seconds, committed cycles)."""
    hierarchy = MemoryHierarchy(config.hierarchy)
    hierarchy.attach_prefetcher(config.build_prefetcher())
    core = OutOfOrderCore(config.core)
    started = time.perf_counter()
    result = core.run(trace, hierarchy)
    return time.perf_counter() - started, result.cycles


def _time_legacy(trace: Trace, config: SimulationConfig) -> Tuple[float, float]:
    """One cold legacy-driver run; returns (seconds, committed cycles)."""
    hierarchy = MemoryHierarchy(config.hierarchy)
    hierarchy.attach_prefetcher(config.build_prefetcher())
    started = time.perf_counter()
    result = run_legacy(trace, hierarchy, config.core)
    return time.perf_counter() - started, result.cycles


def _best_of(runs: int, timer, trace: Trace, config: SimulationConfig) -> Tuple[float, float]:
    """Fastest of ``runs`` cold runs; returns (best seconds, cycles).

    Best-of, not mean-of: scheduling noise only ever adds time, so the
    minimum is the closest observable to the code's true cost.
    """
    best = float("inf")
    cycles = 0.0
    for _ in range(runs):
        elapsed, cycles = timer(trace, config)
        if elapsed < best:
            best = elapsed
    return best, cycles


def _geomean(values: Sequence[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0


def run_hotpath_bench(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    prefetchers: Sequence[str] = DEFAULT_PREFETCHERS,
    scale: Scale = Scale.STANDARD,
    repeats: int = 3,
    output: Optional[str] = None,
    log: Optional[TextIO] = None,
) -> Dict[str, object]:
    """Run the hot-path benchmark; return (and optionally write) results.

    Parameters
    ----------
    workloads, prefetchers:
        The (workload, prefetcher) grid to time.
    scale:
        Trace length per run (``Scale.STANDARD`` = 120 000 accesses).
    repeats:
        Timed runs per cell per driver; the fastest is reported.
    output:
        Path to write the JSON document to (``BENCH_hotpath.json``).
    log:
        Stream for one progress line per cell (e.g. ``sys.stdout``).
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    results: List[Dict[str, object]] = []
    for workload in workloads:
        trace = generate(workload, scale)
        accesses = len(trace)
        for name in prefetchers:
            config = SimulationConfig.for_prefetcher(name)
            engine_s, engine_cycles = _best_of(repeats, _time_engine, trace, config)
            legacy_s, legacy_cycles = _best_of(repeats, _time_legacy, trace, config)
            if engine_cycles != legacy_cycles:
                raise RuntimeError(
                    f"driver divergence on {workload}/{name}: engine committed "
                    f"{engine_cycles!r} cycles, legacy {legacy_cycles!r}"
                )
            entry: Dict[str, object] = {
                "workload": workload,
                "prefetcher": name,
                "accesses": accesses,
                "accesses_per_sec": accesses / engine_s,
                "legacy_accesses_per_sec": accesses / legacy_s,
                "speedup": legacy_s / engine_s,
                "cycles": engine_cycles,
            }
            results.append(entry)
            if log is not None:
                log.write(
                    f"{workload:8s} {name:10s} "
                    f"{entry['accesses_per_sec']:10.0f} acc/s  "
                    f"(legacy {entry['legacy_accesses_per_sec']:10.0f}, "
                    f"speedup {entry['speedup']:.2f}x)\n"
                )
                log.flush()

    speedups = [entry["speedup"] for entry in results]
    document: Dict[str, object] = {
        "schema": SCHEMA,
        "scale": scale.name.lower(),
        "repeats": repeats,
        # Both arms time the interpreted per-access loop, i.e. the
        # "python" backend's engine; the numpy backend has its own
        # bench (repro.bench.backend -> BENCH_backend.json).
        "backend": "python",
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "results": results,
        "geomean_speedup": _geomean(speedups),
        "min_speedup": min(speedups) if speedups else 0.0,
    }
    if output is not None:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=False)
            handle.write("\n")
    return document
