"""Result containers for simulation runs.

``SimResult`` captures one (workload, configuration) run: the CPU
timing outcome, the hierarchy statistics (including the Figure 12
L2-access taxonomy), and the prefetcher's own counters.  ``SuiteResult``
aggregates per-benchmark results for one configuration across the suite
and computes the paper's suite-wide metrics (geometric-mean IPC and
improvement over a baseline).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Iterable, Mapping, Optional

from repro.cpu.core import CoreResult
from repro.memory.hierarchy import HierarchyStats
from repro.util.stats import geometric_mean, percent_change

__all__ = ["SimResult", "SuiteResult", "validate_result"]


@dataclass
class SimResult:
    """Outcome of simulating one workload under one configuration."""

    workload: str
    config_label: str
    core: CoreResult
    memory: HierarchyStats
    prefetcher_name: str
    prefetcher_storage_bytes: int
    prefetcher_predictions: int

    def __post_init__(self) -> None:
        # Provenance, not a dataclass field: results are bit-identical
        # across backends by contract, so which engine produced a run
        # (and whether it degraded to a slower one) must never enter
        # equality, hashing, or ``dataclasses.asdict`` fingerprints.
        self.backend_fallback: Optional[str] = None

    @property
    def ipc(self) -> float:
        return self.core.ipc

    def improvement_over(self, baseline: "SimResult") -> float:
        """IPC improvement in percent relative to ``baseline``."""
        if baseline.workload != self.workload:
            raise ValueError(
                f"cannot compare {self.workload} against baseline "
                f"{baseline.workload}"
            )
        return percent_change(baseline.ipc, self.ipc)

    def summary(self) -> str:
        """One-line human-readable digest."""
        m = self.memory
        return (
            f"{self.workload:<10} {self.config_label:<10} ipc={self.ipc:6.3f} "
            f"l1mr={m.l1_miss_rate:6.2%} l2mr={m.l2_demand_miss_rate:6.2%} "
            f"pf={m.prefetches_issued}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the on-disk store's payload)."""
        payload = {
            "workload": self.workload,
            "config_label": self.config_label,
            "core": asdict(self.core),
            "memory": asdict(self.memory),
            "prefetcher_name": self.prefetcher_name,
            "prefetcher_storage_bytes": self.prefetcher_storage_bytes,
            "prefetcher_predictions": self.prefetcher_predictions,
        }
        if self.backend_fallback is not None:
            payload["backend_fallback"] = self.backend_fallback
        return payload

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "SimResult":
        """Rebuild a result from :meth:`to_dict` output.

        Raises ``ValueError`` on any shape mismatch (missing/unknown
        fields) so the store can quarantine the record.  Mix payloads
        (marked by a ``per_core`` key) dispatch to
        :meth:`repro.multicore.results.MixResult.from_dict`, so every
        store/fabric decode path handles multicore cells transparently.
        """
        if "per_core" in payload:
            from repro.multicore.results import MixResult

            return MixResult.from_dict(payload)  # type: ignore[return-value]
        try:
            result = SimResult(
                workload=str(payload["workload"]),
                config_label=str(payload["config_label"]),
                core=CoreResult(**payload["core"]),
                memory=HierarchyStats(**payload["memory"]),
                prefetcher_name=str(payload["prefetcher_name"]),
                prefetcher_storage_bytes=int(payload["prefetcher_storage_bytes"]),
                prefetcher_predictions=int(payload["prefetcher_predictions"]),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed SimResult payload: {exc}") from exc
        fallback = payload.get("backend_fallback")
        if fallback is not None:
            result.backend_fallback = str(fallback)
        return result

    def validate(self) -> None:
        """Check the invariants every genuine run satisfies.

        Raises ``ValueError`` naming the violated invariant.  A result
        that fails here is corrupt — a truncated store record, a
        worker that died mid-serialisation — and must be quarantined
        and re-run, never silently plotted.
        """
        core = self.core
        if core.instructions <= 0 or core.accesses <= 0:
            raise ValueError(
                f"non-positive work: instructions={core.instructions}, "
                f"accesses={core.accesses}"
            )
        if not math.isfinite(core.cycles) or core.cycles <= 0:
            raise ValueError(f"cycles must be finite and positive, got {core.cycles}")
        if not math.isfinite(self.ipc) or self.ipc <= 0:
            raise ValueError(f"IPC must be finite and positive, got {self.ipc}")
        m = self.memory
        for stat_field in fields(m):
            value = getattr(m, stat_field.name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValueError(
                    f"counter {stat_field.name} must be a non-negative int, "
                    f"got {value!r}"
                )
        if m.l1_hits + m.l1_misses != m.demand_accesses:
            raise ValueError(
                f"L1 hits+misses ({m.l1_hits}+{m.l1_misses}) != demand "
                f"accesses ({m.demand_accesses})"
            )
        if m.loads + m.stores != m.demand_accesses:
            raise ValueError(
                f"loads+stores ({m.loads}+{m.stores}) != demand accesses "
                f"({m.demand_accesses})"
            )
        if m.l2_demand_hits + m.l2_demand_misses != m.l2_demand_accesses:
            raise ValueError(
                f"L2 hits+misses ({m.l2_demand_hits}+{m.l2_demand_misses}) != "
                f"L2 demand accesses ({m.l2_demand_accesses})"
            )
        if self.prefetcher_storage_bytes < 0 or self.prefetcher_predictions < 0:
            raise ValueError("prefetcher counters must be non-negative")


def validate_result(result: SimResult) -> SimResult:
    """Validate and return ``result`` (chaining form of ``validate``).

    Accepts :class:`SimResult` and its multicore analogue
    :class:`repro.multicore.results.MixResult` (imported lazily —
    results.py must stay importable without the multicore package).
    """
    if not isinstance(result, SimResult):
        from repro.multicore.results import MixResult

        if not isinstance(result, MixResult):
            raise ValueError(
                f"expected a SimResult, got {type(result).__name__}"
            )
    result.validate()
    return result


@dataclass
class SuiteResult:
    """Per-benchmark results of one configuration over the whole suite."""

    config_label: str
    runs: Dict[str, SimResult]

    def ipc(self, workload: str) -> float:
        return self.runs[workload].ipc

    def geomean_ipc(self, order: Optional[Iterable[str]] = None) -> float:
        names = list(order) if order is not None else list(self.runs)
        return geometric_mean(self.runs[name].ipc for name in names)

    def improvements_over(self, baseline: "SuiteResult") -> Dict[str, float]:
        """Per-benchmark IPC improvement (%) over ``baseline``."""
        return {
            name: run.improvement_over(baseline.runs[name])
            for name, run in self.runs.items()
            if name in baseline.runs
        }

    def geomean_improvement(self, baseline: "SuiteResult") -> float:
        """Suite-wide improvement (%): geomean of per-benchmark IPC
        ratios, expressed as a percentage — the paper's headline metric."""
        ratios = [
            run.ipc / baseline.runs[name].ipc
            for name, run in self.runs.items()
            if name in baseline.runs
        ]
        return (geometric_mean(ratios) - 1.0) * 100.0

    def l2_breakdowns(self) -> Mapping[str, Mapping[str, float]]:
        """Figure 12 taxonomy per benchmark (fractions of original)."""
        return {
            name: run.memory.breakdown_vs_original() for name, run in self.runs.items()
        }
