"""Tests for the `repro-tcp store` subcommand and degraded campaign runs."""

import json

import pytest

from repro.experiments.cli import main
from repro.sim import SimulationConfig, simulate
from repro.sim import store as store_mod
from repro.sim.runner import clear_cache
from repro.sim.store import ResultStore
from repro.workloads import Scale

BASE = SimulationConfig.baseline()


@pytest.fixture()
def active_store_guard():
    """Undo the active-store installation `run` leaves behind."""
    yield
    store_mod.clear_active_store()


@pytest.fixture()
def populated(tmp_path):
    clear_cache()
    result = simulate("eon", BASE, Scale.QUICK)
    store = ResultStore(tmp_path / "store")
    store.put("eon", Scale.QUICK.accesses, BASE, result)
    store.put("eon", Scale.QUICK.accesses, BASE, result)  # superseded dup
    return store


class TestStoreSubcommand:
    def test_status_on_empty_store(self, tmp_path, capsys):
        assert main(["store", "status", "--store-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "records:" in output

    def test_verify_clean_store(self, populated, capsys):
        assert main(["store", "verify", "--store-dir", str(populated.root)]) == 0
        output = capsys.readouterr().out
        assert "verify: OK" in output
        assert "2 checksummed" in output

    def test_verify_fails_on_bad_record_without_repairing(self, populated, capsys):
        with populated.path.open("a", encoding="utf-8") as handle:
            handle.write("{corrupt}\n")
        before = populated.path.read_bytes()
        assert main(["store", "verify", "--store-dir", str(populated.root)]) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.err
        assert "store repair" in captured.err
        assert populated.path.read_bytes() == before  # verify never writes

    def test_repair_quarantines_then_verify_passes(self, populated, capsys):
        with populated.path.open("a", encoding="utf-8") as handle:
            handle.write("{corrupt}\n")
        assert main(["store", "repair", "--store-dir", str(populated.root)]) == 0
        output = capsys.readouterr().out
        assert "1 quarantined" in output
        assert main(["store", "verify", "--store-dir", str(populated.root)]) == 0
        assert "verify: OK" in capsys.readouterr().out

    def test_compact_drops_superseded(self, populated, capsys):
        assert main(["store", "compact", "--store-dir", str(populated.root)]) == 0
        output = capsys.readouterr().out
        assert "dropped 1 superseded" in output
        lines = [
            line
            for line in populated.path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        assert len(lines) == 1

    def test_status_reports_quarantine(self, populated, capsys):
        with populated.path.open("a", encoding="utf-8") as handle:
            handle.write("{corrupt}\n")
        assert main(["store", "repair", "--store-dir", str(populated.root)]) == 0
        capsys.readouterr()
        assert main(["store", "status", "--store-dir", str(populated.root)]) == 0
        assert "quarantine:  1 record(s)" in capsys.readouterr().out


class TestDegradedRun:
    def test_io_faults_degrade_but_complete(
        self, tmp_path, capsys, monkeypatch, active_store_guard
    ):
        """Under persistent ENOSPC the campaign completes, reports
        StoreDegraded, and exits nonzero."""
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        monkeypatch.setenv("REPRO_FAULT_KIND", "io-enospc")
        clear_cache()
        with pytest.warns(RuntimeWarning, match="degraded to in-memory-only"):
            code = main(
                ["run", "fig1", "--scale", "quick", "--benchmarks", "fma3d",
                 "--store-dir", str(tmp_path / "store")]
            )
        captured = capsys.readouterr()
        assert code == 1
        assert "[fig1]" in captured.out  # the experiment still rendered
        assert "StoreDegraded" in captured.err
        assert "in-memory-only" in captured.err

    def test_resume_after_clean_run_persists(
        self, tmp_path, capsys, active_store_guard
    ):
        clear_cache()
        root = tmp_path / "store"
        assert main(["run", "fig1", "--scale", "quick", "--benchmarks", "fma3d",
                     "--store-dir", str(root)]) == 0
        capsys.readouterr()
        store = ResultStore(root)
        assert len(store) > 0
        with store.path.open(encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                assert record["crc"] == store_mod._checksum(record)
