"""Workload mixes: named co-scheduled benchmark groups.

The paper evaluates TCP one core at a time; contention studies need
*mixes* — N benchmarks co-scheduled onto N cores sharing an L2, the
L1/L2 bus, and DRAM.  Following the rising-MPKI methodology common in
multi-core prefetching evaluations, ``mix1``–``mix7`` are four-way
windows over the suite's Figure 1 ordering (ascending L2-miss
potential): ``mix1`` groups the four most cache-friendly benchmarks,
``mix7`` the four most memory-bound, and aggregate MPKI rises
monotonically in between.

A :class:`MixSpec` is pure workload-layer data (names only, no
simulation state), so the configuration layer can embed its benchmark
tuple without importing the multicore engine.  The *canonical name*
of a mix — ``"+".join(benchmarks)`` — is the store/cache cell name for
its simulation results: two users naming the same combination share
checkpoints, and core order is preserved (``a+b`` and ``b+a`` are
different cells, because core slots are part of the experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.sim.config import SimulationConfig
from repro.workloads import BENCHMARK_ORDER
from repro.workloads.suite import SUITE

__all__ = [
    "MIXES",
    "MixSpec",
    "canonical_mix_name",
    "mix_config",
    "resolve_mix",
]


@dataclass(frozen=True)
class MixSpec:
    """One named co-schedule: ``benchmarks[i]`` runs on core ``i``."""

    name: str
    benchmarks: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ValueError("a mix needs at least one benchmark")
        unknown = [name for name in self.benchmarks if name not in SUITE]
        if unknown:
            raise KeyError(f"unknown benchmarks in mix {self.name!r}: {unknown}")

    @property
    def cores(self) -> int:
        return len(self.benchmarks)

    @property
    def canonical(self) -> str:
        """The store/cache cell name for this combination."""
        return "+".join(self.benchmarks)

    def describe(self) -> str:
        return f"{self.name}: {', '.join(self.benchmarks)} ({self.cores} cores)"


#: window starts into ``BENCHMARK_ORDER`` for mix1..mix7.  Seven 4-wide
#: windows over 26 benchmarks must overlap by two slots total (28 > 26);
#: these starts repeat only bzip2 (11) and mgrid (22) and cover every
#: benchmark, with aggregate MPKI rising monotonically mix1 -> mix7.
_MIX_STARTS = (0, 4, 8, 11, 15, 19, 22)
_MIX_WIDTH = 4

MIXES: Dict[str, MixSpec] = {
    f"mix{i + 1}": MixSpec(
        f"mix{i + 1}", tuple(BENCHMARK_ORDER[start : start + _MIX_WIDTH])
    )
    for i, start in enumerate(_MIX_STARTS)
}


def canonical_mix_name(benchmarks: Sequence[str]) -> str:
    """The cell name a mix of ``benchmarks`` is keyed under."""
    return "+".join(benchmarks)


def resolve_mix(spec: Union[str, MixSpec, Sequence[str]]) -> MixSpec:
    """Resolve a mix argument to a :class:`MixSpec`.

    Accepts a named mix (``"mix3"``), a separator-joined benchmark list
    (``"swim+mcf"`` or ``"swim,mcf"`` — one core per benchmark, order =
    core slot), a sequence of benchmark names, or an existing spec.
    """
    if isinstance(spec, MixSpec):
        return spec
    if isinstance(spec, str):
        name = spec.strip()
        if name in MIXES:
            return MIXES[name]
        parts = tuple(
            part.strip()
            for part in name.replace(",", "+").split("+")
            if part.strip()
        )
        if not parts:
            raise ValueError(f"empty mix spec {spec!r}")
        if len(parts) == 1 and parts[0] not in SUITE:
            raise KeyError(
                f"unknown mix {spec!r}; choose from {sorted(MIXES)} or join "
                f"benchmark names with '+'"
            )
        return MixSpec(canonical_mix_name(parts), parts)
    parts = tuple(spec)
    return MixSpec(canonical_mix_name(parts), parts)


def mix_config(
    spec: Union[str, MixSpec, Sequence[str]],
    prefetcher: str = "none",
    shared_pht: bool = False,
    label: Optional[str] = None,
    sanitize: Optional[str] = None,
) -> SimulationConfig:
    """A :class:`SimulationConfig` running ``spec`` on N cores.

    The returned configuration carries the mix's benchmark tuple (and
    core count) as fingerprinted dimensions, so the store, fabric, and
    campaign machinery shard and resume mix cells like any other cell.
    Pair it with the mix's :attr:`MixSpec.canonical` name when calling
    :func:`repro.sim.simulate`.
    """
    resolved = resolve_mix(spec)
    config = SimulationConfig.for_prefetcher(prefetcher)
    return replace(
        config,
        cores=resolved.cores,
        mix=resolved.benchmarks,
        shared_pht=shared_pht,
        label=label,
        sanitize=sanitize,
    )
