"""Tests for the Dead-Block Correlating Prefetcher baseline."""

import pytest

from repro.prefetchers import DBCPConfig, DeadBlockCorrelatingPrefetcher
from repro.prefetchers.base import AccessEvent, EvictionEvent, MissEvent


def miss(block, pc=0x1000, now=0.0):
    return MissEvent(block & 1023, block >> 10, block, pc, False, now)


def touch(block, pc=0x1000, hit=True, now=0.0):
    return AccessEvent(block & 1023, block >> 10, block, pc, False, hit, now)


def evict(block, now=0.0):
    return EvictionEvent(block & 1023, block >> 10, block, now, 0.0, now)


class TestConfig:
    def test_default_budget_is_2mb(self):
        prefetcher = DeadBlockCorrelatingPrefetcher()
        assert prefetcher.storage_bytes() == 2 * 1024 * 1024

    def test_invalid_sets(self):
        with pytest.raises(ValueError):
            DBCPConfig(sets=100)

    def test_needs_streams(self):
        prefetcher = DeadBlockCorrelatingPrefetcher()
        assert prefetcher.needs_access_stream
        assert prefetcher.needs_eviction_stream


class TestCorrelation:
    def _generation(self, prefetcher, block, pcs, successor):
        """Simulate one life of ``block``: fill, touches, death, next miss."""
        requests = prefetcher.observe_access(touch(block, pcs[0], hit=False))
        prefetcher.observe_miss(miss(block, pcs[0]))
        for pc in pcs[1:]:
            requests = prefetcher.observe_access(touch(block, pc, hit=True))
        prefetcher.observe_eviction(evict(block))
        prefetcher.observe_access(touch(successor, 0x9999, hit=False))
        prefetcher.observe_miss(miss(successor, 0x9999))
        return requests

    def test_learns_death_to_successor(self):
        """After one generation teaching 'block 5 dies with trace T ->
        block 7 comes next', the same trace in generation two predicts
        block 7 at the death point."""
        prefetcher = DeadBlockCorrelatingPrefetcher(DBCPConfig(sets=256, ways=4))
        pcs = [0x1000, 0x1008, 0x1010]
        self._generation(prefetcher, block=5, pcs=pcs, successor=7)
        # generation two: same reference trace
        prefetcher.observe_access(touch(5, pcs[0], hit=False))
        prefetcher.observe_miss(miss(5, pcs[0]))
        prefetcher.observe_access(touch(5, pcs[1], hit=True))
        requests = prefetcher.observe_access(touch(5, pcs[2], hit=True))
        assert requests is not None
        assert [r.block for r in requests] == [7]
        assert prefetcher.dead_predictions >= 1

    def test_different_trace_no_prediction(self):
        prefetcher = DeadBlockCorrelatingPrefetcher(DBCPConfig(sets=256, ways=4))
        self._generation(prefetcher, block=5, pcs=[0x1000, 0x1008], successor=7)
        prefetcher.observe_access(touch(5, 0x1000, hit=False))
        prefetcher.observe_miss(miss(5, 0x1000))
        # a different PC touches the block: signature diverges
        requests = prefetcher.observe_access(touch(5, 0xBEEF, hit=True))
        assert not requests

    def test_signature_is_per_block(self):
        prefetcher = DeadBlockCorrelatingPrefetcher(DBCPConfig(sets=256, ways=4))
        self._generation(prefetcher, block=5, pcs=[0x1000, 0x1008], successor=7)
        # same PCs on a different block: different signature, no prediction
        prefetcher.observe_access(touch(1029, 0x1000, hit=False))
        prefetcher.observe_miss(miss(1029, 0x1000))
        requests = prefetcher.observe_access(touch(1029, 0x1008, hit=True))
        assert not requests

    def test_self_successor_suppressed(self):
        prefetcher = DeadBlockCorrelatingPrefetcher(DBCPConfig(sets=256, ways=4))
        self._generation(prefetcher, block=5, pcs=[0x1000], successor=5)
        prefetcher.observe_access(touch(5, 0x1000, hit=False))
        requests = prefetcher.observe_access(touch(5, 0x1000, hit=False))
        assert not requests

    def test_reset(self):
        prefetcher = DeadBlockCorrelatingPrefetcher(DBCPConfig(sets=256, ways=4))
        self._generation(prefetcher, block=5, pcs=[0x1000, 0x1008], successor=7)
        prefetcher.reset()
        prefetcher.observe_access(touch(5, 0x1000, hit=False))
        prefetcher.observe_miss(miss(5, 0x1000))
        requests = prefetcher.observe_access(touch(5, 0x1008, hit=True))
        assert not requests
        assert prefetcher.dead_predictions == 0
