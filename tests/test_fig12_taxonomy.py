"""Edge cases of the Figure 12 L2-access taxonomy.

The paper's Figure 12 classifies L2 traffic into *prefetched original*
(demand accesses covered by a prefetch), *non-prefetched original*,
and *prefetched extra* (prefetch work that never covered a demand).
The classification hinges on the per-line prefetch bit, and the two
subtle transitions are:

* a demand access that **merges with an in-flight prefetch** — the
  block is resident in L2 but its fill is still in the future
  (``fill_time > arrival``).  The demand must consume the prefetch bit
  (it was covered: the prefetch saved most of a memory round trip) and
  wait for the in-flight fill, not re-fetch;
* a prefetched block **evicted before any demand touched it** — it
  must move to the *extra* column exactly once, and only if its bit
  was never consumed.
"""

import pytest

from repro.memory import HierarchyParams, MemoryHierarchy
from repro.prefetchers.base import PrefetchRequest


def make_hierarchy(**overrides) -> MemoryHierarchy:
    return MemoryHierarchy(HierarchyParams(model_icache=False, **overrides))


def access(h, block, now=0.0, is_write=False, pc=0x1000):
    index = block & (h.params.l1d.sets - 1)
    tag = block >> h.params.l1d.index_bits
    return h.access(now, index, tag, block, is_write, pc)


def l2_probe(h, l1_block):
    l2_block = l1_block >> h._l2_shift
    return h.l2d.probe(l2_block & h._l2_index_mask, l2_block >> h._l2_index_bits)


def evict_l2_set_of(h, l1_block, start_time, extra_fills=6):
    """Demand-fill enough distinct tags to push ``l1_block`` out of L2."""
    l2_sets = h.params.l2.sets
    base_l2_block = l1_block >> h._l2_shift
    t = start_time
    for way in range(1, extra_fills):
        sibling = (base_l2_block + way * l2_sets) << h._l2_shift
        t = access(h, sibling, now=t).completion + 1.0
    return t


class TestMergeWithInflightPrefetch:
    def test_demand_merge_consumes_prefetch_bit(self):
        h = make_hierarchy()
        h.issue_prefetch(PrefetchRequest(0x40), 0.0)
        line = l2_probe(h, 0x40)
        assert line is not None and line.prefetched
        fill_time = line.fill_time
        assert fill_time > 10.0  # the fetch is still in flight at t=10

        result = access(h, 0x40, now=10.0)

        # Covered demand: counted as prefetched original exactly once,
        # the prefetch declared useful, the bit consumed.
        assert h.stats.prefetched_original == 1
        assert h.stats.useful_prefetches == 1
        assert not line.prefetched
        # Merge, not re-fetch: the demand waits for the in-flight fill
        # (memory saw only the prefetch) ...
        assert result.completion >= fill_time
        assert h.memory.accesses == 1
        # ... and it is an L2 hit in the taxonomy, not a new miss.
        assert h.stats.l2_demand_hits == 1
        assert h.stats.l2_demand_misses == 0

    def test_merge_does_not_leak_into_extra_column(self):
        h = make_hierarchy()
        h.issue_prefetch(PrefetchRequest(0x40), 0.0)
        access(h, 0x40, now=10.0)
        # The same physical fetch must not be double-booked as extra.
        assert h.stats.prefetch_redundant == 0
        assert h.stats.prefetch_evicted_unused == 0
        h.finalize()
        assert h.stats.prefetch_residual_unused == 0
        assert h.stats.prefetched_extra == 0

    def test_second_demand_is_not_covered(self):
        h = make_hierarchy()
        h.issue_prefetch(PrefetchRequest(0x40), 0.0)
        first = access(h, 0x40, now=10.0)
        # Evict from L1 so the next demand reaches L2 again.
        h.l1d.invalidate(0x40 & (h.params.l1d.sets - 1), 0x40 >> h.params.l1d.index_bits)
        access(h, 0x40, now=first.completion + 100.0)
        assert h.stats.l2_demand_accesses == 2
        assert h.stats.prefetched_original == 1
        assert h.stats.non_prefetched_original == 1


class TestEvictedUnused:
    def test_unused_prefetch_evicted_counts_extra_once(self):
        h = make_hierarchy()
        h.issue_prefetch(PrefetchRequest(0x40), 0.0)
        evict_l2_set_of(h, 0x40, start_time=200.0)
        assert h.stats.prefetch_evicted_unused == 1
        assert l2_probe(h, 0x40) is None
        # Already accounted at eviction time; finalize must not
        # re-count it as residual.
        h.finalize()
        assert h.stats.prefetch_residual_unused == 0
        assert h.stats.prefetched_extra == 1

    def test_used_prefetch_evicted_is_not_extra(self):
        h = make_hierarchy()
        h.issue_prefetch(PrefetchRequest(0x40), 0.0)
        covered = access(h, 0x40, now=200.0)  # consumes the bit
        evict_l2_set_of(h, 0x40, start_time=covered.completion + 1.0)
        assert l2_probe(h, 0x40) is None
        assert h.stats.prefetch_evicted_unused == 0
        assert h.stats.prefetched_original == 1

    def test_lru_insertion_sacrifices_prefetch_first(self):
        # With low-priority insertion a wrong prefetch is the set's
        # first victim: one demand fill to a full set evicts it while
        # every demand block survives.
        h = make_hierarchy(prefetch_insert_policy="lru")
        l2_sets = h.params.l2.sets
        demand_blocks = [((0x40 >> 1) + way * l2_sets) << 1 for way in range(1, 4)]
        t = 0.0
        for block in demand_blocks:
            t = access(h, block, now=t).completion + 1.0
        h.issue_prefetch(PrefetchRequest(0x40), t)  # fills the 4th way
        t = access(h, ((0x40 >> 1) + 4 * l2_sets) << 1, now=t + 200.0).completion
        assert h.stats.prefetch_evicted_unused == 1
        for block in demand_blocks:
            assert l2_probe(h, block) is not None


class TestTaxonomyInvariants:
    def test_original_columns_partition_demand_accesses(self):
        h = make_hierarchy()
        h.issue_prefetch(PrefetchRequest(0x40), 0.0)
        t = access(h, 0x40, now=10.0).completion
        for block in (0x80, 0x100, 0x40):
            t = access(h, block, now=t + 1.0).completion
        stats = h.stats
        assert (
            stats.prefetched_original + stats.non_prefetched_original
            == stats.l2_demand_accesses
        )
        breakdown = stats.breakdown_vs_original()
        assert breakdown["prefetched_original"] + breakdown[
            "non_prefetched_original"
        ] == pytest.approx(1.0)
