"""Figure 5: observed 3-tag sequences as a share of the random limit.

If per-set tag sequences were random, the number of unique three-tag
sequences would approach ``unique_tags ** 3``; strong correlation keeps
the observed count to a small percentage of that limit.  The paper's
outliers are crafty and twolf, whose sequences "behave quite randomly".
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, suite_order
from repro.experiments.section3 import profile
from repro.workloads import Scale

__all__ = ["run"]


def run(
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = suite_order(benchmarks)
    rows = []
    series = {"fraction_of_limit": {}}
    for name in names:
        stats = profile(name, scale).sequences
        fraction = stats.fraction_of_upper_limit
        series["fraction_of_limit"][name] = fraction
        rows.append(
            [name, stats.unique_sequences, stats.unique_tags ** 3, fraction * 100.0]
        )
    fractions = series["fraction_of_limit"]
    random_like = [name for name, value in fractions.items() if value > 0.05]
    notes = [
        "Small percentages indicate strong tag correlation (the paper sees "
        "under 5% for most benchmarks).",
        "Random-sequence outliers (>5% of the limit): "
        + (", ".join(random_like) if random_like else "none")
        + " (the paper's outliers are crafty and twolf).",
    ]
    return ExperimentResult(
        experiment="fig5",
        title="Unique 3-tag sequences as a percentage of the random upper limit",
        headers=["benchmark", "unique sequences", "upper limit", "% of limit"],
        rows=rows,
        series=series,
        notes=notes,
    )
