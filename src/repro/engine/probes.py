"""Pluggable observation taps for the CPU simulation loop.

The seed tree wired progress heartbeats and the runtime sanitizer into
:meth:`repro.cpu.core.OutOfOrderCore.run` as inline branches.  Probes
replace that: the loop keeps exactly one integer compare per access
(``i + 1 == next_mark``) and, when a mark fires, hands control to a
small list of :class:`Probe` objects.  Adding a new observation — a
checkpoint writer, an IPC sampler, a trace recorder — means writing a
probe, not editing the hot loop.

Mark cadence: the loop fires marks at the *smallest* interval any
attached probe requests, and every probe runs at every mark.  This
reproduces the seed semantics where an attached sanitizer tightened
the progress cadence to its own interval (the sanitizer must observe
state at the same mark where a fault-injection hook may have corrupted
it — see :func:`repro.sim.runner._execute`).

Ordering: probes run in list order.  :func:`resolve_probes` puts the
progress probe first and the sanitizer probe last, preserving the
seed's documented "progress before checks" contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple

__all__ = ["CoreMark", "Probe", "ProgressProbe", "SanitizerProbe", "resolve_probes"]

#: progress-callback signature: (accesses_done, accesses_total, sim_time).
ProgressCallback = Callable[[int, int, float], None]

#: default accesses between marks when only a progress callback is attached.
DEFAULT_INTERVAL = 2048


@dataclass(frozen=True, slots=True)
class CoreMark:
    """Snapshot of the CPU loop's state at one mark.

    Allocated once per mark (marks are thousands of accesses apart),
    never on the per-access path.
    """

    done: int
    total: int
    rob_len: int
    window: int
    last_commit: float
    now_dispatch: float


class Probe:
    """One observation tap on the simulation loop.

    ``interval`` is the probe's *requested* cadence in accesses; the
    loop fires every probe at the minimum cadence across attached
    probes, so ``on_mark`` may run more often than requested — never
    less.
    """

    interval: int = DEFAULT_INTERVAL

    def on_mark(self, mark: CoreMark, hierarchy: Any) -> None:
        """Called at each periodic mark with the loop state snapshot."""

    def on_finalize(self, hierarchy: Any) -> None:
        """Called once after the run (after ``hierarchy.finalize()``)."""


class ProgressProbe(Probe):
    """Adapts a ``(done, total, sim_time)`` callback to the probe API.

    This is the hook behind campaign heartbeats and mid-run checkpoint
    markers (:mod:`repro.sim.resilience` / :mod:`repro.sim.store`).
    """

    def __init__(self, callback: ProgressCallback, interval: int = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError(f"progress interval must be positive, got {interval}")
        self.callback = callback
        self.interval = interval

    def on_mark(self, mark: CoreMark, hierarchy: Any) -> None:
        self.callback(mark.done, mark.total, mark.last_commit)


class SanitizerProbe(Probe):
    """Runs a :class:`repro.sim.sanitizer.Sanitizer` at each mark.

    The probe inherits the sanitizer's own tier-dependent interval and
    forwards the core-side state (ROB occupancy, commit/dispatch
    monotonicity) plus the hierarchy scan.  ``on_finalize`` runs the
    sanitizer's end-of-run conservation checks — callers must invoke
    it *after* :meth:`MemoryHierarchy.finalize` so residual unused
    prefetches have been accounted.
    """

    def __init__(self, sanitizer: Any) -> None:
        self.sanitizer = sanitizer
        self.interval = int(sanitizer.interval)

    def on_mark(self, mark: CoreMark, hierarchy: Any) -> None:
        self.sanitizer.check_core(
            mark.rob_len, mark.window, mark.last_commit, mark.now_dispatch
        )
        self.sanitizer.check(hierarchy, mark.last_commit)

    def on_finalize(self, hierarchy: Any) -> None:
        self.sanitizer.finalize(hierarchy)


def resolve_probes(
    progress: Optional[ProgressCallback],
    progress_interval: int,
    sanitizer: Optional[Any],
    probes: Optional[Sequence[Probe]],
) -> Tuple[Probe, ...]:
    """Merge the legacy keyword hooks and explicit probes into one list.

    Order: progress first, explicit probes in caller order, sanitizer
    last ("progress before checks": a fault-injection progress hook
    must corrupt state *before* the sanitizer observes the same mark).
    """
    if progress_interval <= 0:
        raise ValueError(
            f"progress interval must be positive, got {progress_interval}"
        )
    resolved: list = []
    if progress is not None:
        resolved.append(ProgressProbe(progress, progress_interval))
    if probes:
        resolved.extend(probes)
    if sanitizer is not None:
        resolved.append(SanitizerProbe(sanitizer))
    return tuple(resolved)
