"""Strided tag-sequence detection (Section 6 / Figure 15 of the paper).

A *strided* tag sequence is a per-cache-set sequence of tags with a
constant non-zero stride (e.g. ``T, T+2, T+4``).  The paper measures
how common they are (Figure 15: typically under 2 %, with the
swim-class workloads above 12 %) because strided sequences admit far
cheaper hardware than a general correlation table — which the
:class:`repro.core.variants.StrideFilteredTCP` variant exploits.

Two tools live here:

* :class:`StridedSequenceDetector` — streaming per-set detector used by
  the stride-augmented TCP variant;
* :func:`strided_fraction` — offline analysis over a miss stream,
  reproducing Figure 15's metric (fraction of observed three-tag
  sequence *instances* that are strided).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["StridedSequenceDetector", "is_strided", "strided_fraction"]


def is_strided(sequence: Sequence[int]) -> bool:
    """True when the tag sequence has a constant non-zero stride."""
    if len(sequence) < 2:
        return False
    stride = sequence[1] - sequence[0]
    if stride == 0:
        return False
    for position in range(2, len(sequence)):
        if sequence[position] - sequence[position - 1] != stride:
            return False
    return True


class StridedSequenceDetector:
    """Streaming detector of per-set strided miss-tag sequences.

    Feed it each miss with :meth:`observe`; it returns the predicted
    next tag when the last ``depth`` tags at that set form a strided
    sequence, else None.  State per set is just (last tag, last stride,
    confirmations) — the cheap hardware the paper's Section 6 points at.
    """

    def __init__(self, sets: int, depth: int = 3) -> None:
        if depth < 2:
            raise ValueError(f"detector depth must be at least 2, got {depth}")
        self.sets = sets
        self.depth = depth
        # per-set: (last_tag, stride, confirmations)
        self._state: List[Tuple[int, int, int]] = [(0, 0, -1)] * sets
        self.strided_hits = 0
        self.observations = 0

    def observe(self, index: int, tag: int) -> Optional[int]:
        """Record a miss tag; return the stride prediction if confirmed.

        The stride must have been confirmed ``depth - 2`` times (so a
        depth-3 detector needs two consecutive equal strides, i.e. a
        full strided three-tag sequence) before it predicts.
        """
        self.observations += 1
        last_tag, stride, confirmations = self._state[index]
        observed = tag - last_tag
        if confirmations < 0:
            # first observation at this set
            self._state[index] = (tag, 0, 0)
            return None
        if observed != 0 and observed == stride:
            confirmations += 1
        else:
            confirmations = 1 if observed != 0 else 0
            stride = observed
        self._state[index] = (tag, stride, confirmations)
        if stride != 0 and confirmations >= self.depth - 1:
            self.strided_hits += 1
            return tag + stride
        return None

    def reset(self) -> None:
        self._state = [(0, 0, -1)] * self.sets
        self.strided_hits = 0
        self.observations = 0


def strided_fraction(
    indices: Sequence[int], tags: Sequence[int], depth: int = 3
) -> float:
    """Fraction of per-set ``depth``-tag sequence instances that are strided.

    Reproduces Figure 15: walk the miss stream, maintain the last
    ``depth`` tags per set, and classify each complete window.  Only
    *intra-set* strides count, exactly as in the paper ("only intra-set
    strided tag sequences are considered here").
    """
    if len(indices) != len(tags):
        raise ValueError("indices and tags must have equal length")
    history: Dict[int, List[int]] = {}
    windows = 0
    strided = 0
    for index, tag in zip(indices, tags):
        window = history.setdefault(index, [])
        window.append(tag)
        if len(window) > depth:
            window.pop(0)
        if len(window) == depth:
            windows += 1
            if is_strided(window):
                strided += 1
    return strided / windows if windows else 0.0
