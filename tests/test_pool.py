"""Tests for the warm worker pool and workload-affinity scheduling.

These prove the pool acceptance paths: long-lived workers amortise
process startup across jobs; affinity keeps one benchmark's configs on
one worker; a worker killed mid-campaign loses only its in-flight job
(the worker is recycled, the job retried through the per-attempt
fallback with continuous attempt numbering); and the store/resume
behaviour is identical to per-attempt mode.
"""

import os

import pytest

from repro.sim import SimulationConfig, prewarm, simulate
from repro.sim import store as store_mod
from repro.sim.parallel import _affinity_order, _job_key
from repro.sim.resilience import (
    WORKER_MODE_ENV,
    WORKER_MODES,
    InvariantViolation,
    RetryPolicy,
    StallTimeout,
    resolve_worker_mode,
    run_supervised,
    set_fault_injector,
)
from repro.sim.runner import clear_cache
from repro.sim.store import ResultStore
from repro.workloads import Scale

BASE = SimulationConfig.baseline()
TCP = SimulationConfig.for_prefetcher("tcp-8k")
FAST_POLICY = RetryPolicy(retries=2, backoff_base=0.0)


@pytest.fixture(autouse=True)
def _clean_state():
    clear_cache()
    yield
    clear_cache()
    set_fault_injector(None)
    store_mod.clear_active_store()


class TestModeSelection:
    def test_explicit_mode_wins(self, monkeypatch):
        monkeypatch.setenv(WORKER_MODE_ENV, "attempt")
        assert resolve_worker_mode("pool") == "pool"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(WORKER_MODE_ENV, "attempt")
        assert resolve_worker_mode(None, default="pool") == "attempt"

    def test_invalid_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(WORKER_MODE_ENV, "carrier-pigeon")
        assert resolve_worker_mode(None, default="pool") == "pool"

    def test_invalid_explicit_mode_raises(self):
        with pytest.raises(ValueError):
            resolve_worker_mode("carrier-pigeon")

    def test_modes_constant(self):
        assert set(WORKER_MODES) == {"pool", "attempt"}


class TestAffinityOrder:
    def test_groups_are_contiguous(self):
        jobs = [
            ("gcc", BASE, 100), ("swim", BASE, 100),
            ("gcc", TCP, 100), ("swim", TCP, 100),
        ]
        ordered = _affinity_order(jobs)
        names = [job[0] for job in ordered]
        # each workload's jobs are adjacent
        assert sorted(set(names)) == ["gcc", "swim"]
        first_gcc = names.index("gcc")
        assert names[first_gcc : first_gcc + 2] == ["gcc", "gcc"]

    def test_expensive_group_first(self):
        # mcf (heavily memory-bound, low base IPC) must be scheduled
        # before eon (compute-bound) when group sizes are equal.
        jobs = [("eon", BASE, 100), ("mcf", BASE, 100),
                ("eon", TCP, 100), ("mcf", TCP, 100)]
        ordered = _affinity_order(jobs)
        assert [job[0] for job in ordered] == ["mcf", "mcf", "eon", "eon"]

    def test_larger_group_outranks_smaller_at_same_ipc(self):
        # swim and applu share base_ipc, so group size decides.
        jobs = [("swim", BASE, 100), ("applu", BASE, 100), ("applu", TCP, 100)]
        ordered = _affinity_order(jobs)
        assert [job[0] for job in ordered] == ["applu", "applu", "swim"]


class TestPoolSupervisor:
    """run_supervised(mode="pool") over trivial job functions."""

    def test_workers_are_reused_across_jobs(self):
        report = run_supervised(
            list(range(8)),
            lambda job: os.getpid(),
            workers=2,
            policy=FAST_POLICY,
            key=str,
            mode="pool",
        )
        assert report.ok
        assert len(set(report.completed.values())) <= 2  # 8 jobs, <= 2 pids

    def test_affinity_sticks_to_one_worker(self):
        # One worker drains groups in order: all of a, then all of b.
        order = []
        report = run_supervised(
            ["a1", "b1", "a2", "b2", "a3", "b3"],
            lambda job: job,
            workers=1,
            policy=FAST_POLICY,
            key=str,
            mode="pool",
            group=lambda job: job[0],
            progress=lambda done, total, key, status: order.append(key),
        )
        assert report.ok
        assert order == ["a1", "a2", "a3", "b1", "b2", "b3"]

    def test_crash_recycles_worker_and_retries_one_job(self):
        # The single worker dies on its first job with four undispatched
        # jobs behind it: a replacement *must* spawn to finish them.
        set_fault_injector(
            lambda key, attempt: "crash" if key == "0" and attempt == 1 else None
        )
        report = run_supervised(
            list(range(5)),
            lambda job: job * 10,
            workers=1,
            policy=FAST_POLICY,
            key=str,
            mode="pool",
        )
        assert report.ok, report.summary()
        assert report.completed == {str(i): i * 10 for i in range(5)}
        assert report.retried == 1  # only the in-flight job was charged
        assert report.recycled >= 1
        assert "recycled" in report.summary()

    def test_fallback_attempt_numbering_is_continuous(self):
        # Every job crashes on absolute attempt 1 and only attempt 1.
        # If the fallback restarted numbering at 1, it would crash
        # forever; continuous numbering (attempt 2) must succeed.
        set_fault_injector(lambda key, attempt: "crash" if attempt == 1 else None)
        report = run_supervised(
            list(range(4)),
            lambda job: job,
            workers=2,
            policy=FAST_POLICY,
            key=str,
            mode="pool",
        )
        assert report.ok, report.summary()
        assert report.retried == 4

    def test_exhausted_retries_fail_with_taxonomy_class(self):
        set_fault_injector(lambda key, attempt: "crash")
        report = run_supervised(
            ["only"],
            lambda job: job,
            workers=1,
            policy=RetryPolicy(retries=1, backoff_base=0.0),
            key=str,
            mode="pool",
        )
        assert report.failed == 1
        assert report.failures[0].error == "WorkerCrash"
        assert report.failures[0].attempts == 2  # pool try + fallback try

    def test_invariant_violation_is_not_retried(self):
        def violate(job):
            raise InvariantViolation("deterministic bug")

        report = run_supervised(
            ["x"], violate, workers=1, policy=FAST_POLICY, key=str, mode="pool",
        )
        assert report.failed == 1
        assert report.failures[0].error == "InvariantViolation"
        assert report.failures[0].attempts == 1
        assert report.retried == 0

    def test_timeout_kills_pooled_job_then_fallback_succeeds(self):
        set_fault_injector(
            lambda key, attempt: "timeout" if attempt == 1 else None
        )
        report = run_supervised(
            ["slow"],
            lambda job: job,
            workers=1,
            policy=RetryPolicy(retries=1, timeout=0.5, backoff_base=0.0),
            key=str,
            mode="pool",
        )
        assert report.ok, report.summary()
        assert report.retried == 1
        assert report.recycled == 0  # no undispatched work: no replacement

    def test_stall_watchdog_fires_in_pool_mode(self):
        set_fault_injector(lambda key, attempt: "stall")
        report = run_supervised(
            ["quiet"],
            lambda job: job,
            workers=1,
            policy=RetryPolicy(retries=0, stall_timeout=0.5, backoff_base=0.0),
            key=str,
            mode="pool",
        )
        assert report.failed == 1
        assert report.failures[0].error == StallTimeout.__name__
        assert "no heartbeat" in report.failures[0].message


class TestPoolCampaigns:
    """prewarm-level behaviour: equality with attempt mode, store parity."""

    BENCHES = ("fma3d", "eon")

    def _campaign(self, mode, **kwargs):
        clear_cache()
        report = prewarm(
            [BASE, TCP], Scale.QUICK, self.BENCHES,
            jobs=2, worker_mode=mode, trace_cache=False, **kwargs,
        )
        results = {
            _job_key((name, config, Scale.QUICK.accesses)): simulate(
                name, config, Scale.QUICK
            ).to_dict()
            for name in self.BENCHES
            for config in (BASE, TCP)
        }
        return report, results

    def test_pool_matches_attempt_per_cell(self):
        attempt_report, attempt_results = self._campaign("attempt")
        pool_report, pool_results = self._campaign("pool")
        assert attempt_report.ok and pool_report.ok
        assert attempt_results == pool_results

    def test_pool_campaign_with_trace_cache(self, tmp_path):
        clear_cache()
        report = prewarm(
            [BASE], Scale.QUICK, ("fma3d",), jobs=2,
            worker_mode="pool", trace_cache=str(tmp_path),
        )
        assert report.ok
        assert report.executed == 1
        cached = list(tmp_path.glob("fma3d-*.npz"))
        assert len(cached) == 1  # parent pre-wrote the trace once

    def test_custom_int_scale_campaign(self):
        clear_cache()
        report = prewarm(
            [BASE], 5000, ("fma3d",), jobs=2,
            worker_mode="pool", trace_cache=False,
        )
        assert report.ok, report.summary()
        assert report.executed == 1

    def test_killed_worker_store_resume_parity(self, tmp_path):
        """Acceptance: a mid-campaign kill under pool mode loses only the
        in-flight job, the campaign completes, and the store resumes
        exactly as in per-attempt mode."""
        store_dir = tmp_path / "store"
        crash_key = f"fma3d/base@{Scale.QUICK.accesses}"
        set_fault_injector(
            lambda key, attempt: "crash" if key == crash_key and attempt == 1 else None
        )
        clear_cache()
        with store_mod.use_store(ResultStore(store_dir)):
            report = prewarm(
                [BASE, TCP], Scale.QUICK, self.BENCHES,
                jobs=2, worker_mode="pool", trace_cache=False,
            )
        assert report.ok, report.summary()
        assert report.retried == 1
        assert report.executed == 4
        assert len(ResultStore(store_dir)) == 4  # every result checkpointed

        # a restarted campaign replays everything from the store
        set_fault_injector(None)
        clear_cache()
        with store_mod.use_store(ResultStore(store_dir)):
            resumed = prewarm(
                [BASE, TCP], Scale.QUICK, self.BENCHES,
                jobs=2, worker_mode="pool", trace_cache=False,
            )
        assert resumed.skipped == 4
        assert resumed.executed == 0

    def test_env_selects_mode_for_prewarm(self, monkeypatch):
        # REPRO_WORKER_MODE=attempt must reach the supervisor: with the
        # injector crashing *pool* workers' first attempts only via the
        # recycled counter we can tell which path ran.
        monkeypatch.setenv(WORKER_MODE_ENV, "attempt")
        set_fault_injector(lambda key, attempt: "crash" if attempt == 1 else None)
        clear_cache()
        report = prewarm(
            [BASE], Scale.QUICK, self.BENCHES, jobs=2, trace_cache=False,
        )
        assert report.ok
        assert report.recycled == 0  # attempt mode never recycles
