"""Tests for the baseline prefetchers (null, nextline, stride, stream, markov)."""

import pytest

from repro.prefetchers import (
    MarkovConfig,
    MarkovPrefetcher,
    NextLinePrefetcher,
    NullPrefetcher,
    StreamBufferConfig,
    StreamBufferPrefetcher,
    StrideConfig,
    StridePrefetcher,
)
from repro.prefetchers.base import MissEvent


def miss(block: int, pc: int = 0x1000, now: float = 0.0) -> MissEvent:
    return MissEvent(block & 1023, block >> 10, block, pc, False, now)


class TestNull:
    def test_never_prefetches(self):
        prefetcher = NullPrefetcher()
        for block in range(50):
            assert prefetcher.observe_miss(miss(block)) == []
        assert prefetcher.storage_bytes() == 0
        assert prefetcher.stats.lookups == 50


class TestNextLine:
    def test_degree_one(self):
        prefetcher = NextLinePrefetcher(degree=1)
        requests = prefetcher.observe_miss(miss(100))
        assert [r.block for r in requests] == [101]

    def test_degree_three(self):
        prefetcher = NextLinePrefetcher(degree=3)
        requests = prefetcher.observe_miss(miss(100))
        assert [r.block for r in requests] == [101, 102, 103]

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)


class TestStride:
    def test_learns_constant_stride(self):
        prefetcher = StridePrefetcher(StrideConfig(lookahead=2))
        pc = 0x4000
        requests = []
        for position, block in enumerate([100, 104, 108, 112]):
            requests = prefetcher.observe_miss(miss(block, pc=pc))
        assert [r.block for r in requests] == [116, 120]

    def test_needs_confirmation(self):
        prefetcher = StridePrefetcher()
        pc = 0x4000
        assert prefetcher.observe_miss(miss(100, pc=pc)) == []
        assert prefetcher.observe_miss(miss(104, pc=pc)) == []  # transient

    def test_broken_stride_stops_prefetching(self):
        prefetcher = StridePrefetcher()
        pc = 0x4000
        for block in (100, 104, 108, 112):
            prefetcher.observe_miss(miss(block, pc=pc))
        assert prefetcher.observe_miss(miss(500, pc=pc)) == []

    def test_distinct_pcs_tracked_separately(self):
        prefetcher = StridePrefetcher(StrideConfig(lookahead=1))
        for block in (100, 104, 108):
            prefetcher.observe_miss(miss(block, pc=0x4000))
        # a different PC with no history produces nothing
        assert prefetcher.observe_miss(miss(9999, pc=0x8000)) == []

    def test_zero_stride_never_prefetches(self):
        prefetcher = StridePrefetcher()
        for _ in range(6):
            requests = prefetcher.observe_miss(miss(100, pc=0x4000))
        assert requests == []

    def test_storage_budget(self):
        config = StrideConfig(sets=64, ways=4, entry_bytes=13)
        assert StridePrefetcher(config).storage_bytes() == 64 * 4 * 13

    def test_reset(self):
        prefetcher = StridePrefetcher()
        for block in (100, 104, 108, 112):
            prefetcher.observe_miss(miss(block, pc=0x4000))
        prefetcher.reset()
        assert prefetcher.observe_miss(miss(116, pc=0x4000)) == []


class TestStream:
    def test_allocates_on_new_miss(self):
        prefetcher = StreamBufferPrefetcher(StreamBufferConfig(buffers=2, depth=4))
        requests = prefetcher.observe_miss(miss(100))
        assert [r.block for r in requests] == [101, 102, 103, 104]

    def test_stream_hit_extends(self):
        prefetcher = StreamBufferPrefetcher(StreamBufferConfig(buffers=2, depth=4))
        prefetcher.observe_miss(miss(100, now=0.0))
        requests = prefetcher.observe_miss(miss(101, now=1.0))
        assert [r.block for r in requests] == [105]

    def test_skipping_within_window_consumes(self):
        prefetcher = StreamBufferPrefetcher(StreamBufferConfig(buffers=2, depth=4))
        prefetcher.observe_miss(miss(100, now=0.0))
        requests = prefetcher.observe_miss(miss(103, now=1.0))
        assert [r.block for r in requests] == [105, 106, 107]

    def test_lru_buffer_replacement(self):
        prefetcher = StreamBufferPrefetcher(StreamBufferConfig(buffers=2, depth=2))
        prefetcher.observe_miss(miss(100, now=0.0))
        prefetcher.observe_miss(miss(500, now=1.0))
        prefetcher.observe_miss(miss(900, now=2.0))  # evicts stream @100
        requests = prefetcher.observe_miss(miss(101, now=3.0))
        # stream at 100 is gone: this allocates fresh rather than hitting
        assert [r.block for r in requests] == [102, 103]

    def test_reset(self):
        prefetcher = StreamBufferPrefetcher()
        prefetcher.observe_miss(miss(100))
        prefetcher.reset()
        requests = prefetcher.observe_miss(miss(101))
        assert requests[0].block == 102  # fresh allocation, not a hit


class TestMarkov:
    def test_learns_successor(self):
        prefetcher = MarkovPrefetcher(MarkovConfig(sets=16, ways=2, targets=2))
        prefetcher.observe_miss(miss(10))
        prefetcher.observe_miss(miss(20))
        requests = prefetcher.observe_miss(miss(10))
        assert [r.block for r in requests] == [20]

    def test_multiple_targets_mru_first(self):
        prefetcher = MarkovPrefetcher(MarkovConfig(sets=16, ways=2, targets=2))
        for block in (10, 20, 10, 30, 10):
            requests = prefetcher.observe_miss(miss(block))
        assert [r.block for r in requests] == [30, 20]

    def test_target_capacity(self):
        prefetcher = MarkovPrefetcher(MarkovConfig(sets=16, ways=2, targets=2))
        for block in (10, 20, 10, 30, 10, 40, 10):
            requests = prefetcher.observe_miss(miss(block))
        assert [r.block for r in requests] == [40, 30]

    def test_self_transition_ignored(self):
        prefetcher = MarkovPrefetcher(MarkovConfig(sets=16, ways=2))
        prefetcher.observe_miss(miss(10))
        requests = prefetcher.observe_miss(miss(10))
        assert requests == []

    def test_storage_budget(self):
        config = MarkovConfig(sets=4096, ways=4, targets=2, slot_bytes=4, tag_bytes=4)
        assert MarkovPrefetcher(config).storage_bytes() == 4096 * 4 * 12

    def test_reset(self):
        prefetcher = MarkovPrefetcher(MarkovConfig(sets=16, ways=2))
        prefetcher.observe_miss(miss(10))
        prefetcher.observe_miss(miss(20))
        prefetcher.reset()
        assert prefetcher.observe_miss(miss(10)) == []
