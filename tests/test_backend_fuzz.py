"""Randomized differential testing of the simulation backends.

Hypothesis drives arbitrary small traces and machine shapes through
the ``python`` reference backend and every contender (``numpy``, and
``native`` when the compiled extension is available) and requires
bit-identical outcomes — the randomized counterpart to the
hand-picked boundary cases in ``tests/test_backend.py``.  Shrinking
makes a divergence actionable: the reported counterexample is the
shortest trace that still splits the backends.

The module also carries the full-surface oracle: every suite benchmark
under every paper configuration (26 x 6 = 156 runs at QUICK scale per
contender), compared across backends.  That is minutes of work, so it
only runs when ``REPRO_BACKEND_ORACLE=1`` is set — CI and pre-release
checks opt in; the default tier-1 run keeps the fuzz tests only.
"""

import dataclasses
import os
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import get_backend
from repro.backend.native import build as native_build
from repro.cpu.core import CoreParams
from repro.memory import MemoryHierarchy
from repro.sim import SimulationConfig, simulate
from repro.sim.runner import clear_cache
from repro.workloads import BENCHMARK_ORDER, Scale, Trace

#: prefetcher labels the fuzz cycles through — the batched path
#: (none/nextline/tcp-8k) plus one fallback config (hybrid-8k) so the
#: reference-loop delegation is fuzzed too.
FUZZ_LABELS = ("none", "nextline", "tcp-8k", "hybrid-8k")

#: the oracle grid: the paper's headline configurations.
ORACLE_LABELS = ("none", "nextline", "tcp-8k", "tcp-8m", "dbcp-2m", "hybrid-8k")

#: every backend compared against the reference.  ``native`` stays in
#: the grid even when the extension is missing — those cells skip with
#: the reason, so a CI log shows exactly what was not covered.
CONTENDERS = ("numpy", "native")


def _require(contender):
    if contender == "native" and native_build.load() is None:
        pytest.skip(f"native extension unavailable ({native_build.load_error()})")


@st.composite
def traces(draw):
    """Small adversarial traces: few distinct blocks (hits and misses
    interleave), few PCs (tag correlations repeat), occasional stores
    and short dependence chains."""
    n = draw(st.integers(min_value=1, max_value=300))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    blocks = draw(st.integers(min_value=1, max_value=48))
    addrs = rng.integers(0, blocks, n).astype(np.uint64) * np.uint64(64)
    if draw(st.booleans()):
        # widen some addresses so L2 sets/tags vary, not only L1's
        addrs += rng.integers(0, 4, n).astype(np.uint64) << np.uint64(20)
    deps = np.where(rng.random(n) < 0.15, 1, 0).astype(np.int64)
    deps[0] = 0
    return Trace(
        name="fuzz",
        addrs=addrs,
        pcs=rng.integers(0, 8, n).astype(np.uint64) * np.uint64(4),
        is_load=rng.random(n) < draw(st.sampled_from((0.5, 0.8, 1.0))),
        gaps=rng.integers(0, 7, n).astype(np.int64),
        deps=deps,
        base_ipc=draw(st.sampled_from((1.0, 2.0, 4.0))),
    )


def _run_backend(name, trace, config, params, warmup):
    machine = MemoryHierarchy(config.hierarchy)
    machine.attach_prefetcher(config.build_prefetcher())
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = get_backend(name).run(trace, machine, params, warmup=warmup)
    return result, machine


@pytest.mark.parametrize("contender", CONTENDERS)
@settings(deadline=None, max_examples=60)
@given(
    trace=traces(),
    label=st.sampled_from(FUZZ_LABELS),
    window=st.sampled_from((2, 8, 128)),
    lsq=st.sampled_from((2, 128)),
    warmup_frac=st.sampled_from((0.0, 0.3)),
)
def test_backends_agree_on_arbitrary_traces(
    contender, trace, label, window, lsq, warmup_frac
):
    _require(contender)
    config = SimulationConfig.for_prefetcher(label)
    params = CoreParams(window=window, lsq=lsq)
    warmup = int(len(trace) * warmup_frac)
    ref, ref_machine = _run_backend("python", trace, config, params, warmup)
    new, new_machine = _run_backend(contender, trace, config, params, warmup)
    assert new == ref
    assert new_machine.stats == ref_machine.stats
    assert new_machine.warmup_stats == ref_machine.warmup_stats


@pytest.mark.skipif(
    os.environ.get("REPRO_BACKEND_ORACLE") != "1",
    reason="156-run oracle is minutes of work; set REPRO_BACKEND_ORACLE=1",
)
@pytest.mark.parametrize("contender", CONTENDERS)
@pytest.mark.parametrize("label", ORACLE_LABELS)
@pytest.mark.parametrize("bench", BENCHMARK_ORDER)
def test_oracle_cell(bench, label, contender):
    """Full-surface differential: every benchmark x configuration cell
    produces asdict-identical SimResults under every backend."""
    _require(contender)
    clear_cache()
    config = SimulationConfig.for_prefetcher(label)
    ref = simulate(bench, config, Scale.QUICK, use_cache=False)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        new = simulate(
            bench,
            dataclasses.replace(config, backend=contender),
            Scale.QUICK,
            use_cache=False,
        )
    assert dataclasses.asdict(new) == dataclasses.asdict(ref)
