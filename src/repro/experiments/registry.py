"""Registry mapping paper labels to experiment runners."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.experiments import (
    figure01,
    figure02,
    figure03,
    figure04,
    figure05,
    figure06,
    figure07,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    table01,
)
from repro.experiments.base import ExperimentResult
from repro.workloads import Scale

__all__ = ["EXPERIMENTS", "run_experiment"]

Runner = Callable[..., ExperimentResult]

EXPERIMENTS: Dict[str, Runner] = {
    "table1": table01.run,
    "fig1": figure01.run,
    "fig2": figure02.run,
    "fig3": figure03.run,
    "fig4": figure04.run,
    "fig5": figure05.run,
    "fig6": figure06.run,
    "fig7": figure07.run,
    "fig11": figure11.run,
    "fig12": figure12.run,
    "fig13": figure13.run,
    "fig14": figure14.run,
    "fig15": figure15.run,
}


def run_experiment(
    name: str,
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Run one experiment by its paper label (e.g. ``"fig11"``)."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner(scale=scale, benchmarks=benchmarks)
