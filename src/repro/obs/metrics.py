"""Metric primitives and the process-level registry.

The observability layer follows the sanitizer's cost discipline: when
nothing is enabled the simulation pays **one integer compare per
access** (the probe-mark sentinel in the CPU loop) and zero
allocations — there is no registry object, no disabled-counter
increment, nothing.  Enabling metrics costs only what the probes and
layer hooks actually record at mark cadence.

Three primitive types cover the repro's needs:

``Counter``
    A monotonically increasing total (cache hits, prefetches issued,
    retries).  ``inc`` only accepts non-negative deltas.
``Gauge``
    A point-in-time level that can move both ways (queue depth, MSHR
    occupancy).  ``set`` records the level; min/max/last are kept.
``Histogram``
    A distribution over observations (per-interval miss counts,
    per-job wall seconds).  Fixed bucket boundaries chosen at
    construction; counts, sum and min/max are kept — enough to render
    p50/p90-ish summaries without storing samples.

A :class:`MetricsRegistry` owns all instruments for one scope (one
simulation run, one campaign).  The *active* registry mirrors the
result store's module-global pattern (:func:`set_active_registry` /
:func:`use_registry` / :func:`active_registry`): layers that want to
record — the trace cache, the campaign scheduler — ask for the active
registry and do nothing when there is none.

What is enabled comes from ``REPRO_OBS`` (``off`` | ``metrics`` |
``trace`` | ``all``, comma-separated combinations tolerated), parsed
by :func:`resolve_obs`.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS_CHOICES",
    "OBS_ENV",
    "ObsMode",
    "active_registry",
    "clear_active_registry",
    "metrics_enabled",
    "resolve_obs",
    "set_active_registry",
    "trace_enabled",
    "use_registry",
]

OBS_ENV = "REPRO_OBS"

#: default histogram bucket boundaries — powers of two up to 64k cover
#: everything the repro observes per interval (mark cadence is 2048
#: accesses, so per-interval event counts fit comfortably).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(float(2 ** i) for i in range(17))


class ObsMode:
    """What the ``REPRO_OBS`` setting enables (a frozen pair of flags)."""

    __slots__ = ("metrics", "trace")

    def __init__(self, metrics: bool = False, trace: bool = False) -> None:
        object.__setattr__(self, "metrics", bool(metrics))
        object.__setattr__(self, "trace", bool(trace))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("ObsMode is immutable")

    def __repr__(self) -> str:
        return f"ObsMode(metrics={self.metrics}, trace={self.trace})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ObsMode)
            and self.metrics == other.metrics
            and self.trace == other.trace
        )

    def __hash__(self) -> int:
        return hash((self.metrics, self.trace))

    @property
    def enabled(self) -> bool:
        return self.metrics or self.trace


_OBS_VALUES = {
    "off": ObsMode(),
    "metrics": ObsMode(metrics=True),
    "trace": ObsMode(trace=True),
    "all": ObsMode(metrics=True, trace=True),
}

#: the single-token values (for CLI ``choices=``; :func:`resolve_obs`
#: additionally accepts comma-separated combinations).
OBS_CHOICES: Tuple[str, ...] = ("off", "metrics", "trace", "all")


def resolve_obs(requested: Optional[str] = None) -> ObsMode:
    """Map a ``--obs``/``REPRO_OBS`` value onto an :class:`ObsMode`.

    ``None`` defers to the environment (default ``off``).  Values
    combine with commas (``metrics,trace`` == ``all``); unknown tokens
    raise ``ValueError`` so a typo can never silently disable the
    observation a user asked for.
    """
    if requested is None:
        requested = os.environ.get(OBS_ENV, "off")
    metrics = trace = False
    for token in str(requested).split(","):
        token = token.strip().lower()
        if not token:
            continue
        mode = _OBS_VALUES.get(token)
        if mode is None:
            raise ValueError(
                f"unknown obs mode {token!r}; expected one of "
                f"{sorted(_OBS_VALUES)} (comma-separated combinations allowed)"
            )
        metrics = metrics or mode.metrics
        trace = trace or mode.trace
    return ObsMode(metrics=metrics, trace=trace)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, delta: Union[int, float] = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name}: negative delta {delta}")
        self.value += delta

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A level that moves both ways; tracks last/min/max/samples."""

    __slots__ = ("name", "last", "min", "max", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.last: float = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples = 0

    def set(self, value: Union[int, float]) -> None:
        value = float(value)
        self.last = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.samples += 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "gauge",
            "last": self.last,
            "min": self.min if self.samples else None,
            "max": self.max if self.samples else None,
            "samples": self.samples,
        }


class Histogram:
    """A bucketed distribution of observations.

    ``buckets`` are upper-inclusive boundaries; one overflow bucket
    (``inf``) is always appended.  Counts per bucket plus total count,
    sum, min and max are kept — samples themselves are not stored.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name}: needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name}: duplicate bucket boundaries")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        if not self.count:
            return 0.0
        # naive float accumulation can land sum/count an ulp outside the
        # observed envelope; the true mean always lies within [min, max]
        return min(max(self.sum / self.count, self.min), self.max)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """All instruments for one observation scope, keyed by name.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call with a name defines the instrument, later calls return the
    same object (a type clash raises — two layers silently sharing a
    name across types would corrupt both).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, cls: type, *args: Any) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, *args)
            self._instruments[name] = instrument
            return instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, requested {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, buckets)

    def get(self, name: str) -> Optional[Union[Counter, Gauge, Histogram]]:
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """JSON-serialisable snapshot of every instrument (sorted)."""
        return {
            name: self._instruments[name].to_dict()
            for name in sorted(self._instruments)
        }

    def merge(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold a ``to_dict`` snapshot from another process into this one.

        Counters and histogram counts/sums add; gauges keep the
        widest min/max envelope and the latest ``last``.  Used by the
        campaign layer to aggregate per-worker metrics into one
        campaign-level registry.  Unknown/malformed entries are
        skipped — a worker's metrics are advisory, never fatal.
        """
        for name, payload in snapshot.items():
            if not isinstance(payload, dict):
                continue
            kind = payload.get("type")
            try:
                if kind == "counter":
                    self.counter(name).inc(payload.get("value", 0))
                elif kind == "gauge":
                    gauge = self.gauge(name)
                    samples = int(payload.get("samples", 0))
                    if samples > 0:
                        low = payload.get("min")
                        high = payload.get("max")
                        if low is not None and float(low) < gauge.min:
                            gauge.min = float(low)
                        if high is not None and float(high) > gauge.max:
                            gauge.max = float(high)
                        gauge.last = float(payload.get("last", gauge.last))
                        gauge.samples += samples
                elif kind == "histogram":
                    buckets = payload.get("buckets")
                    hist = self.histogram(
                        name, buckets if buckets else DEFAULT_BUCKETS
                    )
                    counts = payload.get("counts", [])
                    if list(hist.buckets) == list(buckets or hist.buckets) and len(
                        counts
                    ) == len(hist.counts):
                        for i, c in enumerate(counts):
                            hist.counts[i] += int(c)
                        hist.count += int(payload.get("count", 0))
                        hist.sum += float(payload.get("sum", 0.0))
                        low = payload.get("min")
                        high = payload.get("max")
                        if low is not None and float(low) < hist.min:
                            hist.min = float(low)
                        if high is not None and float(high) > hist.max:
                            hist.max = float(high)
            except (TypeError, ValueError):
                continue


# ---------------------------------------------------------------------------
# The active registry (mirrors repro.sim.store's active-store pattern)
# ---------------------------------------------------------------------------

_ACTIVE_REGISTRY: Optional[MetricsRegistry] = None


def set_active_registry(
    registry: Optional[MetricsRegistry],
) -> Optional[MetricsRegistry]:
    """Install the registry layer hooks record into; returns the old one."""
    global _ACTIVE_REGISTRY
    previous = _ACTIVE_REGISTRY
    _ACTIVE_REGISTRY = registry
    return previous


def clear_active_registry() -> None:
    global _ACTIVE_REGISTRY
    _ACTIVE_REGISTRY = None


def active_registry() -> Optional[MetricsRegistry]:
    """The registry to record into right now, or ``None`` (= disabled).

    Hot paths must check for ``None`` once per *event batch*, never
    per access — the per-access discipline is the probe mark.
    """
    return _ACTIVE_REGISTRY


@contextmanager
def use_registry(
    registry: Optional[MetricsRegistry],
) -> Iterator[Optional[MetricsRegistry]]:
    """Context manager: temporarily make ``registry`` the active one."""
    previous = set_active_registry(registry)
    try:
        yield registry
    finally:
        set_active_registry(previous)


def metrics_enabled() -> bool:
    """True when a registry is active (cheap single global read)."""
    return _ACTIVE_REGISTRY is not None


def trace_enabled() -> bool:
    """True when a span sink is active (see :mod:`repro.obs.spans`)."""
    from repro.obs import spans

    return spans.span_sink() is not None
