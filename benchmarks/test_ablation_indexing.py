"""Ablation: PHT index function — truncated add (Figure 9) vs XOR fold.

The paper's Section 6 suggests harvesting branch-predictor indexing
lessons; gshare-style XOR folding is the natural candidate.  This bench
compares both hash functions at the TCP-8K design point on the
memory-bound subset.
"""

from conftest import run_once

from repro.core import IndexFunction, tcp_with_pht
from repro.core.pht import PHTConfig
from repro.core.tcp import TagCorrelatingPrefetcher, TCPConfig
from repro.sim import SimulationConfig, simulate
from repro.sim.config import register_prefetcher
from repro.util.stats import geometric_mean
from repro.util.tables import format_table

WORKLOADS = ("swim", "applu", "art", "lucas", "mgrid", "wupwise")
KB = 1024


def _gain(name: str, scale) -> float:
    ratios = []
    for workload in WORKLOADS:
        base = simulate(workload, SimulationConfig.baseline(), scale)
        result = simulate(workload, SimulationConfig.for_prefetcher(name), scale)
        ratios.append(result.ipc / base.ipc)
    return (geometric_mean(ratios) - 1.0) * 100.0


def _register(function: IndexFunction) -> str:
    def factory(fn=function):
        pht = PHTConfig(sets=256, ways=8, index_function=fn)
        return TagCorrelatingPrefetcher(TCPConfig(pht=pht))

    return register_prefetcher(f"abl-index-{function.value}", factory)


def test_ablation_index_functions(benchmark, scale):
    def study():
        rows = []
        for function in IndexFunction:
            name = _register(function)
            rows.append([function.value, _gain(name, scale)])
        return rows

    rows = run_once(benchmark, study)
    print()
    print(format_table(["index function", "geomean IPC gain %"], rows,
                       title="PHT index-function ablation (8KB PHT)"))
    gains = {label: value for label, value in rows}
    # Both hashes must extract most of the correlation signal; neither
    # should collapse relative to the other.
    assert gains["truncated-add"] > 0
    assert gains["xor-fold"] > 0.3 * gains["truncated-add"]
