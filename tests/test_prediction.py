"""Tests for offline prefetcher scoring (repro.analysis.prediction)."""

import numpy as np
import pytest

from repro.analysis import score_prefetcher
from repro.analysis.miss_stream import MissStream
from repro.core import tcp_8k
from repro.memory.address import CacheGeometry
from repro.prefetchers import NextLinePrefetcher, NullPrefetcher
from repro.workloads import Scale

SMALL = CacheGeometry(4 * 32, 1, 32)


def stream_of(blocks):
    blocks = np.asarray(blocks, dtype=np.int64)
    return MissStream(
        workload="s",
        geometry=SMALL,
        indices=blocks % SMALL.sets,
        tags=blocks // SMALL.sets,
        blocks=blocks,
        accesses=len(blocks) * 2,
    )


class TestScoring:
    def test_null_prefetcher_scores_zero(self):
        score = score_prefetcher(NullPrefetcher(), stream_of([1, 2, 3, 4]))
        assert score.predictions == 0
        assert score.coverage == 0.0
        assert score.accuracy == 0.0

    def test_nextline_on_sequential_stream(self):
        score = score_prefetcher(NextLinePrefetcher(1), stream_of(range(100)))
        # every miss after the first was predicted by its predecessor
        assert score.covered == 99
        assert score.coverage == pytest.approx(0.99)
        assert score.accuracy == pytest.approx(0.99)

    def test_nextline_on_backward_stream_is_useless(self):
        score = score_prefetcher(NextLinePrefetcher(1), stream_of(range(100, 0, -1)))
        assert score.covered == 0
        assert score.accuracy == 0.0
        assert score.predictions == 100

    def test_horizon_expires_predictions(self):
        # block 1 is predicted at position 0 but demanded 6 misses
        # later; the sequential 100..104 run covers itself regardless.
        blocks = [0] + [100 + i for i in range(5)] + [1]
        nextline = NextLinePrefetcher(1)
        in_horizon = score_prefetcher(nextline, stream_of(blocks), horizon=10)
        assert in_horizon.covered == 5  # 101..104 and the late block 1
        nextline.reset()
        expired = score_prefetcher(nextline, stream_of(blocks), horizon=3)
        assert expired.covered == 4  # block 1's prediction expired

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            score_prefetcher(NullPrefetcher(), stream_of([1]), horizon=0)

    def test_tcp_scores_on_cyclic_pattern(self):
        sets = 1024  # tcp_8k expects the paper's 1024-set geometry
        pattern = []
        for _lap in range(6):
            for tag in (1, 2, 3):
                pattern.append(tag * sets + 5)
        geometry = CacheGeometry(32 * 1024, 1, 32)
        blocks = np.asarray(pattern, dtype=np.int64)
        stream = MissStream(
            workload="cycle", geometry=geometry,
            indices=blocks % sets, tags=blocks // sets, blocks=blocks,
            accesses=len(blocks),
        )
        score = score_prefetcher(tcp_8k(), stream)
        assert score.coverage > 0.5
        assert score.accuracy > 0.5

    def test_named_workload_scoring(self):
        score = score_prefetcher(tcp_8k(), "applu", Scale.QUICK)
        assert score.misses > 0
        assert 0.0 <= score.coverage <= 1.0
        assert 0.0 <= score.accuracy <= 1.0

    def test_predictions_per_miss(self):
        score = score_prefetcher(NextLinePrefetcher(3), stream_of(range(50)))
        assert score.predictions_per_miss == pytest.approx(3.0)
