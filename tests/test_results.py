"""Direct tests for repro.sim.results containers."""

import pytest

from repro.cpu.core import CoreResult
from repro.memory.hierarchy import HierarchyStats
from repro.sim.results import SimResult, SuiteResult


def make_result(workload="w", label="cfg", ipc=2.0):
    instructions = 1000
    cycles = instructions / ipc
    stats = HierarchyStats(demand_accesses=100, l1_hits=90, l1_misses=10,
                           l2_demand_accesses=10, l2_demand_hits=6,
                           l2_demand_misses=4, prefetched_original=3,
                           prefetch_redundant=2)
    return SimResult(
        workload=workload,
        config_label=label,
        core=CoreResult(instructions, cycles, 100),
        memory=stats,
        prefetcher_name="x",
        prefetcher_storage_bytes=1024,
        prefetcher_predictions=5,
    )


class TestSimResult:
    def test_ipc_passthrough(self):
        assert make_result(ipc=2.5).ipc == pytest.approx(2.5)

    def test_improvement_over(self):
        base = make_result(ipc=2.0)
        better = make_result(ipc=2.5)
        assert better.improvement_over(base) == pytest.approx(25.0)

    def test_improvement_requires_matching_workload(self):
        with pytest.raises(ValueError):
            make_result(workload="a").improvement_over(make_result(workload="b"))

    def test_summary_contains_key_fields(self):
        text = make_result().summary()
        assert "w" in text and "cfg" in text and "l1mr" in text


class TestHierarchyStatsDerived:
    def test_breakdown_sums_to_original_plus_extra(self):
        stats = make_result().memory
        breakdown = stats.breakdown_vs_original()
        assert breakdown["prefetched_original"] + breakdown[
            "non_prefetched_original"
        ] == pytest.approx(1.0)
        assert breakdown["prefetched_extra"] == pytest.approx(0.2)

    def test_miss_rates(self):
        stats = make_result().memory
        assert stats.l1_miss_rate == pytest.approx(0.1)
        assert stats.l2_demand_miss_rate == pytest.approx(0.4)

    def test_empty_stats_rates_zero(self):
        stats = HierarchyStats()
        assert stats.l1_miss_rate == 0.0
        assert stats.l2_demand_miss_rate == 0.0
        assert stats.breakdown_vs_original()["prefetched_original"] == 0.0


class TestSuiteResult:
    def _suite(self, label, ipcs):
        return SuiteResult(
            label, {name: make_result(name, label, ipc) for name, ipc in ipcs.items()}
        )

    def test_geomean_ipc(self):
        suite = self._suite("x", {"a": 1.0, "b": 4.0})
        assert suite.geomean_ipc() == pytest.approx(2.0)

    def test_geomean_ipc_with_order_subset(self):
        suite = self._suite("x", {"a": 1.0, "b": 4.0, "c": 9.0})
        assert suite.geomean_ipc(order=["b", "c"]) == pytest.approx(6.0)

    def test_improvements_over(self):
        base = self._suite("base", {"a": 2.0, "b": 2.0})
        new = self._suite("new", {"a": 2.2, "b": 3.0})
        improvements = new.improvements_over(base)
        assert improvements["a"] == pytest.approx(10.0)
        assert improvements["b"] == pytest.approx(50.0)

    def test_geomean_improvement(self):
        base = self._suite("base", {"a": 2.0, "b": 2.0})
        new = self._suite("new", {"a": 2.42, "b": 2.42})
        assert new.geomean_improvement(base) == pytest.approx(21.0)

    def test_partial_overlap_ignored(self):
        base = self._suite("base", {"a": 2.0})
        new = self._suite("new", {"a": 2.2, "b": 9.0})
        assert set(new.improvements_over(base)) == {"a"}

    def test_ipc_accessor(self):
        suite = self._suite("x", {"a": 3.0})
        assert suite.ipc("a") == pytest.approx(3.0)
