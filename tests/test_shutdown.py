"""Graceful shutdown, fail-fast, and orphan hygiene.

The contract under test: one SIGTERM/SIGINT stops a campaign at the
next job boundary (or mid-simulation via the progress probe), live
workers are reaped — never orphaned — completed results are
checkpointed, the CLI exits 130, and a subsequent ``--resume`` loses
nothing.  ``--max-failures`` aborts a draining sweep early instead.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.sim import SimulationConfig, prewarm
from repro.sim import store as store_mod
from repro.sim.resilience import (
    CampaignInterrupted,
    RetryPolicy,
    SimulationError,
    clear_shutdown,
    graceful_shutdown,
    is_retryable,
    request_shutdown,
    run_supervised,
    set_fault_injector,
    shutdown_requested,
    shutdown_signal,
    shutdown_watch_active,
)
from repro.sim.runner import clear_cache, simulate
from repro.sim.store import ResultStore
from repro.workloads import Scale

BASE = SimulationConfig.baseline()
QUICK = Scale.QUICK.accesses
CLI = [sys.executable, "-m", "repro.experiments.cli"]


@pytest.fixture(autouse=True)
def _clean_state():
    clear_shutdown()
    clear_cache()
    yield
    clear_shutdown()
    clear_cache()
    set_fault_injector(None)
    store_mod.clear_active_store()


def _ok_job(job):
    return f"ran-{job}"


def _failing_job(job):
    raise SimulationError(f"boom {job}")


class TestShutdownLatch:
    def test_request_and_clear(self):
        assert not shutdown_requested()
        request_shutdown(signal.SIGTERM)
        assert shutdown_requested()
        assert shutdown_signal() == signal.SIGTERM
        clear_shutdown()
        assert not shutdown_requested()
        assert shutdown_signal() is None

    def test_graceful_shutdown_latches_a_real_signal(self):
        with graceful_shutdown():
            assert shutdown_watch_active()
            os.kill(os.getpid(), signal.SIGTERM)
            # The handler latches instead of killing the process.
            deadline = time.monotonic() + 5.0
            while not shutdown_requested() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert shutdown_requested()
            assert shutdown_signal() == signal.SIGTERM
        assert not shutdown_watch_active()
        # Handlers restored: default disposition would now be fatal,
        # so just check the latch survives the context exit.
        assert shutdown_requested()

    def test_campaign_interrupted_is_not_retryable(self):
        assert not is_retryable(CampaignInterrupted("stop"))


class TestInterruptedSupervision:
    def test_pre_latched_shutdown_runs_nothing(self):
        request_shutdown()
        report = run_supervised(
            ["a", "b"], _ok_job, policy=RetryPolicy(retries=0),
            key=str, in_process=True,
        )
        assert report.interrupted
        assert report.executed == 0 and report.failed == 0

    def test_shutdown_between_jobs_keeps_finished_work(self):
        def progress(done, total, key, status):
            request_shutdown()  # first completion pulls the plug

        report = run_supervised(
            ["a", "b", "c"], _ok_job, policy=RetryPolicy(retries=0),
            key=str, in_process=True, progress=progress,
        )
        assert report.interrupted
        assert report.executed == 1  # 'a' finished and is kept
        assert report.failed == 0  # an interrupt is not a failure

    def test_shutdown_watch_aborts_a_simulation_mid_run(self):
        with graceful_shutdown():
            request_shutdown()
            with pytest.raises(CampaignInterrupted):
                simulate("swim", BASE, QUICK, use_cache=False)

    def test_summary_names_the_interruption(self):
        request_shutdown()
        report = run_supervised(
            ["a"], _ok_job, policy=RetryPolicy(retries=0),
            key=str, in_process=True,
        )
        assert "INTERRUPTED" in report.summary()


class TestMaxFailures:
    def test_policy_validates(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_failures=0)
        assert RetryPolicy(max_failures=3).max_failures == 3

    def test_in_process_aborts_at_the_limit(self):
        report = run_supervised(
            list("abcdef"), _failing_job,
            policy=RetryPolicy(retries=0, max_failures=2),
            key=str, in_process=True,
        )
        assert report.aborted is not None
        assert report.failed == 2  # stopped there, didn't drain all six
        assert "max-failures=2" in report.aborted
        assert "ABORTED" in report.summary()

    def test_attempt_mode_aborts_at_the_limit(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_KIND", "error")
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        report = run_supervised(
            list("abcdef"), _ok_job,
            policy=RetryPolicy(retries=0, backoff_base=0.0, max_failures=2),
            key=str, workers=2, mode="attempt",
        )
        assert report.aborted is not None
        assert report.failed >= 2 and report.failed < 6


def _start_campaign(store_dir, mode):
    """Launch a quick-scale CLI campaign in its own process group."""
    env = dict(os.environ, PYTHONPATH=str(
        os.path.join(os.path.dirname(__file__), os.pardir, "src")
    ))
    env.pop("REPRO_FAULT_KIND", None)
    env.pop("REPRO_FAULT_RATE", None)
    env.pop("REPRO_HOSTS", None)
    return subprocess.Popen(
        CLI + [
            "run", "fig1", "--scale", "quick",
            "--benchmarks", "swim", "mcf", "gcc", "ammp",
            "--jobs", "2", "--worker-mode", mode, "--store-dir", str(store_dir),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, start_new_session=True,
    )


def _wait_for_progress(proc, completions=2, timeout=120.0):
    """Read CLI output until `completions` jobs have finished."""
    seen = 0
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError("campaign ended before it could be signalled")
        if ": ok" in line:
            seen += 1
            if seen >= completions:
                return
    raise AssertionError("campaign made no progress before the timeout")


class TestOrphanHygiene:
    @pytest.mark.parametrize("mode", ["pool", "attempt"])
    def test_sigterm_leaves_no_orphans_and_resume_loses_nothing(
        self, tmp_path, mode
    ):
        store_dir = tmp_path / "store"
        proc = _start_campaign(store_dir, mode)
        try:
            _wait_for_progress(proc)
            os.kill(proc.pid, signal.SIGTERM)
            proc.stdout.read()  # drain so the child never blocks on write
            assert proc.wait(timeout=120) == 130
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait()

        # No surviving child processes: the whole group must be gone.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                os.killpg(proc.pid, 0)
            except ProcessLookupError:
                break
            time.sleep(0.1)
        else:
            os.killpg(proc.pid, signal.SIGKILL)
            raise AssertionError(f"{mode}: orphaned workers survived SIGTERM")

        # Completed results were checkpointed and verify clean.
        store = ResultStore(store_dir)
        checkpointed = len(store)
        assert checkpointed >= 1
        verdict = store.verify()
        assert not verdict["bad"]

        # Resume re-runs only what's missing: nothing completed is lost.
        clear_cache()
        with store_mod.use_store(ResultStore(store_dir)):
            report = prewarm(
                scale=Scale.QUICK,
                benchmarks=["swim", "mcf", "gcc", "ammp"],
                jobs=1,
            )
        assert report.ok
        assert report.skipped == checkpointed
