"""Pluggable simulation backends.

The per-access state machines run behind the :class:`~repro.backend.
base.Backend` interface; :func:`resolve_backend` picks the
implementation for a run from ``SimulationConfig.backend``, the
``REPRO_BACKEND`` environment variable, or the default:

``python``
    the reference interpreted loop (:mod:`repro.cpu.core` +
    :mod:`repro.memory` — the PR 3 engine path, frozen by the golden
    corpus and the 156-run oracle);
``numpy``
    the batch-stepping engine (:mod:`repro.backend.vector`): trace
    planes precomputed as ndarrays, hit runs stepped in batches, a
    scalar epilogue for misses/prefetch/MSHR events — bit-identical to
    ``python`` by contract and by differential test.
"""

from __future__ import annotations

from repro.backend.base import (
    BACKEND_ENV,
    Backend,
    available_backends,
    backend_name,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.backend.python import PythonBackend
from repro.backend.vector import NumpyBackend

__all__ = [
    "BACKEND_ENV",
    "Backend",
    "NumpyBackend",
    "PythonBackend",
    "available_backends",
    "backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

register_backend("python", PythonBackend)
register_backend("numpy", NumpyBackend)
