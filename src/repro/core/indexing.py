"""The PHT indexing scheme of the paper's Figure 9.

The Pattern History Table set index is built from two components::

        +------------------------------+-------------+
        | (tag1 + ... + tagk)[1:m]     | index[1:n]  |
        +------------------------------+-------------+

* the high ``m`` bits come from a *truncated addition* of all tags in
  the indexing sequence (lossy but cheap, exactly as in DBCP
  signatures);
* the low ``n`` bits come from the miss index.

``n`` trades sharing against separation (Section 4): ``n = 0`` lets all
cache sets share every PHT entry (the paper's TCP-8K); ``n = 10`` (the
full miss index of a 1024-set L1) gives each set private pattern
history (TCP-8M).  Figure 13 (bottom) sweeps ``n`` for a fixed 8 KB
PHT and shows that more than 1 bit hurts — the sub-tables get too small.

Section 6 suggests harvesting branch-predictor indexing lessons, so the
scheme also offers a gshare-style XOR fold as an ablation alternative
(:class:`IndexFunction`), exercised by the ablation benches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.util.bitops import fold_xor, index_geometry, mask

__all__ = ["IndexFunction", "PHTIndexScheme"]


class IndexFunction(enum.Enum):
    """How the tag sequence is hashed into the high index bits."""

    #: the paper's truncated addition (Figure 9).
    TRUNCATED_ADD = "truncated-add"
    #: gshare-style XOR fold of the concatenated tags (ablation).
    XOR_FOLD = "xor-fold"


@dataclass(frozen=True)
class PHTIndexScheme:
    """Computes PHT set indices from (tag sequence, miss index).

    Parameters
    ----------
    total_index_bits:
        ``log2`` of the PHT set count (``m + n``).
    miss_index_bits:
        ``n``, the number of low bits taken from the miss index.
    function:
        the hash applied to the tag sequence for the top ``m`` bits.
    """

    total_index_bits: int
    miss_index_bits: int
    function: IndexFunction = IndexFunction.TRUNCATED_ADD

    def __post_init__(self) -> None:
        if self.total_index_bits < 0:
            raise ValueError("total index bits must be non-negative")
        if not 0 <= self.miss_index_bits <= self.total_index_bits:
            raise ValueError(
                f"miss index bits ({self.miss_index_bits}) must lie in "
                f"[0, {self.total_index_bits}]"
            )
        # Precomputed masks (not dataclass fields; eq/hash unchanged).
        # compute() runs once per PHT probe — twice per L1 miss — so it
        # must not rebuild masks on every call.  The two sub-fields are
        # index spaces of 2**m and 2**n entries; their (bits, mask)
        # pairs come from the same bitops helper the cache geometries
        # use, so the split arithmetic is spelled exactly once.
        m = self.total_index_bits - self.miss_index_bits
        object.__setattr__(self, "sequence_bits", m)
        object.__setattr__(self, "_sequence_mask", index_geometry(1 << m)[1])
        object.__setattr__(
            self, "_miss_mask", index_geometry(1 << self.miss_index_bits)[1]
        )

    def compute(self, tag_sequence: Sequence[int], miss_index: int) -> int:
        """Return the PHT set index for this (sequence, miss index)."""
        n = self.miss_index_bits
        if self.function is IndexFunction.TRUNCATED_ADD:
            high = sum(tag_sequence) & self._sequence_mask
        else:
            m = self.sequence_bits
            concatenated = 0
            for tag in tag_sequence:
                concatenated = (concatenated << 20) | (tag & mask(20))
            high = fold_xor(concatenated, m) if m > 0 else 0
        if n == 0:
            return high
        return (high << n) | (miss_index & self._miss_mask)

    def describe(self) -> str:
        """Human-readable summary, e.g. ``sum(tags)[1:8] ++ index[1:0]``."""
        return (
            f"{self.function.value}(tags)[1:{self.sequence_bits}]"
            f" ++ index[1:{self.miss_index_bits}]"
        )
