"""Figure 3: unique block addresses and mean recurrences per address.

The contrast with Figure 2 is the paper's space argument: there are
orders of magnitude more unique addresses than unique tags, and each
address recurs far less often than each tag — so an address-indexed
correlation table must be much larger and each of its entries is reused
much less.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, suite_order
from repro.experiments.section3 import profile
from repro.util.stats import geometric_mean
from repro.workloads import Scale

__all__ = ["run"]


def run(
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = suite_order(benchmarks)
    rows = []
    series = {"unique_blocks": {}, "mean_block_occurrences": {}, "blocks_per_tag": {}}
    for name in names:
        stats = profile(name, scale).tags
        series["unique_blocks"][name] = float(stats.unique_blocks)
        series["mean_block_occurrences"][name] = stats.mean_block_occurrences
        series["blocks_per_tag"][name] = stats.block_to_tag_ratio
        rows.append(
            [
                name,
                stats.unique_blocks,
                stats.mean_block_occurrences,
                stats.block_to_tag_ratio,
            ]
        )
    ratio = geometric_mean(
        max(1.0, value) for value in series["blocks_per_tag"].values()
    )
    notes = [
        f"Geomean unique addresses per unique tag: {ratio:.0f}x — the factor "
        "by which tag-indexed state can shrink relative to address-indexed "
        "state (the paper reports 2-3 orders of magnitude on full runs).",
    ]
    return ExperimentResult(
        experiment="fig3",
        title="Unique block addresses and mean appearances per address",
        headers=["benchmark", "unique addresses", "mean occurrences/address", "addresses per tag"],
        rows=rows,
        series=series,
        notes=notes,
    )
