"""Concurrency tests: file locking, multiprocess store writes, single-flight.

The stress test forks real processes hammering one store directory; it
is the executable form of the store's central claim — committed records
survive arbitrary interleaving with zero quarantined or lost lines.
"""

import multiprocessing
import os

import pytest

from repro.sim import SimulationConfig, simulate
from repro.sim.runner import clear_cache
from repro.sim.store import ResultStore
from repro.util.locking import FileLock, LockTimeout, locking_supported
from repro.workloads import Scale, generate, trace_cache_scope
from repro.workloads import io as trace_io
from repro.workloads import suite as suite_mod

BASE = SimulationConfig.baseline()

needs_locking = pytest.mark.skipif(
    not locking_supported(), reason="fcntl locking unavailable"
)


class TestFileLock:
    def test_exclusive_excludes_exclusive(self, tmp_path):
        path = tmp_path / "x.lock"
        holder = FileLock(path)
        holder.acquire(exclusive=True)
        try:
            contender = FileLock(path, timeout=0.2)
            with pytest.raises(LockTimeout) as excinfo:
                contender.acquire(exclusive=True)
            # the timeout diagnostic names the live holder
            assert str(os.getpid()) in str(excinfo.value)
        finally:
            holder.release()

    def test_shared_locks_coexist(self, tmp_path):
        path = tmp_path / "x.lock"
        a = FileLock(path)
        b = FileLock(path, timeout=0.2)
        a.acquire(exclusive=False)
        try:
            assert b.acquire(exclusive=False) >= 0.0
        finally:
            b.release()
            a.release()

    def test_shared_blocks_exclusive(self, tmp_path):
        path = tmp_path / "x.lock"
        reader = FileLock(path)
        reader.acquire(exclusive=False)
        try:
            writer = FileLock(path, timeout=0.2)
            with pytest.raises(LockTimeout):
                writer.acquire(exclusive=True)
        finally:
            reader.release()

    def test_release_frees_the_lock(self, tmp_path):
        path = tmp_path / "x.lock"
        first = FileLock(path)
        first.acquire(exclusive=True)
        first.release()
        second = FileLock(path, timeout=0.2)
        second.acquire(exclusive=True)
        second.release()

    def test_reacquire_while_held_is_an_error(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        lock.acquire(exclusive=True)
        try:
            with pytest.raises(RuntimeError):
                lock.acquire(exclusive=True)
        finally:
            lock.release()

    def test_context_managers(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock.exclusive() as waited:
            assert waited >= 0.0
        with lock.shared():
            pass


def _hammer(root, worker, per_worker):
    """Child process body: put `per_worker` records into the shared store."""
    clear_cache()
    result = simulate("eon", BASE, Scale.QUICK)
    store = ResultStore(root)
    for i in range(per_worker):
        store.put("eon", 1000 + worker * per_worker + i, BASE, result)
    if store.degraded or store.lost_writes:
        raise SystemExit(2)


@needs_locking
class TestMultiprocessStress:
    def test_concurrent_puts_lose_nothing(self, tmp_path):
        workers, per_worker = 4, 12
        root = tmp_path / "store"
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_hammer, args=(root, w, per_worker))
            for w in range(workers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        merged = ResultStore(root)
        assert len(merged) == workers * per_worker
        assert merged.quarantined == 0
        assert merged.torn_truncated == 0
        report = merged.verify()
        assert not report["bad"] and not report["torn_tail"]
        assert report["live"] == workers * per_worker
        # every committed record is readable
        for w in range(workers):
            for i in range(per_worker):
                assert merged.get("eon", 1000 + w * per_worker + i, BASE) is not None


class TestGenerationLock:
    def test_no_cache_dir_yields_false(self):
        with trace_cache_scope(None):
            with trace_io.generation_lock("mcf", 1000) as held:
                assert held is False

    def test_acquires_when_free(self, tmp_path):
        with trace_io.generation_lock("mcf", 1000, root=tmp_path) as held:
            assert held is True
        assert (tmp_path / ".mcf-1000.genlock").exists()

    @needs_locking
    def test_contended_lock_yields_false(self, tmp_path, monkeypatch):
        monkeypatch.setattr(trace_io, "GENERATION_LOCK_TIMEOUT", 0.2)
        holder = FileLock(tmp_path / ".mcf-1000.genlock")
        holder.acquire(exclusive=True)
        try:
            with trace_io.generation_lock("mcf", 1000, root=tmp_path) as held:
                assert held is False
        finally:
            holder.release()


class TestSingleFlightGenerate:
    def test_recheck_under_lock_skips_rebuild(self, tmp_path, monkeypatch):
        """A miss that turns into a hit after acquiring the lock never builds.

        Models the pool-worker race: everyone misses, one generates, the
        rest re-check the cache under the lock and find it populated.
        """
        with trace_cache_scope(tmp_path):
            suite_mod._CACHE.clear()  # force a miss so the disk cache fills
            generate("mcf", Scale.QUICK)
            suite_mod._CACHE.clear()

            real_load = trace_io.load_cached_trace
            calls = {"n": 0}

            def flaky_load(name, accesses, root=None):
                calls["n"] += 1
                if calls["n"] == 1:
                    return None  # the pre-lock check misses
                return real_load(name, accesses, root)

            class Boom:
                def __init__(self, *args, **kwargs):
                    raise AssertionError("rebuilt a trace that was cached")

            monkeypatch.setattr(trace_io, "load_cached_trace", flaky_load)
            monkeypatch.setattr(suite_mod, "TraceBuilder", Boom)
            trace = generate("mcf", Scale.QUICK)
            assert trace.name == "mcf"
            assert calls["n"] == 2
            suite_mod._CACHE.clear()
