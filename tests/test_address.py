"""Tests for repro.memory.address.CacheGeometry."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.address import CacheGeometry

#: the paper's L1D: 32KB direct-mapped, 32B blocks -> 1024 sets.
L1 = CacheGeometry(32 * 1024, 1, 32)
#: the paper's L2: 1MB 4-way, 64B blocks -> 4096 sets.
L2 = CacheGeometry(1024 * 1024, 4, 64)


class TestGeometry:
    def test_paper_l1_geometry(self):
        assert L1.sets == 1024
        assert L1.offset_bits == 5
        assert L1.index_bits == 10

    def test_paper_l2_geometry(self):
        assert L2.sets == 4096
        assert L2.offset_bits == 6
        assert L2.index_bits == 12

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(32 * 1024, 1, 48)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CacheGeometry(32 * 1024 + 5, 1, 32)

    def test_invalid_ways(self):
        with pytest.raises(ValueError):
            CacheGeometry(32 * 1024, 0, 32)

    def test_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheGeometry(3 * 32, 1, 32)  # three sets

    def test_describe_mentions_basics(self):
        text = L1.describe()
        assert "32KB" in text and "direct-mapped" in text and "1024 sets" in text


class TestSplitCompose:
    def test_known_split(self):
        addr = (0x7 << 15) | (0x20A << 5) | 0x13
        tag, index = L1.split(addr)
        assert tag == 0x7
        assert index == 0x20A

    def test_compose_inverts_split(self):
        addr = 0x12345678
        tag, index = L1.split(addr)
        assert L1.compose(tag, index) == addr & ~0x1F  # block aligned

    def test_block_address(self):
        assert L1.block_address(0x1F) == 0
        assert L1.block_address(0x20) == 1

    def test_tag_index_helpers_match_split(self):
        addr = 0xDEADBEE0
        tag, index = L1.split(addr)
        assert L1.tag_of(addr) == tag
        assert L1.index_of(addr) == index

    def test_block_split_compose_roundtrip(self):
        block = 0xABCDE
        tag, index = L1.split_block(block)
        assert L1.compose_block(tag, index) == block

    @given(st.integers(min_value=0, max_value=2**40 - 1))
    def test_roundtrip_property(self, addr):
        tag, index = L1.split(addr)
        composed = L1.compose(tag, index)
        assert composed == (addr >> 5) << 5
        assert 0 <= index < L1.sets


class TestVectorised:
    def test_decompose_array_matches_scalar(self):
        addrs = np.array([0, 0x20, 0x7FFF, 0x8000, 0x12345678], dtype=np.uint64)
        blocks, indices, tags = L1.decompose_array(addrs)
        for position, addr in enumerate(addrs):
            tag, index = L1.split(int(addr))
            assert tags[position] == tag
            assert indices[position] == index
            assert blocks[position] == L1.block_address(int(addr))

    def test_decompose_array_dtypes(self):
        addrs = np.array([1, 2, 3], dtype=np.uint64)
        blocks, indices, tags = L1.decompose_array(addrs)
        assert blocks.dtype == np.int64
        assert indices.dtype == np.int64
        assert tags.dtype == np.int64
