"""Edge-case tests for the core timing model not covered elsewhere."""

import numpy as np
import pytest

from repro.cpu import CoreParams, CoreResult, OutOfOrderCore
from repro.memory import HierarchyParams, MemoryHierarchy
from repro.workloads.trace import Trace


def trace_of(addrs, gaps=None, base_ipc=4.0):
    n = len(addrs)
    return Trace(
        name="e",
        addrs=np.asarray(addrs, dtype=np.uint64),
        pcs=np.full(n, 0x1000, dtype=np.uint64),
        is_load=np.ones(n, dtype=bool),
        gaps=(np.full(n, 3, dtype=np.uint16) if gaps is None
              else np.asarray(gaps, dtype=np.uint16)),
        deps=np.zeros(n, dtype=np.int32),
        base_ipc=base_ipc,
    )


def hierarchy():
    return MemoryHierarchy(HierarchyParams(ideal_l2=True, model_icache=False))


class TestFrontend:
    def test_frontend_depth_charged_once(self):
        deep = OutOfOrderCore(CoreParams(frontend_depth=100))
        shallow = OutOfOrderCore(CoreParams(frontend_depth=1))
        trace = trace_of([0x100] * 50)
        slow = deep.run(trace, hierarchy())
        fast = shallow.run(trace, hierarchy())
        assert slow.cycles == pytest.approx(fast.cycles + 99, abs=5)

    def test_base_ipc_below_width_binds(self):
        trace_slow = trace_of([0x100] * 1000, base_ipc=2.0)
        trace_fast = trace_of([0x100] * 1000, base_ipc=8.0)
        slow = OutOfOrderCore().run(trace_slow, hierarchy())
        fast = OutOfOrderCore().run(trace_fast, hierarchy())
        assert fast.ipc > 1.5 * slow.ipc

    def test_variable_gaps_accounted(self):
        trace = trace_of([0x100] * 10, gaps=[0, 10, 0, 10, 0, 10, 0, 10, 0, 10])
        result = OutOfOrderCore().run(trace, hierarchy())
        assert result.instructions == 10 + 50


class TestCoreResultContainer:
    def test_zero_cycle_guard(self):
        result = CoreResult(instructions=0, cycles=0.0, accesses=0)
        assert result.ipc == 0.0
        assert result.cpi == 0.0

    def test_ipc_cpi_inverse(self):
        result = CoreResult(instructions=100, cycles=50.0, accesses=10)
        assert result.ipc == pytest.approx(2.0)
        assert result.cpi == pytest.approx(0.5)


class TestWarmupEdges:
    def test_full_warmup_minus_one(self):
        trace = trace_of([0x100] * 100)
        result = OutOfOrderCore().run(trace, hierarchy(), warmup=99)
        assert result.accesses == 1
        assert result.instructions > 0
        assert result.cycles > 0

    def test_warmup_zero_equals_no_warmup(self):
        trace = trace_of([0x100] * 100)
        a = OutOfOrderCore().run(trace, hierarchy(), warmup=0)
        b = OutOfOrderCore().run(trace, hierarchy())
        assert a.cycles == b.cycles

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            OutOfOrderCore().run(trace_of([0x100]), hierarchy(), warmup=-1)


class TestLongDependences:
    def test_dependence_beyond_default_ring(self):
        """A dependence distance larger than the LSQ/512 default ring
        must still read the correct producer (imported traces may have
        arbitrarily long edges)."""
        n = 1500
        deps = np.zeros(n, dtype=np.int32)
        deps[-1] = 1400  # depends on access 99
        trace = Trace(
            name="longdep",
            addrs=np.full(n, 0x100, dtype=np.uint64),
            pcs=np.full(n, 0x1000, dtype=np.uint64),
            is_load=np.ones(n, dtype=bool),
            gaps=np.zeros(n, dtype=np.uint16),
            deps=deps,
            base_ipc=4.0,
        )
        result = OutOfOrderCore().run(trace, hierarchy())
        assert result.ipc > 0
