"""Mix contention figure: prefetchers under shared-L2 co-scheduling.

The paper evaluates every prefetcher on a single core; this figure
co-schedules a workload mix (default ``mix2``) on one core per member
over the shared L2 + bus + DRAM fabric and compares prefetchers by how
much of each member's solo performance survives the contention:

* per-core **relative IPC** — IPC in the mix over the same benchmark's
  solo IPC under the same prefetcher (1.0 = no interference);
* **weighted speedup** — the sum of relative IPCs (system throughput,
  upper bound = number of cores);
* **harmonic-mean fairness** — cores over the sum of inverse relative
  IPCs, which punishes any one member being starved.

Solo baselines are ordinary single-core cells, so the result cache and
the store share them with every other figure.  Notes carry the
shared-resource attribution for the paper's realistic design point
(TCP-8K): L2 occupancy share, bus stall cycles, and prefetches evicted
by other cores, per core.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.experiments.base import ExperimentResult
from repro.multicore import MixSpec, mix_config, resolve_mix
from repro.sim import PREFETCHERS, SimulationConfig, simulate
from repro.workloads import Scale

__all__ = ["DEFAULT_MIX", "run"]

DEFAULT_MIX = "mix2"

#: prefetcher highlighted in the attribution notes (the paper's
#: realistic design point); falls back to the first column if absent.
_SPOTLIGHT = "tcp-8k"


def _attribution_notes(mix_result, spec: MixSpec, label: str) -> list:
    lines = []
    for core in mix_result.per_core:
        att = core.attribution
        lines.append(
            f"{label} core {core.core_id} ({core.workload}): "
            f"L2 share {att.l2_occupancy_share * 100.0:.1f}%, "
            f"bus stalls {att.bus_stall_cycles / 1000.0:.0f}k cycles, "
            f"prefetches evicted by others {att.prefetches_evicted_by_others}"
        )
    return lines


def run(
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
    mix: Union[str, Sequence[str], MixSpec, None] = None,
    prefetchers: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Contention comparison across prefetchers for one workload mix.

    ``mix`` accepts anything :func:`repro.multicore.resolve_mix` does
    (a named mix, ``"a+b"``, or a benchmark sequence); ``benchmarks``
    is accepted for registry uniformity but must stay ``None`` — the
    mix fixes its own members.
    """
    if benchmarks is not None:
        raise ValueError(
            "figure_mix draws its benchmarks from the mix; pass --mix "
            "instead of a benchmark list"
        )
    spec = resolve_mix(mix if mix is not None else DEFAULT_MIX)
    labels = tuple(prefetchers) if prefetchers is not None else tuple(PREFETCHERS)
    unknown = [label for label in labels if label not in PREFETCHERS]
    if unknown:
        raise KeyError(f"unknown prefetchers: {unknown}")

    series: Dict[str, Dict[str, float]] = {
        "weighted_speedup": {},
        "hmean_fairness": {},
    }
    rows = []
    spotlight_notes: list = []
    for label in labels:
        solos = {
            name: simulate(name, SimulationConfig.for_prefetcher(label), scale)
            for name in dict.fromkeys(spec.benchmarks)
        }
        result = simulate(
            spec.canonical, mix_config(spec, prefetcher=label), scale
        )
        speedups = result.speedups(solos)
        ws = result.weighted_speedup(solos)
        fairness = result.hmean_fairness(solos)
        series["weighted_speedup"][label] = ws
        series["hmean_fairness"][label] = fairness
        for core, rel in zip(result.per_core, speedups):
            series.setdefault(f"rel_ipc/{label}", {})[
                f"core{core.core_id}:{core.workload}"
            ] = rel
        rows.append(
            [label]
            + [round(rel, 4) for rel in speedups]
            + [round(ws, 4), round(fairness, 4)]
        )
        if label == _SPOTLIGHT or (_SPOTLIGHT not in labels and label == labels[0]):
            spotlight_notes = _attribution_notes(result, spec, label)

    best = max(series["weighted_speedup"], key=series["weighted_speedup"].get)
    notes = [
        f"Mix {spec.name} = {spec.canonical} on {spec.cores} cores "
        f"(shared L2/bus/DRAM, private L1s and prefetchers).",
        "Relative IPC = IPC in the mix / solo IPC under the same "
        f"prefetcher; weighted speedup sums them (max {spec.cores}.0), "
        "harmonic-mean fairness punishes starvation.",
        f"Best weighted speedup: {best} "
        f"({series['weighted_speedup'][best]:.3f}) vs no-prefetch "
        f"({series['weighted_speedup'].get('none', float('nan')):.3f}).",
    ] + spotlight_notes
    return ExperimentResult(
        experiment="mix",
        title=f"Shared-L2 contention on {spec.name}: per-core relative IPC",
        headers=(
            ["prefetcher"]
            + [f"core{i}:{name}" for i, name in enumerate(spec.benchmarks)]
            + ["weighted speedup", "hmean fairness"]
        ),
        rows=rows,
        series=series,
        notes=notes,
    )
