"""Figure 12: the three categories of L2 accesses under TCP.

For TCP-8K and TCP-8M, every benchmark's L2 traffic is split into:

* ``prefetched original`` — demand accesses covered by a prefetch;
* ``non-prefetched original`` — demand accesses the prefetcher missed;
* ``prefetched extra`` — prefetch work that never covered a demand
  access (redundant prefetches, prefetched blocks evicted or left
  unused).

All three are normalised to the number of original (demand) L2
accesses, exactly as in the paper: an ideal prefetcher shows 100% /
0% / 0%.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.base import ExperimentResult, suite_order
from repro.sim import SimulationConfig, simulate
from repro.workloads import Scale

__all__ = ["run"]

_CONFIGS = ("tcp-8k", "tcp-8m")


def run(
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = suite_order(benchmarks)
    rows = []
    series: Dict[str, Dict[str, float]] = {}
    for label in _CONFIGS:
        for category in ("prefetched_original", "non_prefetched_original", "prefetched_extra"):
            series[f"{label}:{category}"] = {}

    for name in names:
        row: list = [name]
        for label in _CONFIGS:
            result = simulate(name, SimulationConfig.for_prefetcher(label), scale)
            breakdown = result.memory.breakdown_vs_original()
            for category, value in breakdown.items():
                series[f"{label}:{category}"][name] = value * 100.0
            row.extend(
                [
                    breakdown["prefetched_original"] * 100.0,
                    breakdown["non_prefetched_original"] * 100.0,
                    breakdown["prefetched_extra"] * 100.0,
                ]
            )
        rows.append(row)

    coverage = series["tcp-8k:prefetched_original"]
    best = max(coverage, key=coverage.get)  # type: ignore[arg-type]
    notes = [
        "prefetched + non-prefetched original always sum to 100% of the "
        "demand L2 accesses; 'extra' is the traffic cost of prefetching.",
        f"Best TCP-8K coverage: {best} ({coverage[best]:.0f}% of original "
        "accesses pre-issued by the prefetcher).",
    ]
    headers = ["benchmark"]
    for label in _CONFIGS:
        headers += [f"{label} orig-pf %", f"{label} orig-nopf %", f"{label} extra %"]
    return ExperimentResult(
        experiment="fig12",
        title="L2 access categories under TCP-8K and TCP-8M (% of original)",
        headers=headers,
        rows=rows,
        series=series,
        notes=notes,
    )
