"""The numpy batch-stepping backend (``--backend numpy``).

:class:`NumpyBackend` routes a run to :class:`~repro.backend.vector.
engine.VectorCore` — whole-trace precomputed state planes, batched
hit-run stepping, scalar epilogue for misses and control-flow-coupled
events (see the engine module docstring for the exact layering) — and
falls back to the reference interpreted loop, with a one-line warning,
for the configurations the batch model cannot represent:

* a set-associative L1D (the replacement order couples every access);
* prefetchers that observe the *access* stream (every hit trains
  state, so there is no pure-timing batch to take — DBCP);
* gated L1 promotions (asynchronous fills invalidate the precomputed
  hit mask — the hybrid).

The paper's machine (direct-mapped L1D) with the TCP family, stride,
stream, markov, and nextline prefetchers all take the batched path.
Either way the results are bit-identical to the python backend; the
fallback only costs speed, never correctness.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence, Set

from repro.backend.base import Backend
from repro.backend.vector.engine import VectorCore
from repro.cpu.core import CoreParams, CoreResult, OutOfOrderCore
from repro.engine.probes import Probe
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.trace import Trace

__all__ = ["NumpyBackend", "VectorCore"]

#: fallback reasons already warned about (once per process, not per run).
_WARNED_FALLBACKS: Set[str] = set()


def _fallback_reason(hierarchy: MemoryHierarchy) -> Optional[str]:
    """Why this run cannot take the batched path (None = it can)."""
    if hierarchy._l1_lines is None:
        return "set-associative L1D"
    if hierarchy._needs_access:
        return "prefetcher observes the access stream"
    if hierarchy._promotions_enabled:
        return "gated L1 promotions"
    if hierarchy.l2d._direct_mapped:
        return "direct-mapped L2"
    return None


class NumpyBackend(Backend):
    """Batch-stepping engine with a bit-exact scalar epilogue."""

    name = "numpy"

    def __init__(self, vector_min: Optional[int] = None) -> None:
        self.vector_min = vector_min
        #: engine accounting for the last run: VectorCore.engine_stats
        #: when the batched path ran, or {"fallback": reason} when the
        #: run was delegated to the reference loop.
        self.last_engine_stats: dict = {}

    def run(
        self,
        trace: Trace,
        hierarchy: MemoryHierarchy,
        params: CoreParams,
        warmup: int = 0,
        probes: Optional[Sequence[Probe]] = None,
    ) -> CoreResult:
        reason = _fallback_reason(hierarchy)
        if reason is not None:
            if reason not in _WARNED_FALLBACKS:
                _WARNED_FALLBACKS.add(reason)
                warnings.warn(
                    f"numpy backend: {reason}; this configuration runs on "
                    "the (bit-identical) python reference loop",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self.last_engine_stats = {"fallback": reason}
            core = OutOfOrderCore(params)
            return core.run(trace, hierarchy, warmup=warmup, probes=probes)
        if self.vector_min is not None:
            core = VectorCore(params, vector_min=self.vector_min)
        else:
            core = VectorCore(params)
        result = core.run(trace, hierarchy, warmup=warmup, probes=probes)
        self.last_engine_stats = core.engine_stats
        return result
