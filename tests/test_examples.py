"""Smoke tests: the example scripts run end to end.

Only the cheapest example is executed (the others run the same code
paths through heavier configuration matrices and are exercised by the
benchmark harness instead).
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def test_quickstart_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py"), "fma3d", "quick"],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "no prefetcher" in proc.stdout
    assert "tcp-8k" in proc.stdout

def test_quickstart_rejects_unknown_benchmark():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py"), "nosuch", "quick"],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 2

def test_all_examples_importable():
    """Every example at least parses and has a main()."""
    import ast

    for script in sorted(EXAMPLES.glob("*.py")):
        tree = ast.parse(script.read_text())
        names = {node.name for node in ast.walk(tree)
                 if isinstance(node, ast.FunctionDef)}
        assert "main" in names, script
