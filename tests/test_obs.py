"""Tests for the observability layer (repro.obs).

Covers the metrics primitives, span tracing, trace analysis, the
profiling hooks, and — most importantly — the differential guarantee:
enabling observability must never change a simulation result.
"""

import json
import os

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace
from repro.sim import SimulationConfig, prewarm, simulate
from repro.sim import resilience, store as store_mod
from repro.sim.runner import clear_cache
from repro.workloads import Scale

# The fig11 QUICK mix from the issue: three benchmarks crossed with the
# paper's headline configurations.
DIFF_BENCHES = ("swim", "mcf", "gcc")
DIFF_CONFIGS = ("base", "tcp-8k", "tcp-8m", "dbcp-2m")


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Observability globals must never leak between tests."""
    yield
    obs_spans.set_span_sink(None)
    obs_metrics.set_active_registry(None)
    resilience.set_fault_injector(None)
    # Tests that simulate crashes enter spans without exiting them;
    # drop those entries or they would parent later tests' spans.
    del obs_spans._OPEN_STACK[:]
    clear_cache()


def _config(label):
    if label == "base":
        return SimulationConfig.baseline()
    return SimulationConfig.for_prefetcher(label)


# ---------------------------------------------------------------------------
# Metrics primitives
# ---------------------------------------------------------------------------


class TestCounter:
    def test_accumulates(self):
        c = obs_metrics.Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        c = obs_metrics.Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_to_dict(self):
        c = obs_metrics.Counter("c")
        c.inc(3)
        assert c.to_dict() == {"type": "counter", "value": 3}


class TestGauge:
    def test_envelope(self):
        g = obs_metrics.Gauge("g")
        for v in (5, -2, 9):
            g.set(v)
        d = g.to_dict()
        assert d["last"] == 9
        assert d["min"] == -2
        assert d["max"] == 9
        assert d["samples"] == 3

    def test_empty_envelope_is_none(self):
        d = obs_metrics.Gauge("g").to_dict()
        assert d["samples"] == 0
        assert d["min"] is None and d["max"] is None


class TestHistogram:
    def test_bucketing(self):
        h = obs_metrics.Histogram("h", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 4
        assert d["sum"] == pytest.approx(555.5)
        # One value per bucket plus one overflow.
        assert d["counts"] == [1, 1, 1, 1]
        assert d["min"] == 0.5 and d["max"] == 500

    def test_mean(self):
        h = obs_metrics.Histogram("h", buckets=(1,))
        h.observe(2)
        h.observe(4)
        assert h.mean == pytest.approx(3.0)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            obs_metrics.Histogram("h", buckets=())
        with pytest.raises(ValueError):
            obs_metrics.Histogram("h", buckets=(1, 1))


class TestRegistry:
    def test_get_or_create(self):
        r = obs_metrics.MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert len(r) == 1
        assert "a" in r

    def test_type_clash_raises(self):
        r = obs_metrics.MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")

    def test_to_dict_sorted(self):
        r = obs_metrics.MetricsRegistry()
        r.counter("z.last")
        r.counter("a.first")
        assert list(r.to_dict()) == ["a.first", "z.last"]

    def test_merge_adds_counters_and_widens_gauges(self):
        r = obs_metrics.MetricsRegistry()
        r.counter("hits").inc(2)
        r.gauge("depth").set(5)
        snap = {
            "hits": {"type": "counter", "value": 3},
            "depth": {"type": "gauge", "last": 9, "min": 1, "max": 9, "samples": 2},
            "junk": "not-a-metric",  # malformed entries are skipped
        }
        r.merge(snap)
        assert r.counter("hits").value == 5
        d = r.gauge("depth").to_dict()
        assert d["min"] == 1 and d["max"] == 9 and d["samples"] == 3

    def test_merge_histograms(self):
        r = obs_metrics.MetricsRegistry()
        h = r.histogram("wall", buckets=(1, 2))
        h.observe(0.5)
        other = obs_metrics.Histogram("h", buckets=(1, 2))
        other.observe(1.5)
        r.merge({"wall": other.to_dict()})
        assert r.histogram("wall", buckets=(1, 2)).to_dict()["count"] == 2


class TestResolveObs:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(obs_metrics.OBS_ENV, raising=False)
        mode = obs_metrics.resolve_obs()
        assert not mode.enabled

    @pytest.mark.parametrize(
        "value,metrics,trace",
        [
            ("metrics", True, False),
            ("trace", False, True),
            ("all", True, True),
            ("metrics,trace", True, True),
            ("off", False, False),
        ],
    )
    def test_modes(self, monkeypatch, value, metrics, trace):
        monkeypatch.setenv(obs_metrics.OBS_ENV, value)
        mode = obs_metrics.resolve_obs()
        assert mode.metrics is metrics
        assert mode.trace is trace

    def test_unknown_raises(self, monkeypatch):
        monkeypatch.setenv(obs_metrics.OBS_ENV, "verbose")
        with pytest.raises(ValueError):
            obs_metrics.resolve_obs()

    def test_choices_cover_cli(self):
        assert set(obs_metrics.OBS_CHOICES) == {"off", "metrics", "trace", "all"}


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class TestSpans:
    def test_noop_without_sink(self):
        assert obs_spans.span_sink() is None
        with obs_spans.span("anything") as s:
            # The shared no-op span: no events, no allocation per call.
            with obs_spans.span("inner") as s2:
                assert s2 is s

    def test_begin_end_events(self):
        collector = obs_spans.TraceCollector()
        with obs_spans.use_span_sink(collector.sink):
            with obs_spans.span("work", workload="swim"):
                pass
        begin, end = collector.events
        assert begin["ev"] == "begin" and end["ev"] == "end"
        assert begin["schema"] == obs_spans.SCHEMA
        assert begin["span"] == end["span"]
        assert begin["name"] == "work" and begin["workload"] == "swim"
        assert end["status"] == "ok"
        assert end["dur"] >= 0

    def test_nesting_sets_parent(self):
        collector = obs_spans.TraceCollector()
        with obs_spans.use_span_sink(collector.sink):
            with obs_spans.span("outer") as outer:
                with obs_spans.span("inner"):
                    pass
        inner_begin = [
            e for e in collector.events if e["ev"] == "begin" and e["name"] == "inner"
        ][0]
        assert inner_begin["parent"] == outer.span_id

    def test_error_status(self):
        collector = obs_spans.TraceCollector()
        with obs_spans.use_span_sink(collector.sink):
            with pytest.raises(RuntimeError):
                with obs_spans.span("doomed"):
                    raise RuntimeError("boom")
        end = collector.events[-1]
        assert end["ev"] == "end" and end["status"] == "error"

    def test_synthesize_abort(self):
        collector = obs_spans.TraceCollector()
        with obs_spans.use_span_sink(collector.sink):
            span = obs_spans.span("orphan")
            span.__enter__()  # deliberately never exited (simulated crash)
        begin = collector.events[0]
        aborted = obs_spans.synthesize_abort(begin)
        assert aborted["ev"] == "end"
        assert aborted["span"] == begin["span"]
        assert aborted["status"] == "aborted"
        assert aborted["synthesized"] is True
        assert aborted["dur"] >= 0

    def test_collector_close_aborted(self):
        collector = obs_spans.TraceCollector()
        with obs_spans.use_span_sink(collector.sink):
            obs_spans.span("lost").__enter__()
        assert len(collector.open_spans()) == 1
        assert collector.close_aborted() == 1
        assert collector.open_spans() == {}

    def test_emit_metrics(self):
        collector = obs_spans.TraceCollector()
        with obs_spans.use_span_sink(collector.sink):
            obs_spans.emit_metrics("run:test", {"hits": {"type": "counter", "value": 1}})
        (event,) = collector.events
        assert event["ev"] == "metrics"
        assert event["name"] == "run:test"
        assert event["metrics"]["hits"]["value"] == 1

    def test_write_load_roundtrip(self, tmp_path):
        collector = obs_spans.TraceCollector()
        with obs_spans.use_span_sink(collector.sink):
            with obs_spans.span("a"):
                with obs_spans.span("b"):
                    pass
        path = collector.write(tmp_path / "trace.jsonl")
        events = obs_trace.load_events(path)
        assert events == collector.sorted_events()


# ---------------------------------------------------------------------------
# Trace analysis
# ---------------------------------------------------------------------------


def _collect(body):
    collector = obs_spans.TraceCollector()
    with obs_spans.use_span_sink(collector.sink):
        body()
    return collector.sorted_events()


class TestTraceAnalysis:
    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError):
            obs_trace.validate_event([])
        with pytest.raises(ValueError):
            obs_trace.validate_event({"ev": "begin"})  # missing span/name/t

    def test_pair_spans(self):
        def body():
            with obs_spans.span("root"):
                with obs_spans.span("leaf"):
                    pass
            obs_spans.span("dangler").__enter__()

        events = _collect(body)
        closed, dangling = obs_trace.pair_spans(events)
        assert len(closed) == 2
        assert len(dangling) == 1
        assert dangling[0]["name"] == "dangler"

    def test_end_without_begin_raises(self):
        events = _collect(lambda: None)
        bogus = {
            "schema": obs_spans.SCHEMA,
            "ev": "end",
            "span": "99-1",
            "name": "ghost",
            "t": 0.0,
            "pid": 99,
            "dur": 1.0,
            "status": "ok",
        }
        with pytest.raises(ValueError):
            obs_trace.pair_spans(events + [bogus])

    def test_summarize_stage_breakdown(self):
        def body():
            with obs_spans.span("campaign"):
                for _ in range(3):
                    with obs_spans.span("simulate"):
                        pass

        summary = obs_trace.summarize(_collect(body))
        assert summary["spans"] == 4
        assert summary["dangling"] == 0
        # Only leaves are stages: the root must not appear.
        assert set(summary["stages"]) == {"simulate"}
        assert summary["stages"]["simulate"]["count"] == 3
        assert summary["wall"] >= summary["stages"]["simulate"]["total"]

    def test_render_summary_smoke(self):
        def body():
            with obs_spans.span("generate"):
                pass

        text = obs_trace.render_summary(obs_trace.summarize(_collect(body)))
        assert "generate" in text
        assert "wall" in text


# ---------------------------------------------------------------------------
# The differential guarantee (the headline satellite)
# ---------------------------------------------------------------------------


class TestDifferential:
    """Observability on vs off must be bit-identical per simulation."""

    @pytest.mark.parametrize("bench", DIFF_BENCHES)
    @pytest.mark.parametrize("label", DIFF_CONFIGS)
    def test_enabled_matches_disabled(self, bench, label):
        config = _config(label)
        baseline = simulate(bench, config, Scale.QUICK, use_cache=False)

        registry = obs_metrics.MetricsRegistry()
        collector = obs_spans.TraceCollector()
        with obs_metrics.use_registry(registry):
            with obs_spans.use_span_sink(collector.sink):
                observed = simulate(bench, config, Scale.QUICK, use_cache=False)

        assert observed == baseline
        assert observed.to_dict() == baseline.to_dict()
        # And the observation actually happened: counters recorded,
        # spans closed cleanly.
        assert len(registry) > 0
        assert collector.open_spans() == {}
        names = {e["name"] for e in collector.events if e["ev"] == "begin"}
        assert "simulate" in names

    def test_metrics_agree_with_hierarchy_stats(self):
        # warmup_fraction=0 so the probe's full-run counters and the
        # measured (post-warmup) stats describe the same interval.
        registry = obs_metrics.MetricsRegistry()
        with obs_metrics.use_registry(registry):
            result = simulate(
                "swim", SimulationConfig.for_prefetcher("tcp-8k"),
                Scale.QUICK, use_cache=False, warmup_fraction=0.0,
            )
        snap = registry.to_dict()
        mem = result.memory
        assert snap["l1.hits"]["value"] == mem.l1_hits
        assert snap["l1.misses"]["value"] == mem.l1_misses
        assert snap["l2.hits"]["value"] == mem.l2_demand_hits
        assert snap["l2.misses"]["value"] == mem.l2_demand_misses
        assert snap["prefetch.issued"]["value"] == mem.prefetches_issued


# ---------------------------------------------------------------------------
# Campaign integration
# ---------------------------------------------------------------------------


def _campaign(tmp_path, monkeypatch, obs="all", jobs=1, **kwargs):
    monkeypatch.setenv(obs_metrics.OBS_ENV, obs)
    clear_cache()
    store = store_mod.ResultStore(tmp_path / "store")
    with store_mod.use_store(store):
        report = prewarm(
            kwargs.pop("configs", [SimulationConfig.baseline()]),
            Scale.QUICK,
            kwargs.pop("benchmarks", ("swim",)),
            jobs=jobs,
            **kwargs,
        )
    return report


class TestCampaignTrace:
    def test_serial_campaign_coverage(self, tmp_path, monkeypatch):
        """The acceptance bound: stage totals track wall time closely
        for a serial campaign (no parallel overlap to inflate them)."""
        report = _campaign(
            tmp_path, monkeypatch, jobs=1,
            benchmarks=("swim", "mcf"),
        )
        assert report.ok
        assert report.trace_path is not None
        events = obs_trace.load_events(report.trace_path)
        summary = obs_trace.summarize(events)
        assert summary["dangling"] == 0
        assert summary["aborted"] == 0
        # Stage totals should account for nearly all campaign wall time.
        assert summary["coverage"] >= 0.85
        assert {"generate", "simulate"} <= set(summary["stages"])

    def test_pool_campaign_merges_worker_spans(self, tmp_path, monkeypatch):
        report = _campaign(
            tmp_path, monkeypatch, jobs=2,
            configs=[SimulationConfig.baseline(),
                     SimulationConfig.for_prefetcher("tcp-8k")],
            benchmarks=("swim", "mcf"),
        )
        assert report.ok
        events = obs_trace.load_events(report.trace_path)
        summary = obs_trace.summarize(events)
        assert summary["dangling"] == 0
        # Parent + at least one worker pid in one merged trace.
        assert summary["pids"] >= 2
        # Worker spans were re-rooted under the campaign span: exactly
        # one root in the whole trace.
        closed, _ = obs_trace.pair_spans(events)
        roots = [s for s in closed if s["parent"] is None]
        assert len(roots) == 1
        assert roots[0]["name"] == "campaign"

    def test_campaign_metrics_snapshot(self, tmp_path, monkeypatch):
        report = _campaign(tmp_path, monkeypatch, jobs=2,
                           benchmarks=("swim", "mcf"))
        events = obs_trace.load_events(report.trace_path)
        snaps = [e for e in events if e["ev"] == "metrics" and e["name"] == "campaign"]
        assert len(snaps) == 1
        metrics = snaps[0]["metrics"]
        assert metrics["campaign.jobs"]["value"] == 2
        assert metrics["campaign.completed"]["value"] == 2
        assert metrics["campaign.job_wall_s"]["count"] == 2
        # Simulator metrics folded back from the workers.
        assert metrics["l1.hits"]["value"] > 0

    def test_crash_synthesizes_aborted_span(self, tmp_path, monkeypatch):
        """A worker crash mid-span must close the span as aborted, not
        leave it dangling (the bug this PR fixes)."""
        resilience.set_fault_injector(
            lambda key, attempt: "crash" if attempt == 1 else None
        )
        report = _campaign(tmp_path, monkeypatch, jobs=2, retries=2,
                           benchmarks=("swim", "mcf"))
        assert report.ok  # retried to success
        events = obs_trace.load_events(report.trace_path)
        summary = obs_trace.summarize(events)
        assert summary["dangling"] == 0
        aborted = [
            e for e in events
            if e["ev"] == "end" and e["status"] == "aborted"
        ]
        assert aborted and all(e.get("synthesized") for e in aborted)

    def test_crash_attempt_mode(self, tmp_path, monkeypatch):
        resilience.set_fault_injector(
            lambda key, attempt: "crash" if attempt == 1 else None
        )
        report = _campaign(
            tmp_path, monkeypatch, jobs=2, retries=2, worker_mode="attempt",
            benchmarks=("swim", "mcf"),
        )
        assert report.ok
        events = obs_trace.load_events(report.trace_path)
        assert obs_trace.summarize(events)["dangling"] == 0
        assert any(
            e["ev"] == "end" and e["status"] == "aborted" for e in events
        )

    def test_disabled_campaign_writes_nothing(self, tmp_path, monkeypatch):
        report = _campaign(tmp_path, monkeypatch, obs="off")
        assert report.ok
        assert report.trace_path is None
        obs_dir = tmp_path / "store" / "obs"
        assert not obs_dir.exists() or not list(obs_dir.iterdir())


# ---------------------------------------------------------------------------
# Profiling hooks
# ---------------------------------------------------------------------------


class TestProfile:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(obs_profile.PROFILE_ENV, raising=False)
        assert obs_profile.profile_mode() is None
        with obs_profile.maybe_profile("job") as path:
            assert path is None

    def test_unknown_mode_raises(self, monkeypatch):
        monkeypatch.setenv(obs_profile.PROFILE_ENV, "flamegraph")
        with pytest.raises(ValueError):
            obs_profile.profile_mode()

    def test_cprofile_writes_prof(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs_profile.PROFILE_ENV, "cprofile")
        with obs_profile.maybe_profile("swim_base", out_dir=tmp_path) as path:
            sum(range(1000))
        assert path is not None and path.suffix == ".prof"
        assert path.exists()
        import pstats

        stats = pstats.Stats(str(path))
        assert stats.total_calls >= 1

    def test_interval_writes_stacks(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs_profile.PROFILE_ENV, "interval")
        monkeypatch.setenv(obs_profile.PROFILE_INTERVAL_ENV, "1")
        with obs_profile.maybe_profile("swim_base", out_dir=tmp_path) as path:
            deadline = 0
            for _ in range(200_000):
                deadline += 1
        assert path is not None and path.suffix == ".stacks"
        assert path.exists()

    def test_dir_resolution_env_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs_profile.PROFILE_DIR_ENV, str(tmp_path / "p"))
        assert obs_profile.profile_dir() == tmp_path / "p"

    def test_dir_resolution_store_relative(self, tmp_path, monkeypatch):
        monkeypatch.delenv(obs_profile.PROFILE_DIR_ENV, raising=False)
        store = store_mod.ResultStore(tmp_path / "s")
        with store_mod.use_store(store):
            assert obs_profile.profile_dir() == tmp_path / "s" / "profiles"

    def test_campaign_profiles_jobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs_profile.PROFILE_ENV, "cprofile")
        report = _campaign(tmp_path, monkeypatch, obs="off", jobs=2,
                           benchmarks=("swim", "mcf"))
        assert report.ok
        assert report.profile_dir is not None
        profs = list(os.scandir(report.profile_dir))
        assert len(profs) == 2
        assert all(entry.name.endswith(".prof") for entry in profs)


# ---------------------------------------------------------------------------
# The committed campaign-trace artifact
# ---------------------------------------------------------------------------


class TestCommittedArtifact:
    """BENCH_obs_trace.jsonl is the acceptance run: a merged serial
    campaign trace whose stage breakdown sums to within 5% of wall."""

    def test_committed_trace_meets_coverage_bound(self):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        events = obs_trace.load_events(root / "BENCH_obs_trace.jsonl")
        summary = obs_trace.summarize(events)
        assert summary["dangling"] == 0
        assert summary["aborted"] == 0
        assert abs(summary["coverage"] - 1.0) <= 0.05
        doc = json.loads(
            (root / "BENCH_obs_trace.json").read_text(encoding="utf-8")
        )
        assert doc["schema"] == "repro-tcp/obs-trace-bench/v1"
        assert doc["summary"]["spans"] == summary["spans"]
        assert doc["summary"]["coverage"] == pytest.approx(summary["coverage"])
