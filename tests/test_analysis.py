"""Tests for the miss-stream analysis package (Figures 2-7 machinery)."""

import numpy as np
import pytest

from repro.analysis import capture_miss_stream, sequence_stats, tag_stats
from repro.analysis.miss_stream import MissStream
from repro.memory.address import CacheGeometry
from repro.workloads import Scale
from repro.workloads.trace import Trace


def make_trace(addrs, name="t"):
    n = len(addrs)
    return Trace(
        name=name,
        addrs=np.asarray(addrs, dtype=np.uint64),
        pcs=np.full(n, 0x400000, dtype=np.uint64),
        is_load=np.ones(n, dtype=bool),
        gaps=np.zeros(n, dtype=np.uint16),
        deps=np.zeros(n, dtype=np.int32),
    )


SMALL = CacheGeometry(4 * 32, 1, 32)  # 4 sets, direct-mapped


class TestCaptureMissStream:
    def test_cold_misses_only_once(self):
        trace = make_trace([0, 32, 64, 0, 32, 64])
        stream = capture_miss_stream(trace, geometry=SMALL)
        assert len(stream) == 3  # second lap all hits
        assert stream.miss_rate == pytest.approx(0.5)

    def test_conflicts_recorded(self):
        sets_span = SMALL.sets * SMALL.block_bytes
        trace = make_trace([0, sets_span, 0, sets_span])
        stream = capture_miss_stream(trace, geometry=SMALL)
        assert len(stream) == 4  # direct-mapped ping-pong

    def test_indices_and_tags_consistent(self):
        trace = make_trace([0x123456, 0x654321])
        stream = capture_miss_stream(trace, geometry=SMALL)
        for position in range(len(stream)):
            block = stream.blocks[position]
            assert stream.indices[position] == block % SMALL.sets
            assert stream.tags[position] == block // SMALL.sets

    def test_associative_capture(self):
        assoc = CacheGeometry(4 * 64, 2, 32)
        sets_span = assoc.sets * assoc.block_bytes
        trace = make_trace([0, sets_span, 0, sets_span])
        stream = capture_miss_stream(trace, geometry=assoc)
        assert len(stream) == 2  # both ways hold the conflicting blocks

    def test_named_workload_cached(self):
        first = capture_miss_stream("fma3d", Scale.QUICK)
        second = capture_miss_stream("fma3d", Scale.QUICK)
        assert first is second


class TestTagStats:
    def test_counts_on_known_stream(self):
        stream = MissStream(
            workload="x",
            geometry=SMALL,
            indices=np.array([0, 1, 0, 1]),
            tags=np.array([7, 7, 8, 7]),
            blocks=np.array([28, 29, 32, 29]),
            accesses=8,
        )
        stats = tag_stats(stream)
        assert stats.unique_tags == 2
        assert stats.mean_tag_occurrences == 2.0
        assert stats.unique_blocks == 3
        assert stats.mean_sets_per_tag == pytest.approx((2 + 1) / 2)
        # (7,0)x1 (7,1)x2 (8,0)x1 -> 4 misses / 3 pairs
        assert stats.mean_occurrences_per_tag_set == pytest.approx(4 / 3)
        assert stats.block_to_tag_ratio == pytest.approx(1.5)

    def test_empty_stream(self):
        stream = MissStream(
            workload="x", geometry=SMALL,
            indices=np.array([], dtype=np.int64),
            tags=np.array([], dtype=np.int64),
            blocks=np.array([], dtype=np.int64),
            accesses=0,
        )
        stats = tag_stats(stream)
        assert stats.unique_tags == 0
        assert stats.block_to_tag_ratio == 0.0


class TestSequenceStats:
    def _stream(self, indices, tags):
        return MissStream(
            workload="x", geometry=SMALL,
            indices=np.asarray(indices), tags=np.asarray(tags),
            blocks=np.asarray(tags) * SMALL.sets + np.asarray(indices),
            accesses=len(indices),
        )

    def test_repeating_pattern(self):
        # set 0 sees A B C A B C A B C: windows = 7, sequences cycle
        stream = self._stream([0] * 9, [1, 2, 3] * 3)
        stats = sequence_stats(stream)
        assert stats.windows == 7
        assert stats.unique_sequences == 3
        assert stats.mean_sequence_occurrences == pytest.approx(7 / 3)

    def test_cross_set_sharing_counted(self):
        # the same A B C appears at two different sets
        indices = [0, 0, 0, 1, 1, 1]
        tags = [1, 2, 3, 1, 2, 3]
        stats = sequence_stats(self._stream(indices, tags))
        assert stats.unique_sequences == 1
        assert stats.mean_sets_per_sequence == 2.0

    def test_window_shorter_than_length(self):
        stats = sequence_stats(self._stream([0, 0], [1, 2]))
        assert stats.windows == 0
        assert stats.unique_sequences == 0

    def test_custom_length(self):
        stream = self._stream([0] * 4, [1, 2, 1, 2])
        stats = sequence_stats(stream, length=2)
        assert stats.windows == 3
        assert stats.unique_sequences == 2

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            sequence_stats(self._stream([0], [1]), length=0)

    def test_fraction_of_upper_limit(self):
        stream = self._stream([0] * 9, [1, 2, 3] * 3)
        stats = sequence_stats(stream)
        assert stats.fraction_of_upper_limit == pytest.approx(3 / 27)
