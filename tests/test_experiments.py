"""Tests for the experiments layer (registry, result container, CLI)."""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentResult, run_experiment
from repro.experiments.base import suite_order
from repro.experiments.cli import main
from repro.workloads import BENCHMARK_ORDER, Scale

SUBSET = ("fma3d", "art", "mcf")


class TestRegistry:
    def test_all_paper_experiments_present(self):
        expected = {"table1", "mix"} | {f"fig{i}" for i in (1, 2, 3, 4, 5, 6, 7, 11, 12, 13, 14, 15)}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_suite_order_default(self):
        assert suite_order(None) == BENCHMARK_ORDER

    def test_suite_order_validates(self):
        with pytest.raises(KeyError):
            suite_order(["quake3"])


class TestResultContainer:
    def test_render_and_column(self):
        result = ExperimentResult(
            experiment="figX",
            title="Demo",
            headers=["benchmark", "value"],
            rows=[["a", 1.0], ["b", 2.0]],
            notes=["a note"],
        )
        text = result.render()
        assert "[figX] Demo" in text
        assert "a note" in text
        assert result.column("value") == {"a": 1.0, "b": 2.0}
        with pytest.raises(KeyError):
            result.column("nope")


class TestExperimentRuns:
    """Every experiment runs end to end on a 3-benchmark subset."""

    def test_table1(self):
        result = run_experiment("table1", Scale.QUICK, SUBSET)
        assert result.rows

    @pytest.mark.parametrize("name", ["fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig15"])
    def test_profiling_figures(self, name):
        result = run_experiment(name, Scale.QUICK, SUBSET)
        assert result.experiment == name
        assert len(result.rows) == len(SUBSET)
        assert result.series
        for series in result.series.values():
            assert set(series) == set(SUBSET)

    def test_fig1(self):
        result = run_experiment("fig1", Scale.QUICK, SUBSET)
        assert set(result.series["potential"]) == set(SUBSET)

    def test_fig11_has_geomean_row(self):
        result = run_experiment("fig11", Scale.QUICK, SUBSET)
        assert result.rows[-1][0] == "geomean"
        assert "geomean" in result.series

    def test_fig12_categories_partition(self):
        result = run_experiment("fig12", Scale.QUICK, SUBSET)
        covered = result.series["tcp-8k:prefetched_original"]
        uncovered = result.series["tcp-8k:non_prefetched_original"]
        for name in SUBSET:
            assert covered[name] + uncovered[name] == pytest.approx(100.0, abs=0.1)

    def test_fig14(self):
        result = run_experiment("fig14", Scale.QUICK, SUBSET)
        assert set(result.series["hybrid-8k"]) == set(SUBSET)


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig11" in output and "swim" in output and "tcp-8k" in output

    def test_run_fig2_subset(self, capsys):
        code = main(["run", "fig2", "--scale", "quick",
                     "--benchmarks", "fma3d", "art"])
        assert code == 0
        output = capsys.readouterr().out
        assert "[fig2]" in output

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_simulate_command(self, capsys):
        code = main(["simulate", "fma3d", "--prefetcher", "tcp-8k",
                     "--scale", "quick"])
        assert code == 0
        output = capsys.readouterr().out
        assert "IPC improvement" in output

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig2", "--scale", "enormous"])


class TestTraceExport:
    def test_trace_command_writes_file(self, tmp_path, capsys):
        output = tmp_path / "dump.npz"
        code = main(["trace", "fma3d", "--scale", "quick",
                     "--output", str(output)])
        assert code == 0
        assert output.exists()
        from repro.workloads import load_trace
        trace = load_trace(output)
        assert trace.name == "fma3d"


class TestReportGeneration:
    def test_report_subset_structure(self):
        from repro.experiments.report import generate_report

        # claim checkers reference these three benchmarks' series keys
        report = generate_report(
            Scale.QUICK,
            benchmarks=("fma3d", "equake", "eon", "crafty", "twolf", "swim",
                        "applu", "wupwise", "art", "lucas", "apsi", "gap",
                        "ammp", "mcf", "mgrid", "gcc"),
        )
        assert report.startswith("# EXPERIMENTS")
        assert "Scoreboard:" in report
        # one section per experiment
        for name in EXPERIMENTS:
            assert f"## {name}:" in report
        # claim tables rendered
        assert "| claim | paper | measured | verdict |" in report


class TestSection3Cache:
    def test_profile_memoised(self):
        from repro.experiments.section3 import profile

        first = profile("fma3d", Scale.QUICK)
        second = profile("fma3d", Scale.QUICK)
        assert first is second

    def test_profile_fields_consistent(self):
        from repro.experiments.section3 import profile

        data = profile("art", Scale.QUICK)
        assert data.workload == "art"
        assert data.stream_length > 0
        assert 0.0 < data.miss_rate <= 1.0
        assert data.tags.misses == data.stream_length
        assert 0.0 <= data.strided_fraction <= 1.0
