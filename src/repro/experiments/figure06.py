"""Figure 6: unique 3-tag sequences and mean recurrences per sequence."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, suite_order
from repro.experiments.section3 import profile
from repro.workloads import Scale

__all__ = ["run"]


def run(
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = suite_order(benchmarks)
    rows = []
    series = {"unique_sequences": {}, "mean_sequence_occurrences": {}}
    for name in names:
        stats = profile(name, scale).sequences
        series["unique_sequences"][name] = float(stats.unique_sequences)
        series["mean_sequence_occurrences"][name] = stats.mean_sequence_occurrences
        rows.append(
            [name, stats.windows, stats.unique_sequences, stats.mean_sequence_occurrences]
        )
    recurrences = series["mean_sequence_occurrences"]
    most = max(recurrences, key=recurrences.get)  # type: ignore[arg-type]
    notes = [
        f"Most repetitive sequences: {most} "
        f"({recurrences[most]:.0f} mean recurrences) — history-based "
        "prediction food (the paper's art reaches 200,000 on full runs).",
    ]
    return ExperimentResult(
        experiment="fig6",
        title="Unique 3-tag sequences and mean appearances per sequence",
        headers=["benchmark", "windows", "unique sequences", "mean occurrences/sequence"],
        rows=rows,
        series=series,
        notes=notes,
    )
