"""Tests for worker supervision, fault injection, and campaign resume.

These prove the acceptance paths end to end: a campaign with injected
worker crashes completes every job via retries; a killed-then-restarted
``repro-tcp run fig11`` resumes from the on-disk store re-running only
the missing (workload, config) pairs; timeouts, corrupt results, and
exhausted retry budgets each surface as their taxonomy class.
"""

import dataclasses

import pytest

from repro.experiments.cli import main
from repro.sim import SimulationConfig, prewarm, simulate
from repro.sim import store as store_mod
from repro.sim.resilience import (
    CampaignReport,
    CorruptResult,
    JobTimeout,
    RetryPolicy,
    SimulationError,
    WorkerCrash,
    maybe_inject_fault,
    run_supervised,
    set_fault_injector,
)
from repro.sim.runner import clear_cache
from repro.sim.store import ResultStore
from repro.workloads import Scale

BENCHES = ("fma3d", "eon")
BASE = SimulationConfig.baseline()


@pytest.fixture(autouse=True)
def _clean_state():
    clear_cache()
    yield
    clear_cache()
    set_fault_injector(None)
    store_mod.clear_active_store()


def fail_first_attempt(kind):
    """Injector: every job faults with ``kind`` on attempt 1 only."""
    return lambda key, attempt: kind if attempt == 1 else None


class TestTaxonomy:
    def test_hierarchy(self):
        for cls in (WorkerCrash, JobTimeout, CorruptResult):
            assert issubclass(cls, SimulationError)
        assert issubclass(SimulationError, RuntimeError)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_max=1.0)
        first = policy.backoff("job", 2)
        assert first == policy.backoff("job", 2)
        assert 0.05 <= policy.backoff("job", 1) < 0.15
        assert policy.backoff("job", 10) < 1.5  # capped at max * 1.5 jitter


class TestFaultInjection:
    def test_env_rate_is_deterministic(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.5")
        outcomes = [maybe_inject_fault("job-%d" % i, 1) for i in range(64)]
        assert outcomes == [maybe_inject_fault("job-%d" % i, 1) for i in range(64)]
        faulted = sum(1 for o in outcomes if o is not None)
        assert 0 < faulted < 64  # the hash actually splits the population

    def test_env_kind_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        monkeypatch.setenv("REPRO_FAULT_KIND", "error")
        assert maybe_inject_fault("anything", 1) == "error"

    def test_zero_rate_never_faults(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.0")
        assert all(maybe_inject_fault("job-%d" % i, 1) is None for i in range(32))

    def test_injector_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        set_fault_injector(lambda key, attempt: None)
        assert maybe_inject_fault("job", 1) is None


class TestSupervisor:
    """run_supervised over a trivial job function (no simulations)."""

    def test_crash_isolation_loses_one_attempt_not_the_pool(self):
        set_fault_injector(fail_first_attempt("crash"))
        report = run_supervised(
            list(range(6)),
            lambda job: job * 10,
            workers=3,
            policy=RetryPolicy(retries=2, backoff_base=0.0),
            key=str,
        )
        assert report.ok
        assert report.completed == {str(i): i * 10 for i in range(6)}
        assert report.retried == 6  # every job crashed once, retried once

    def test_exhausted_retries_classified_as_crash(self):
        set_fault_injector(lambda key, attempt: "crash")
        report = run_supervised(
            ["only"],
            lambda job: job,
            workers=1,
            policy=RetryPolicy(retries=1, backoff_base=0.0),
            key=str,
        )
        assert report.failed == 1
        assert report.failures[0].error == "WorkerCrash"
        assert report.failures[0].attempts == 2

    def test_timeout_classified_and_bounded(self):
        set_fault_injector(lambda key, attempt: "timeout")
        report = run_supervised(
            ["slow"],
            lambda job: job,
            workers=1,
            policy=RetryPolicy(retries=0, timeout=0.5, backoff_base=0.0),
            key=str,
        )
        assert report.failed == 1
        assert report.failures[0].error == "JobTimeout"

    def test_error_message_propagates_from_worker(self):
        def boom(job):
            raise ValueError("the dial goes to 11")

        report = run_supervised(
            ["x"], boom, workers=1, policy=RetryPolicy(retries=0, backoff_base=0.0),
            key=str,
        )
        assert report.failed == 1
        assert "the dial goes to 11" in report.failures[0].message

    def test_validation_failure_retries_then_succeeds(self):
        set_fault_injector(fail_first_attempt("corrupt"))
        clear_cache()
        from repro.sim.parallel import _run_job
        from repro.sim.results import validate_result

        report = run_supervised(
            [("eon", BASE, Scale.QUICK.accesses)],
            _run_job,
            workers=1,
            policy=RetryPolicy(retries=1, backoff_base=0.0),
            key=lambda job: job[0],
            validate=validate_result,
        )
        assert report.ok
        assert report.retried == 1
        report.completed["eon"].validate()

    def test_empty_job_list(self):
        report = run_supervised([], lambda job: job, workers=2)
        assert report.ok and report.executed == 0

    def test_progress_callback_sees_every_job(self):
        seen = []
        report = run_supervised(
            list(range(4)),
            lambda job: job,
            workers=2,
            key=str,
            progress=lambda done, total, key, status: seen.append((done, total, status)),
        )
        assert report.executed == 4
        assert len(seen) == 4
        assert all(total == 4 and status == "ok" for _, total, status in seen)
        assert sorted(done for done, _, _ in seen) == [1, 2, 3, 4]


class TestCampaignWithFaults:
    def test_faulty_campaign_completes_all_jobs(self):
        """Acceptance: fault rate > 0, every job completes via retries."""
        set_fault_injector(None)
        import os

        os.environ["REPRO_FAULT_RATE"] = "0.4"
        os.environ["REPRO_FAULT_KIND"] = "crash"
        try:
            report = prewarm(
                [BASE], Scale.QUICK, BENCHES + ("swim",), jobs=2, retries=4
            )
        finally:
            del os.environ["REPRO_FAULT_RATE"]
            del os.environ["REPRO_FAULT_KIND"]
        assert report.ok, report.summary()
        assert report.executed == 3
        assert report.retried > 0  # the faults actually fired
        # and the results are identical to a clean serial run
        clean = simulate("eon", BASE, Scale.QUICK, use_cache=False)
        assert report.completed[f"eon/base@{Scale.QUICK.accesses}"].ipc == clean.ipc

    def test_inprocess_campaign_with_faults(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "inprocess")
        set_fault_injector(fail_first_attempt("crash"))
        report = prewarm([BASE], Scale.QUICK, BENCHES, jobs=2, retries=2)
        assert report.ok
        assert report.executed == 2
        assert report.retried == 2

    def test_report_summary_names_error_classes(self):
        set_fault_injector(lambda key, attempt: "error")
        report = prewarm([BASE], Scale.QUICK, ("eon",), jobs=2, retries=0)
        assert report.failed == 1
        text = report.summary()
        assert "SimulationError" in text and "eon" in text
        with pytest.raises(SimulationError):
            report.raise_if_failed()


class TestResumeAcrossRestart:
    def test_cli_resume_reruns_only_missing_pairs(self, tmp_path, monkeypatch, capsys):
        """Acceptance: a killed-then-restarted run resumes from the store."""
        store_dir = tmp_path / "store"
        # "First run, killed partway": only some pairs reach the store.
        clear_cache()
        with store_mod.use_store(ResultStore(store_dir)):
            for config in (BASE, SimulationConfig.for_prefetcher("tcp-8k")):
                simulate("fma3d", config, Scale.QUICK)
        checkpointed = len(ResultStore(store_dir))
        assert checkpointed == 2

        # "Restart": count how many simulations actually execute.
        clear_cache()
        executions = []
        from repro.sim import runner

        real = runner._execute
        monkeypatch.setattr(
            runner,
            "_execute",
            lambda trace, config, w: executions.append(trace.name) or real(trace, config, w),
        )
        code = main([
            "run", "fig11", "--scale", "quick",
            "--benchmarks", "fma3d", "eon",
            "--store-dir", str(store_dir),
        ])
        store_mod.clear_active_store()
        assert code == 0
        # fig11 needs 4 configs x 2 benchmarks = 8 pairs; 2 were checkpointed.
        assert len(executions) == 8 - checkpointed
        assert executions.count("fma3d") == 2  # only tcp-8m + dbcp-2m missing
        out = capsys.readouterr().out
        assert "result store" in out

    def test_cli_second_run_executes_nothing(self, tmp_path, monkeypatch):
        store_dir = tmp_path / "store"
        clear_cache()
        code = main([
            "run", "fig11", "--scale", "quick",
            "--benchmarks", "fma3d",
            "--store-dir", str(store_dir),
        ])
        store_mod.clear_active_store()
        assert code == 0

        clear_cache()
        executions = []
        from repro.sim import runner

        real = runner._execute
        monkeypatch.setattr(
            runner,
            "_execute",
            lambda *a, **k: executions.append(1) or real(*a, **k),
        )
        code = main([
            "run", "fig11", "--scale", "quick",
            "--benchmarks", "fma3d",
            "--store-dir", str(store_dir),
        ])
        store_mod.clear_active_store()
        assert code == 0
        assert executions == []  # everything replayed from the store


class TestCLIFailureSummary:
    def test_nonzero_exit_and_readable_summary_on_partial_failure(
        self, tmp_path, monkeypatch, capsys
    ):
        set_fault_injector(lambda key, attempt: "error" if key.startswith("eon") else None)
        clear_cache()
        code = main([
            "run", "fig1", "--scale", "quick",
            "--benchmarks", "fma3d", "eon",
            "--jobs", "2", "--retries", "0", "--no-store",
        ])
        store_mod.clear_active_store()
        captured = capsys.readouterr()
        assert code == 1
        assert "failures:" in captured.err
        assert "SimulationError" in captured.err
        assert "eon" in captured.err

    def test_no_store_flag_disables_persistence(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "envstore"))
        clear_cache()
        code = main([
            "run", "fig1", "--scale", "quick",
            "--benchmarks", "fma3d",
            "--no-store",
        ])
        store_mod.clear_active_store()
        assert code == 0
        assert not (tmp_path / "envstore" / "results.jsonl").exists()
