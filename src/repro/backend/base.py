"""The simulation-backend interface and registry.

A *backend* owns the per-access stepping of one run: given a trace, a
cold memory hierarchy (prefetcher already attached), and the core
parameters, it walks the trace and returns the timing result.  The
contract is strict bit-identity — every backend must produce exactly
the same :class:`~repro.cpu.core.CoreResult` and leave exactly the
same counters on ``hierarchy.stats`` as the reference ``python``
backend, for any configuration.  The differential suites
(``tests/test_backend.py``, ``tests/test_backend_fuzz.py``, the golden
corpus, and the 156-run oracle) enforce this, which is what lets
results from different backends share one result store: the store
fingerprint deliberately excludes the backend selection.

Selection precedence (mirrors the sanitizer's): an explicit
``SimulationConfig.backend`` wins, else the ``REPRO_BACKEND``
environment variable, else ``"python"``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.cpu.core import CoreParams, CoreResult
    from repro.engine.probes import Probe
    from repro.memory.hierarchy import MemoryHierarchy
    from repro.workloads.trace import Trace

__all__ = [
    "BACKEND_ENV",
    "Backend",
    "available_backends",
    "backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

#: environment variable naming the default backend for a process tree
#: (campaign workers and fabric agents inherit it).
BACKEND_ENV = "REPRO_BACKEND"

DEFAULT_BACKEND = "python"


class Backend:
    """One implementation of the per-access simulation loop.

    Backends are stateless between runs: ``run`` builds whatever
    per-run machinery it needs from its arguments, so one registry
    instance can serve many (possibly differently configured) runs.
    """

    #: registry name (also what ``SimResult``-producing layers report).
    name: str = "abstract"

    def run(
        self,
        trace: "Trace",
        hierarchy: "MemoryHierarchy",
        params: "CoreParams",
        warmup: int = 0,
        probes: Optional[Sequence["Probe"]] = None,
    ) -> "CoreResult":
        """Step ``trace`` through ``hierarchy``; return the core result.

        Identical contract to :meth:`repro.cpu.OutOfOrderCore.run`:
        ``warmup`` accesses train state without being measured, probes
        fire at shared periodic marks, ``hierarchy.stats`` accumulates
        the memory-side counters, and ``on_finalize`` is the caller's
        job (after ``hierarchy.finalize()``).
        """
        raise NotImplementedError


_REGISTRY: Dict[str, Callable[[], Backend]] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> str:
    """Add (or replace) a named backend factory; returns the name."""
    _REGISTRY[name] = factory
    return name


def available_backends() -> tuple:
    """Sorted names of every registered backend."""
    return tuple(sorted(_REGISTRY))


def backend_name(explicit: Optional[str] = None) -> str:
    """Resolve the backend *name* for a run.

    ``explicit`` (usually ``SimulationConfig.backend``) wins; else the
    ``REPRO_BACKEND`` environment variable; else ``"python"``.
    """
    if explicit is not None:
        return explicit
    env = os.environ.get(BACKEND_ENV, "").strip().lower()
    return env or DEFAULT_BACKEND


def get_backend(name: str) -> Backend:
    """Instantiate the named backend (ValueError lists the options)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {available_backends()} "
            f"(set via SimulationConfig.backend, --backend, or {BACKEND_ENV})"
        ) from None
    return factory()


def resolve_backend(explicit: Optional[str] = None) -> Backend:
    """Resolve config/environment precedence and instantiate."""
    return get_backend(backend_name(explicit))
