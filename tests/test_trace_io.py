"""Tests for trace persistence and the trace cache (repro.workloads.io)."""

import json

import numpy as np
import pytest

from repro.workloads import (
    BENCHMARK_ORDER,
    Scale,
    generate,
    load_trace,
    save_trace,
    trace_cache_scope,
)
from repro.workloads import suite as suite_mod
from repro.workloads.io import (
    FORMAT_VERSION,
    cached_trace_path,
    load_cached_trace,
    spec_fingerprint,
    store_cached_trace,
)

ARRAYS = ("addrs", "pcs", "is_load", "gaps", "deps")


def _assert_traces_equal(a, b):
    assert a.name == b.name
    assert a.base_ipc == b.base_ipc
    for field in ARRAYS:
        assert (getattr(a, field) == getattr(b, field)).all(), field


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = generate("mcf", Scale.QUICK)
        path = save_trace(trace, tmp_path / "mcf")
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.base_ipc == trace.base_ipc
        assert (loaded.addrs == trace.addrs).all()
        assert (loaded.pcs == trace.pcs).all()
        assert (loaded.is_load == trace.is_load).all()
        assert (loaded.gaps == trace.gaps).all()
        assert (loaded.deps == trace.deps).all()

    def test_npz_suffix_added(self, tmp_path):
        trace = generate("fma3d", Scale.QUICK)
        path = save_trace(trace, tmp_path / "dump")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.sim import SimulationConfig, simulate

        trace = generate("eon", Scale.QUICK)
        loaded = load_trace(save_trace(trace, tmp_path / "eon"))
        a = simulate(trace, SimulationConfig.baseline())
        b = simulate(loaded, SimulationConfig.baseline())
        assert a.ipc == b.ipc


class TestValidation:
    def test_not_a_trace_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ValueError, match="missing"):
            load_trace(path)

    def test_version_mismatch(self, tmp_path):
        trace = generate("fma3d", Scale.QUICK)
        path = save_trace(trace, tmp_path / "old")
        # rewrite with a bogus version
        with np.load(path) as archive:
            data = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = FORMAT_VERSION + 999
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_truncated_arrays_rejected(self, tmp_path):
        trace = generate("fma3d", Scale.QUICK)
        path = save_trace(trace, tmp_path / "cut")
        with np.load(path) as archive:
            data = {key: archive[key] for key in archive.files}
        data["addrs"] = data["addrs"][:10]
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_trace(path)

    @pytest.mark.parametrize("mmap_mode", [None, "r"])
    def test_byte_truncated_archive_fails_loudly(self, tmp_path, mmap_mode):
        trace = generate("fma3d", Scale.QUICK)
        path = save_trace(trace, tmp_path / "cut", compress=False)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises((ValueError, OSError, KeyError, EOFError)):
            load_trace(path, mmap_mode=mmap_mode)

    def test_garbage_bytes_fail_loudly(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises((ValueError, OSError)):
            load_trace(path)


class TestRoundTripWholeSuite:
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_every_benchmark_roundtrips_at_quick(self, name, tmp_path):
        trace = generate(name, Scale.QUICK)
        loaded = load_trace(save_trace(trace, tmp_path / name))
        _assert_traces_equal(trace, loaded)


class TestMmapLoad:
    def test_uncompressed_archive_is_memory_mapped(self, tmp_path):
        trace = generate("mcf", Scale.QUICK)
        path = save_trace(trace, tmp_path / "mcf", compress=False)
        loaded = load_trace(path, mmap_mode="r")
        assert isinstance(loaded.addrs, np.memmap)
        _assert_traces_equal(trace, loaded)

    def test_compressed_archive_falls_back_to_eager_read(self, tmp_path):
        trace = generate("mcf", Scale.QUICK)
        path = save_trace(trace, tmp_path / "mcf", compress=True)
        loaded = load_trace(path, mmap_mode="r")
        assert not isinstance(loaded.addrs, np.memmap)
        _assert_traces_equal(trace, loaded)

    def test_unsupported_mmap_mode_rejected(self, tmp_path):
        trace = generate("mcf", Scale.QUICK)
        path = save_trace(trace, tmp_path / "mcf", compress=False)
        with pytest.raises(ValueError, match="mmap_mode"):
            load_trace(path, mmap_mode="r+")

    def test_mmap_simulates_identically(self, tmp_path):
        from repro.sim import SimulationConfig, simulate

        trace = generate("eon", Scale.QUICK)
        path = save_trace(trace, tmp_path / "eon", compress=False)
        loaded = load_trace(path, mmap_mode="r")
        a = simulate(trace, SimulationConfig.baseline())
        b = simulate(loaded, SimulationConfig.baseline())
        assert a.ipc == b.ipc


class TestTraceCache:
    ACCESSES = Scale.QUICK.accesses

    @pytest.fixture(autouse=True)
    def _fresh_memory_cache(self):
        suite_mod._CACHE.clear()
        yield
        suite_mod._CACHE.clear()

    def test_generate_writes_through_and_reads_back(self, tmp_path):
        with trace_cache_scope(tmp_path):
            first = generate("swim", Scale.QUICK)
            entry = cached_trace_path("swim", self.ACCESSES, tmp_path)
            assert entry.exists()
            suite_mod._CACHE.clear()
            second = generate("swim", Scale.QUICK)
        assert isinstance(second.addrs, np.memmap)  # came from disk
        _assert_traces_equal(first, second)

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        with trace_cache_scope(tmp_path):
            generate("swim", Scale.QUICK)
            entry = cached_trace_path("swim", self.ACCESSES, tmp_path)
            stale = entry.with_name(f"swim-{self.ACCESSES}-{'0' * 16}.npz")
            entry.rename(stale)
            assert load_cached_trace("swim", self.ACCESSES, tmp_path) is None
            suite_mod._CACHE.clear()
            trace = generate("swim", Scale.QUICK)  # regenerated, not garbage
        assert not isinstance(trace.addrs, np.memmap)

    def test_corrupt_cache_entry_falls_back_to_regeneration(self, tmp_path):
        with trace_cache_scope(tmp_path):
            fresh = generate("swim", Scale.QUICK)
            entry = cached_trace_path("swim", self.ACCESSES, tmp_path)
            entry.write_bytes(b"corrupted beyond recognition")
            assert load_cached_trace("swim", self.ACCESSES, tmp_path) is None
            suite_mod._CACHE.clear()
            regenerated = generate("swim", Scale.QUICK)
        _assert_traces_equal(fresh, regenerated)

    def test_wrong_name_inside_archive_is_a_miss(self, tmp_path):
        mcf = generate("mcf", Scale.QUICK)
        store_cached_trace(mcf, "mcf", self.ACCESSES, tmp_path)
        entry = cached_trace_path("mcf", self.ACCESSES, tmp_path)
        imposter = cached_trace_path("swim", self.ACCESSES, tmp_path)
        entry.rename(imposter)
        assert load_cached_trace("swim", self.ACCESSES, tmp_path) is None

    def test_fingerprint_covers_accesses_and_name(self):
        base = spec_fingerprint("swim", 1000)
        assert spec_fingerprint("swim", 2000) != base
        assert spec_fingerprint("mcf", 1000) != base
        assert spec_fingerprint("swim", 1000) == base

    def test_scope_disables_with_none(self, tmp_path):
        with trace_cache_scope(None):
            generate("swim", Scale.QUICK)
        assert list(tmp_path.iterdir()) == []
