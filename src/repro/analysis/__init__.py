"""Miss-stream characterisation (the paper's Section 3 analyses).

The paper motivates TCP with a profiling study of the L1 data-cache
miss stream: how often tags recur (Figure 2) versus full addresses
(Figure 3), how tags spread across sets (Figure 4), and the same
questions for per-set three-tag *sequences* (Figures 5–7), plus the
share of strided sequences (Figure 15, via
:func:`repro.core.strided.strided_fraction`).

:func:`repro.analysis.miss_stream.capture_miss_stream` replays a trace
through a bare L1 and returns the miss stream; the stats modules
compute the figures' metrics from it.
"""

from repro.analysis.livetime import LiveTimeStats, live_time_stats
from repro.analysis.miss_stream import MissStream, capture_miss_stream
from repro.analysis.prediction import PredictionScore, score_prefetcher
from repro.analysis.sequence_stats import SequenceStats, sequence_stats
from repro.analysis.tag_stats import TagStats, tag_stats

__all__ = [
    "LiveTimeStats",
    "MissStream",
    "PredictionScore",
    "SequenceStats",
    "TagStats",
    "capture_miss_stream",
    "live_time_stats",
    "score_prefetcher",
    "sequence_stats",
    "tag_stats",
]
