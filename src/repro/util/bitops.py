"""Bit-manipulation primitives used throughout the simulator.

Cache geometry, prefetcher indexing, and the paper's truncated-add PHT
hash (Figure 9 of the paper) are all expressed in terms of these
helpers.  Everything operates on plain Python integers, which are
arbitrary precision, so callers must mask explicitly when they need a
fixed width — these helpers make that masking readable.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "bit_slice",
    "fold_xor",
    "index_geometry",
    "is_power_of_two",
    "log2_exact",
    "mask",
    "truncated_add",
]


def mask(width: int) -> int:
    """Return an integer with the low ``width`` bits set.

    ``mask(0)`` is 0 and ``mask(4)`` is ``0b1111``.  Raises
    :class:`ValueError` for negative widths.
    """
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit_slice(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``.

    ``bit_slice(0b110100, 2, 3)`` selects bits [4:2] and returns
    ``0b101``.  A zero ``width`` returns 0.
    """
    if low < 0:
        raise ValueError(f"bit offset must be non-negative, got {low}")
    return (value >> low) & mask(width)


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two.

    Cache geometry (set counts, block sizes) must be powers of two so
    that tag/index/offset extraction is pure bit slicing; this helper
    enforces that invariant at configuration time.
    """
    if not is_power_of_two(value):
        raise ValueError(f"expected a power of two, got {value}")
    return value.bit_length() - 1


def index_geometry(count: int) -> "tuple[int, int]":
    """Return ``(index_bits, index_mask)`` for a power-of-two table size.

    Every power-of-two-sized lookup structure in the simulator — cache
    set arrays, THT rows, PHT sets, the vector backend's state planes —
    derives the same pair of constants from its entry count: the number
    of index bits and the mask selecting them.  Centralising the pair
    here keeps the derivations identical everywhere (they used to be
    re-spelled inline in ``memory/address.py`` and ``core/indexing.py``)
    and enforces the power-of-two invariant in one place.
    """
    bits = log2_exact(count)
    return bits, mask(bits)


def truncated_add(values: Iterable[int], width: int) -> int:
    """Sum ``values`` and keep only the low ``width`` bits.

    This is the "truncated addition" indexing function from the paper's
    Figure 9 (borrowed from the DBCP signature scheme of Lai et al.):
    cheap in hardware (carry chain cut at ``width`` bits), and good
    enough as a hash because tag entropy lives in the low bits.
    """
    total = 0
    for value in values:
        total += value
    return total & mask(width)


def fold_xor(value: int, width: int) -> int:
    """Fold ``value`` down to ``width`` bits by XOR-ing chunks.

    An alternative indexing function explored in the ablation benches
    (the paper's Section 6 points at branch-predictor indexing lessons;
    gshare-style XOR folding is the obvious candidate).  ``width`` must
    be positive.
    """
    if width <= 0:
        raise ValueError(f"fold width must be positive, got {width}")
    folded = 0
    chunk_mask = mask(width)
    while value:
        folded ^= value & chunk_mask
        value >>= width
    return folded
