"""Tests for repro.util.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    bit_slice,
    fold_xor,
    is_power_of_two,
    log2_exact,
    mask,
    truncated_add,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 0b1
        assert mask(4) == 0b1111
        assert mask(10) == 1023

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)

    @given(st.integers(min_value=0, max_value=256))
    def test_mask_is_all_ones(self, width):
        value = mask(width)
        assert value == (1 << width) - 1
        assert value.bit_count() == width


class TestBitSlice:
    def test_middle_bits(self):
        assert bit_slice(0b110100, 2, 3) == 0b101

    def test_zero_width_returns_zero(self):
        assert bit_slice(0xFFFF, 4, 0) == 0

    def test_low_bits(self):
        assert bit_slice(0xABCD, 0, 8) == 0xCD

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            bit_slice(1, -1, 2)

    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=64))
    def test_slice_matches_shift_and_mask(self, value, low, width):
        assert bit_slice(value, low, width) == (value >> low) & ((1 << width) - 1)


class TestPowerOfTwo:
    def test_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 1023):
            assert not is_power_of_two(value)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(1024) == 10
        assert log2_exact(1 << 20) == 20

    def test_log2_exact_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_exact(12)
        with pytest.raises(ValueError):
            log2_exact(0)


class TestTruncatedAdd:
    def test_basic_sum(self):
        assert truncated_add([1, 2, 3], 8) == 6

    def test_truncation(self):
        assert truncated_add([0xFF, 0x01], 8) == 0
        assert truncated_add([0x1FF, 0x1], 8) == 0

    def test_empty_is_zero(self):
        assert truncated_add([], 16) == 0

    def test_commutative(self):
        assert truncated_add([7, 11, 13], 6) == truncated_add([13, 7, 11], 6)

    @given(st.lists(st.integers(min_value=0, max_value=2**32), max_size=8),
           st.integers(min_value=0, max_value=32))
    def test_within_width(self, values, width):
        assert 0 <= truncated_add(values, width) < (1 << width) if width else True


class TestFoldXor:
    def test_fold_is_deterministic(self):
        assert fold_xor(0xDEADBEEF, 8) == fold_xor(0xDEADBEEF, 8)

    def test_fold_within_width(self):
        for width in (1, 4, 8, 13):
            assert 0 <= fold_xor(0xDEADBEEF, width) < (1 << width)

    def test_small_value_unchanged(self):
        assert fold_xor(0b101, 8) == 0b101

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            fold_xor(1, 0)

    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.integers(min_value=1, max_value=32))
    def test_fold_bounded(self, value, width):
        assert 0 <= fold_xor(value, width) < (1 << width)
