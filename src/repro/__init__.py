"""repro — a reproduction of "TCP: Tag Correlating Prefetchers" (HPCA 2003).

The package implements the paper's Tag Correlating Prefetcher and the
entire evaluation platform around it — a trace-driven out-of-order core,
the Table 1 memory hierarchy with bus contention, baseline prefetchers
(DBCP, stride, stream buffers, Markov), a timekeeping dead-block
predictor, a synthetic SPEC CPU2000-analogue workload suite, the
Section 3 miss-stream analyses, and one experiment module per paper
table/figure.

Quick start::

    from repro import simulate, SimulationConfig, Scale

    base = simulate("swim", SimulationConfig.baseline(), Scale.QUICK)
    tcp = simulate("swim", SimulationConfig.for_prefetcher("tcp-8k"), Scale.QUICK)
    print(f"TCP-8K speeds up swim by {tcp.improvement_over(base):+.1f}%")

Or from the shell: ``repro-tcp run fig11``.
"""

from repro.core import (
    HybridTCP,
    MultiTargetTCP,
    StrideFilteredTCP,
    TagCorrelatingPrefetcher,
    TCPConfig,
    hybrid_8k,
    tcp_8k,
    tcp_8m,
    tcp_with_pht,
)
from repro.experiments import EXPERIMENTS, run_experiment
from repro.sim import (
    PREFETCHERS,
    CampaignReport,
    InvariantViolation,
    ResultStore,
    SimResult,
    SimulationConfig,
    SimulationError,
    StallTimeout,
    prewarm,
    simulate,
    simulate_suite,
)
from repro.workloads import BENCHMARK_ORDER, SUITE, Scale, Trace, generate

__version__ = "1.0.0"

__all__ = [
    "BENCHMARK_ORDER",
    "CampaignReport",
    "EXPERIMENTS",
    "HybridTCP",
    "InvariantViolation",
    "MultiTargetTCP",
    "PREFETCHERS",
    "ResultStore",
    "SUITE",
    "Scale",
    "SimResult",
    "SimulationConfig",
    "SimulationError",
    "StallTimeout",
    "StrideFilteredTCP",
    "TCPConfig",
    "TagCorrelatingPrefetcher",
    "Trace",
    "__version__",
    "generate",
    "hybrid_8k",
    "prewarm",
    "run_experiment",
    "simulate",
    "simulate_suite",
    "tcp_8k",
    "tcp_8m",
    "tcp_with_pht",
]
