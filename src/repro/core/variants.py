"""TCP design variants from the paper's Section 6 (future work).

Four extensions the paper sketches are implemented so the ablation
benches can quantify them:

``MultiTargetTCP``
    "In the design of tag correlating prefetchers, there is a similar
    trade-off for storing multiple targets" (after Joseph & Grunwald's
    Markov prefetcher).  The PHT keeps the most recent ``targets``
    successors per pattern and the prefetcher issues all of them —
    higher coverage, more traffic.

``StrideFilteredTCP``
    "One possible future work is to further investigate strided and
    other special sequences and exploit them to improve the performance
    or hardware-efficiency of tag correlating prefetchers."  A tiny
    per-set stride detector handles strided sequences directly; the
    PHT is consulted — and updated — only for non-strided patterns, so
    strided workloads stop polluting the shared pattern store.

``ConfidenceFilteredTCP``
    The paper's critical-miss-filter discussion points at suppressing
    low-value prefetches.  This variant attaches a two-bit saturating
    confidence counter to every PHT entry (the standard
    branch-predictor device the paper's Section 6 invites): a pattern
    must re-confirm its successor before its predictions are issued,
    trading a little coverage for much cleaner traffic.

``LookaheadTCP``
    Runs the PHT transitively: the predicted next tag is pushed back
    through the index to predict the tag after it, issuing a chain of
    ``degree`` prefetches per miss — deeper timeliness at the cost of
    compounding misprediction.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.core.strided import StridedSequenceDetector
from repro.core.tcp import TagCorrelatingPrefetcher, TCPConfig
from repro.prefetchers.base import MissEvent, PrefetchRequest

__all__ = [
    "ConfidenceFilteredTCP",
    "LookaheadTCP",
    "MultiTargetTCP",
    "StrideFilteredTCP",
]


class MultiTargetTCP(TagCorrelatingPrefetcher):
    """TCP whose PHT entries store several successor tags."""

    def __init__(self, config: TCPConfig = TCPConfig(), targets: int = 2) -> None:
        if targets < 2:
            raise ValueError("MultiTargetTCP needs at least 2 targets; use the base TCP for 1")
        widened = replace(config, pht=replace(config.pht, targets=targets))
        super().__init__(widened, name=f"tcp-multi{targets}")
        self.targets = targets


class StrideFilteredTCP(TagCorrelatingPrefetcher):
    """TCP with a stride fast path in front of the PHT.

    Per miss: the stride detector observes the (index, tag) pair.  If
    the per-set tag stream is in a confirmed stride, the prediction is
    ``tag + stride`` at zero PHT cost and the PHT is left untouched
    (neither updated nor queried), preserving its capacity for the
    irregular patterns only it can capture.
    """

    def __init__(self, config: TCPConfig = TCPConfig()) -> None:
        super().__init__(config, name="tcp-stride")
        self.detector = StridedSequenceDetector(config.tht_rows, depth=3)
        self.stride_predictions = 0

    def observe_miss(self, miss: MissEvent) -> List[PrefetchRequest]:
        predicted_tag = self.detector.observe(miss.index, miss.tag)
        if predicted_tag is not None:
            # Keep the THT current so the PHT path has fresh history
            # when the stride eventually breaks.
            self.tht.push(miss.index, miss.tag)
            self.stats.lookups += 1
            if predicted_tag < 0:
                return []
            self.stride_predictions += 1
            self.stats.predictions += 1
            block = self.tht.compose_block(predicted_tag, miss.index)
            return [PrefetchRequest(block, into_l1=self.into_l1)]
        return super().observe_miss(miss)

    def storage_bytes(self) -> int:
        # Detector state: last tag (2B) + stride (2B) + 2-bit counter
        # per set, rounded to 5 bytes.
        return super().storage_bytes() + self.detector.sets * 5

    def reset(self) -> None:
        super().reset()
        self.detector.reset()
        self.stride_predictions = 0


class ConfidenceFilteredTCP(TagCorrelatingPrefetcher):
    """TCP whose predictions must earn confidence before issuing.

    A two-bit saturating counter rides alongside each PHT entry, keyed
    by (PHT set, entry tag).  On update, a successor that matches the
    stored prediction strengthens the counter; a mismatch weakens it.
    Predictions are issued only at or above ``threshold``.
    """

    def __init__(
        self,
        config: TCPConfig = TCPConfig(),
        threshold: int = 2,
        maximum: int = 3,
    ) -> None:
        if not 1 <= threshold <= maximum:
            raise ValueError(
                f"confidence threshold must lie in [1, {maximum}], got {threshold}"
            )
        super().__init__(config, name="tcp-conf")
        self.threshold = threshold
        self.maximum = maximum
        self._confidence: Dict[Tuple[int, int], int] = {}
        self.suppressed = 0

    def observe_miss(self, miss: MissEvent) -> List[PrefetchRequest]:
        self.stats.lookups += 1
        index = miss.index
        tag = miss.tag

        # Update with confidence training: did the old prediction for
        # the sequence that just resolved come true?
        old_sequence = self.tht.read(index)
        key = (self.pht.set_index(old_sequence, index), old_sequence[-1])
        previous = self.pht.predict(old_sequence, index)
        confidence = self._confidence.get(key, 0)
        if previous is not None and previous[0] == tag:
            confidence = min(self.maximum, confidence + 1)
        else:
            confidence = max(0, confidence - 1)
        self._confidence[key] = confidence
        self.pht.update(old_sequence, index, tag)
        new_sequence = self.tht.push(index, tag)
        self.stats.updates += 1

        # Lookup, gated by the target entry's confidence.
        predicted = self.pht.predict(new_sequence, index)
        if not predicted:
            return []
        target_key = (self.pht.set_index(new_sequence, index), new_sequence[-1])
        if self._confidence.get(target_key, 0) < self.threshold:
            self.suppressed += 1
            return []
        compose_block = self.tht.compose_block
        requests = []
        for next_tag in predicted:
            block = compose_block(next_tag, index)
            if block != miss.block:
                requests.append(PrefetchRequest(block, into_l1=self.into_l1))
        self.stats.predictions += len(requests)
        return requests

    def storage_bytes(self) -> int:
        # 2 bits per PHT entry, rounded up to whole bytes.
        cfg = self.pht.config
        return super().storage_bytes() + (cfg.sets * cfg.ways * 2 + 7) // 8

    def reset(self) -> None:
        super().reset()
        self._confidence.clear()
        self.suppressed = 0


class LookaheadTCP(TagCorrelatingPrefetcher):
    """TCP that walks the pattern table ``degree`` steps ahead.

    After the normal lookup predicts tag', the history is advanced as
    if tag' had missed and the PHT consulted again for tag'', and so
    on.  Duplicate targets along the chain are issued once.
    """

    def __init__(self, config: TCPConfig = TCPConfig(), degree: int = 2) -> None:
        if degree < 1:
            raise ValueError(f"lookahead degree must be positive, got {degree}")
        super().__init__(config, name=f"tcp-look{degree}")
        self.degree = degree

    def observe_miss(self, miss: MissEvent) -> List[PrefetchRequest]:
        self.stats.lookups += 1
        index = miss.index

        old_sequence = self.tht.read(index)
        self.pht.update(old_sequence, index, miss.tag)
        sequence = self.tht.push(index, miss.tag)
        self.stats.updates += 1

        compose_block = self.tht.compose_block
        requests: List[PrefetchRequest] = []
        seen = {miss.block}
        for _step in range(self.degree):
            predicted = self.pht.predict(sequence, index)
            if not predicted:
                break
            next_tag = predicted[0]
            block = compose_block(next_tag, index)
            if block in seen:
                break  # the chain closed on itself
            seen.add(block)
            requests.append(PrefetchRequest(block, into_l1=self.into_l1))
            # advance the speculative history without touching the THT
            sequence = tuple(sequence[1:]) + (next_tag,)
        self.stats.predictions += len(requests)
        return requests
