"""Figure 4: tag spread across sets and recurrence within each set.

Top graph of the paper's Figure 4: the mean number of cache sets each
tag appears in (spatial locality — upper limit 1024, the L1 set count).
Bottom graph: the mean number of times a tag recurs within one set
(temporal locality).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, suite_order
from repro.experiments.section3 import profile
from repro.workloads import Scale

__all__ = ["run"]


def run(
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = suite_order(benchmarks)
    rows = []
    series = {"sets_per_tag": {}, "occurrences_per_tag_set": {}}
    for name in names:
        stats = profile(name, scale).tags
        series["sets_per_tag"][name] = stats.mean_sets_per_tag
        series["occurrences_per_tag_set"][name] = stats.mean_occurrences_per_tag_set
        rows.append([name, stats.mean_sets_per_tag, stats.mean_occurrences_per_tag_set])
    spread = series["sets_per_tag"]
    widest = max(spread, key=spread.get)  # type: ignore[arg-type]
    notes = [
        "Upper limit of the set-spread column is 1024 (the L1 set count).",
        f"Widest tag spread: {widest} ({spread[widest]:.0f} sets) — tags "
        "re-appearing across many sets is what a shared PHT exploits.",
    ]
    return ExperimentResult(
        experiment="fig4",
        title="Mean sets per tag and mean appearances per (tag, set)",
        headers=["benchmark", "mean sets/tag", "mean occurrences/(tag,set)"],
        rows=rows,
        series=series,
        notes=notes,
    )
