"""Tests for repro.memory.hierarchy.MemoryHierarchy."""

import pytest

from repro.memory import HierarchyParams, MemoryHierarchy
from repro.memory.address import CacheGeometry
from repro.prefetchers import NextLinePrefetcher, NullPrefetcher
from repro.prefetchers.base import PrefetchRequest


def make_hierarchy(**overrides) -> MemoryHierarchy:
    return MemoryHierarchy(HierarchyParams(model_icache=False, **overrides))


def access(h, block, now=0.0, is_write=False, pc=0x1000):
    index = block & (h.params.l1d.sets - 1)
    tag = block >> h.params.l1d.index_bits
    return h.access(now, index, tag, block, is_write, pc)


class TestParams:
    def test_defaults_match_paper(self):
        p = HierarchyParams()
        assert p.l1d.sets == 1024 and p.l1d.ways == 1
        assert p.l2.sets == 4096 and p.l2.ways == 4
        assert p.memory_latency == 70
        assert p.mshr_entries == 64

    def test_block_size_constraint(self):
        with pytest.raises(ValueError):
            HierarchyParams(l2=CacheGeometry(1024 * 1024, 4, 16))


class TestDemandPath:
    def test_cold_miss_goes_to_memory(self):
        h = make_hierarchy()
        result = access(h, 0x1234)
        assert not result.l1_hit
        assert not result.l2_hit
        # at least command + L2 latency + memory latency
        assert result.completion > 70
        assert h.stats.l1_misses == 1
        assert h.stats.l2_demand_misses == 1

    def test_second_access_hits_l1(self):
        h = make_hierarchy()
        first = access(h, 0x1234)
        second = access(h, 0x1234, now=first.completion + 1)
        assert second.l1_hit
        assert second.completion == pytest.approx(
            first.completion + 1 + h.params.l1_hit_latency
        )
        assert h.stats.l1_hits == 1

    def test_l1_conflict_hits_l2(self):
        h = make_hierarchy()
        conflicting = 0x1234 + h.params.l1d.sets * 8  # same set, different tag
        t = access(h, 0x1234).completion
        t = access(h, conflicting, now=t + 1).completion
        result = access(h, 0x1234, now=t + 1)
        assert not result.l1_hit
        assert result.l2_hit  # still resident in the larger L2
        assert h.stats.l2_demand_hits >= 1

    def test_mshr_merges_same_block(self):
        h = make_hierarchy()
        access(h, 0x99, now=0.0)
        # second miss to the same block while the first is in flight
        h.l1d.invalidate(0x99 & 1023, 0x99 >> 10)
        access(h, 0x99, now=1.0)
        assert h.stats.mshr_merges == 1

    def test_sibling_l1_blocks_share_l2_block(self):
        h = make_hierarchy()
        t = access(h, 0x10).completion  # L1 block 0x10 -> L2 block 0x8
        result = access(h, 0x11, now=t + 1)
        assert not result.l1_hit
        assert result.l2_hit  # the 64B L2 block covers both 32B halves
        assert h.stats.l2_demand_misses == 1

    def test_dirty_eviction_writes_back(self):
        h = make_hierarchy()
        t = access(h, 0x50, is_write=True).completion
        conflicting = 0x50 + h.params.l1d.sets
        access(h, conflicting, now=t + 1)
        assert h.stats.writebacks_l1 == 1

    def test_ideal_l2_always_hits(self):
        h = make_hierarchy(ideal_l2=True)
        result = access(h, 0xABC)
        assert result.l2_hit
        assert h.stats.l2_demand_misses == 0
        assert result.completion < 70  # never pays memory latency


class TestPrefetchPath:
    def test_prefetch_fills_l2_not_l1(self):
        h = make_hierarchy()
        h.attach_prefetcher(NullPrefetcher())
        assert h.issue_prefetch(PrefetchRequest(0x40), 0.0)
        l2_block = 0x40 >> 1
        line = h.l2d.probe(l2_block & 4095, l2_block >> 12)
        assert line is not None and line.prefetched
        assert h.l1d.probe(0x40 & 1023, 0x40 >> 10) is None

    def test_redundant_prefetch_filtered(self):
        h = make_hierarchy()
        assert h.issue_prefetch(PrefetchRequest(0x40), 0.0)
        assert not h.issue_prefetch(PrefetchRequest(0x40), 500.0)
        assert h.stats.prefetch_redundant == 1

    def test_covered_demand_counts_prefetched_original(self):
        h = make_hierarchy()
        h.issue_prefetch(PrefetchRequest(0x40), 0.0)
        access(h, 0x40, now=500.0)
        assert h.stats.prefetched_original == 1
        assert h.stats.useful_prefetches == 1
        # second demand to the same L2 block is no longer "covered"
        h.l1d.invalidate(0x40 & 1023, 0x40 >> 10)
        access(h, 0x40, now=1000.0)
        assert h.stats.prefetched_original == 1

    def test_inflight_prefetch_merges_with_demand(self):
        h = make_hierarchy()
        h.issue_prefetch(PrefetchRequest(0x40), 0.0)
        # demand arrives before the prefetch data (fetch takes ~85 cycles)
        result = access(h, 0x40, now=10.0)
        assert h.stats.prefetched_original == 1
        assert result.completion >= 70  # waited for the in-flight fill

    def test_queue_limit_drops(self):
        h = make_hierarchy(max_outstanding_prefetches=2)
        assert h.issue_prefetch(PrefetchRequest(0x100), 0.0)
        assert h.issue_prefetch(PrefetchRequest(0x200), 0.0)
        assert not h.issue_prefetch(PrefetchRequest(0x300), 0.0)
        assert h.stats.prefetch_dropped_queue == 1

    def test_nextline_prefetcher_wired_through_misses(self):
        h = make_hierarchy()
        h.attach_prefetcher(NextLinePrefetcher(degree=1))
        access(h, 0x100)
        assert h.stats.prefetches_requested == 1
        # the prefetched sibling covers the next miss
        h2_block = 0x102 >> 1
        access(h, 0x102, now=500.0)

    def test_finalize_counts_residual_unused(self):
        h = make_hierarchy()
        h.issue_prefetch(PrefetchRequest(0x40), 0.0)
        h.finalize()
        assert h.stats.prefetch_residual_unused == 1

    def test_evicted_unused_prefetch_counts_extra(self):
        h = make_hierarchy()
        h.issue_prefetch(PrefetchRequest(0x40), 0.0)
        # fill the whole L2 set to evict the prefetched block
        l2_sets = h.params.l2.sets
        base_l2_block = 0x40 >> 1
        t = 100.0
        for way in range(1, 6):
            sibling_l1_block = (base_l2_block + way * l2_sets) << 1
            access(h, sibling_l1_block, now=t)
            t += 200.0
        assert h.stats.prefetch_evicted_unused == 1


class TestWarmupAccounting:
    def test_measured_stats_subtract_snapshot(self):
        h = make_hierarchy()
        access(h, 0x1)
        h.mark_warmup_end()
        access(h, 0x2, now=500.0)
        measured = h.measured_stats()
        assert measured.demand_accesses == 1
        assert h.stats.demand_accesses == 2

    def test_no_warmup_returns_full_stats(self):
        h = make_hierarchy()
        access(h, 0x1)
        assert h.measured_stats() is h.stats


class TestInstructionFetch:
    def test_sequential_fetch_free(self):
        h = MemoryHierarchy(HierarchyParams())
        first = h.instruction_fetch(0.0, 0x1000)
        again = h.instruction_fetch(50.0, 0x1004)  # same block
        assert first > 0  # cold I-miss
        assert again == 0.0

    def test_warm_icache_hits(self):
        h = MemoryHierarchy(HierarchyParams())
        h.instruction_fetch(0.0, 0x1000)
        h.instruction_fetch(200.0, 0x2000)
        penalty = h.instruction_fetch(400.0, 0x1000)
        assert penalty == 0.0
        assert h.stats.ifetch_misses == 2


class TestPrefetchInsertPolicy:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            HierarchyParams(prefetch_insert_policy="random")

    def test_lru_policy_prefetch_evicted_before_demand(self):
        h = make_hierarchy(prefetch_insert_policy="lru")
        # four demand blocks fill one L2 set (4-way)
        l2_sets = h.params.l2.sets
        base_l2_block = 0x40 >> 1
        t = 0.0
        demand_blocks = [(base_l2_block + way * l2_sets) << 1 for way in range(4)]
        for block in demand_blocks:
            t = access(h, block, now=t + 200).completion
        # prefetch a fifth block into the same set, then a demand sixth
        h.issue_prefetch(PrefetchRequest((base_l2_block + 4 * l2_sets) << 1), t + 200)
        access(h, (base_l2_block + 5 * l2_sets) << 1, now=t + 600)
        # the prefetched (unused) block was the eviction victim
        assert h.stats.prefetch_evicted_unused == 1

    def test_mru_policy_accepted(self):
        h = make_hierarchy(prefetch_insert_policy="mru")
        h.issue_prefetch(PrefetchRequest(0x40), 0.0)
        access(h, 0x40, now=500.0)
        assert h.stats.prefetched_original == 1
