"""Tests for repro.memory.mshr.MSHRFile."""

import pytest

from repro.memory.mshr import MSHRFile


class TestMSHR:
    def test_invalid_entry_count(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    def test_lookup_miss(self):
        mshr = MSHRFile(4)
        assert mshr.lookup(0x100, 0.0) is None
        assert mshr.merges == 0

    def test_merge_with_inflight(self):
        mshr = MSHRFile(4)
        mshr.register(0x100, 50.0)
        assert mshr.lookup(0x100, 10.0) == 50.0
        assert mshr.merges == 1

    def test_completed_entry_not_merged(self):
        mshr = MSHRFile(4)
        mshr.register(0x100, 50.0)
        assert mshr.lookup(0x100, 60.0) is None

    def test_acquire_free(self):
        mshr = MSHRFile(2)
        assert mshr.acquire(5.0) == 5.0
        assert mshr.full_stalls == 0

    def test_acquire_full_stalls_until_earliest(self):
        mshr = MSHRFile(2)
        mshr.register(1, 30.0)
        mshr.register(2, 40.0)
        start = mshr.acquire(10.0)
        assert start == 30.0
        assert mshr.full_stalls == 1

    def test_acquire_reaps_completed(self):
        mshr = MSHRFile(2)
        mshr.register(1, 30.0)
        mshr.register(2, 40.0)
        # at time 35 entry 1 has completed, so no stall
        assert mshr.acquire(35.0) == 35.0
        assert mshr.full_stalls == 0

    def test_outstanding(self):
        mshr = MSHRFile(4)
        mshr.register(1, 30.0)
        mshr.register(2, 40.0)
        assert mshr.outstanding(10.0) == 2
        assert mshr.outstanding(35.0) == 1
        assert mshr.outstanding(45.0) == 0

    def test_clear(self):
        mshr = MSHRFile(4)
        mshr.register(1, 30.0)
        mshr.lookup(1, 0.0)
        mshr.clear()
        assert mshr.outstanding(0.0) == 0
        assert mshr.merges == 0
        assert mshr.full_stalls == 0

    def test_occupancy_never_exceeds_capacity(self):
        mshr = MSHRFile(3)
        time = 0.0
        for block in range(20):
            start = mshr.acquire(time)
            mshr.register(block, start + 25.0)
            assert mshr.outstanding(start) <= 3
            time += 1.0

    def test_reregister_same_block_updates(self):
        mshr = MSHRFile(4)
        mshr.register(1, 30.0)
        mshr.register(1, 60.0)
        assert mshr.lookup(1, 40.0) == 60.0
