"""Trace persistence: save/load ``.npz`` traces, plus the trace cache.

Downstream users of the simulator often want to run the same trace
through many configurations, hand traces between machines, or feed in
traces captured from real programs (e.g. converted Pin/Valgrind logs).
This module defines the on-disk format:

* a numpy ``.npz`` archive with the five trace arrays (``addrs``,
  ``pcs``, ``is_load``, ``gaps``, ``deps``) — compressed for portable
  archives, *uncompressed* for cache entries so they can be
  memory-mapped;
* a JSON-encoded metadata entry (``meta``) carrying the trace name,
  its ILP parameter, and a format version for forward compatibility.

``save_trace``/``load_trace`` round-trip exactly; ``load_trace``
validates the arrays through the normal :class:`Trace` constructor, so
corrupt or inconsistent files fail loudly rather than simulating
garbage.  ``load_trace(..., mmap_mode="r")`` maps the archive's members
directly (numpy's ``np.load`` silently ignores ``mmap_mode`` for
``.npz``), so campaign workers reading the same cached trace share
pages instead of each materialising a private copy.

On top of the format sits the **on-disk trace cache** used by
:func:`repro.workloads.suite.generate`: spec-fingerprinted archives
under ``REPRO_TRACE_CACHE`` (defaulting next to the result store).  The
fingerprint covers the format version, the suite revision, the
benchmark's generator bytecode, and the access count, so editing a
generator invalidates its cached traces automatically; a corrupt or
mismatched entry is treated as a miss and regenerated — never loaded as
garbage.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import zipfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.util.locking import FileLock, LockTimeout
from repro.workloads.trace import Trace

__all__ = [
    "FORMAT_VERSION",
    "GENERATION_LOCK_TIMEOUT",
    "TRACE_CACHE_ENV",
    "cached_trace_path",
    "generation_lock",
    "load_cached_trace",
    "load_trace",
    "resolve_trace_cache",
    "save_trace",
    "spec_fingerprint",
    "store_cached_trace",
    "trace_cache_dir",
    "trace_cache_scope",
]

#: bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1

_REQUIRED_KEYS = ("addrs", "pcs", "is_load", "gaps", "deps", "meta")

#: the dtypes the archive stores; the mmap path hands these straight to
#: the Trace (no astype — a copy would defeat page sharing).
_ARRAY_DTYPES = {
    "addrs": np.uint64,
    "pcs": np.uint64,
    "is_load": np.bool_,
    "gaps": np.uint16,
    "deps": np.int32,
}


def save_trace(trace: Trace, path: Union[str, Path], compress: bool = True) -> Path:
    """Write ``trace`` to ``path`` (``.npz`` appended if missing).

    ``compress=False`` stores the members raw so :func:`load_trace` can
    memory-map them (the trace cache uses this; traces compress poorly
    anyway — the address streams are high-entropy).  Returns the path
    actually written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = json.dumps(
        {
            "version": FORMAT_VERSION,
            "name": trace.name,
            "base_ipc": trace.base_ipc,
            "accesses": len(trace),
            "instructions": trace.instruction_count,
        }
    )
    saver = np.savez_compressed if compress else np.savez
    saver(
        path,
        addrs=trace.addrs,
        pcs=trace.pcs,
        is_load=trace.is_load,
        gaps=trace.gaps,
        deps=trace.deps,
        meta=np.frombuffer(meta.encode("utf-8"), dtype=np.uint8),
    )
    return path


def _mmap_npz_arrays(
    path: Path,
) -> Tuple[Optional[Dict[str, np.ndarray]], Optional[bytes]]:
    """Memory-map the members of an *uncompressed* ``.npz`` archive.

    ``np.load(..., mmap_mode=...)`` silently ignores the request for
    ``.npz`` files, so this walks the zip directory itself: for each
    stored (ZIP_STORED) member it parses the local file header to find
    the ``.npy`` payload, reads the npy header, and maps the raw data
    with :func:`np.memmap`.  Returns ``(None, None)`` when any member
    is compressed — the caller falls back to an eager read — and raises
    ``ValueError`` on a structurally corrupt archive.
    """
    arrays: Dict[str, np.ndarray] = {}
    meta_bytes: Optional[bytes] = None
    try:
        archive = zipfile.ZipFile(path)
    except zipfile.BadZipFile as exc:
        raise ValueError(f"{path} is corrupt: {exc}") from exc
    with archive:
        infos = archive.infolist()
        if any(info.compress_type != zipfile.ZIP_STORED for info in infos):
            return None, None
        with path.open("rb") as handle:
            for info in infos:
                # The central directory gives the *local header* offset;
                # the payload starts after the fixed 30-byte header plus
                # the member name and extra field (lengths at 26 and 28).
                handle.seek(info.header_offset)
                local = handle.read(30)
                if len(local) != 30 or local[:4] != b"PK\x03\x04":
                    raise ValueError(
                        f"{path}: corrupt local header for member {info.filename!r}"
                    )
                name_len = int.from_bytes(local[26:28], "little")
                extra_len = int.from_bytes(local[28:30], "little")
                handle.seek(info.header_offset + 30 + name_len + extra_len)
                version = np.lib.format.read_magic(handle)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
                else:
                    raise ValueError(
                        f"{path}: unsupported npy format version {version}"
                    )
                key = info.filename
                if key.endswith(".npy"):
                    key = key[:-4]
                if key == "meta":
                    handle.seek(info.header_offset + 30 + name_len + extra_len)
                    meta_bytes = bytes(np.lib.format.read_array(handle))
                    continue
                arrays[key] = np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    shape=shape,
                    offset=handle.tell(),
                    order="F" if fortran else "C",
                )
    return arrays, meta_bytes


def _build_trace(path: Path, arrays: Dict[str, Any], meta_raw: bytes) -> Trace:
    """Validate metadata and assemble the :class:`Trace` (shared tail)."""
    meta = json.loads(meta_raw.decode("utf-8"))
    version = meta.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path} has trace-format version {version}; this library "
            f"reads version {FORMAT_VERSION}"
        )
    columns = {}
    for key, dtype in _ARRAY_DTYPES.items():
        column = arrays[key]
        # astype copies; skip it when the archive already stores the
        # canonical dtype (always true for our own files) so a mapped
        # column stays a shared mapping.
        if column.dtype != dtype:
            column = column.astype(dtype)
        columns[key] = column
    trace = Trace(
        name=str(meta["name"]),
        addrs=columns["addrs"],
        pcs=columns["pcs"],
        is_load=columns["is_load"],
        gaps=columns["gaps"],
        deps=columns["deps"],
        base_ipc=float(meta["base_ipc"]),
    )
    declared = meta.get("accesses")
    if declared is not None and declared != len(trace):
        raise ValueError(
            f"{path} declares {declared} accesses but contains {len(trace)}"
        )
    return trace


def load_trace(path: Union[str, Path], mmap_mode: Optional[str] = None) -> Trace:
    """Read a trace written by :func:`save_trace`.

    With ``mmap_mode="r"`` (the only supported mode) the arrays of an
    uncompressed archive are memory-mapped read-only — concurrent
    processes loading the same file share the pages; a compressed
    archive silently falls back to an eager read.  Raises
    :class:`ValueError` on a corrupt or truncated archive, missing
    arrays, version mismatch, or any inconsistency the :class:`Trace`
    constructor detects.
    """
    path = Path(path)
    if mmap_mode not in (None, "r"):
        raise ValueError(f"mmap_mode must be None or 'r', got {mmap_mode!r}")
    if mmap_mode == "r":
        arrays, meta_raw = _mmap_npz_arrays(path)
        if arrays is not None:
            missing = [
                key for key in _REQUIRED_KEYS
                if key != "meta" and key not in arrays
            ]
            if missing or meta_raw is None:
                missing += ["meta"] if meta_raw is None else []
                raise ValueError(f"{path} is not a trace file (missing {missing})")
            return _build_trace(path, arrays, meta_raw)
    try:
        with np.load(path) as archive:
            missing = [key for key in _REQUIRED_KEYS if key not in archive.files]
            if missing:
                raise ValueError(f"{path} is not a trace file (missing {missing})")
            meta_raw = bytes(archive["meta"])
            arrays = {key: archive[key] for key in _ARRAY_DTYPES}
    except zipfile.BadZipFile as exc:
        raise ValueError(f"{path} is corrupt: {exc}") from exc
    return _build_trace(path, arrays, meta_raw)


# ----------------------------------------------------------------------
# The on-disk trace cache
# ----------------------------------------------------------------------

TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

#: environment values that mean "cache disabled".
_DISABLED_VALUES = frozenset({"", "0", "off", "none", "no", "false"})

_UNSET = object()

#: process-level override installed by :func:`trace_cache_scope`
#: (campaigns use it so fork children inherit the setting without
#: re-reading the environment).
_CACHE_OVERRIDE: Any = _UNSET


def _dir_from_env() -> Optional[Path]:
    env = os.environ.get(TRACE_CACHE_ENV)
    if env is None or env.strip().lower() in _DISABLED_VALUES:
        return None
    return Path(env)


def trace_cache_dir() -> Optional[Path]:
    """The active trace-cache directory, or ``None`` when disabled.

    Plain :func:`~repro.workloads.suite.generate` calls only cache when
    a directory is configured — via :func:`trace_cache_scope` (what
    campaigns install) or ``REPRO_TRACE_CACHE`` — so ad-hoc use stays
    hermetic by default.
    """
    if _CACHE_OVERRIDE is not _UNSET:
        return _CACHE_OVERRIDE
    return _dir_from_env()


def resolve_trace_cache(requested: Union[None, bool, str, Path] = None) -> Optional[Path]:
    """Map a campaign's ``trace_cache`` argument onto a directory.

    ``False`` disables the cache, a path selects that directory, and
    ``None`` defers to the active scope/environment — defaulting, for
    campaigns, to a ``traces/`` directory next to the result store
    (:func:`repro.sim.store.default_trace_cache_dir`).
    """
    if requested is False:
        return None
    if requested not in (None, True):
        return Path(requested)
    if _CACHE_OVERRIDE is not _UNSET:
        return _CACHE_OVERRIDE
    if TRACE_CACHE_ENV in os.environ:
        return _dir_from_env()
    from repro.sim.store import default_trace_cache_dir  # lazy: avoid cycle

    return default_trace_cache_dir()


@contextmanager
def trace_cache_scope(root: Optional[Union[str, Path]]) -> Iterator[Optional[Path]]:
    """Pin the trace cache to ``root`` (``None`` = disabled) for a scope.

    Both the process override and ``REPRO_TRACE_CACHE`` are set — the
    override serves this process and its fork children, the environment
    variable serves spawn-mode children — and both are restored on exit.
    """
    global _CACHE_OVERRIDE
    root = Path(root) if root is not None else None
    previous_override = _CACHE_OVERRIDE
    previous_env = os.environ.get(TRACE_CACHE_ENV)
    _CACHE_OVERRIDE = root
    os.environ[TRACE_CACHE_ENV] = "off" if root is None else str(root)
    try:
        yield root
    finally:
        _CACHE_OVERRIDE = previous_override
        if previous_env is None:
            os.environ.pop(TRACE_CACHE_ENV, None)
        else:
            os.environ[TRACE_CACHE_ENV] = previous_env


def _maybe_io_fault(op_key: str, attempt: int = 1) -> Optional[str]:
    """Injected I/O fault for this cache write, if any (test/CI knob)."""
    # imported lazily: workloads must not depend on the sim layer at
    # import time (sim.store imports this module's siblings)
    from repro.sim.resilience import maybe_inject_io_fault

    return maybe_inject_io_fault(op_key, attempt)


#: bound on waiting for another process to finish generating a trace.
#: Generation of the largest scales takes minutes, so this is long; on
#: timeout the waiter generates the trace itself (duplicate work is
#: safe — entries are content-fingerprinted and replaced atomically).
GENERATION_LOCK_TIMEOUT = 600.0


@contextmanager
def generation_lock(
    name: str, accesses: int, root: Union[None, str, Path] = None
) -> Iterator[bool]:
    """Single-flight lock for generating ``(name, accesses)``'s entry.

    N pool workers that all miss on the same trace would each burn
    minutes generating identical arrays; under this lock the first
    generates while the rest block, then re-check the cache and hit.
    Yields True when the lock was acquired — the caller should re-check
    the cache before generating — and False when locking is unavailable
    or timed out, in which case generating anyway is correct, just
    possibly duplicated.
    """
    root = Path(root) if root is not None else trace_cache_dir()
    if root is None:
        yield False
        return
    lock = FileLock(
        root / f".{name}-{int(accesses)}.genlock", timeout=GENERATION_LOCK_TIMEOUT
    )
    try:
        lock.acquire(exclusive=True)
        acquired = True
    except (LockTimeout, OSError):
        acquired = False
    try:
        yield acquired
    finally:
        lock.release()


def spec_fingerprint(name: str, accesses: int) -> str:
    """Fingerprint of everything that determines a generated trace.

    Covers the archive format version, the suite's declared
    ``TRACE_REVISION``, the benchmark name and access count, its base
    IPC, and a hash of the generator function's bytecode and constants
    — so editing a generator (logic *or* tuning constants) invalidates
    its cache entries without anyone remembering to bump a counter.
    Kernel-level changes that only show through called helpers are what
    ``TRACE_REVISION`` exists for.
    """
    from repro.workloads import suite  # lazy: suite imports this module

    hasher = hashlib.sha256()
    hasher.update(
        f"{FORMAT_VERSION}|{suite.TRACE_REVISION}|{name}|{int(accesses)}|".encode()
    )
    spec = suite.SUITE.get(name)
    if spec is not None:
        code = spec.build.__code__
        hasher.update(code.co_code)
        hasher.update(repr(code.co_consts).encode())
        hasher.update(f"|{spec.base_ipc}".encode())
    return hasher.hexdigest()[:16]


def cached_trace_path(name: str, accesses: int, root: Union[str, Path]) -> Path:
    """Where the cache entry for ``(name, accesses)`` lives under ``root``."""
    return Path(root) / f"{name}-{int(accesses)}-{spec_fingerprint(name, accesses)}.npz"


def store_cached_trace(
    trace: Trace,
    name: str,
    accesses: int,
    root: Union[None, str, Path] = None,
) -> Optional[Path]:
    """Write one cache entry atomically; best-effort (``None`` on failure).

    Entries are written uncompressed (mappable) to a pid-unique
    temporary file and renamed into place, so concurrent writers and
    readers never see a half-written archive.
    """
    root = Path(root) if root is not None else trace_cache_dir()
    if root is None:
        return None
    path = cached_trace_path(name, accesses, root)
    tmp = root / f".{path.stem}.{os.getpid()}.tmp.npz"
    fault = _maybe_io_fault(f"trace-cache|{path.name}")
    try:
        root.mkdir(parents=True, exist_ok=True)
        if fault == "io-enospc":
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        if fault == "io-eio":
            raise OSError(errno.EIO, "injected: input/output error")
        save_trace(trace, tmp, compress=False)
        if fault == "io-torn":
            # a crash mid-write: the published archive is truncated, so
            # the next load_cached_trace treats it as a miss and rebuilds
            with tmp.open("r+b") as handle:
                handle.truncate(max(tmp.stat().st_size // 2, 1))
        os.replace(tmp, path)
        return path
    except OSError:
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.counter("trace_cache.write_failures").inc()
        try:
            tmp.unlink()
        except OSError:
            pass
        return None


def load_cached_trace(
    name: str,
    accesses: int,
    root: Union[None, str, Path] = None,
) -> Optional[Trace]:
    """Fetch one cache entry, memory-mapped; ``None`` on any miss.

    A fingerprint mismatch is simply a different filename (a miss); a
    truncated, corrupt, or version-mismatched archive — anything
    :func:`load_trace` rejects — is also treated as a miss so the
    caller regenerates instead of simulating garbage.
    """
    root = Path(root) if root is not None else trace_cache_dir()
    if root is None:
        return None
    path = cached_trace_path(name, accesses, root)
    if not path.exists():
        return None
    try:
        trace = load_trace(path, mmap_mode="r")
    except Exception:
        return None
    # Generators emit whole kernel chunks, so the realised length is
    # only approximately the requested count — the fingerprint in the
    # filename (generator bytecode + requested accesses) is what pins
    # the entry to this request; the name check catches hand-renamed
    # files.
    if trace.name != name:
        return None
    return trace
