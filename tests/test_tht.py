"""Tests for repro.core.tht.TagHistoryTable."""

import pytest

from repro.core.tht import TagHistoryTable


class TestTHT:
    def test_paper_configuration_size(self):
        # 1024 rows x 2 tags x 2 bytes = 4KB (the paper's THT formula).
        tht = TagHistoryTable(1024, 2)
        assert tht.storage_bytes() == 4096

    def test_initial_rows_are_zero(self):
        tht = TagHistoryTable(4, 3)
        assert tht.read(0) == (0, 0, 0)

    def test_push_shifts_oldest_out(self):
        tht = TagHistoryTable(4, 2)
        assert tht.push(1, 0xA) == (0, 0xA)
        assert tht.push(1, 0xB) == (0xA, 0xB)
        assert tht.push(1, 0xC) == (0xB, 0xC)
        assert tht.read(1) == (0xB, 0xC)

    def test_rows_are_independent(self):
        tht = TagHistoryTable(4, 2)
        tht.push(0, 1)
        tht.push(1, 2)
        assert tht.read(0) == (0, 1)
        assert tht.read(1) == (0, 2)

    def test_read_returns_copy(self):
        tht = TagHistoryTable(4, 2)
        sequence = tht.read(0)
        assert isinstance(sequence, tuple)  # immutable view

    def test_reset(self):
        tht = TagHistoryTable(4, 2)
        tht.push(0, 5)
        tht.reset()
        assert tht.read(0) == (0, 0)

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            TagHistoryTable(3, 2)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            TagHistoryTable(4, 0)

    def test_invalid_tag_bytes(self):
        with pytest.raises(ValueError):
            TagHistoryTable(4, 2, 0)

    def test_depth_one(self):
        tht = TagHistoryTable(2, 1)
        tht.push(0, 9)
        assert tht.read(0) == (9,)
