"""Regenerate Figure 13: PHT size sweep and miss-index-bit sweep.

This is the most expensive bench (16 configurations x the suite); at
the default quick scale it completes in around a minute.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig13_pht_design_sweeps(benchmark, scale, strict):
    result = run_once(benchmark, run_experiment, "fig13", scale)
    print()
    print(result.render())

    shared = result.series["shared_pht_ipc"]
    bits = result.series["index_bits_ipc"]
    assert len(shared) == 7
    assert len(bits) == 4
    assert all(value > 0 for value in shared.values())

    if strict:
        # Growing the shared PHT never hurts meaningfully...
        assert shared["8KB"] >= shared["2KB"] * 0.995
        assert shared["8192KB"] >= shared["8KB"] * 0.99
        # ...but the paper's knee: most of the 2KB->8MB gain arrives by 8KB.
        total_gain = shared["8192KB"] - shared["2KB"]
        by_8k = shared["8KB"] - shared["2KB"]
        if total_gain > 0.01:
            assert by_8k >= 0.4 * total_gain, (by_8k, total_gain)
        # Index bits: 0 and 1 comparable; 3 bits no better than 0
        # (sub-tables too small, the paper's degradation).
        assert bits["1"] >= bits["0"] * 0.97
        assert bits["3"] <= bits["0"] * 1.02
