"""Reading side of the span trace: validate, pair, summarize.

The writing side (:mod:`repro.obs.spans`) emits ``repro-tcp/obs/v1``
JSONL events; this module consumes them:

* :func:`validate_event` / :func:`iter_events` — strict per-line schema
  validation (the CI ``obs-smoke`` job runs every emitted line through
  it; a malformed line is a bug, not noise).
* :func:`pair_spans` — match ``begin``/``end`` events into closed
  spans, surfacing dangling begins explicitly.
* :func:`summarize` — the per-stage wall-clock breakdown behind the
  ``repro-tcp trace summarize`` CLI: wall time, per-stage totals over
  *leaf* spans (leaves partition busy time without double-counting
  their parents), coverage (leaf time / wall — can exceed 1 under
  parallelism), the top-N slowest spans, and abort counts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.obs.spans import SCHEMA

__all__ = [
    "iter_events",
    "load_events",
    "pair_spans",
    "render_summary",
    "summarize",
    "validate_event",
]

_STATUSES = frozenset({"ok", "error", "aborted"})


def validate_event(event: Any) -> Dict[str, Any]:
    """Check one decoded event against the ``repro-tcp/obs/v1`` schema.

    Returns the event on success; raises ``ValueError`` naming the
    first violated constraint otherwise.
    """
    if not isinstance(event, dict):
        raise ValueError("event is not an object")
    if event.get("schema") != SCHEMA:
        raise ValueError(f"schema is {event.get('schema')!r}, expected {SCHEMA!r}")
    kind = event.get("ev")
    if kind not in ("begin", "end", "metrics"):
        raise ValueError(f"ev is {kind!r}, expected begin/end/metrics")
    t = event.get("t")
    if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
        raise ValueError(f"t is {t!r}, expected a non-negative number")
    name = event.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"name is {name!r}, expected a non-empty string")
    if kind in ("begin", "end"):
        span_id = event.get("span")
        if not isinstance(span_id, str) or not span_id:
            raise ValueError(f"span is {span_id!r}, expected a non-empty string")
    if kind == "begin":
        parent = event.get("parent")
        if parent is not None and not isinstance(parent, str):
            raise ValueError(f"parent is {parent!r}, expected a string or null")
    if kind == "end":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
            raise ValueError(f"dur is {dur!r}, expected a non-negative number")
        status = event.get("status")
        if status not in _STATUSES:
            raise ValueError(
                f"status is {status!r}, expected one of {sorted(_STATUSES)}"
            )
    if kind == "metrics" and not isinstance(event.get("metrics"), dict):
        raise ValueError("metrics event is missing its metrics object")
    return event


def iter_events(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield validated events from a trace file; loud on any bad line."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                event = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            try:
                yield validate_event(event)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc


def load_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    return list(iter_events(path))


def pair_spans(
    events: Iterable[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Match begins to ends; return ``(closed spans, dangling begins)``.

    Each closed span is ``{"span", "name", "pid", "parent", "begin_t",
    "end_t", "dur", "status", "synthesized", "attrs"}`` where ``attrs``
    carries any extra keys from the begin event (workload, config,
    job key…).  An end without a begin raises — that trace is corrupt,
    not merely incomplete.
    """
    known = {
        "schema", "ev", "span", "name", "t", "pid", "parent", "dur", "status",
        "synthesized",
    }
    begins: Dict[str, Dict[str, Any]] = {}
    closed: List[Dict[str, Any]] = []
    for event in events:
        kind = event.get("ev")
        if kind == "begin":
            begins[event["span"]] = event
        elif kind == "end":
            begin = begins.pop(event["span"], None)
            if begin is None:
                raise ValueError(
                    f"end event for span {event['span']!r} has no begin"
                )
            closed.append(
                {
                    "span": event["span"],
                    "name": begin["name"],
                    "pid": begin.get("pid"),
                    "parent": begin.get("parent"),
                    "begin_t": begin["t"],
                    "end_t": event["t"],
                    "dur": event["dur"],
                    "status": event.get("status", "ok"),
                    "synthesized": bool(event.get("synthesized", False)),
                    "attrs": {
                        k: v for k, v in begin.items() if k not in known
                    },
                }
            )
    return closed, list(begins.values())


def summarize(
    events: Iterable[Dict[str, Any]], top: int = 5
) -> Dict[str, Any]:
    """Per-stage breakdown of a trace (the ``trace summarize`` payload).

    ``wall`` is the duration of the unique root span when there is
    exactly one (a campaign trace's ``campaign`` span), else the
    wall-clock extent of all events.  ``stages`` aggregates *leaf*
    spans by name — leaves partition busy time, so their total is
    directly comparable to ``wall`` (``coverage`` = leaf total /
    wall; >1 means parallelism).
    """
    events = list(events)
    closed, dangling = pair_spans(events)
    parents = {s["parent"] for s in closed if s["parent"] is not None}
    roots = [s for s in closed if s["parent"] is None]
    leaves = [s for s in closed if s["span"] not in parents]

    if events:
        t_min = min(e["t"] for e in events)
        t_max = max(e["t"] for e in events)
        extent = t_max - t_min
    else:
        extent = 0.0
    wall = roots[0]["dur"] if len(roots) == 1 else extent

    stages: Dict[str, Dict[str, Any]] = {}
    for leaf in leaves:
        stage = stages.setdefault(
            leaf["name"], {"count": 0, "total": 0.0, "max": 0.0}
        )
        stage["count"] += 1
        stage["total"] += leaf["dur"]
        if leaf["dur"] > stage["max"]:
            stage["max"] = leaf["dur"]
    for stage in stages.values():
        stage["mean"] = stage["total"] / stage["count"]
    leaf_total = sum(s["total"] for s in stages.values())

    non_roots = [s for s in closed if s["parent"] is not None] or closed
    slowest = sorted(non_roots, key=lambda s: s["dur"], reverse=True)[:top]
    metrics_events = sum(1 for e in events if e.get("ev") == "metrics")

    return {
        "schema": SCHEMA,
        "events": len(events),
        "spans": len(closed),
        "dangling": len(dangling),
        "aborted": sum(1 for s in closed if s["status"] == "aborted"),
        "errors": sum(1 for s in closed if s["status"] == "error"),
        "metrics_events": metrics_events,
        "pids": len({e.get("pid") for e in events}),
        "wall": wall,
        "stage_total": leaf_total,
        "coverage": (leaf_total / wall) if wall > 0 else 0.0,
        "stages": dict(
            sorted(stages.items(), key=lambda kv: kv[1]["total"], reverse=True)
        ),
        "slowest": [
            {
                "name": s["name"],
                "dur": s["dur"],
                "pid": s["pid"],
                "status": s["status"],
                "attrs": s["attrs"],
            }
            for s in slowest
        ],
    }


def render_summary(summary: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`summarize` payload."""
    lines = [
        f"trace: {summary['events']} events, {summary['spans']} spans "
        f"({summary['pids']} process(es), "
        f"{summary['metrics_events']} metrics snapshot(s))",
        f"wall:  {summary['wall']:.3f}s   stage total: "
        f"{summary['stage_total']:.3f}s   coverage: {summary['coverage']:.1%}",
    ]
    if summary["dangling"] or summary["aborted"] or summary["errors"]:
        lines.append(
            f"health: {summary['dangling']} dangling, "
            f"{summary['aborted']} aborted, {summary['errors']} errored"
        )
    if summary["stages"]:
        lines.append("per-stage breakdown:")
        width = max(len(name) for name in summary["stages"])
        for name, stage in summary["stages"].items():
            share = stage["total"] / summary["wall"] if summary["wall"] > 0 else 0.0
            lines.append(
                f"  {name:<{width}}  {stage['total']:8.3f}s  "
                f"{share:6.1%}  x{stage['count']}  "
                f"mean {stage['mean']:.3f}s  max {stage['max']:.3f}s"
            )
    if summary["slowest"]:
        lines.append(f"slowest {len(summary['slowest'])} span(s):")
        for entry in summary["slowest"]:
            attrs = entry["attrs"]
            detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            suffix = f"  [{detail}]" if detail else ""
            status = "" if entry["status"] == "ok" else f"  ({entry['status']})"
            lines.append(
                f"  {entry['dur']:8.3f}s  {entry['name']}{suffix}{status}"
            )
    return "\n".join(lines)
