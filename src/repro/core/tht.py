"""The Tag History Table (first level of the TCP, Figure 8).

The THT has one row per L1 data-cache set, indexed directly by the miss
index so lookup can proceed in parallel with the L1 lookup itself.
Each row stores the last ``k`` miss tags observed at that set, oldest
first.  THT size is ``rows × k × tag_bytes`` (the paper's formula in
Section 4); the evaluated design uses ``k = 2``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.util.bitops import index_geometry, is_power_of_two

__all__ = ["TagHistoryTable"]


class TagHistoryTable:
    """Per-set shift registers of recent miss tags."""

    def __init__(self, rows: int, depth: int, tag_bytes: int = 2) -> None:
        if not is_power_of_two(rows):
            raise ValueError(f"THT row count must be a power of two, got {rows}")
        if depth <= 0:
            raise ValueError(f"THT depth (k) must be positive, got {depth}")
        if tag_bytes <= 0:
            raise ValueError(f"tag storage width must be positive, got {tag_bytes}")
        self.rows = rows
        self.depth = depth
        self.tag_bytes = tag_bytes
        #: bits in a row index == the L1's index_bits (one row per set).
        self.index_bits = index_geometry(rows)[0]
        # Row storage: a list of tuples; row i holds (tag1..tagk),
        # index 0 oldest.  Tuples, not lists: ``read`` then returns the
        # row itself with no per-call copy, and a shift builds exactly
        # one new object.  Initialised to zeros, matching cold hardware.
        self._history: List[Tuple[int, ...]] = [(0,) * depth for _ in range(rows)]
        #: observation counters (per-miss cadence, plain int adds).
        self.reads = 0
        self.pushes = 0

    def read(self, index: int) -> Tuple[int, ...]:
        """Return the tag sequence at ``index`` (oldest first)."""
        self.reads += 1
        return self._history[index]

    def push(self, index: int, tag: int) -> Tuple[int, ...]:
        """Shift ``tag`` into row ``index``; return the NEW sequence.

        This is the THT half of the paper's update operation: the row
        ``(tag1 .. tagk)`` becomes ``(tag2 .. tagk, miss_tag)``,
        establishing the miss tag as the most recent history.
        """
        self.pushes += 1
        history = self._history
        row = history[index][1:] + (tag,)
        history[index] = row
        return row

    def occupancy(self) -> float:
        """Fraction of rows holding any non-cold history (a full scan —
        observers call this at end of run, never per access)."""
        cold = (0,) * self.depth
        touched = sum(1 for row in self._history if row != cold)
        return touched / self.rows

    def compose_block(self, tag: int, index: int) -> int:
        """Rebuild an L1 block address number from a predicted tag.

        The THT is the component that fixes the tag/index split (one
        row per L1 set), so it owns the recombination every TCP variant
        performs after a PHT prediction: ``(tag << index_bits) | index``.
        """
        return (tag << self.index_bits) | index

    def storage_bytes(self) -> int:
        """Hardware budget: rows × k × bytes-per-tag."""
        return self.rows * self.depth * self.tag_bytes

    def reset(self) -> None:
        """Zero all rows (and the observation counters)."""
        history = self._history
        cold = (0,) * self.depth
        for index in range(self.rows):
            history[index] = cold
        self.reads = 0
        self.pushes = 0

    def __repr__(self) -> str:
        return (
            f"TagHistoryTable(rows={self.rows}, k={self.depth}, "
            f"{self.storage_bytes()}B)"
        )
