"""Regenerate Figure 12: the three categories of L2 accesses."""

import pytest
from conftest import run_once

from repro.experiments import run_experiment


def test_fig12_l2_access_categories(benchmark, scale, strict):
    result = run_once(benchmark, run_experiment, "fig12", scale)
    print()
    print(result.render())

    for label in ("tcp-8k", "tcp-8m"):
        covered = result.series[f"{label}:prefetched_original"]
        uncovered = result.series[f"{label}:non_prefetched_original"]
        extra = result.series[f"{label}:prefetched_extra"]
        for name in covered:
            # The two original categories always partition the demand
            # accesses (100% total), and extra is non-negative.
            assert covered[name] + uncovered[name] == pytest.approx(100.0, abs=0.1)
            assert extra[name] >= 0.0

    if strict:
        covered_8k = result.series["tcp-8k:prefetched_original"]
        # Where Figure 11 shows big TCP-8K wins, coverage must be
        # substantial; where it shows nothing, coverage must be small.
        assert covered_8k["lucas"] > 30.0
        assert covered_8k["twolf"] < 20.0
