"""The reference backend: the interpreted per-access loop.

A thin adapter over :class:`repro.cpu.OutOfOrderCore` — the engine
path PR 3 carved out and the 156-run oracle froze.  Every other
backend is defined as "bit-identical to this one"; it is also the
fallback for configurations the vector backend does not cover (see
:mod:`repro.backend.vector`).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.backend.base import Backend
from repro.cpu.core import CoreParams, CoreResult, OutOfOrderCore
from repro.engine.probes import Probe
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.trace import Trace

__all__ = ["PythonBackend"]


class PythonBackend(Backend):
    """Bit-exact reference: one interpreted step per access."""

    name = "python"

    def run(
        self,
        trace: Trace,
        hierarchy: MemoryHierarchy,
        params: CoreParams,
        warmup: int = 0,
        probes: Optional[Sequence[Probe]] = None,
    ) -> CoreResult:
        core = OutOfOrderCore(params)
        return core.run(trace, hierarchy, warmup=warmup, probes=probes)
