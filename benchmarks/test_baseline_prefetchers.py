"""Related-work baseline comparison (the paper's Section 7 cast).

Next-line, stride (Baer & Chen), stream buffers (Jouppi), Markov
(Joseph & Grunwald), DBCP (Lai et al.), and TCP, on three contrasting
workloads.  Not a paper figure per se, but the sanity frame around
Figure 11: each simple prefetcher wins its own niche, while TCP covers
the correlated patterns at a tiny budget.
"""

from conftest import run_once

from repro.sim import SimulationConfig, simulate
from repro.util.tables import format_table

WORKLOADS = ("swim", "mcf", "twolf")
PREFETCHERS = ("nextline", "stride", "stream", "markov", "dbcp-2m", "tcp-8k")


def test_baseline_prefetcher_comparison(benchmark, scale, strict):
    def study():
        rows = []
        for workload in WORKLOADS:
            base = simulate(workload, SimulationConfig.baseline(), scale)
            for name in PREFETCHERS:
                result = simulate(workload, SimulationConfig.for_prefetcher(name), scale)
                rows.append(
                    [
                        workload,
                        name,
                        result.improvement_over(base),
                        result.prefetcher_storage_bytes / 1024.0,
                    ]
                )
        return rows

    rows = run_once(benchmark, study)
    print()
    print(format_table(
        ["workload", "prefetcher", "IPC gain %", "budget KB"],
        rows,
        title="Baseline prefetcher comparison",
    ))

    gains = {(row[0], row[1]): row[2] for row in rows}
    budgets = {row[1]: row[3] for row in rows}
    # Budget ordering is structural, not statistical: TCP-8K is tiny.
    assert budgets["tcp-8k"] < 16
    assert budgets["dbcp-2m"] == 2048
    assert budgets["markov"] > budgets["tcp-8k"]
    if strict:
        # Sequential/strided hardware loves swim...
        assert gains[("swim", "stream")] > 0 or gains[("swim", "stride")] > 0
        # ...nothing rescues the random-probe workload by much...
        assert abs(gains[("twolf", "tcp-8k")]) < 10
        # ...and TCP must be competitive on the regular sweeps.
        assert gains[("swim", "tcp-8k")] > 0
