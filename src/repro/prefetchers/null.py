"""The no-op prefetcher: the experimental baseline.

Attaching :class:`NullPrefetcher` is equivalent to attaching nothing,
but keeps the simulator code path identical across configurations so
baseline and prefetching runs differ only in predictions, never in
bookkeeping.
"""

from __future__ import annotations

from typing import List

from repro.prefetchers.base import MissEvent, Prefetcher, PrefetchRequest

__all__ = ["NullPrefetcher"]


class NullPrefetcher(Prefetcher):
    """Observes misses and never prefetches."""

    def __init__(self) -> None:
        super().__init__("none")

    def observe_miss(self, miss: MissEvent) -> List[PrefetchRequest]:
        self.stats.lookups += 1
        return []

    def storage_bytes(self) -> int:
        return 0
