"""Occupancy-based bus contention model.

The paper stresses that "contention can have important influence on
performance" and incorporates detailed bus models at the L1/L2 and
memory buses (Section 2); Section 5.2.2 further adds a *dedicated*
L1/L2 prefetch bus for the hybrid prefetcher because demand traffic
would otherwise starve prefetches.

This model captures the first-order effect: a bus is a serially-reused
resource, so each transfer occupies it for ``beats`` cycles and later
requests queue behind earlier ones.  ``request`` returns when the
transfer starts; the caller adds the queuing delay to its latency.

Widths are expressed in bytes-per-cycle, so a 32-byte-wide bus clocked
at the core frequency (Table 1) moves a 32 B L1 block in one beat and a
64 B L2 block in two.
"""

from __future__ import annotations

from repro.engine.component import Component
from repro.engine.events import MemoryEvent

__all__ = ["Bus"]


class Bus(Component):
    """A single shared bus with FIFO arbitration.

    Parameters
    ----------
    name:
        Label for statistics output.
    bytes_per_cycle:
        Transfer bandwidth; a request for N bytes occupies the bus for
        ``ceil(N / bytes_per_cycle)`` cycles (minimum 1: even a command
        with no payload takes a beat for arbitration).
    """

    __slots__ = ("name", "bytes_per_cycle", "next_free", "busy_cycles", "transfers", "queued_cycles")

    def __init__(self, name: str, bytes_per_cycle: int) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError(f"bus width must be positive, got {bytes_per_cycle}")
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.next_free = 0.0
        self.busy_cycles = 0.0
        self.transfers = 0
        self.queued_cycles = 0.0

    def beats(self, payload_bytes: int) -> int:
        """Cycles a ``payload_bytes`` transfer occupies the bus."""
        if payload_bytes <= 0:
            return 1
        return -(-payload_bytes // self.bytes_per_cycle)  # ceil division

    def access(self, event: MemoryEvent) -> float:
        """Component entry point: arbitrate one command beat.

        An event with no stated payload occupies the bus for a single
        arbitration beat (the same convention ``beats(0)`` uses); the
        outcome is the transfer start time.
        """
        return self.request(event.now, 0)

    def request(self, now: float, payload_bytes: int) -> float:
        """Schedule a transfer arriving at ``now``; return its start time.

        The transfer starts at ``max(now, next_free)`` and holds the bus
        for ``beats(payload_bytes)`` cycles.  Queuing delay is recorded
        in ``queued_cycles`` for the occupancy statistics.
        """
        if payload_bytes <= 0:
            beats = 1
        else:
            beats = -(-payload_bytes // self.bytes_per_cycle)
        start = now if now > self.next_free else self.next_free
        self.next_free = start + beats
        self.busy_cycles += beats
        self.queued_cycles += start - now
        self.transfers += 1
        return start

    def transfer(self, now: float, payload_bytes: int) -> float:
        """Schedule a transfer arriving at ``now``; return when it ENDS.

        Identical scheduling to :meth:`request` (``request(now, n) +
        beats(n)``), fused so the common fetch/writeback pattern pays
        one call instead of two.
        """
        if payload_bytes <= 0:
            beats = 1
        else:
            beats = -(-payload_bytes // self.bytes_per_cycle)
        start = now if now > self.next_free else self.next_free
        self.next_free = start + beats
        self.busy_cycles += beats
        self.queued_cycles += start - now
        self.transfers += 1
        return start + beats

    def occupancy(self, elapsed_cycles: float) -> float:
        """Fraction of ``elapsed_cycles`` the bus spent transferring."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)

    def reset(self) -> None:
        """Clear all scheduling state and statistics."""
        self.next_free = 0.0
        self.busy_cycles = 0.0
        self.transfers = 0
        self.queued_cycles = 0.0

    def __repr__(self) -> str:
        return f"Bus({self.name}, {self.bytes_per_cycle}B/cycle, {self.transfers} transfers)"
