"""Worker supervision for fault-tolerant simulation campaigns.

A full regeneration of the paper's evaluation is ~150 independent
(workload, configuration) simulations.  At that scale, "one worker
died" must mean "one job retries", not "the whole pool is lost" — the
failure mode real SPEC-campaign infrastructure is built around.

This module provides the campaign resilience primitives:

* a structured error taxonomy (:class:`SimulationError`,
  :class:`WorkerCrash`, :class:`JobTimeout`, :class:`CorruptResult`)
  so every failure is classified, never a bare traceback;
* :func:`run_supervised` — a supervisor that runs each job *attempt*
  in its own short-lived process (crash isolation: a dead worker loses
  exactly one attempt), enforces per-job timeouts, and retries with
  deterministic exponential backoff + jitter;
* :class:`CampaignReport` — successes and failures counted separately,
  with a human-readable failure summary;
* a deterministic fault-injection hook (``REPRO_FAULT_RATE`` /
  ``REPRO_FAULT_KIND`` or :func:`set_fault_injector`) that the tests
  use to prove every failure path actually recovers;
* platform probes: :func:`supervision_context` falls back
  ``fork`` → ``spawn`` → in-process, and :func:`default_workers`
  survives platforms where ``multiprocessing.cpu_count()`` raises.

Everything is deterministic: whether attempt *k* of job *j* faults, and
how long its backoff sleeps, derive from SHA-256 of ``(job key,
attempt)`` — two runs of a faulty campaign fail and recover
identically.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import multiprocessing.connection
import os
import time
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "CampaignReport",
    "CorruptResult",
    "JobFailure",
    "JobTimeout",
    "RetryPolicy",
    "SimulationError",
    "WorkerCrash",
    "default_workers",
    "maybe_inject_fault",
    "run_supervised",
    "set_fault_injector",
    "supervision_context",
]


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------


class SimulationError(RuntimeError):
    """Base class for classified campaign failures."""


class WorkerCrash(SimulationError):
    """A worker process died without reporting a result."""


class JobTimeout(SimulationError):
    """A job exceeded its per-attempt time budget."""


class CorruptResult(SimulationError):
    """A result (from a worker or the on-disk store) failed validation."""


#: name → class, used to rebuild errors reported across process
#: boundaries and to parse ``REPRO_FAULT_KIND``.
ERROR_CLASSES: Dict[str, type] = {
    "SimulationError": SimulationError,
    "WorkerCrash": WorkerCrash,
    "JobTimeout": JobTimeout,
    "CorruptResult": CorruptResult,
}


def _rebuild_error(kind: str, message: str) -> SimulationError:
    return ERROR_CLASSES.get(kind, SimulationError)(message)


# ---------------------------------------------------------------------------
# Deterministic fault injection
# ---------------------------------------------------------------------------

FAULT_RATE_ENV = "REPRO_FAULT_RATE"
FAULT_KIND_ENV = "REPRO_FAULT_KIND"

#: fault kinds the injector understands.  ``crash`` kills the worker
#: process outright (``os._exit``); ``timeout`` makes the attempt hang
#: past any deadline; ``error`` raises a :class:`SimulationError`;
#: ``corrupt`` lets the job finish and then mangles its result so the
#: validator must catch it.
FAULT_KINDS = ("crash", "error", "timeout", "corrupt")

#: test hook: a callable ``(job_key, attempt) -> Optional[str]``
#: returning a fault kind (or None).  Takes precedence over the
#: environment knobs.  Only effective in-process or under ``fork``.
_FAULT_INJECTOR: Optional[Callable[[str, int], Optional[str]]] = None


def set_fault_injector(
    injector: Optional[Callable[[str, int], Optional[str]]],
) -> None:
    """Install (or with ``None`` clear) the fault-injection callable."""
    global _FAULT_INJECTOR
    _FAULT_INJECTOR = injector


def _unit_interval(token: str) -> float:
    """Deterministic hash of ``token`` onto [0, 1)."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def maybe_inject_fault(job_key: str, attempt: int) -> Optional[str]:
    """Return the fault kind planned for this (job, attempt), if any.

    With the environment knobs, attempt *k* of job *j* faults iff
    ``sha256(j|k) < REPRO_FAULT_RATE`` — independent per attempt, so a
    faulted job's retry usually succeeds, and fully reproducible.
    """
    if _FAULT_INJECTOR is not None:
        return _FAULT_INJECTOR(job_key, attempt)
    rate_text = os.environ.get(FAULT_RATE_ENV)
    if not rate_text:
        return None
    try:
        rate = float(rate_text)
    except ValueError:
        return None
    if rate <= 0.0 or _unit_interval(f"fault|{job_key}|{attempt}") >= rate:
        return None
    kind = os.environ.get(FAULT_KIND_ENV, "crash")
    return kind if kind in FAULT_KINDS else "crash"


def _corrupted(result: Any) -> Any:
    """Mangle a result so validation must reject it (fault injection)."""
    core = getattr(result, "core", None)
    if core is not None and hasattr(core, "cycles"):
        return replace(result, core=replace(core, cycles=float("nan")))
    return None


# ---------------------------------------------------------------------------
# Platform probes
# ---------------------------------------------------------------------------

START_METHOD_ENV = "REPRO_START_METHOD"


def supervision_context() -> Optional[multiprocessing.context.BaseContext]:
    """The multiprocessing context campaigns should use, or ``None``.

    Tries ``fork`` (cheap, inherits the parent's registries), then
    ``spawn``; returns ``None`` — meaning "run in-process" — where
    neither exists.  ``REPRO_START_METHOD`` overrides the probe order
    (value ``inprocess`` forces the serial fallback).
    """
    override = os.environ.get(START_METHOD_ENV, "").strip().lower()
    if override in ("inprocess", "none"):
        return None
    methods = ([override] if override else []) + ["fork", "spawn"]
    for method in methods:
        try:
            return multiprocessing.get_context(method)
        except ValueError:
            continue
    return None


def default_workers(jobs: int = 0) -> int:
    """Resolve a ``--jobs`` value to a worker count (0 = CPU count).

    ``multiprocessing.cpu_count()`` raises ``NotImplementedError`` on
    some platforms (it never returns 0); fall back to 2 workers there.
    """
    if jobs > 0:
        return jobs
    try:
        count = multiprocessing.cpu_count()
    except NotImplementedError:
        count = 0
    return max(count, 1) if count else 2


# ---------------------------------------------------------------------------
# Retry policy and campaign report
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the supervisor tries before declaring a job failed."""

    #: additional attempts after the first (total attempts = retries + 1).
    retries: int = 2
    #: per-attempt wall-clock budget in seconds (None = unlimited).
    timeout: Optional[float] = None
    #: base backoff delay; attempt k waits ~``base * 2**(k-1)`` seconds.
    backoff_base: float = 0.05
    #: backoff ceiling.
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")

    def backoff(self, job_key: str, attempt: int) -> float:
        """Deterministic exponential backoff with jitter in [0.5x, 1.5x)."""
        delay = min(self.backoff_base * (2 ** max(attempt - 1, 0)), self.backoff_max)
        return delay * (0.5 + _unit_interval(f"backoff|{job_key}|{attempt}"))


@dataclass(frozen=True)
class JobFailure:
    """One job that exhausted its retry budget."""

    key: str
    error: str  # taxonomy class name, e.g. "WorkerCrash"
    message: str
    attempts: int

    def describe(self) -> str:
        return f"{self.key}: {self.error} after {self.attempts} attempt(s) — {self.message}"


@dataclass
class CampaignReport:
    """Outcome of one supervised campaign: successes and failures, apart.

    ``executed`` counts *successful* simulations only — a job whose
    worker died is a failure, not an execution.  ``skipped`` counts
    jobs satisfied from a cache or store before any worker ran.
    """

    completed: Dict[str, Any] = field(default_factory=dict)
    failures: List[JobFailure] = field(default_factory=list)
    skipped: int = 0
    #: attempts beyond each job's first (i.e. how much retrying it took).
    retried: int = 0

    @property
    def executed(self) -> int:
        return len(self.completed)

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures

    def merge(self, other: "CampaignReport") -> "CampaignReport":
        self.completed.update(other.completed)
        self.failures.extend(other.failures)
        self.skipped += other.skipped
        self.retried += other.retried
        return self

    def summary(self) -> str:
        """Human-readable campaign digest (one line per failure)."""
        head = (
            f"campaign: {self.executed} succeeded, {self.failed} failed, "
            f"{self.skipped} skipped (cached), {self.retried} retried attempt(s)"
        )
        if not self.failures:
            return head
        lines = [head, "failures:"]
        lines += [f"  - {failure.describe()}" for failure in self.failures]
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if self.failures:
            raise SimulationError(self.summary())


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------


def _attempt_entry(
    conn: multiprocessing.connection.Connection,
    run_one: Callable[[Any], Any],
    job: Any,
    job_key: str,
    attempt: int,
    child_setup: Optional[Callable[[], None]],
) -> None:
    """Worker body for one attempt: run the job, report over the pipe.

    Every outcome is reported as a tagged tuple; a worker that dies
    before sending anything is classified as a crash by the parent.
    """
    try:
        if child_setup is not None:
            child_setup()
        fault = maybe_inject_fault(job_key, attempt)
        if fault == "crash":
            os._exit(13)
        if fault == "timeout":
            time.sleep(3600.0)
        if fault == "error":
            raise SimulationError(f"injected fault ({job_key}, attempt {attempt})")
        result = run_one(job)
        if fault == "corrupt":
            result = _corrupted(result)
        conn.send(("ok", result))
    except SimulationError as exc:
        conn.send(("err", type(exc).__name__, str(exc)))
    except BaseException as exc:  # classify unexpected worker bugs too
        conn.send(("err", "SimulationError", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


@dataclass
class _Attempt:
    process: multiprocessing.process.BaseProcess
    conn: multiprocessing.connection.Connection
    job: Any
    key: str
    attempt: int
    deadline: Optional[float]


def _run_in_process(
    jobs: Sequence[Any],
    run_one: Callable[[Any], Any],
    key: Callable[[Any], str],
    policy: RetryPolicy,
    validate: Optional[Callable[[Any], None]],
    progress: Optional[Callable[[int, int, str, str], None]],
) -> CampaignReport:
    """Serial fallback where multiprocessing is unavailable.

    Crash/timeout faults cannot take the process down here, so the
    injector's ``crash``/``timeout`` kinds surface as their taxonomy
    exceptions instead; per-attempt wall-clock limits are not enforced.
    """
    report = CampaignReport()
    total = len(jobs)
    for job in jobs:
        job_key = key(job)
        last: SimulationError = SimulationError("no attempts made")
        for attempt in range(1, policy.retries + 2):
            if attempt > 1:
                report.retried += 1
                time.sleep(policy.backoff(job_key, attempt))
            try:
                fault = maybe_inject_fault(job_key, attempt)
                if fault == "crash":
                    raise WorkerCrash(f"injected crash ({job_key}, attempt {attempt})")
                if fault == "timeout":
                    raise JobTimeout(f"injected timeout ({job_key}, attempt {attempt})")
                if fault == "error":
                    raise SimulationError(f"injected fault ({job_key}, attempt {attempt})")
                result = run_one(job)
                if fault == "corrupt":
                    result = _corrupted(result)
                if validate is not None:
                    try:
                        validate(result)
                    except SimulationError:
                        raise
                    except Exception as exc:
                        raise CorruptResult(f"{job_key}: {exc}") from exc
                report.completed[job_key] = result
                break
            except SimulationError as exc:
                last = exc
            except Exception as exc:
                last = SimulationError(f"{type(exc).__name__}: {exc}")
        else:
            report.failures.append(
                JobFailure(job_key, type(last).__name__, str(last), policy.retries + 1)
            )
        if progress is not None:
            done = report.executed + report.failed
            status = "ok" if job_key in report.completed else "FAILED"
            progress(done, total, job_key, status)
    return report


def run_supervised(
    jobs: Sequence[Any],
    run_one: Callable[[Any], Any],
    *,
    workers: int = 0,
    policy: Optional[RetryPolicy] = None,
    key: Optional[Callable[[Any], str]] = None,
    validate: Optional[Callable[[Any], None]] = None,
    progress: Optional[Callable[[int, int, str, str], None]] = None,
    child_setup: Optional[Callable[[], None]] = None,
    in_process: Optional[bool] = None,
) -> CampaignReport:
    """Run ``run_one`` over ``jobs`` under supervision; never raises.

    Each attempt runs in its own short-lived process, so a crash loses
    one attempt and nothing else.  Failed attempts retry up to
    ``policy.retries`` times with exponential backoff + jitter; jobs
    that exhaust the budget land in the report's ``failures``, the rest
    in ``completed`` (keyed by ``key(job)``).

    ``validate`` (if given) runs in the parent on every returned
    result; a validation error is classified :class:`CorruptResult`
    and retried like any other failure.  ``child_setup`` runs first
    inside every worker (campaigns use it to silence per-worker store
    writes).  ``progress`` is called as ``(done, total, key, status)``
    after each job settles.  ``in_process`` forces (or forbids) the
    serial fallback; by default it is used when no start method works.
    """
    policy = policy or RetryPolicy()
    key = key or (lambda job: repr(job))
    jobs = list(jobs)
    if not jobs:
        return CampaignReport()

    context = None if in_process else supervision_context()
    if context is None:
        if in_process is False:
            raise SimulationError("multiprocessing unavailable and in_process=False")
        return _run_in_process(jobs, run_one, key, policy, validate, progress)

    workers = min(default_workers(workers), len(jobs))
    report = CampaignReport()
    total = len(jobs)
    # (job, key, next attempt number, earliest start time)
    ready: List[Tuple[Any, str, int, float]] = [
        (job, key(job), 1, 0.0) for job in jobs
    ]
    running: List[_Attempt] = []

    def _spawn(job: Any, job_key: str, attempt: int) -> None:
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_attempt_entry,
            args=(child_conn, run_one, job, job_key, attempt, child_setup),
        )
        process.start()
        child_conn.close()
        deadline = time.monotonic() + policy.timeout if policy.timeout else None
        running.append(_Attempt(process, parent_conn, job, job_key, attempt, deadline))

    def _settle(attempt: _Attempt, error: SimulationError) -> None:
        """One attempt failed: requeue with backoff or record the failure."""
        if attempt.attempt <= policy.retries:
            report.retried += 1
            not_before = time.monotonic() + policy.backoff(
                attempt.key, attempt.attempt + 1
            )
            ready.append((attempt.job, attempt.key, attempt.attempt + 1, not_before))
        else:
            report.failures.append(
                JobFailure(attempt.key, type(error).__name__, str(error), attempt.attempt)
            )
            if progress is not None:
                progress(report.executed + report.failed, total, attempt.key, "FAILED")

    def _reap(attempt: _Attempt) -> None:
        """Collect one finished/dead/overdue attempt."""
        running.remove(attempt)
        payload = None
        if attempt.conn.poll():
            try:
                payload = attempt.conn.recv()
            except (EOFError, OSError):
                payload = None
        attempt.conn.close()
        attempt.process.join(timeout=5.0)

        if payload is None:
            code = attempt.process.exitcode
            _settle(attempt, WorkerCrash(f"worker exited with code {code}"))
            return
        tag = payload[0]
        if tag == "err":
            _settle(attempt, _rebuild_error(payload[1], payload[2]))
            return
        result = payload[1]
        if validate is not None:
            try:
                validate(result)
            except Exception as exc:
                _settle(attempt, CorruptResult(f"{attempt.key}: {exc}"))
                return
        report.completed[attempt.key] = result
        if progress is not None:
            progress(report.executed + report.failed, total, attempt.key, "ok")

    try:
        while ready or running:
            now = time.monotonic()
            # Launch whatever is ready while worker slots are free.
            ready.sort(key=lambda item: item[3])
            while ready and len(running) < workers and ready[0][3] <= now:
                job, job_key, attempt, _ = ready.pop(0)
                _spawn(job, job_key, attempt)

            if not running:
                # Everything pending is backing off; sleep until the next one.
                time.sleep(max(ready[0][3] - now, 0.0) + 0.001)
                continue

            # Enforce deadlines: terminate overdue attempts.
            now = time.monotonic()
            overdue = [a for a in running if a.deadline is not None and now > a.deadline]
            for attempt in overdue:
                attempt.process.terminate()
                attempt.process.join(timeout=5.0)
                if attempt.process.is_alive():  # pragma: no cover - stuck worker
                    attempt.process.kill()
                    attempt.process.join(timeout=5.0)
                running.remove(attempt)
                attempt.conn.close()
                _settle(
                    attempt,
                    JobTimeout(
                        f"attempt exceeded {policy.timeout:.3g}s "
                        f"(attempt {attempt.attempt})"
                    ),
                )
            if overdue:
                continue

            # Wait for a result, a worker death, or the nearest deadline.
            wait_for = 0.2
            deadlines = [a.deadline for a in running if a.deadline is not None]
            if deadlines:
                wait_for = min(wait_for, max(min(deadlines) - now, 0.0) + 0.001)
            sentinels = [a.process.sentinel for a in running]
            fired = multiprocessing.connection.wait(
                [a.conn for a in running] + sentinels, timeout=wait_for
            )
            if not fired:
                continue
            for attempt in list(running):
                if attempt.conn in fired or attempt.process.sentinel in fired:
                    _reap(attempt)
    finally:
        for attempt in running:  # interrupted: never leak worker processes
            attempt.process.terminate()
            attempt.process.join(timeout=2.0)
            attempt.conn.close()
    return report
