"""The unified component contract of the engine layer.

Every building block of the simulated memory system — set-associative
cache, MSHR file, bus, DRAM, prefetcher — implements one interface:

``access(event) -> outcome``
    Process one :class:`~repro.engine.events.MemoryEvent`.  What the
    outcome *is* depends on the component (a cache returns the hit
    line or None, an MSHR file a merge completion time, a bus a
    transfer start time, DRAM a fetch completion time, a prefetcher a
    list of prefetch requests), but the shape of the call is uniform,
    which is what lets probes, sweeps, and analysis passes walk a
    hierarchy generically.
``finalize()``
    End-of-run accounting hook (e.g. a prefetcher flushing residual
    state into its statistics).  Default: no-op.
``reset()``
    Drop all mutable state for a fresh run under the same
    configuration.  Default: no-op.

The per-access hot path deliberately does NOT dispatch through this
interface — :meth:`repro.memory.hierarchy.MemoryHierarchy.access_time`
binds each component's concrete methods locally and calls them
directly (a virtual ``access(event)`` per component per access would
put an allocation and a double dispatch on the critical path).  The
contract exists so that every component *can* be driven uniformly from
cold paths: tests, probes, and tools like the bench harness's
component census.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

__all__ = ["Component"]


class Component(ABC):
    """One building block of the simulated memory system."""

    # Empty slots so slotted subclasses (e.g. Bus) stay __dict__-free.
    __slots__ = ()

    @abstractmethod
    def access(self, event: Any) -> Any:
        """Process one memory event; return this component's outcome."""

    def finalize(self) -> None:
        """End-of-run accounting hook (default: nothing to account)."""

    def reset(self) -> None:
        """Drop mutable state for a fresh run (default: stateless)."""
