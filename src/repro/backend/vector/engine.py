"""Batch-stepping core loop for the numpy backend.

The reference loop (:mod:`repro.cpu.core`) interprets ~40 bytecodes of
bookkeeping per access before it ever touches the hierarchy, and the
hierarchy itself walks ~20 nested method calls per miss.  This engine
removes both costs while staying bit-identical:

**Whole-trace planes.**  Everything that is a pure function of the
trace and the (direct-mapped) L1D geometry is precomputed once as
ndarrays: the tag/index/block split, cumulative instruction numbers,
per-access dispatch increments, instruction-fetch block numbers and
their change points — and the *predicted hit mask*: with a
direct-mapped L1D and no L1 promotions, access ``i`` hits iff the
previous access to its set carried the same tag, which a stable
argsort over (set, position) answers for the whole trace up front.

**Batch stepping.**  The trace is walked as a sequence of *spans*
bounded by probe marks and the warmup point.  Inside a span, runs of
predicted hits at least ``vector_min`` long are stepped as one batch:
dispatch times come from one ``np.cumsum`` (sequentially exact — the
same left-to-right IEEE adds the reference performs); the issue and
commit max-recurrences are solved with an offset-and-prefix-max trick
and then *proved* against the sequential recurrence element-by-element
(a candidate that satisfies ``x_j == max(f(x_{j-1}), d_j)`` under the
exact float ops the reference uses *is* the sequential result, by
induction), falling back to a minimal sequential mini-loop whenever
the proof fails or the run is short; the window/LSQ stall conditions
are verified vectorially after the fact and the batch truncated before
the first access they would have lifted.

**Structure-of-arrays miss path.**  Scalar steps — predicted misses,
accesses at poisoned sets, short runs — do not call back into the
interpreted hierarchy.  The entire demand-miss state machine is
flattened into the epilogue, operating on the components' underlying
storage directly: the L1D as four per-set planes (tag / fill time /
last access / dirty), the MSHR file as its in-flight dict plus local
scalars, the four buses as local clocks, DRAM as the completion list,
the L2 as its per-set LRU dicts, and the TCP's THT/PHT as their raw
row/set containers (generic prefetchers take their object hook, fed
through the same flattened issue path).  Containers are the live
objects, so large state is never copied; scalar component fields are
mirrored into locals and written back at every span boundary, so
probes (heartbeats, the sanitizer, metrics) observe exactly the
component state the reference loop would show at the same mark —
``REPRO_SANITIZE=full`` composes with this backend by running its
full-tier scans at batch boundaries, and fault injection lands on the
same live containers it corrupts under the reference loop.

**Poisoned sets.**  One event invalidates the precomputed hit mask: an
MSHR *merge* returns early without filling L1, so the resident tag at
that set stops being "tag of the previous access".  The scalar path
detects hits from the live tag plane (always exact); the poison set
exists only to keep batches away from sets whose resident tag has
diverged from the model, and the next fill or hit unpoisons them.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heapify, heappop, heappush
from typing import Optional, Sequence

import numpy as np

from repro.core.indexing import IndexFunction
from repro.core.tcp import TagCorrelatingPrefetcher
from repro.cpu.core import CoreParams, CoreResult
from repro.engine.events import EvictionEvent, MissEvent
from repro.engine.probes import CoreMark, Probe, resolve_probes
from repro.memory.cache import CacheLine
from repro.memory.hierarchy import MemoryHierarchy
from repro.util.bitops import index_geometry
from repro.workloads.trace import Trace

__all__ = ["VectorCore"]

#: minimum predicted-hit run length worth stepping as a batch; shorter
#: runs go through the scalar epilogue (batch setup costs a handful of
#: numpy kernel launches, which only amortise over long runs).
DEFAULT_VECTOR_MIN = 64

#: minimum batch length worth solving the issue/commit recurrences
#: vectorially; between ``vector_min`` and this the mini-loop wins
#: (the candidate + proof costs ~14 kernel launches per batch).
VECTOR_RECURRENCE_MIN = 192

_INF = float("inf")


def _engine_stats() -> dict:
    return {
        "batched_accesses": 0,
        "scalar_accesses": 0,
        "batches": 0,
        "vector_batches": 0,
        "vector_fallbacks": 0,
        "batch_cuts_window": 0,
        "batch_cuts_lsq": 0,
        "batch_cuts_ifetch": 0,
        "poisoned_sets_peak": 0,
    }


#: single-slot memo for `_trace_planes` — (key, trace, planes).  One
#: slot bounds the held memory (~100 bytes/access) to a single trace;
#: the pinned trace reference keeps the id() in the key from being
#: recycled by a new object at the same address.
_PLANE_SLOT: Optional[tuple] = None


def _trace_planes(trace: Trace, hierarchy: MemoryHierarchy) -> dict:
    """Whole-trace planes, memoised for the last (trace, machine) pair.

    Everything here is a pure function of the trace and the machine
    geometry — address splits, the predicted-hit mask, python-list
    mirrors — so repeated runs over the same trace (bench arms,
    differential harnesses, campaign cells re-simulated under several
    configurations) skip the O(n) setup entirely.
    """
    global _PLANE_SLOT
    hp = hierarchy.params
    key = (
        id(trace),
        len(trace),
        hp.l1d,
        hp.l1i,
        hp.model_icache,
        hierarchy._l2_shift,
        hierarchy._l2_index_mask,
        hierarchy._l2_index_bits,
    )
    if _PLANE_SLOT is not None and _PLANE_SLOT[0] == key:
        return _PLANE_SLOT[2]
    n = len(trace)
    blocks_arr, indices_arr, tags_arr = hp.l1d.decompose_array(trace.addrs)
    steps = trace.gaps.astype(np.int64) + 1
    instr_arr = np.cumsum(steps)  # int64: exact

    # Predicted hit mask: hit iff the previous access to the same set
    # carries the same tag (valid while the set is unpoisoned).  A
    # stable argsort groups accesses by set in program order, so
    # "previous access to my set" is simply my left neighbour.
    order = np.argsort(indices_arr, kind="stable")
    sorted_idx = indices_arr[order]
    sorted_tag = tags_arr[order]
    same = np.zeros(n, dtype=bool)
    if n > 1:
        np.logical_and(
            sorted_idx[1:] == sorted_idx[:-1],
            sorted_tag[1:] == sorted_tag[:-1],
            out=same[1:],
        )
    hit_arr = np.empty(n, dtype=bool)
    hit_arr[order] = same

    load_arr = trace.is_load.astype(bool)
    l2b = blocks_arr >> hierarchy._l2_shift
    if hp.model_icache:
        fb_arr = (trace.pcs >> np.uint64(hp.l1i.offset_bits)).astype(np.int64)
        fb_l = fb_arr.tolist()
        # Change points after position 0; whether position 0 itself is
        # a change depends on run state (the hierarchy's last-fetched
        # block), resolved per run.
        change_rest = (np.flatnonzero(fb_arr[1:] != fb_arr[:-1]) + 1).tolist()
    else:
        fb_arr = None
        fb_l = []
        change_rest = []
    l2i_arr = np.ascontiguousarray(l2b & hierarchy._l2_index_mask)
    l2t_arr = np.ascontiguousarray(l2b >> hierarchy._l2_index_bits)
    deps_arr = np.ascontiguousarray(trace.deps, dtype=np.int64)
    planes = {
        "indices_arr": indices_arr,
        "instr_arr": instr_arr,
        "steps_f": steps.astype(np.float64),
        "load_arr": load_arr,
        "store_arr": ~load_arr,
        "arange_f": np.arange(n, dtype=np.float64),
        "miss_pos": np.flatnonzero(~hit_arr).tolist(),
        "dep_nz": np.flatnonzero(trace.deps).tolist(),
        "instr_l": instr_arr.tolist(),
        "blocks_l": blocks_arr.tolist(),
        "idx_l": indices_arr.tolist(),
        "tags_l": tags_arr.tolist(),
        "deps_l": trace.deps.tolist(),
        "load_l": load_arr.tolist(),
        "pcs_l": trace.pcs.tolist(),
        "l2i_l": l2i_arr.tolist(),
        "l2t_l": l2t_arr.tolist(),
        "fb_l": fb_l,
        "change_rest": change_rest,
        "incs": {},  # dispatch_rate -> (incs_arr, incs_l)
        # ndarray mirrors for the native backend's compiled epilogue
        # (zero-copy buffer views; the list mirrors above stay the
        # scalar-path masters for this engine).
        "blocks_arr": blocks_arr,
        "tags_arr": tags_arr,
        "deps_arr": deps_arr,
        "l2i_arr": l2i_arr,
        "l2t_arr": l2t_arr,
        "fb_arr": fb_arr,
    }
    _PLANE_SLOT = (key, trace, planes)
    return planes


class VectorCore:
    """Bit-exact batch-stepping replacement for ``OutOfOrderCore``.

    Only valid for configurations :class:`~repro.backend.vector.
    NumpyBackend` routes here: direct-mapped L1D, no prefetcher access
    stream, no L1 promotions.  ``engine_stats`` reports how much of the
    run took the batch path vs the scalar epilogue.
    """

    def __init__(
        self, params: CoreParams = CoreParams(), vector_min: int = DEFAULT_VECTOR_MIN
    ) -> None:
        if vector_min < 2:
            raise ValueError(f"vector_min must be at least 2, got {vector_min}")
        self.params = params
        self.vector_min = vector_min
        #: batch-vs-epilogue accounting for the last run (tests and the
        #: bench harness read this to prove the batch path engaged).
        self.engine_stats = _engine_stats()

    def run(
        self,
        trace: Trace,
        hierarchy: MemoryHierarchy,
        warmup: int = 0,
        probes: Optional[Sequence[Probe]] = None,
    ) -> CoreResult:
        params = self.params
        n = len(trace)
        if not 0 <= warmup < max(n, 1):
            raise ValueError(f"warmup ({warmup}) must be < trace length ({n})")
        if n == 0:
            return CoreResult(0, 0.0, 0)
        if hierarchy._l1_lines is None:
            raise ValueError("VectorCore requires a direct-mapped L1D")
        if hierarchy._needs_access or hierarchy._promotions_enabled:
            raise ValueError(
                "VectorCore cannot model access-stream observers or L1 "
                "promotions (use the python backend)"
            )
        if hierarchy.l2d._direct_mapped:
            raise ValueError("VectorCore requires a set-associative L2")
        active_probes = resolve_probes(None, 2048, None, probes)
        stats = self.engine_stats = _engine_stats()

        # ---- whole-trace planes (cached per trace+machine) ----------
        geometry = hierarchy.params.l1d
        planes = _trace_planes(trace, hierarchy)
        indices_arr = planes["indices_arr"]
        instr_arr = planes["instr_arr"]
        load_arr = planes["load_arr"]
        store_arr = planes["store_arr"]
        arange_f = planes["arange_f"]
        miss_pos = planes["miss_pos"]
        n_miss = len(miss_pos)
        dep_nz = planes["dep_nz"]
        n_dep_nz = len(dep_nz)
        # Python-list mirrors for the scalar epilogue (list indexing
        # yields ready-to-use ints/bools/floats; numpy scalar indexing
        # boxes per element).
        instr_l = planes["instr_l"]
        blocks_l = planes["blocks_l"]
        idx_l = planes["idx_l"]
        tags_l = planes["tags_l"]
        deps_l = planes["deps_l"]
        load_l = planes["load_l"]
        pcs_l = planes["pcs_l"]
        l2i_l = planes["l2i_l"]
        l2t_l = planes["l2t_l"]

        dispatch_rate = min(float(params.issue_width), trace.base_ipc)
        cached_incs = planes["incs"].get(dispatch_rate)
        if cached_incs is None:
            # Same IEEE op the reference performs per access: the int
            # (gap + 1) converted exactly to float64, divided by rate.
            incs_arr = planes["steps_f"] / dispatch_rate
            cached_incs = (incs_arr, incs_arr.tolist())
            planes["incs"][dispatch_rate] = cached_incs
        incs_arr, incs_l = cached_incs

        model_icache = hierarchy.params.model_icache
        if model_icache:
            fb_l = planes["fb_l"]
            # Position 0 is a fetch-block change unless it matches the
            # block the hierarchy fetched last (fresh machines: -1).
            if fb_l[0] == hierarchy._last_ifetch_block:
                change_pos = planes["change_rest"]
            else:
                change_pos = [0] + planes["change_rest"]
        else:
            fb_l = []
            change_pos = []
        n_changes = len(change_pos)

        # Full-length completion/commit timelines.  The lists are the
        # masters (read by the scalar path's dependence/LSQ lookbacks);
        # the ndarray mirrors the commits for the batch verifier's
        # gathers.  Both are written by every step.
        completions_l = [0.0] * n
        commits_l = [0.0] * n
        commits_np = np.zeros(n, dtype=np.float64)

        # ---- L1D state planes + L1I residency -----------------------
        l1_lines = hierarchy._l1_lines
        n_sets = geometry.sets
        tag_l = [-1] * n_sets  # line.tag per set (-1 = empty)
        la_l = [0.0] * n_sets  # line.last_access per set
        dirty_l = [False] * n_sets  # line.dirty per set
        ft_l = [0.0] * n_sets  # line.fill_time per set
        for s2, line in enumerate(l1_lines):
            if line is not None:
                tag_l[s2] = line.tag
                la_l[s2] = line.last_access
                dirty_l[s2] = line.dirty
                ft_l[s2] = line.fill_time
        poisoned: set = set()
        la_scr = np.zeros(n_sets, dtype=np.float64)  # batch last-touch scratch

        l1i = hierarchy.l1i
        l1i_lookup = l1i.lookup
        l1i_bits, l1i_mask = index_geometry(hierarchy.params.l1i.sets)
        resident: set = set()  # L1I-resident fetch blocks
        last_fb = hierarchy._last_ifetch_block

        ifetch = hierarchy.instruction_fetch
        hier_stats = hierarchy.stats

        # ---- flattened component state ------------------------------
        hp = hierarchy.params
        ab = hierarchy.l1l2_addr_bus
        db = hierarchy.l1l2_data_bus
        mab = hierarchy.mem_addr_bus
        mdb = hierarchy.mem_data_bus
        memory = hierarchy.memory
        mshr = hierarchy.mshr
        l2_sets = hierarchy.l2d._sets
        l2_entries = [lru_._entries for lru_ in l2_sets]
        l2_ways = hp.l2.ways
        l2_shift = hierarchy._l2_shift
        l2_imask = hierarchy._l2_index_mask
        l2_ibits = hierarchy._l2_index_bits
        l1_lat = hierarchy._l1_latency
        l2_lat = hierarchy._l2_latency
        ideal_l2 = hierarchy._ideal_l2
        l1_ib = hierarchy._l1_index_bits
        l1_beats = -(-hp.l1d.block_bytes // hp.l1l2_bus_bytes_per_cycle)
        mem_beats = -(-hp.l2.block_bytes // hp.mem_bus_bytes_per_cycle)
        mem_lat = hp.memory_latency
        mem_maxc = hp.memory_concurrency
        pf_delay = hierarchy._pf_delay
        pf_max = hp.max_outstanding_prefetches
        pf_busy_thr = hp.prefetch_busy_threshold
        lru_pf = hp.prefetch_insert_policy == "lru"

        # Bus clocks and MSHR/memory scalars live in locals between
        # span boundaries; the underlying dict/list containers stay the
        # live component state (never copied).
        a_nf = ab.next_free
        a_by = ab.busy_cycles
        a_qc = ab.queued_cycles
        a_tr = ab.transfers
        d_nf = db.next_free
        d_by = db.busy_cycles
        d_qc = db.queued_cycles
        d_tr = db.transfers
        ma_nf = mab.next_free
        ma_by = mab.busy_cycles
        ma_qc = mab.queued_cycles
        ma_tr = mab.transfers
        md_nf = mdb.next_free
        md_by = mdb.busy_cycles
        md_qc = mdb.queued_cycles
        md_tr = mdb.transfers
        msh_inf = mshr._inflight
        msh_entries = mshr.entries
        # Lazy-deletion heap over (completion, block): reaps pop
        # expired entries instead of scanning the inflight dict.  Stale
        # heap entries (block re-registered since) are skipped by the
        # value check on pop.  The reference keeps `_earliest ==
        # min(inflight.values(), default=inf)` at all times, so the
        # scalar is recomputed exactly at sync points.
        msh_heap = [(t_, b_) for b_, t_ in msh_inf.items()]
        heapify(msh_heap)
        msh_fs = mshr.full_stalls
        msh_mg = mshr.merges
        msh_pk = mshr.peak_occupancy
        mem_comp = memory._completions
        mem_acc = memory.accesses
        pf_inflight = hierarchy._pf_inflight

        prefetcher = hierarchy.prefetcher
        needs_evict = hierarchy._needs_evict
        observe_evict = prefetcher.observe_eviction if prefetcher else None
        observe_miss = prefetcher.observe_miss if prefetcher else None
        tcp_fast = (
            type(prefetcher) is TagCorrelatingPrefetcher
            and prefetcher.pht.config.index_function is IndexFunction.TRUNCATED_ADD
            and not prefetcher.into_l1
        )
        tht_sums: list = []
        if tcp_fast:
            tht = prefetcher.tht
            pht = prefetcher.pht
            pstats = prefetcher.stats
            tht_hist = tht._history
            # Running row sums: push maintains sum(new_seq) as
            # old_sum - old_seq[0] + tag (exact integer arithmetic),
            # replacing two O(depth) sums per miss with adds.
            tht_sums = [sum(r_) for r_ in tht_hist]
            tht_ib = tht.index_bits
            scheme = pht._scheme
            seq_mask = scheme._sequence_mask
            miss_mask = scheme._miss_mask
            n_bits = scheme.miss_index_bits
            pht_sets = pht._sets
            pht_ways = pht.config.ways
            pht_targets = pht.config.targets

        # ---- core loop state ----------------------------------------
        window = params.window
        lsq = params.lsq
        ls_s = 1.0 / params.ls_units
        inv_cr = 1.0 / float(params.issue_width)
        l1_lat_f = float(l1_lat)
        nd = float(params.frontend_depth)  # now_dispatch
        li = 0.0  # last_mem_issue
        lc = 0.0  # last_commit
        P = 0  # ROB pop pointer: entries [P, i) are in flight
        warmup_instr = 0
        warmup_commit = 0.0
        warmup_pending = bool(warmup)

        if active_probes:
            mark_interval = min(probe.interval for probe in active_probes)
            next_mark = mark_interval
        else:
            mark_interval = 0
            next_mark = n + 1

        # Local stat counters (batched/inlined accesses AND the
        # flattened miss path), flushed into hierarchy.stats at every
        # span boundary — all pure adds, so totals at observation
        # points match the reference exactly, and injected stat drift
        # persists just as it does under the reference loop.
        dc = ldc = stc = hc = ifc = 0
        l1m_d = l2a_d = l2h_d = l2m_d = 0
        pfo_d = useful_d = mgd = wb1_d = wb2_d = 0
        pfr_d = pfi_d = pfred_d = pfdq_d = pfdb_d = pfev_d = 0
        pfl_d = pfu_d = pfp_d = tl_d = tp_d = pu_d = pl_d = ph_d = 0
        sc = 0  # scalar-epilogue step count (engine accounting only)

        vec_min = self.vector_min
        vec_ok = True  # offset-trick recurrences still trusted
        vec_fails = 0
        m_ptr = 0  # next-predicted-miss pointer into miss_pos
        no_vec_until = 0  # scalar-only floor after a batch cut
        i = 0

        def flush_stats() -> None:
            nonlocal dc, ldc, stc, hc, ifc
            nonlocal l1m_d, l2a_d, l2h_d, l2m_d, pfo_d, useful_d, mgd
            nonlocal wb1_d, wb2_d, pfr_d, pfi_d, pfred_d, pfdq_d, pfdb_d, pfev_d
            nonlocal pfl_d, pfu_d, pfp_d, tl_d, tp_d, pu_d, pl_d, ph_d
            if dc:
                hier_stats.demand_accesses += dc
                hier_stats.loads += ldc
                hier_stats.stores += stc
                hier_stats.l1_hits += hc
                dc = ldc = stc = hc = 0
            if ifc:
                hier_stats.ifetch_accesses += ifc
                ifc = 0
            if l1m_d:
                hier_stats.l1_misses += l1m_d
                hier_stats.l2_demand_accesses += l2a_d
                hier_stats.l2_demand_hits += l2h_d
                hier_stats.l2_demand_misses += l2m_d
                hier_stats.prefetched_original += pfo_d
                hier_stats.useful_prefetches += useful_d
                hier_stats.mshr_merges += mgd
                hier_stats.writebacks_l1 += wb1_d
                hier_stats.writebacks_l2 += wb2_d
                hier_stats.prefetches_requested += pfr_d
                hier_stats.prefetches_issued += pfi_d
                hier_stats.prefetch_redundant += pfred_d
                hier_stats.prefetch_dropped_queue += pfdq_d
                hier_stats.prefetch_dropped_busy += pfdb_d
                hier_stats.prefetch_evicted_unused += pfev_d
                l1m_d = l2a_d = l2h_d = l2m_d = 0
                pfo_d = useful_d = mgd = wb1_d = wb2_d = 0
                pfr_d = pfi_d = pfred_d = pfdq_d = pfdb_d = pfev_d = 0
                if tcp_fast:
                    pstats.lookups += pfl_d
                    pstats.updates += pfu_d
                    pstats.predictions += pfp_d
                    tht.reads += tl_d
                    tht.pushes += tp_d
                    pht.updates += pu_d
                    pht.lookups += pl_d
                    pht.hits += ph_d
                    pfl_d = pfu_d = pfp_d = tl_d = tp_d = 0
                    pu_d = pl_d = ph_d = 0
            # The reference assigns this from the MSHR file counter on
            # every primary miss; mirroring at the flush is idempotent.
            hier_stats.mshr_full_stalls = msh_fs

        def sync_planes() -> None:
            for s2 in range(n_sets):
                t2 = tag_l[s2]
                if t2 < 0:
                    continue
                line = l1_lines[s2]
                if line is None or line.tag != t2:
                    line = CacheLine(t2, ft_l[s2], dirty=dirty_l[s2])
                    line.last_access = la_l[s2]
                    l1_lines[s2] = line
                else:
                    line.fill_time = ft_l[s2]
                    line.last_access = la_l[s2]
                    line.dirty = dirty_l[s2]

        def sync_shared() -> None:
            ab.next_free = a_nf
            ab.busy_cycles = a_by
            ab.queued_cycles = a_qc
            ab.transfers = a_tr
            db.next_free = d_nf
            db.busy_cycles = d_by
            db.queued_cycles = d_qc
            db.transfers = d_tr
            mab.next_free = ma_nf
            mab.busy_cycles = ma_by
            mab.queued_cycles = ma_qc
            mab.transfers = ma_tr
            mdb.next_free = md_nf
            mdb.busy_cycles = md_by
            mdb.queued_cycles = md_qc
            mdb.transfers = md_tr
            mshr._earliest = min(msh_inf.values()) if msh_inf else _INF
            mshr.full_stalls = msh_fs
            mshr.merges = msh_mg
            mshr.peak_occupancy = msh_pk
            memory._completions = mem_comp
            memory.accesses = mem_acc
            hierarchy._pf_inflight = pf_inflight

        def load_shared() -> None:
            nonlocal a_nf, a_by, a_qc, a_tr, d_nf, d_by, d_qc, d_tr
            nonlocal ma_nf, ma_by, ma_qc, ma_tr, md_nf, md_by, md_qc, md_tr
            nonlocal msh_heap, msh_fs, msh_mg, msh_pk
            nonlocal mem_comp, mem_acc, pf_inflight
            a_nf = ab.next_free
            a_by = ab.busy_cycles
            a_qc = ab.queued_cycles
            a_tr = ab.transfers
            d_nf = db.next_free
            d_by = db.busy_cycles
            d_qc = db.queued_cycles
            d_tr = db.transfers
            ma_nf = mab.next_free
            ma_by = mab.busy_cycles
            ma_qc = mab.queued_cycles
            ma_tr = mab.transfers
            md_nf = mdb.next_free
            md_by = mdb.busy_cycles
            md_qc = mdb.queued_cycles
            md_tr = mdb.transfers
            # Probes may have mutated shared state (fault injection):
            # rebuild the reap heap and derived caches from it.
            msh_heap = [(t_, b_) for b_, t_ in msh_inf.items()]
            heapify(msh_heap)
            if tcp_fast:
                tht_sums[:] = [sum(r_) for r_ in tht_hist]
            l2_entries[:] = [lru_._entries for lru_ in l2_sets]
            msh_fs = mshr.full_stalls
            msh_mg = mshr.merges
            msh_pk = mshr.peak_occupancy
            mem_comp = memory._completions
            mem_acc = memory.accesses
            pf_inflight = hierarchy._pf_inflight

        def issue_pf(pb: int, t: float) -> None:
            """MemoryHierarchy.issue_prefetch (L2-only; promotions are
            excluded from this backend), with MainMemory.fetch and
            _fill_l2 inlined on the flattened state."""
            nonlocal pf_inflight, pfr_d, pfred_d, pfdq_d, pfdb_d, pfi_d
            nonlocal ma_nf, ma_by, ma_qc, ma_tr
            nonlocal md_nf, md_by, md_qc, md_tr, mem_comp, mem_acc
            nonlocal wb2_d, pfev_d
            pfr_d += 1
            l2b = pb >> l2_shift
            i2 = l2b & l2_imask
            t2 = l2b >> l2_ibits
            entries = l2_entries[i2]
            if entries.get(t2) is not None:
                pfred_d += 1
                return
            if pf_inflight:
                pf_inflight = [x for x in pf_inflight if x > t]
            if len(pf_inflight) >= pf_max:
                pfdq_d += 1
                return
            if md_nf - (t + 1 + mem_lat) > pf_busy_thr:
                pfdb_d += 1
                return
            # MainMemory.fetch (inlined).
            tq = t + l2_lat
            st = tq if tq > ma_nf else ma_nf
            ma_nf = st + 1
            ma_by += 1
            ma_qc += st - tq
            ma_tr += 1
            start = st + 1
            if len(mem_comp) >= mem_maxc:
                mem_comp.sort()
                if mem_comp[0] > start:
                    start = mem_comp[0]
                mem_comp = [x for x in mem_comp if x > start]
            ready = start + mem_lat
            st = ready if ready > md_nf else md_nf
            md_nf = st + mem_beats
            md_by += mem_beats
            md_qc += st - ready
            md_tr += 1
            done = st + mem_beats
            mem_comp.append(done)
            mem_acc += 1
            pf_inflight.append(done)
            pfi_d += 1
            # _fill_l2 (inlined, prefetch insert: the tag is absent —
            # the redundancy check above just missed — so only the
            # alloc/evict branch applies).
            line = CacheLine(t2, done, prefetched=True)
            victim = None
            if len(entries) >= l2_ways:
                victim = entries.pop(next(iter(entries)))
            if lru_pf:
                # LRUSet.put_lru rebinds the dict: mirror the rebind in
                # both the component and the cached entry list.
                entries = {t2: line, **entries}
                l2_sets[i2]._entries = entries
                l2_entries[i2] = entries
            else:
                entries[t2] = line
            if victim is not None:
                if victim.prefetched:
                    pfev_d += 1
                if victim.dirty:
                    wb2_d += 1
                    st = done if done > md_nf else md_nf
                    md_nf = st + mem_beats
                    md_by += mem_beats
                    md_qc += st - done
                    md_tr += 1

        while True:
            stop = n
            if warmup_pending and i < warmup:
                stop = warmup
            if next_mark < stop:
                stop = next_mark

            # ================= span [i, stop) ========================
            while i < stop:
                # ---- batch attempt ------------------------------
                if i >= no_vec_until:
                    while m_ptr < n_miss and miss_pos[m_ptr] < i:
                        m_ptr += 1
                    r0 = miss_pos[m_ptr] if m_ptr < n_miss else n
                    if r0 > stop:
                        r0 = stop
                    if poisoned and r0 - i >= vec_min:
                        bad = np.isin(
                            indices_arr[i:r0],
                            np.fromiter(poisoned, dtype=np.int64, count=len(poisoned)),
                        )
                        if bad.any():
                            r0 = i + int(np.argmax(bad))
                    seg_changes = []
                    ifetch_cut = False
                    if model_icache and r0 - i >= vec_min:
                        a = bisect_left(change_pos, i)
                        while a < n_changes:
                            pos = change_pos[a]
                            if pos >= r0:
                                break
                            if fb_l[pos] not in resident:
                                r0 = pos
                                ifetch_cut = True
                                break
                            seg_changes.append(pos)
                            a += 1
                    if r0 - i >= vec_min:
                        p = i
                        seg = r0 - p
                        # Dispatch chain: one cumsum reproduces the
                        # reference's sequential `nd += inc` adds.
                        d = incs_arr[p:r0].copy()
                        d[0] += nd
                        np.cumsum(d, out=d)
                        d_l = d.tolist()
                        li0 = li
                        lc0 = lc
                        done_vec = False
                        if vec_ok and seg >= VECTOR_RECURRENCE_MIN:
                            a2 = bisect_left(dep_nz, p)
                            if a2 >= n_dep_nz or dep_nz[a2] >= r0:
                                # Candidate via offset + prefix max,
                                # then the element-wise proof against
                                # the exact sequential recurrence.
                                off = arange_f[:seg] * ls_s
                                u = d - off
                                seed = li + ls_s
                                if seed > u[0]:
                                    u[0] = seed
                                np.maximum.accumulate(u, out=u)
                                iss_v = u + off
                                comp_v = iss_v + np.where(
                                    load_arr[p:r0], l1_lat_f, 1.0
                                )
                                chk = np.empty(seg)
                                chk[0] = li
                                chk[1:] = iss_v[:-1]
                                chk += ls_s
                                np.maximum(chk, d, out=chk)
                                if np.array_equal(iss_v, chk):
                                    offc = arange_f[:seg] * inv_cr
                                    uc = comp_v - offc
                                    seedc = lc + inv_cr
                                    if seedc > uc[0]:
                                        uc[0] = seedc
                                    np.maximum.accumulate(uc, out=uc)
                                    cmt_v = uc + offc
                                    chk[0] = lc
                                    chk[1:] = cmt_v[:-1]
                                    chk += inv_cr
                                    np.maximum(chk, comp_v, out=chk)
                                    if np.array_equal(cmt_v, chk):
                                        iss_seg = iss_v.tolist()
                                        comp_seg = comp_v.tolist()
                                        cmt_seg = cmt_v.tolist()
                                        li = iss_seg[-1]
                                        lc = cmt_seg[-1]
                                        done_vec = True
                                        stats["vector_batches"] += 1
                                if not done_vec:
                                    vec_fails += 1
                                    stats["vector_fallbacks"] += 1
                                    if vec_fails >= 2:
                                        vec_ok = False
                        if not done_vec:
                            # Issue/completion/commit recurrence (max-
                            # accumulate chains are order-sensitive, so
                            # this stays a minimal sequential loop).
                            dep_seg = deps_l[p:r0]
                            load_seg = load_l[p:r0]
                            iss_seg = []
                            comp_seg = []
                            cmt_seg = []
                            ap_i = iss_seg.append
                            ap_c = comp_seg.append
                            ap_m = cmt_seg.append
                            for j in range(seg):
                                v = li + ls_s
                                dv = d_l[j]
                                if dv > v:
                                    v = dv
                                dep = dep_seg[j]
                                if dep:
                                    jj = j - dep
                                    c = (
                                        comp_seg[jj]
                                        if jj >= 0
                                        else completions_l[p + jj]
                                    )
                                    if c > v:
                                        v = c
                                li = v
                                ap_i(v)
                                if load_seg[j]:
                                    c = v + l1_lat
                                else:
                                    c = v + 1.0
                                ap_c(c)
                                m = lc + inv_cr
                                if c > m:
                                    m = c
                                lc = m
                                ap_m(m)
                        if done_vec:
                            commits_np[p:r0] = cmt_v
                        else:
                            commits_np[p:r0] = cmt_seg
                        # ---- post-hoc stall verification --------
                        # Window: for each access, the newest ROB
                        # entry at or under its window floor; a lift
                        # would have come from that entry's commit
                        # (commits are nondecreasing, so the last
                        # popped entry carries the max).
                        floors = instr_arr[p:r0] - window
                        js = np.searchsorted(instr_arr[:r0], floors, side="right")
                        js -= 1
                        prev = np.empty(seg, dtype=np.int64)
                        prev[0] = P - 1
                        prev[1:] = js[:-1]
                        # Entries below P were already popped by earlier
                        # accesses; only strictly-new pops can lift.
                        np.maximum(prev, P - 1, out=prev)
                        elig = js > prev  # accesses that pop new entries
                        cut = seg
                        cut_kind = 0
                        if elig.any():
                            cand = np.flatnonzero(elig)
                            lifted = commits_np[js[cand]] > d[cand]
                            if lifted.any():
                                cut = int(cand[np.argmax(lifted)])
                                cut_kind = 1
                        j0 = lsq if p < lsq else p
                        if j0 < r0:
                            lsq_viol = commits_np[j0 - lsq : r0 - lsq] > d[j0 - p :]
                            if lsq_viol.any():
                                lcut = (j0 - p) + int(np.argmax(lsq_viol))
                                if lcut < cut:
                                    cut = lcut
                                    cut_kind = 2
                        if cut == 0:
                            # First access already stalls: undo and
                            # force one scalar step.
                            li = li0
                            lc = lc0
                            no_vec_until = p + 1
                            if cut_kind == 1:
                                stats["batch_cuts_window"] += 1
                            else:
                                stats["batch_cuts_lsq"] += 1
                            continue
                        k = cut
                        r = p + k
                        completions_l[p:r] = comp_seg[:k]
                        commits_l[p:r] = cmt_seg[:k]
                        if k < seg:
                            li = iss_seg[k - 1]
                            lc = cmt_seg[k - 1]
                            no_vec_until = r + 1
                            if cut_kind == 1:
                                stats["batch_cuts_window"] += 1
                            else:
                                stats["batch_cuts_lsq"] += 1
                        elif ifetch_cut:
                            no_vec_until = r + 1
                            stats["batch_cuts_ifetch"] += 1
                        nd = d_l[k - 1]
                        P_new = int(js[k - 1]) + 1
                        if P_new > P:
                            P = P_new
                        # ---- state planes + stats ---------------
                        si = indices_arr[p:r]
                        iss_np = iss_v[:k] if done_vec else np.asarray(iss_seg[:k])
                        # Fancy assignment with duplicate indices keeps
                        # the LAST value per index — exactly the last
                        # touch each set needs.  bincount finds touched
                        # sets in O(k + sets) without unique's sort.
                        la_scr[si] = iss_np
                        touched = np.flatnonzero(np.bincount(si, minlength=n_sets))
                        for s_, v_ in zip(touched.tolist(), la_scr[touched].tolist()):
                            la_l[s_] = v_
                        smask = store_arr[p:r]
                        nst = int(np.count_nonzero(smask))
                        if nst:
                            for s_ in np.flatnonzero(
                                np.bincount(si[smask], minlength=n_sets)
                            ).tolist():
                                dirty_l[s_] = True
                        dc += k
                        hc += k
                        stc += nst
                        ldc += k - nst
                        if seg_changes:
                            touched = {}
                            ch = 0
                            for pos in seg_changes:
                                if pos >= r:
                                    break
                                touched[fb_l[pos]] = pos
                                ch += 1
                            if ch:
                                ifc += ch
                                for b, pos in sorted(
                                    touched.items(), key=lambda kv: kv[1]
                                ):
                                    l1i_lookup(
                                        b & l1i_mask, b >> l1i_bits, False, d_l[pos - p]
                                    )
                        if model_icache:
                            last_fb = fb_l[r - 1]
                        stats["batched_accesses"] += k
                        stats["batches"] += 1
                        i = r
                        continue
                    # Short run: step it scalar without re-attempting a
                    # batch per access.  The access at r0 itself needs
                    # the scalar path too (a predicted miss, poisoned
                    # set, or fetch-block miss) — unless r0 is only the
                    # span boundary, where the run may continue.
                    no_vec_until = r0 + 1 if r0 < stop else r0
                    if no_vec_until <= i:
                        no_vec_until = i + 1

                # ---- scalar epilogue: one access ----------------
                s = idx_l[i]
                nd += incs_l[i]
                floor = instr_l[i] - window
                while P < i:
                    if instr_l[P] > floor:
                        break
                    c = commits_l[P]
                    if c > nd:
                        nd = c
                    P += 1
                if i >= lsq:
                    c = commits_l[i - lsq]
                    if c > nd:
                        nd = c
                if model_icache:
                    fb = fb_l[i]
                    if fb != last_fb:
                        last_fb = fb
                        if fb in resident:
                            ifc += 1
                            l1i_lookup(fb & l1i_mask, fb >> l1i_bits, False, nd)
                        else:
                            # The hierarchy's sequential-fetch tracker
                            # is stale (batched hits bypass it); clear
                            # it so the real fetch never early-outs.
                            hierarchy._last_ifetch_block = -1
                            sync_shared()
                            pen = ifetch(nd, pcs_l[i])
                            load_shared()
                            ii = fb & l1i_mask
                            resident = {
                                b for b in resident if (b & l1i_mask) != ii
                            }
                            for ln in l1i.resident_lines(ii):
                                resident.add((ln.tag << l1i_bits) | ii)
                            if pen > 0.0:
                                nd += pen
                v = li + ls_s
                if nd > v:
                    v = nd
                dep = deps_l[i]
                if dep:
                    c = completions_l[i - dep]
                    if c > v:
                        v = c
                li = v
                load = load_l[i]
                tag = tags_l[i]
                if tag_l[s] == tag:
                    # Inlined direct-mapped hit (the access_time fast
                    # path): plane writes + local counters.
                    if load:
                        comp = v + l1_lat
                        ldc += 1
                    else:
                        comp = v + 1.0
                        dirty_l[s] = True
                        stc += 1
                    la_l[s] = v
                    dc += 1
                    hc += 1
                    if poisoned:
                        poisoned.discard(s)
                else:
                    # ---- flattened demand miss ------------------
                    dc += 1
                    if load:
                        ldc += 1
                    else:
                        stc += 1
                    l1m_d += 1
                    block = blocks_l[i]
                    merged = msh_inf.get(block)
                    if merged is not None and merged > v:
                        # MSHR merge: ride the in-flight fetch; no
                        # fill, so the set's resident tag diverges
                        # from the hit-mask model.
                        msh_mg += 1
                        mgd += 1
                        comp = merged
                        poisoned.add(s)
                        lp = len(poisoned)
                        if lp > stats["poisoned_sets_peak"]:
                            stats["poisoned_sets_peak"] = lp
                    else:
                        # MSHR acquire (reap only when full).
                        if len(msh_inf) < msh_entries:
                            start = v
                        else:
                            while msh_heap and msh_heap[0][0] <= v:
                                t3, b3 = heappop(msh_heap)
                                if msh_inf.get(b3) == t3:
                                    del msh_inf[b3]
                            if len(msh_inf) < msh_entries:
                                start = v
                            else:
                                # Earliest completion = first heap top
                                # that still matches the dict (every
                                # inflight entry has a heap entry, so
                                # the first valid top is the min).
                                while True:
                                    t3, b3 = msh_heap[0]
                                    if msh_inf.get(b3) == t3:
                                        start = t3
                                        break
                                    heappop(msh_heap)
                                msh_fs += 1
                                while msh_heap and msh_heap[0][0] <= start:
                                    t3, b3 = heappop(msh_heap)
                                    if msh_inf.get(b3) == t3:
                                        del msh_inf[b3]
                        # L1/L2 address channel: one command beat.
                        t_ = start + l1_lat
                        st_ = t_ if t_ > a_nf else a_nf
                        a_nf = st_ + 1
                        a_by += 1
                        a_qc += st_ - t_
                        a_tr += 1
                        arrival = st_ + 1
                        l2a_d += 1
                        i2 = l2i_l[i]
                        t2 = l2t_l[i]
                        l2e = l2_entries[i2]
                        l2_line = l2e.get(t2)
                        if l2_line is not None:
                            del l2e[t2]
                            l2e[t2] = l2_line
                            l2_line.last_access = arrival
                        if l2_line is not None or ideal_l2:
                            l2h_d += 1
                            data_ready = arrival + l2_lat
                            if l2_line is not None:
                                if l2_line.prefetched:
                                    l2_line.prefetched = False
                                    pfo_d += 1
                                    useful_d += 1
                                ft2 = l2_line.fill_time
                                if ft2 > arrival and ft2 > data_ready:
                                    data_ready = ft2
                        else:
                            l2m_d += 1
                            # MainMemory.fetch, inlined: address beat,
                            # concurrency clamp, data return.
                            t_ = arrival + l2_lat
                            st_ = t_ if t_ > ma_nf else ma_nf
                            ma_nf = st_ + 1
                            ma_by += 1
                            ma_qc += st_ - t_
                            ma_tr += 1
                            start2 = st_ + 1
                            if len(mem_comp) >= mem_maxc:
                                mem_comp.sort()
                                if mem_comp[0] > start2:
                                    start2 = mem_comp[0]
                                mem_comp = [x for x in mem_comp if x > start2]
                            ready = start2 + mem_lat
                            st_ = ready if ready > md_nf else md_nf
                            md_nf = st_ + mem_beats
                            md_by += mem_beats
                            md_qc += st_ - ready
                            md_tr += 1
                            data_ready = st_ + mem_beats
                            mem_comp.append(data_ready)
                            mem_acc += 1
                            # _fill_l2, inlined (demand insert: the tag
                            # is absent — this access just missed — so
                            # only the alloc/evict branch applies).
                            line2 = CacheLine(t2, data_ready)
                            if len(l2e) >= l2_ways:
                                victim = l2e.pop(next(iter(l2e)))
                                l2e[t2] = line2
                                if victim.prefetched:
                                    pfev_d += 1
                                if victim.dirty:
                                    wb2_d += 1
                                    st_ = (
                                        data_ready
                                        if data_ready > md_nf
                                        else md_nf
                                    )
                                    md_nf = st_ + mem_beats
                                    md_by += mem_beats
                                    md_qc += st_ - data_ready
                                    md_tr += 1
                            else:
                                l2e[t2] = line2
                        # Data return over the L1/L2 data channel.
                        st_ = data_ready if data_ready > d_nf else d_nf
                        d_nf = st_ + l1_beats
                        d_by += l1_beats
                        d_qc += st_ - data_ready
                        d_tr += 1
                        comp = st_ + l1_beats
                        # MSHR register (reap at now, then insert).
                        while msh_heap and msh_heap[0][0] <= v:
                            t3, b3 = heappop(msh_heap)
                            if msh_inf.get(b3) == t3:
                                del msh_inf[b3]
                        msh_inf[block] = comp
                        heappush(msh_heap, (comp, block))
                        if len(msh_inf) > msh_pk:
                            msh_pk = len(msh_inf)
                        # L1 fill on the planes (+ victim writeback).
                        vt = tag_l[s]
                        if vt == tag:
                            la_l[s] = comp
                            if not load:
                                dirty_l[s] = True
                        else:
                            vd = dirty_l[s]
                            if needs_evict and vt >= 0:
                                old_ft = ft_l[s]
                                old_la = la_l[s]
                            tag_l[s] = tag
                            ft_l[s] = comp
                            la_l[s] = comp
                            dirty_l[s] = not load
                            if vt >= 0:
                                if vd:
                                    wb1_d += 1
                                    st_ = comp if comp > d_nf else d_nf
                                    d_nf = st_ + l1_beats
                                    d_by += l1_beats
                                    d_qc += st_ - comp
                                    d_tr += 1
                                if needs_evict:
                                    observe_evict(
                                        EvictionEvent(
                                            s,
                                            vt,
                                            (vt << l1_ib) | s,
                                            comp,
                                            old_ft,
                                            old_la,
                                        )
                                    )
                        if poisoned:
                            poisoned.discard(s)
                        # ---- prefetcher training ----------------
                        if tcp_fast:
                            pfl_d += 1
                            tl_d += 1
                            old_seq = tht_hist[s]
                            old_sum = tht_sums[s]
                            # PHT update: learn old_seq -> tag.
                            pu_d += 1
                            hi = old_sum & seq_mask
                            pidx = (
                                hi
                                if n_bits == 0
                                else (hi << n_bits) | (s & miss_mask)
                            )
                            entries = pht_sets[pidx]._entries
                            et = old_seq[-1]
                            succ = entries.get(et)
                            if succ is None:
                                if len(entries) >= pht_ways:
                                    del entries[next(iter(entries))]
                                entries[et] = [tag]
                            else:
                                del entries[et]
                                entries[et] = succ
                                if succ[0] != tag:
                                    if tag in succ:
                                        succ.remove(tag)
                                    succ.insert(0, tag)
                                    del succ[pht_targets:]
                            tht_hist[s] = old_seq[1:] + (tag,)
                            new_sum = old_sum - old_seq[0] + tag
                            tht_sums[s] = new_sum
                            tp_d += 1
                            pfu_d += 1
                            # PHT predict on the new sequence.
                            pl_d += 1
                            hi = new_sum & seq_mask
                            pidx = (
                                hi
                                if n_bits == 0
                                else (hi << n_bits) | (s & miss_mask)
                            )
                            entries = pht_sets[pidx]._entries
                            succ = entries.get(tag)  # new_seq[-1] == tag
                            if succ is not None:
                                del entries[tag]
                                entries[tag] = succ
                                ph_d += 1
                                launch = v + pf_delay
                                npred = 0
                                for nt in succ:
                                    pb = (nt << tht_ib) | s
                                    if pb == block:
                                        continue
                                    npred += 1
                                    issue_pf(pb, launch)
                                pfp_d += npred
                        elif prefetcher is not None:
                            requests = observe_miss(
                                MissEvent(s, tag, block, pcs_l[i], not load, v)
                            )
                            if requests:
                                launch = v + pf_delay
                                for req in requests:
                                    issue_pf(req.block, launch)
                    if not load:
                        comp = v + 1.0
                sc += 1
                completions_l[i] = comp
                m = lc + inv_cr
                if comp > m:
                    m = comp
                lc = m
                commits_l[i] = m
                commits_np[i] = m
                i += 1

            # ================= span boundary =========================
            if i == next_mark:
                flush_stats()
                sync_planes()
                sync_shared()
                next_mark += mark_interval
                mark = CoreMark(i, n, i - P, window, lc, nd)
                for probe in active_probes:
                    probe.on_mark(mark, hierarchy)
                # Re-read the mirrored scalars: a probe-side fault
                # injection may have rewritten component state, and the
                # reference loop would observe that immediately.
                load_shared()
            if warmup_pending and i == warmup:
                warmup_pending = False
                flush_stats()
                warmup_instr = instr_l[warmup - 1]
                warmup_commit = lc
                hierarchy.mark_warmup_end()
            if i >= n:
                break

        flush_stats()
        sync_planes()
        sync_shared()
        stats["scalar_accesses"] = sc
        total_instructions = trace.instruction_count
        trailing = total_instructions - instr_l[n - 1]
        measured_instructions = total_instructions - warmup_instr
        cycles = lc + trailing / dispatch_rate - warmup_commit
        return CoreResult(measured_instructions, cycles, n - warmup)
