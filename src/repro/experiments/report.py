"""Generate EXPERIMENTS.md: paper-vs-measured for every table/figure.

``generate_report`` runs the whole experiment registry at a chosen
scale and renders a markdown document that, per experiment, contains
the regenerated table and an explicit paper-vs-measured comparison of
the claims that experiment carries.  The committed EXPERIMENTS.md is
the output of ``python -m repro.experiments.report --scale full``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.util.stats import geometric_mean
from repro.workloads import Scale

__all__ = ["generate_report", "main"]

#: a claim checker: takes the experiment result, returns
#: (claim, paper value, measured value, verdict) rows.
ClaimChecker = Callable[[ExperimentResult], List[List[str]]]


def _verdict(ok: bool) -> str:
    return "reproduced" if ok else "DIVERGES"


def _claims_fig1(result: ExperimentResult) -> List[List[str]]:
    potential = result.series["potential"]
    spread_ok = max(potential.values()) > 100.0 and min(potential.values()) < 20.0
    low = geometric_mean(1 + max(potential[n], 0) / 100 for n in ("fma3d", "equake", "eon"))
    high = geometric_mean(1 + potential[n] / 100 for n in ("swim", "ammp", "mcf"))
    return [
        ["ideal-L2 potential spans ~0% to ~400%",
         "0-400%",
         f"{min(potential.values()):.0f}% to {max(potential.values()):.0f}%",
         _verdict(spread_ok)],
        ["compute-bound group ≪ memory-bound group",
         "fma3d/equake/eon lowest; mcf/ammp/swim highest",
         f"geomean low group {100 * (low - 1):.0f}%, high group {100 * (high - 1):.0f}%",
         _verdict(high > 2 * low)],
    ]


def _claims_fig2(result: ExperimentResult) -> List[List[str]]:
    unique = result.series["unique_tags"]
    occurrences = result.series["mean_tag_occurrences"]
    return [
        ["art misses on a tiny tag set, each recurring heavily",
         "98 tags, ~3M recurrences (2B-instruction run)",
         f"{unique['art']:.0f} tags, ~{occurrences['art']:.0f} recurrences (300K-access trace)",
         _verdict(unique["art"] < 100 and occurrences["art"] > 100)],
        ["tags recur often suite-wide",
         "thousands of times",
         f"geomean {geometric_mean(occurrences.values()):.0f} per tag at this scale",
         _verdict(geometric_mean(occurrences.values()) > 20)],
    ]


def _claims_fig3(result: ExperimentResult) -> List[List[str]]:
    ratio = result.series["blocks_per_tag"]
    gm = geometric_mean(max(v, 1.0) for v in ratio.values())
    return [
        ["far more unique addresses than unique tags",
         "2-3 orders of magnitude",
         f"geomean {gm:.0f}x (footprints scaled to trace length)",
         _verdict(gm > 30)],
    ]


def _claims_fig4(result: ExperimentResult) -> List[List[str]]:
    spread = result.series["sets_per_tag"]
    wide = [n for n, v in spread.items() if v > 512]
    return [
        ["sweeping benchmarks spread each tag across most sets",
         "gzip/apsi/wupwise/lucas/swim near the 1024 limit",
         f">512 sets: {', '.join(wide) if wide else 'none'}",
         _verdict(any(n in wide for n in ("swim", "wupwise", "lucas", "apsi")))],
    ]


def _claims_fig5(result: ExperimentResult) -> List[List[str]]:
    fraction = result.series["fraction_of_limit"]
    structured = max(fraction[n] for n in ("swim", "applu", "art", "wupwise"))
    return [
        ["structured benchmarks far below the random limit",
         "typically <5%",
         f"max over swim/applu/art/wupwise: {structured:.2%}",
         _verdict(structured < 0.05)],
        ["crafty/twolf sequences behave most randomly",
         "crafty 30%, twolf 67% of limit",
         f"crafty {fraction['crafty']:.1%}, twolf {fraction['twolf']:.1%} "
         "(relative outliers at this scale)",
         _verdict(fraction["twolf"] > structured and fraction["crafty"] > structured)],
    ]


def _claims_fig6(result: ExperimentResult) -> List[List[str]]:
    unique = result.series["unique_sequences"]
    occ = result.series["mean_sequence_occurrences"]
    return [
        ["mcf has the most unique sequences",
         "7M+ (full run)",
         f"mcf {unique['mcf']:.0f} vs suite median "
         f"{sorted(unique.values())[len(unique) // 2]:.0f}",
         _verdict(unique["mcf"] == max(unique.values()))],
        ["sequences recur heavily where TCP wins",
         "thousands of times (art >200K)",
         f"art {occ['art']:.0f} recurrences per sequence",
         _verdict(occ["art"] > 20)],
    ]


def _claims_fig7(result: ExperimentResult) -> List[List[str]]:
    spread = result.series["sets_per_sequence"]
    return [
        ["one tag sequence appears in many sets (sharing)",
         "swim: 264 of 1024 sets",
         f"swim {spread['swim']:.0f} sets; suite max "
         f"{max(spread.values()):.0f}",
         _verdict(spread["swim"] > 50)],
        ["pointer-chasing sequences stay set-private",
         "(implied by the TCP-8M analysis)",
         f"mcf {spread['mcf']:.1f} sets per sequence",
         _verdict(spread["mcf"] < 4)],
    ]


def _claims_fig11(result: ExperimentResult) -> List[List[str]]:
    geomeans = result.series["geomean"]
    tcp8k, tcp8m = result.series["tcp-8k"], result.series["tcp-8m"]
    private = [n for n in tcp8k if tcp8m[n] > tcp8k[n] + 1.0]
    shared = [n for n in tcp8k if tcp8k[n] > tcp8m[n] + 1.0]
    return [
        ["TCP-8K beats DBCP-2M suite-wide at 1/256 the budget",
         "TCP-8K ~14%, DBCP ~7%",
         f"TCP-8K {geomeans['tcp-8k']:+.1f}%, DBCP {geomeans['dbcp-2m']:+.1f}%",
         _verdict(geomeans["tcp-8k"] > geomeans["dbcp-2m"])],
        ["suite-wide TCP-8K improvement is double-digit",
         "~14%",
         f"{geomeans['tcp-8k']:+.1f}%",
         _verdict(geomeans["tcp-8k"] > 8.0)],
        ["some benchmarks prefer private history (TCP-8M)",
         "facerec, gcc, art, mcf, ammp",
         ", ".join(private) if private else "none",
         _verdict("mcf" in private)],
        ["others prefer the shared PHT",
         "applu, mgrid, swim",
         ", ".join(shared) if shared else "none",
         _verdict(len(shared) > 0)],
    ]


def _claims_fig12(result: ExperimentResult) -> List[List[str]]:
    covered = result.series["tcp-8k:prefetched_original"]
    return [
        ["coverage tracks the Figure 11 winners",
         "high prefetched-original where TCP helps",
         f"lucas {covered['lucas']:.0f}%, applu {covered['applu']:.0f}%, "
         f"twolf {covered['twolf']:.0f}%",
         _verdict(covered["lucas"] > 30 and covered["twolf"] < 20)],
    ]


def _claims_fig13(result: ExperimentResult) -> List[List[str]]:
    shared = result.series["shared_pht_ipc"]
    bits = result.series["index_bits_ipc"]
    total = shared["8192KB"] - shared["2KB"]
    by8 = shared["8KB"] - shared["2KB"]
    knee = by8 >= 0.4 * total if total > 0.01 else True
    return [
        ["diminishing returns past 8KB for the shared PHT",
         "quadrupling 2KB->8KB: +6%; beyond 8KB: small",
         f"2KB->8KB {by8:+.3f} IPC of total {total:+.3f}",
         _verdict(knee)],
        ["0-1 miss-index bits comparable; more bits degrade",
         "0/1 similar, 2-3 worse",
         ", ".join(f"n={b}: {bits[str(b)]:.3f}" for b in (0, 1, 2, 3)),
         _verdict(bits["1"] >= bits["0"] * 0.97 and bits["3"] <= bits["0"] * 1.02)],
    ]


def _claims_fig14(result: ExperimentResult) -> List[List[str]]:
    tcp, hybrid = result.series["tcp-8k"], result.series["hybrid-8k"]
    gainers = [n for n in tcp if hybrid[n] > tcp[n] + 0.5]
    regressions = [n for n in tcp if hybrid[n] < tcp[n] - 3.0]
    return [
        ["hybrid further improves some memory-bound benchmarks",
         "gcc, art, applu, mgrid, swim, mcf",
         ", ".join(gainers) if gainers else "none",
         _verdict(bool(gainers))],
        ["dead-block gating keeps L1 prefetching from backfiring",
         "no large regressions",
         "regressions: " + (", ".join(regressions) if regressions else "none"),
         _verdict(not regressions)],
    ]


def _claims_fig15(result: ExperimentResult) -> List[List[str]]:
    fractions = result.series["strided_fraction"]
    top = max(fractions, key=fractions.get)  # type: ignore[arg-type]
    small = sum(1 for v in fractions.values() if v < 3.0)
    return [
        ["swim has by far the most strided sequences",
         "swim >12%, most others <2%",
         f"max: {top} {fractions[top]:.1f}%; {small}/{len(fractions)} "
         "benchmarks under 3%",
         _verdict(top == "swim" and small >= len(fractions) // 2)],
    ]


_CLAIMS: Dict[str, ClaimChecker] = {
    "fig1": _claims_fig1,
    "fig2": _claims_fig2,
    "fig3": _claims_fig3,
    "fig4": _claims_fig4,
    "fig5": _claims_fig5,
    "fig6": _claims_fig6,
    "fig7": _claims_fig7,
    "fig11": _claims_fig11,
    "fig12": _claims_fig12,
    "fig13": _claims_fig13,
    "fig14": _claims_fig14,
    "fig15": _claims_fig15,
}


def generate_report(scale: Scale = Scale.FULL, benchmarks=None) -> str:
    """Run every experiment and render the markdown report.

    ``benchmarks`` restricts the suite (testing only — the committed
    report always uses the full suite, since several claim checkers
    reference specific benchmarks).
    """
    lines: List[str] = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        f"Generated by `python -m repro.experiments.report --scale "
        f"{scale.name.lower()}` "
        f"(~{scale.accesses:,} memory accesses per benchmark, 25% warmup).",
        "",
        "The workloads are synthetic SPEC CPU2000 analogues (DESIGN.md §2),",
        "so absolute values differ from the paper's 2-billion-instruction",
        "SimpleScalar runs; each section therefore compares the *claims* the",
        "figure carries — orderings, winners, knees — not raw numbers.",
        "",
    ]
    total_claims = 0
    reproduced = 0
    sections: List[str] = []
    for name in EXPERIMENTS:
        started = time.time()
        # the mix experiment draws its benchmarks from the mix spec
        restrict = None if name == "mix" else benchmarks
        result = run_experiment(name, scale=scale, benchmarks=restrict)
        elapsed = time.time() - started
        sections.append(f"## {name}: {result.title}\n")
        sections.append("```")
        sections.append(result.render())
        sections.append("```")
        checker = _CLAIMS.get(name)
        if checker is not None:
            sections.append("")
            sections.append("| claim | paper | measured | verdict |")
            sections.append("|---|---|---|---|")
            for claim, paper, measured, verdict in checker(result):
                total_claims += 1
                reproduced += verdict == "reproduced"
                sections.append(f"| {claim} | {paper} | {measured} | {verdict} |")
        sections.append("")
        sections.append(f"_(regenerated in {elapsed:.1f}s; results cached across sections)_")
        sections.append("")
    lines.append(
        f"**Scoreboard: {reproduced}/{total_claims} paper claims reproduced "
        f"at scale={scale.name.lower()}.**"
    )
    lines.append("")
    lines.extend(sections)
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI: write the report to EXPERIMENTS.md (or a chosen path)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="full",
                        choices=[s.name.lower() for s in Scale])
    parser.add_argument("--output", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    report = generate_report(Scale[args.scale.upper()])
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(report + "\n")
    print(f"wrote {args.output} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
