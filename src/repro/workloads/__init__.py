"""Synthetic workloads standing in for SPEC CPU2000.

The paper simulates the full SPEC2000 suite; reference binaries and
inputs are not redistributable, so this package provides 26 synthetic
workload generators — one per SPEC2000 benchmark name — each tuned to
reproduce the memory behaviour the paper itself documents for that
benchmark (working-set size and tag-locality profile from Figures 2–7,
memory-boundedness ordering from Figure 1, strided-sequence share from
Figure 15).  See DESIGN.md §2 for the substitution argument.

A workload is a :class:`repro.workloads.trace.Trace`: numpy arrays of
(pc, address, load/store flag, dependence distance, non-memory
instruction gap) plus an ILP parameter, which is everything the CPU
timing model and memory hierarchy need.
"""

from repro.workloads.io import (
    TRACE_CACHE_ENV,
    load_trace,
    save_trace,
    trace_cache_scope,
)
from repro.workloads.kernels import TraceBuilder
from repro.workloads.suite import (
    BENCHMARK_ORDER,
    SUITE,
    BenchmarkSpec,
    cache_trace,
    generate,
    generate_all,
)
from repro.workloads.trace import Scale, Trace

__all__ = [
    "BENCHMARK_ORDER",
    "BenchmarkSpec",
    "SUITE",
    "Scale",
    "TRACE_CACHE_ENV",
    "Trace",
    "TraceBuilder",
    "cache_trace",
    "generate",
    "generate_all",
    "load_trace",
    "save_trace",
    "trace_cache_scope",
]
