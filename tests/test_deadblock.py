"""Tests for the timekeeping dead-block predictor."""

import pytest

from repro.deadblock import DeadBlockConfig, TimekeepingDeadBlockPredictor
from repro.prefetchers.base import EvictionEvent


def evict(block: int, fill: float, last: float, now: float = 0.0) -> EvictionEvent:
    return EvictionEvent(block & 1023, block >> 10, block, now, fill, last)


class TestConfig:
    def test_invalid_sets(self):
        with pytest.raises(ValueError):
            DeadBlockConfig(sets=3)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            DeadBlockConfig(dead_factor=0.0)

    def test_budget(self):
        config = DeadBlockConfig(sets=512, ways=8, entry_bytes=8)
        assert TimekeepingDeadBlockPredictor(config).storage_bytes() == 512 * 8 * 8


class TestPrediction:
    def test_unknown_block_uses_default_threshold(self):
        predictor = TimekeepingDeadBlockPredictor(
            DeadBlockConfig(default_idle_threshold=100.0, min_idle=10.0)
        )
        # idle 50 < default threshold 100 -> alive
        assert not predictor.is_dead(0x42, fill_time=0.0, last_access=0.0, now=50.0)
        # idle 150 > 100 -> dead
        assert predictor.is_dead(0x42, fill_time=0.0, last_access=0.0, now=150.0)

    def test_live_time_history_drives_decision(self):
        predictor = TimekeepingDeadBlockPredictor(
            DeadBlockConfig(min_idle=10.0, dead_factor=1.0)
        )
        # The block historically lives for 200 cycles.
        predictor.observe_eviction(evict(0x42, fill=0.0, last=200.0))
        # idle 150 < live time 200 -> still considered alive
        assert not predictor.is_dead(0x42, fill_time=1000.0, last_access=1000.0, now=1150.0)
        # idle 250 > 200 -> dead
        assert predictor.is_dead(0x42, fill_time=1000.0, last_access=1000.0, now=1250.0)

    def test_min_idle_floor(self):
        predictor = TimekeepingDeadBlockPredictor(DeadBlockConfig(min_idle=64.0))
        predictor.observe_eviction(evict(0x42, fill=0.0, last=1.0))  # live time ~1
        # Even with tiny live history, idle below min_idle is never dead.
        assert not predictor.is_dead(0x42, fill_time=0.0, last_access=100.0, now=130.0)

    def test_history_smoothing(self):
        predictor = TimekeepingDeadBlockPredictor(
            DeadBlockConfig(min_idle=1.0, dead_factor=1.0)
        )
        predictor.observe_eviction(evict(7, fill=0.0, last=100.0))
        predictor.observe_eviction(evict(7, fill=0.0, last=300.0))
        # smoothed live time = (100 + 300) / 2 = 200
        assert not predictor.is_dead(7, 0.0, 0.0, now=150.0)
        assert predictor.is_dead(7, 0.0, 0.0, now=250.0)

    def test_dead_factor_scales(self):
        config = DeadBlockConfig(dead_factor=2.0, min_idle=1.0)
        predictor = TimekeepingDeadBlockPredictor(config)
        predictor.observe_eviction(evict(7, fill=0.0, last=100.0))
        assert not predictor.is_dead(7, 0.0, 0.0, now=150.0)  # 150 < 2*100
        assert predictor.is_dead(7, 0.0, 0.0, now=250.0)

    def test_counters(self):
        predictor = TimekeepingDeadBlockPredictor(
            DeadBlockConfig(default_idle_threshold=10.0, min_idle=1.0)
        )
        predictor.observe_eviction(evict(1, 0.0, 5.0))
        predictor.is_dead(1, 0.0, 0.0, now=100.0)
        assert predictor.evictions_recorded == 1
        assert predictor.queries == 1
        assert predictor.dead_verdicts == 1

    def test_reset(self):
        predictor = TimekeepingDeadBlockPredictor(DeadBlockConfig(min_idle=1.0))
        predictor.observe_eviction(evict(7, 0.0, 1000.0))
        predictor.reset()
        assert predictor.evictions_recorded == 0
        # History gone: falls back to the default threshold.
        assert predictor.is_dead(7, 0.0, 0.0, now=5000.0)

    def test_lru_capacity_bounded(self):
        config = DeadBlockConfig(sets=2, ways=2)
        predictor = TimekeepingDeadBlockPredictor(config)
        for block in range(100):
            predictor.observe_eviction(evict(block, 0.0, 10.0))
        total = sum(len(lru) for lru in predictor._history)
        assert total <= config.entries
