"""Shared fixtures for the benchmark harness.

Each ``benchmarks/test_*`` module regenerates one of the paper's tables
or figures (DESIGN.md has the per-experiment index), prints the same
rows/series the paper reports, and sanity-checks the shape.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``quick`` (default),
``standard``, or ``full``.  Shape assertions that need steady-state
behaviour only engage at ``standard`` and above; ``quick`` runs verify
the machinery end to end in seconds.
"""

import os

import pytest

from repro.workloads import Scale


def _selected_scale() -> Scale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").upper()
    try:
        return Scale[name]
    except KeyError:
        raise RuntimeError(
            f"REPRO_BENCH_SCALE={name!r} is not one of "
            + ", ".join(s.name.lower() for s in Scale)
        )


@pytest.fixture(scope="session")
def scale() -> Scale:
    """The trace scale every bench in this session runs at."""
    return _selected_scale()


@pytest.fixture(scope="session")
def strict(scale) -> bool:
    """Whether steady-state shape assertions should be enforced."""
    return scale is not Scale.QUICK


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Experiments are deterministic and internally cached, so repeated
    timing rounds would only measure the cache; one round reflects the
    real regeneration cost.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
