"""Figure 2: unique tags and mean recurrences per tag (L1D miss stream)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, suite_order
from repro.experiments.section3 import profile
from repro.util.stats import geometric_mean
from repro.workloads import Scale

__all__ = ["run"]


def run(
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = suite_order(benchmarks)
    rows = []
    series = {"unique_tags": {}, "mean_tag_occurrences": {}}
    for name in names:
        stats = profile(name, scale).tags
        series["unique_tags"][name] = float(stats.unique_tags)
        series["mean_tag_occurrences"][name] = stats.mean_tag_occurrences
        rows.append([name, stats.misses, stats.unique_tags, stats.mean_tag_occurrences])
    geomean_tags = geometric_mean(
        max(1.0, value) for value in series["unique_tags"].values()
    )
    notes = [
        f"Geomean unique tags per benchmark: {geomean_tags:.0f} "
        "(the paper reports 576 for full-length SPEC2000 runs).",
        "Tags recur heavily: a small history table captures the working set.",
    ]
    return ExperimentResult(
        experiment="fig2",
        title="Unique tags and mean appearances per tag in the L1D miss stream",
        headers=["benchmark", "misses", "unique tags", "mean occurrences/tag"],
        rows=rows,
        series=series,
        notes=notes,
    )
