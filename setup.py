"""Setup shim for environments without the `wheel` package, and home
of the optional native-extension build.

`pip install -e .` needs `wheel` to build editable metadata; fully
offline environments may lack it.  `python setup.py develop` (or adding
`src/` to a .pth file) installs the package equivalently.

The `_native` extension (`repro.backend.native._native`) is declared
``optional``: a missing compiler turns the build step into a no-op
instead of a failed install, and the backend falls back to the numpy
engine at runtime (see `repro/backend/native/build.py`, which can also
compile the one-file extension lazily into a user cache).  Installing
with the ``[native]`` extra is just the documented way of saying "I
want the compiled epilogue baked into site-packages"; the extra pulls
no extra dependencies.
"""
import os

from setuptools import Extension, setup

_NATIVE_SOURCE = os.path.join("src", "repro", "backend", "native", "_native.c")

setup(
    ext_modules=[
        Extension(
            "repro.backend.native._native",
            sources=[_NATIVE_SOURCE],
            optional=True,
        )
    ]
)
