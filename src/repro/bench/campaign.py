"""The campaign benchmark: warm-pool throughput vs the seed path.

PR 3's hot-path bench measures one simulation; this one measures the
*campaign* layer wrapped around ~150 of them.  Both arms run the same
Figure 11 cell mix through :func:`repro.sim.parallel.prewarm` on cold
process state and must produce per-cell identical
:class:`~repro.sim.results.SimResult`\\ s:

``attempt`` arm
    The seed pathway: one short-lived process per attempt, no on-disk
    trace cache, so every attempt pays fork/teardown and regenerates
    its trace.
``pool`` arm
    This PR's pathway: warm workers with the workload-affinity queue,
    the mmap-backed trace cache rooted in a private temporary
    directory, and the long-lived-worker GC discipline.

Arms are interleaved (attempt, pool, attempt, pool, …) so drift in
machine load hits both equally, and each arm reports its fastest
repeat — scheduling noise only ever adds time.  The wall-clock ratio
is the campaign layer's speedup, comparable across hosts because both
arms ran the same simulations on the same interpreter.

Both arms run at their own *defaults* (``jobs=0`` = the CPU count):
the comparison is system-vs-system — the seed campaign stack as it
shipped against the optimized stack as it ships — mirroring how
``repro.bench.legacy`` stands in for the seed per-access driver.

The result is written to ``BENCH_campaign.json``; the committed copy
at the repository root is the baseline ``benchmarks/
test_campaign_perf.py`` compares against.
"""

from __future__ import annotations

import json
import platform
import tempfile
import time
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from repro.backend import backend_name
from repro.sim import runner
from repro.sim.config import SimulationConfig
from repro.sim.parallel import prewarm
from repro.sim.store import use_store
from repro.workloads import Scale
from repro.workloads import suite as workload_suite

__all__ = [
    "DEFAULT_CONFIG_LABELS",
    "DEFAULT_WORKLOADS",
    "SCHEMA",
    "run_campaign_bench",
]

#: schema tag embedded in every result file (bump on layout changes).
SCHEMA = "repro-tcp/campaign-bench/v1"

#: the fig11 cell mix: every paper configuration over the three
#: benchmarks whose behaviours dominate the suite (dense-stride
#: scientific, pointer-chasing memory-bound, irregular
#: instruction-heavy) — 12 cells.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("swim", "mcf", "gcc")
DEFAULT_CONFIG_LABELS: Tuple[str, ...] = ("base", "tcp-8k", "tcp-8m", "dbcp-2m")


def _config_for(label: str) -> SimulationConfig:
    """The fig11 configuration behind a column label."""
    if label == "base":
        return SimulationConfig.baseline()
    return SimulationConfig.for_prefetcher(label)


def _reset_process_state() -> None:
    """Forget every cached simulation and trace: each arm starts cold."""
    runner.clear_cache()
    workload_suite._CACHE.clear()


def _run_arm(
    mode: str,
    configs: Sequence[SimulationConfig],
    workloads: Sequence[str],
    scale: Scale,
    jobs: int,
    trace_cache: object,
) -> Tuple[float, Dict[Tuple[str, str], Dict[str, object]]]:
    """One cold campaign under ``mode``; returns (seconds, cell results)."""
    _reset_process_state()
    started = time.perf_counter()
    report = prewarm(
        configs,
        scale,
        workloads,
        jobs=jobs,
        worker_mode=mode,
        trace_cache=trace_cache,
    )
    elapsed = time.perf_counter() - started
    report.raise_if_failed()
    cells = {
        (workload, config.resolved_label()): runner.simulate(
            workload, config, scale
        ).to_dict()
        for workload in workloads
        for config in configs
    }
    return elapsed, cells


def run_campaign_bench(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    config_labels: Sequence[str] = DEFAULT_CONFIG_LABELS,
    scale: Scale = Scale.QUICK,
    repeats: int = 3,
    jobs: int = 0,
    output: Optional[str] = None,
    log: Optional[TextIO] = None,
) -> Dict[str, object]:
    """Run the campaign benchmark; return (and optionally write) results.

    Parameters
    ----------
    workloads, config_labels:
        The campaign grid (every workload × every configuration).
    scale:
        Trace length per cell (``Scale.QUICK`` = 20 000 accesses — the
        campaign layer's overhead is per *job*, so short jobs probe it
        hardest and keep the bench cheap).
    repeats:
        Timed campaigns per arm, interleaved; the fastest is reported.
    jobs:
        Worker count for both arms (0 = each mode's default, the CPU
        count).
    output:
        Path to write the JSON document to (``BENCH_campaign.json``).
    log:
        Stream for one progress line per repeat (e.g. ``sys.stdout``).

    Raises
    ------
    RuntimeError
        If any cell's result differs between the two arms — the
        benchmark refuses to time arms that disagree.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    configs = [_config_for(label) for label in config_labels]
    attempt_times: List[float] = []
    pool_times: List[float] = []
    attempt_cells: Dict[Tuple[str, str], Dict[str, object]] = {}
    pool_cells: Dict[Tuple[str, str], Dict[str, object]] = {}
    # Both arms run storeless: the store is orthogonal to worker mode
    # and its disk writes would only add noise to the timing.
    with use_store(None), tempfile.TemporaryDirectory(
        prefix="repro-campaign-bench-"
    ) as cache_dir:
        for repeat in range(repeats):
            attempt_s, attempt_cells = _run_arm(
                "attempt", configs, workloads, scale, jobs, trace_cache=False
            )
            attempt_times.append(attempt_s)
            pool_s, pool_cells = _run_arm(
                "pool", configs, workloads, scale, jobs, trace_cache=cache_dir
            )
            pool_times.append(pool_s)
            if log is not None:
                log.write(
                    f"repeat {repeat + 1}/{repeats}: "
                    f"attempt {attempt_s:6.2f}s  pool {pool_s:6.2f}s  "
                    f"({attempt_s / pool_s:.2f}x)\n"
                )
                log.flush()
    _reset_process_state()

    mismatched = sorted(
        "/".join(cell)
        for cell in set(attempt_cells) | set(pool_cells)
        if attempt_cells.get(cell) != pool_cells.get(cell)
    )
    if mismatched:
        raise RuntimeError(
            "campaign arms disagree on "
            f"{len(mismatched)} cell(s): {', '.join(mismatched)}"
        )

    attempt_best = min(attempt_times)
    pool_best = min(pool_times)
    cells = len(workloads) * len(configs)
    document: Dict[str, object] = {
        "schema": SCHEMA,
        "scale": scale.name.lower(),
        "repeats": repeats,
        # Campaign arms run through simulate(), so they honour the
        # backend selection (REPRO_BACKEND / `repro-tcp bench
        # --campaign --backend ...`); record which one was timed.
        "backend": backend_name(),
        "jobs": jobs,
        "workloads": list(workloads),
        "configs": list(config_labels),
        "cells": cells,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "attempt_seconds": attempt_best,
        "pool_seconds": pool_best,
        "attempt_seconds_all": attempt_times,
        "pool_seconds_all": pool_times,
        "attempt_cells_per_sec": cells / attempt_best,
        "pool_cells_per_sec": cells / pool_best,
        "speedup": attempt_best / pool_best,
        "results_identical": True,
    }
    if output is not None:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=False)
            handle.write("\n")
    return document
