"""Summary statistics used by the analysis and experiment layers.

The paper reports geometric means over the benchmark suite (the
"average 14% improvement" headline is a geomean of per-benchmark IPC
ratios) plus a large number of per-benchmark averages.  This module
centralises that math so every experiment computes it the same way.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "RunningStat",
    "geometric_mean",
    "harmonic_mean",
    "percent_change",
]


def geometric_mean(values: Iterable[float]) -> float:
    """Return the geometric mean of positive ``values``.

    The paper's suite-wide speedups are geometric means of per-benchmark
    ratios.  Raises :class:`ValueError` on an empty input or any
    non-positive value (a non-positive ratio indicates a bug upstream,
    not data to be averaged).
    """
    total = 0.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        total += math.log(value)
        count += 1
    if count == 0:
        raise ValueError("geometric mean of an empty sequence")
    return math.exp(total / count)


def harmonic_mean(values: Iterable[float]) -> float:
    """Return the harmonic mean of positive ``values``.

    Appropriate for averaging rates (e.g. IPC across equal instruction
    counts); provided for the ablation reports.
    """
    total = 0.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError(f"harmonic mean requires positive values, got {value}")
        total += 1.0 / value
        count += 1
    if count == 0:
        raise ValueError("harmonic mean of an empty sequence")
    return count / total


def percent_change(baseline: float, measured: float) -> float:
    """Return the relative change from ``baseline`` to ``measured`` in percent.

    ``percent_change(2.0, 2.28)`` is ``14.0...``.  This is the metric on
    the y-axis of the paper's Figures 1, 11, and 14.
    """
    if baseline == 0:
        raise ValueError("percent change from a zero baseline is undefined")
    return (measured - baseline) / baseline * 100.0


class RunningStat:
    """Single-pass mean/variance/min/max accumulator (Welford).

    Used by the analysis passes, which stream millions of miss records
    and cannot afford to buffer them just to compute a mean.
    """

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Sequence[float]) -> None:
        """Fold a batch of observations into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations so far (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the observations so far."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStat") -> None:
        """Fold another accumulator into this one (parallel combine)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def __repr__(self) -> str:
        return (
            f"RunningStat(count={self.count}, mean={self.mean:.4g}, "
            f"stddev={self.stddev:.4g})"
        )
