"""The engine hot path: equivalence with, and speedup over, the legacy driver.

The engine refactor (slotted events, precomputed geometry, the flat
``access_time`` fast path, bulk trace conversion) claims to be a pure
performance change.  This module checks both halves of that claim:

* **equivalence** — the legacy reference driver
  (:func:`repro.bench.legacy.run_legacy`), which replays the seed
  tree's per-access call pattern, must commit exactly the same cycles,
  instructions, and hierarchy statistics as the engine loop on the
  same trace and configuration;
* **performance** — the engine/legacy throughput ratio measured by
  :func:`repro.bench.hotpath.run_hotpath_bench` must not regress by
  more than 20% against the committed baseline (``BENCH_hotpath.json``
  at the repository root).  The ratio compares two drivers timed on
  the same interpreter and host, so the gate is meaningful on any CI
  machine even though raw accesses/sec are not.

Scale selection follows the shared benchmark convention
(``REPRO_BENCH_SCALE``); the regression gate uses fewer repeats at
``quick`` scale, trading noise margin for runtime, which the 20%
tolerance absorbs.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.bench import run_hotpath_bench
from repro.bench.hotpath import SCHEMA
from repro.bench.legacy import run_legacy
from repro.cpu import OutOfOrderCore
from repro.memory import MemoryHierarchy
from repro.sim.config import SimulationConfig
from repro.workloads import Scale, generate

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

#: covers the hit-dominated fast path (none), the miss/prefetch path
#: (nextline, tcp-8k), and the gated L1-promotion path (hybrid-8k).
EQUIVALENCE_PREFETCHERS = ("none", "nextline", "tcp-8k", "hybrid-8k")


def _run_both(workload: str, prefetcher: str, warmup: int = 0):
    """Run one trace under the engine loop and the legacy driver."""
    trace = generate(workload, Scale.QUICK)
    config = SimulationConfig.for_prefetcher(prefetcher)

    engine_machine = MemoryHierarchy(config.hierarchy)
    engine_machine.attach_prefetcher(config.build_prefetcher())
    engine = OutOfOrderCore(config.core).run(trace, engine_machine, warmup=warmup)

    legacy_machine = MemoryHierarchy(config.hierarchy)
    legacy_machine.attach_prefetcher(config.build_prefetcher())
    legacy = run_legacy(trace, legacy_machine, config.core, warmup=warmup)
    return engine, engine_machine, legacy, legacy_machine


@pytest.mark.parametrize("prefetcher", EQUIVALENCE_PREFETCHERS)
@pytest.mark.parametrize("workload", ("swim", "mcf"))
def test_legacy_driver_commits_identical_results(workload, prefetcher):
    """Engine and legacy drivers agree bit-for-bit on every outcome."""
    engine, engine_machine, legacy, legacy_machine = _run_both(workload, prefetcher)
    assert legacy.cycles == engine.cycles
    assert legacy.instructions == engine.instructions
    assert legacy.accesses == engine.accesses
    assert legacy_machine.stats == engine_machine.stats


def test_legacy_driver_matches_with_warmup():
    """Warmup bookkeeping (snapshot point, measured window) also agrees."""
    engine, engine_machine, legacy, legacy_machine = _run_both(
        "mcf", "tcp-8k", warmup=1000
    )
    assert legacy.cycles == engine.cycles
    assert legacy.instructions == engine.instructions
    assert legacy_machine.stats == engine_machine.stats
    assert legacy_machine.warmup_stats == engine_machine.warmup_stats


def test_engine_speedup_has_not_regressed(scale):
    """Fresh engine/legacy ratio stays within 20% of the committed baseline.

    This is the CI perf-smoke gate.  It re-measures the full default
    grid and compares geomean speedups; a >20% drop means an engine
    change gave back the refactor's performance win.
    """
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    assert baseline["schema"] == SCHEMA, (
        "BENCH_hotpath.json was written by an incompatible benchmark "
        "version; regenerate it with `repro-tcp bench`"
    )
    repeats = 2 if scale is Scale.QUICK else 3
    fresh = run_hotpath_bench(scale=scale, repeats=repeats, log=sys.stderr)
    floor = baseline["geomean_speedup"] * 0.8
    assert fresh["geomean_speedup"] >= floor, (
        f"hot-path speedup regressed: fresh geomean "
        f"{fresh['geomean_speedup']:.2f}x is below 80% of the committed "
        f"baseline ({baseline['geomean_speedup']:.2f}x)"
    )
