"""The Tag Correlating Prefetcher (Section 4 of the paper).

On every L1 data-cache miss with split ``(miss_index, miss_tag)`` the
prefetcher performs the paper's two operations:

**Update** — refresh the history so the tables stay current:

1. ``miss_index`` selects the THT row, yielding the previous tag
   sequence ``(tag1 .. tagk)`` at this set;
2. that sequence indexes the PHT (Figure 9 hash) and the entry tagged
   with its most recent tag gets its *next-tag* field set to
   ``miss_tag`` — the table has now learned
   ``(tag1 .. tagk) -> miss_tag``;
3. the THT row shifts to ``(tag2 .. tagk, miss_tag)``.

**Lookup** — predict the tag that will follow the current miss:

1. the *new* THT sequence ``(tag2 .. tagk, miss_tag)`` indexes the PHT;
2. the entry tagged ``miss_tag`` supplies the predicted next tag
   ``tag'``;
3. ``tag'`` combined with ``miss_index`` reconstructs a full cache-line
   address, which is prefetched into L2.

With ``k = 2`` the learned patterns are exactly the paper's three-tag
sequences (``tag1, tag2 -> tag3``), and because the PHT is shared
across cache sets (when ``miss_index_bits = 0``) a single pattern
serves every set in which the tag sequence recurs — the space saving
that lets 8 KB of PHT outperform megabyte-scale address correlation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.pht import PatternHistoryTable, PHTConfig
from repro.core.tht import TagHistoryTable
from repro.prefetchers.base import MissEvent, Prefetcher, PrefetchRequest

__all__ = ["TCPConfig", "TagCorrelatingPrefetcher", "tcp_8k", "tcp_8m", "tcp_with_pht"]


@dataclass(frozen=True)
class TCPConfig:
    """Full TCP configuration: THT geometry + PHT geometry."""

    #: THT rows; must equal the L1 data cache's set count.
    tht_rows: int = 1024
    #: k — previous tags kept per set (the paper evaluates k = 2).
    history_length: int = 2
    tht_tag_bytes: int = 2
    pht: PHTConfig = field(default_factory=PHTConfig)

    def __post_init__(self) -> None:
        if self.history_length <= 0:
            raise ValueError("history length (k) must be positive")


class TagCorrelatingPrefetcher(Prefetcher):
    """Two-level tag correlating prefetcher (THT + PHT)."""

    def __init__(self, config: TCPConfig = TCPConfig(), name: str = "") -> None:
        pht_kb = config.pht.storage_bytes() / 1024
        label = name or (
            f"tcp-{pht_kb:g}K" if pht_kb < 1024 else f"tcp-{pht_kb / 1024:g}M"
        )
        super().__init__(label)
        self.config = config
        self.tht = TagHistoryTable(
            config.tht_rows, config.history_length, config.tht_tag_bytes
        )
        self.pht = PatternHistoryTable(config.pht)
        #: prefetch into L1 as well (set by the hybrid subclass).
        self.into_l1 = False

    # ------------------------------------------------------------------

    def observe_miss(self, miss: MissEvent) -> List[PrefetchRequest]:
        """The paper's update + lookup, producing at most ``targets``
        prefetch requests."""
        self.stats.lookups += 1
        index = miss.index
        tag = miss.tag

        # --- update -----------------------------------------------------
        old_sequence = self.tht.read(index)
        self.pht.update(old_sequence, index, tag)
        new_sequence = self.tht.push(index, tag)
        self.stats.updates += 1

        # --- lookup -----------------------------------------------------
        predicted = self.pht.predict(new_sequence, index)
        if not predicted:
            return []
        compose_block = self.tht.compose_block
        requests: List[PrefetchRequest] = []
        for next_tag in predicted:
            block = compose_block(next_tag, index)
            if block == miss.block:
                continue  # that block is already being demand-fetched
            requests.append(PrefetchRequest(block, into_l1=self.into_l1))
        self.stats.predictions += len(requests)
        return requests

    # ------------------------------------------------------------------

    def storage_bytes(self) -> int:
        """THT + PHT hardware budget."""
        return self.tht.storage_bytes() + self.pht.storage_bytes()

    def reset(self) -> None:
        super().reset()
        self.tht.reset()
        self.pht.reset()


def tcp_8k(**pht_overrides: object) -> TagCorrelatingPrefetcher:
    """The paper's TCP-8K: 256-set, 8-way PHT, no miss-index bits.

    All cache sets share the single 8 KB pattern store — the realistic
    design point of Figure 11.
    """
    pht = PHTConfig(sets=256, ways=8, miss_index_bits=0, **pht_overrides)  # type: ignore[arg-type]
    return TagCorrelatingPrefetcher(TCPConfig(pht=pht), name="tcp-8K")


def tcp_8m(**pht_overrides: object) -> TagCorrelatingPrefetcher:
    """The paper's TCP-8M: 262144-set, 8-way PHT using the full miss index.

    Every L1 set gets private pattern history.  The paper includes it
    as an idealised no-sequence-sharing reference, not a realistic
    design.
    """
    pht = PHTConfig(sets=262144, ways=8, miss_index_bits=10, **pht_overrides)  # type: ignore[arg-type]
    return TagCorrelatingPrefetcher(TCPConfig(pht=pht), name="tcp-8M")


def tcp_with_pht(
    pht_bytes: int,
    miss_index_bits: int = 0,
    ways: int = 8,
    field_bytes: int = 2,
) -> TagCorrelatingPrefetcher:
    """Build a TCP with a PHT of ``pht_bytes`` total (Figure 13 sweeps).

    ``pht_bytes`` must decompose into a power-of-two set count at the
    given associativity and field width.
    """
    entry_bytes = 2 * field_bytes
    sets = pht_bytes // (ways * entry_bytes)
    config = PHTConfig(
        sets=sets, ways=ways, miss_index_bits=miss_index_bits, field_bytes=field_bytes
    )
    if config.storage_bytes() != pht_bytes:
        raise ValueError(
            f"PHT of {pht_bytes}B is not realisable with {ways} ways and "
            f"{field_bytes}B fields"
        )
    return TagCorrelatingPrefetcher(TCPConfig(pht=config))
