"""The hybrid prefetcher of Section 5.2.2: TCP + dead-block gated L1 fill.

The base TCP stops at L2 because L1 is small and easily polluted.  The
paper's hybrid goes further: "after a prediction is made, the predicted
data is prefetched into L2 immediately, but will update L1 only after
the corresponding cache line is predicted dead", with a dedicated
L1/L2 prefetch bus so prefetch traffic does not compete with demand
traffic.

Mechanically, this class is a :class:`TagCorrelatingPrefetcher` that

* marks its requests ``into_l1=True`` (the hierarchy records them as
  pending per-set promotions);
* exposes ``l1_promotion_gate`` — the hierarchy calls it before
  displacing an L1 line with a promoted block, and the gate consults
  the timekeeping dead-block predictor;
* consumes L1 eviction events to train that predictor.

Run it with ``HierarchyParams(dedicated_prefetch_bus=True)`` to match
the paper's configuration (``hybrid_8k`` + the simulator's
``SimulationConfig`` do this automatically).
"""

from __future__ import annotations

from repro.core.tcp import TagCorrelatingPrefetcher, TCPConfig, tcp_8k
from repro.deadblock import DeadBlockConfig, TimekeepingDeadBlockPredictor
from repro.memory.cache import CacheLine
from repro.prefetchers.base import EvictionEvent

__all__ = ["HybridTCP", "hybrid_8k"]


class HybridTCP(TagCorrelatingPrefetcher):
    """TCP prefetching into L2 immediately and into L1 when safe."""

    needs_eviction_stream = True

    def __init__(
        self,
        config: TCPConfig = TCPConfig(),
        deadblock: DeadBlockConfig = DeadBlockConfig(),
        name: str = "hybrid",
    ) -> None:
        super().__init__(config, name=name)
        self.into_l1 = True
        self.deadblock = TimekeepingDeadBlockPredictor(deadblock)
        self.promotions_approved = 0
        self.promotions_denied = 0

    # ------------------------------------------------------------------
    # Hooks consumed by the memory hierarchy
    # ------------------------------------------------------------------

    def l1_promotion_gate(self, victim: CacheLine, index: int, now: float) -> bool:
        """May a pending promotion evict ``victim`` from set ``index``?

        Every victim — prefetched lines included — must be predicted
        dead by the timekeeping predictor: evicting a line that is still
        live trades one miss for another and, worse, injects a spurious
        miss into the per-set tag history that the TCP itself learns
        from.
        """
        block = self.tht.compose_block(victim.tag, index)
        dead = self.deadblock.is_dead(block, victim.fill_time, victim.last_access, now)
        if dead:
            self.promotions_approved += 1
        else:
            self.promotions_denied += 1
        return dead

    def observe_eviction(self, evt: EvictionEvent) -> None:
        """Train the dead-block predictor with the victim's live time."""
        self.deadblock.observe_eviction(evt)

    # ------------------------------------------------------------------

    def storage_bytes(self) -> int:
        """THT + PHT + dead-block history budget."""
        return super().storage_bytes() + self.deadblock.storage_bytes()

    def reset(self) -> None:
        super().reset()
        self.deadblock.reset()
        self.promotions_approved = 0
        self.promotions_denied = 0


def hybrid_8k() -> HybridTCP:
    """The paper's Hybrid-8K: the TCP-8K tables plus the dead-block gate."""
    base = tcp_8k()
    return HybridTCP(base.config, name="hybrid-8K")
