"""Behavioural-class validation of the synthetic suite.

DESIGN.md §2 argues the substitution is sound because each synthetic
benchmark reproduces the *statistical profile* the paper documents for
its namesake.  These tests pin those profiles down per class, using the
same analysis machinery as the Section 3 figures (at STANDARD scale —
this is the slower half of the test suite, ~20s).
"""

import pytest

from repro.analysis import capture_miss_stream, sequence_stats, tag_stats
from repro.core.strided import strided_fraction
from repro.workloads import Scale

SCALE = Scale.STANDARD


@pytest.fixture(scope="module")
def profiles():
    names = ("fma3d", "eon", "crafty", "twolf", "swim", "applu",
             "wupwise", "art", "mcf", "ammp", "lucas")
    data = {}
    for name in names:
        stream = capture_miss_stream(name, SCALE)
        data[name] = {
            "stream": stream,
            "tags": tag_stats(stream),
            "sequences": sequence_stats(stream),
            "strided": strided_fraction(stream.indices, stream.tags),
        }
    return data


class TestComputeBoundClass:
    def test_low_miss_rates(self, profiles):
        for name in ("fma3d", "eon"):
            assert profiles[name]["stream"].miss_rate < 0.2, name

    def test_small_tag_working_sets(self, profiles):
        for name in ("fma3d", "eon"):
            assert profiles[name]["tags"].unique_tags < 120, name

    def test_heavy_tag_recurrence(self, profiles):
        assert profiles["fma3d"]["tags"].mean_tag_occurrences > 100


class TestRandomClass:
    def test_sequences_near_random_limit(self, profiles):
        structured = max(
            profiles[name]["sequences"].fraction_of_upper_limit
            for name in ("swim", "applu", "art")
        )
        for name in ("crafty", "twolf"):
            assert profiles[name]["sequences"].fraction_of_upper_limit > structured

    def test_low_sequence_recurrence(self, profiles):
        for name in ("crafty", "twolf"):
            assert profiles[name]["sequences"].mean_sequence_occurrences < 10, name


class TestSweepClass:
    def test_wide_tag_spread(self, profiles):
        for name in ("swim", "applu", "wupwise", "lucas"):
            assert profiles[name]["tags"].mean_sets_per_tag > 300, name

    def test_shared_sequences_across_sets(self, profiles):
        for name in ("swim", "applu", "wupwise"):
            assert profiles[name]["sequences"].mean_sets_per_sequence > 20, name

    def test_strong_correlation(self, profiles):
        for name in ("swim", "applu", "wupwise", "lucas", "art"):
            assert profiles[name]["sequences"].fraction_of_upper_limit < 0.05, name


class TestChaseClass:
    def test_private_per_set_sequences(self, profiles):
        for name in ("mcf", "ammp"):
            assert profiles[name]["sequences"].mean_sets_per_sequence < 4, name

    def test_many_unique_sequences(self, profiles):
        assert (
            profiles["mcf"]["sequences"].unique_sequences
            > 10 * profiles["art"]["sequences"].unique_sequences
        )


class TestStridedSignature:
    def test_swim_dominates_strided_share(self, profiles):
        swim = profiles["swim"]["strided"]
        assert swim > 0.05
        for name in ("mcf", "crafty", "twolf", "fma3d"):
            assert profiles[name]["strided"] < swim / 2, name


class TestAddressVsTagAsymmetry:
    def test_every_class_shows_the_asymmetry(self, profiles):
        for name, data in profiles.items():
            stats = data["tags"]
            assert stats.unique_blocks > stats.unique_tags, name
            assert stats.mean_tag_occurrences > stats.mean_block_occurrences, name
