"""The Pattern History Table (second level of the TCP, Figure 8).

The PHT stores observed tag-correlation patterns.  It is organised as a
set-associative structure (8-way in the paper); the set index comes
from the :class:`repro.core.indexing.PHTIndexScheme` hash of the tag
sequence, and within a set each entry is tagged with the most recent
tag of its indexing sequence, storing the predicted successor tag:

    ``entry = (tag, tag')``  where ``tag'`` is the predicted next tag.

PHT size is ``sets × ways × 2 × field_bytes``: each entry holds two tag
fields, so with 2-byte fields the paper's TCP-8K (256 sets × 8 ways)
costs exactly 8 KB and TCP-8M (262 144 sets × 8 ways) exactly 8 MB.

Multi-target entries (Section 6, after Joseph & Grunwald's Markov
prefetcher) are supported via ``targets > 1``: the entry keeps its most
recent ``targets`` successors in MRU order and the prefetcher may issue
all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.indexing import IndexFunction, PHTIndexScheme
from repro.util.bitops import index_geometry, is_power_of_two
from repro.util.lruset import LRUSet

__all__ = ["PHTConfig", "PatternHistoryTable"]


@dataclass(frozen=True)
class PHTConfig:
    """Pattern History Table geometry."""

    sets: int = 256
    ways: int = 8
    #: n — miss-index bits mixed into the set index (0 = fully shared).
    miss_index_bits: int = 0
    #: storage bytes per tag field (the paper's sizing uses 2).
    field_bytes: int = 2
    #: successors stored per entry (1 = the paper's base design).
    targets: int = 1
    index_function: IndexFunction = IndexFunction.TRUNCATED_ADD

    def __post_init__(self) -> None:
        if not is_power_of_two(self.sets):
            raise ValueError(f"PHT set count must be a power of two, got {self.sets}")
        if self.ways <= 0:
            raise ValueError(f"PHT associativity must be positive, got {self.ways}")
        if self.targets <= 0:
            raise ValueError(f"targets per entry must be positive, got {self.targets}")
        if self.miss_index_bits > index_geometry(self.sets)[0]:
            raise ValueError(
                f"{self.miss_index_bits} miss-index bits cannot fit in a "
                f"{self.sets}-set PHT index"
            )

    @property
    def index_scheme(self) -> PHTIndexScheme:
        """The Figure 9 index computation for this geometry."""
        return PHTIndexScheme(
            total_index_bits=index_geometry(self.sets)[0],
            miss_index_bits=self.miss_index_bits,
            function=self.index_function,
        )

    def storage_bytes(self) -> int:
        """Hardware budget: sets × ways × (1 + targets) tag fields."""
        return self.sets * self.ways * (1 + self.targets) * self.field_bytes


class PatternHistoryTable:
    """Associative storage of ``tag-sequence -> next tag(s)`` patterns."""

    def __init__(self, config: PHTConfig = PHTConfig()) -> None:
        self.config = config
        self._scheme = config.index_scheme
        self._sets: List[LRUSet[int, List[int]]] = [
            LRUSet(config.ways) for _ in range(config.sets)
        ]
        self.updates = 0
        self.lookups = 0
        self.hits = 0

    # ------------------------------------------------------------------

    def set_index(self, sequence: Sequence[int], miss_index: int) -> int:
        """Expose the index computation (tests and analysis use this)."""
        return self._scheme.compute(sequence, miss_index)

    def update(self, sequence: Sequence[int], miss_index: int, next_tag: int) -> None:
        """Learn ``sequence -> next_tag``.

        The entry is located by the hashed set index and tagged with
        the most recent tag of ``sequence``; its successor list is
        refreshed MRU-first (a single-target PHT simply overwrites).
        """
        self.updates += 1
        lru = self._sets[self._scheme.compute(sequence, miss_index)]
        entry_tag = sequence[-1]
        successors = lru.get(entry_tag)
        if successors is None:
            lru.put(entry_tag, [next_tag])
            return
        if successors and successors[0] == next_tag:
            return
        if next_tag in successors:
            successors.remove(next_tag)
        successors.insert(0, next_tag)
        del successors[self.config.targets :]

    def predict(self, sequence: Sequence[int], miss_index: int) -> Optional[List[int]]:
        """Return the successors recorded for ``sequence`` (MRU first).

        Returns None on a PHT miss.  The returned list is a copy, so
        callers may not corrupt table state.
        """
        self.lookups += 1
        lru = self._sets[self._scheme.compute(sequence, miss_index)]
        successors = lru.get(sequence[-1])
        if successors is None:
            return None
        self.hits += 1
        return list(successors)

    # ------------------------------------------------------------------

    def storage_bytes(self) -> int:
        return self.config.storage_bytes()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that found a pattern."""
        return self.hits / self.lookups if self.lookups else 0.0

    def occupancy(self) -> int:
        """Number of valid entries currently stored."""
        return sum(len(lru) for lru in self._sets)

    def reset(self) -> None:
        for lru in self._sets:
            lru.clear()
        self.updates = 0
        self.lookups = 0
        self.hits = 0

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"PatternHistoryTable({cfg.sets}x{cfg.ways}, n={cfg.miss_index_bits}, "
            f"{self.storage_bytes()}B)"
        )
