"""Trace-driven out-of-order core timing model.

The model walks the memory-access trace once, in program order, and
computes for every access its dispatch, issue, completion, and commit
times under the structural constraints of the paper's core (Table 1):

* **Frontend / dispatch**: instructions enter the window at
  ``min(issue_width, workload base ILP)`` per cycle.  Instruction-cache
  misses (modelled by the hierarchy) stall dispatch.
* **Window (RUU)**: instruction *i* cannot dispatch until instruction
  ``i - window`` has committed.  This is what bounds memory-level
  parallelism: once the window fills behind a long miss, the machine
  stalls — exactly the behaviour Section 5.1 describes.
* **LSQ**: at most ``lsq`` memory operations between dispatch and
  commit.
* **Load/store units**: memory operations issue at most
  ``ls_units`` per cycle.
* **Dependences**: an access whose address depends on an earlier
  load's data (``deps[i] = d``) cannot issue before that load
  completes — dependent misses serialize (pointer chasing).
* **Commit**: in order; a load commits when its data has returned,
  a store retires into the store buffer one cycle after issue.

The result is the classic "windowed" analytic OoO model: exact for the
mechanisms above, abstracting register-level scheduling, which is
sufficient (and standard) for studying cache/prefetcher trade-offs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.trace import Trace

__all__ = ["CoreParams", "CoreResult", "OutOfOrderCore"]


@dataclass(frozen=True)
class CoreParams:
    """Core parameters (defaults are the paper's Table 1)."""

    issue_width: int = 8
    window: int = 128  # RUU entries
    lsq: int = 128
    ls_units: int = 4
    #: pipeline depth charged once at the start of the run.
    frontend_depth: int = 10

    def __post_init__(self) -> None:
        if min(self.issue_width, self.window, self.lsq, self.ls_units) <= 0:
            raise ValueError("all core resources must be positive")


@dataclass
class CoreResult:
    """Timing outcome of one run."""

    instructions: int
    cycles: float
    accesses: int

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0


class OutOfOrderCore:
    """Runs a trace against a memory hierarchy and reports IPC."""

    def __init__(self, params: CoreParams = CoreParams()) -> None:
        self.params = params

    def run(
        self,
        trace: Trace,
        hierarchy: MemoryHierarchy,
        warmup: int = 0,
        progress: Optional[Callable[[int, int, float], None]] = None,
        progress_interval: int = 2048,
        sanitizer: Optional[object] = None,
    ) -> CoreResult:
        """Simulate the whole trace; returns the timing result.

        ``warmup`` accesses at the start train all state (caches,
        predictors, prefetchers) but are excluded from the reported
        instruction/cycle counts — the analogue of the paper skipping
        the first billion instructions.  The hierarchy accumulates its
        own statistics during the run; callers read them from
        ``hierarchy.stats`` (and snapshot/``since`` for warmup
        exclusion).

        ``progress`` (if given) is called every ``progress_interval``
        accesses as ``(accesses_done, accesses_total, sim_time)`` —
        the hook behind campaign heartbeats and mid-run checkpoint
        markers.  ``sanitizer`` (a :class:`repro.sim.sanitizer.Sanitizer`)
        runs its invariant checks at the same marks; when neither is
        given the loop pays one integer compare per access.
        """
        params = self.params
        n = len(trace)
        if not 0 <= warmup < max(n, 1):
            raise ValueError(f"warmup ({warmup}) must be < trace length ({n})")
        if n == 0:
            return CoreResult(0, 0.0, 0)

        geometry = hierarchy.params.l1d
        blocks, indices, tags = geometry.decompose_array(trace.addrs)
        gaps = trace.gaps
        deps = trace.deps
        is_load = trace.is_load
        pcs = trace.pcs
        model_icache = hierarchy.params.model_icache
        access = hierarchy.access
        ifetch = hierarchy.instruction_fetch

        dispatch_rate = min(float(params.issue_width), trace.base_ipc)
        commit_rate = float(params.issue_width)
        window = params.window
        lsq = params.lsq
        ls_interval = 1.0 / params.ls_units

        # Ring buffers sized to the maximum lookback any constraint
        # needs: the LSQ depth, and the longest dependence distance in
        # the trace (suite workloads use short distances, but imported
        # traces may not).
        max_dep = int(deps.max()) if n else 0
        ring = 1
        while ring < max(lsq, max_dep + 1, 512):
            ring <<= 1
        ring_mask = ring - 1
        completions = [0.0] * ring  # data-ready time per access
        commits = [0.0] * ring      # commit time per access

        # Window occupancy: (instruction number, commit time) of
        # in-flight memory accesses, in program order.
        rob: deque = deque()

        now_dispatch = float(params.frontend_depth)
        last_mem_issue = 0.0
        last_commit = 0.0
        instr_num = 0
        warmup_instr = 0
        warmup_commit = 0.0

        if progress_interval <= 0:
            raise ValueError(
                f"progress interval must be positive, got {progress_interval}"
            )
        if sanitizer is not None:
            interval = sanitizer.interval  # type: ignore[attr-defined]
            mark_interval = (
                min(progress_interval, interval) if progress is not None else interval
            )
        else:
            mark_interval = progress_interval
        # The sentinel n + 1 never matches, so an uninstrumented run
        # pays exactly one integer compare per access.
        next_mark = mark_interval if (progress or sanitizer) else n + 1

        for i in range(n):
            if i == warmup and warmup:
                warmup_instr = instr_num
                warmup_commit = last_commit
                hierarchy.mark_warmup_end()
            gap = int(gaps[i])
            instr_num += gap + 1

            # --- dispatch: frontend bandwidth + window occupancy ------
            now_dispatch += (gap + 1) / dispatch_rate
            window_floor = instr_num - window
            while rob and rob[0][0] <= window_floor:
                entry = rob.popleft()
                if entry[1] > now_dispatch:
                    now_dispatch = entry[1]
            if i >= lsq:
                lsq_release = commits[(i - lsq) & ring_mask]
                if lsq_release > now_dispatch:
                    now_dispatch = lsq_release

            if model_icache:
                penalty = ifetch(now_dispatch, int(pcs[i]))
                if penalty > 0.0:
                    now_dispatch += penalty

            # --- issue: LS-unit throughput + address dependence -------
            issue = now_dispatch
            if last_mem_issue + ls_interval > issue:
                issue = last_mem_issue + ls_interval
            dep = deps[i]
            if dep:
                data_ready = completions[(i - dep) & ring_mask]
                if data_ready > issue:
                    issue = data_ready
            last_mem_issue = issue

            # --- memory access ----------------------------------------
            load = bool(is_load[i])
            result = access(
                issue, int(indices[i]), int(tags[i]), int(blocks[i]), not load, int(pcs[i])
            )
            if load:
                completion = result.completion
            else:
                # Stores retire into the store buffer; the cache/bus
                # work was performed above for state and bandwidth.
                completion = issue + 1.0
            completions[i & ring_mask] = completion

            # --- in-order commit --------------------------------------
            commit = last_commit + 1.0 / commit_rate
            if completion > commit:
                commit = completion
            last_commit = commit
            commits[i & ring_mask] = commit
            rob.append((instr_num, commit))

            if i + 1 == next_mark:
                next_mark += mark_interval
                # Progress before checks: the runner's hook may apply a
                # scheduled fault-injection corruption here, and the
                # sanitizer must observe it at this same mark.
                if progress is not None:
                    progress(i + 1, n, last_commit)
                if sanitizer is not None:
                    sanitizer.check_core(len(rob), window, last_commit, now_dispatch)  # type: ignore[attr-defined]
                    sanitizer.check(hierarchy, last_commit)  # type: ignore[attr-defined]

        total_instructions = trace.instruction_count
        trailing = total_instructions - instr_num
        measured_instructions = total_instructions - warmup_instr
        cycles = last_commit + trailing / dispatch_rate - warmup_commit
        return CoreResult(measured_instructions, cycles, n - warmup)
