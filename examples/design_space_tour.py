#!/usr/bin/env python3
"""Tour the TCP design space: sizes, indexing, and Section 6 variants.

Four mini-studies on a memory-bound subset of the suite:

1. PHT size (the Figure 13 knee at 8 KB);
2. miss-index bits (sharing vs separating pattern history);
3. THT depth k (how much history the correlation needs);
4. the paper's Section 6 future-work designs — multi-target entries
   and the stride-filtered TCP — against the base design.

Usage: ``python examples/design_space_tour.py [scale]``
"""

import sys

from repro import Scale, SimulationConfig, simulate
from repro.core import MultiTargetTCP, StrideFilteredTCP, TCPConfig, tcp_with_pht
from repro.core.pht import PHTConfig
from repro.core.tcp import TagCorrelatingPrefetcher
from repro.sim.config import register_prefetcher
from repro.util.stats import geometric_mean
from repro.util.tables import format_table

WORKLOADS = ("swim", "applu", "art", "mgrid", "lucas")
KB = 1024


def geomean_gain(prefetcher_name: str, scale: Scale) -> float:
    """Suite-subset geomean IPC improvement for one registered prefetcher."""
    ratios = []
    for workload in WORKLOADS:
        base = simulate(workload, SimulationConfig.baseline(), scale)
        result = simulate(workload, SimulationConfig.for_prefetcher(prefetcher_name), scale)
        ratios.append(result.ipc / base.ipc)
    return (geometric_mean(ratios) - 1.0) * 100.0


def main() -> int:
    scale = Scale[(sys.argv[1] if len(sys.argv) > 1 else "quick").upper()]
    rows = []

    for size_kb in (2, 8, 32, 128):
        name = register_prefetcher(
            f"tour-size-{size_kb}k", lambda s=size_kb: tcp_with_pht(s * KB)
        )
        rows.append(["PHT size", f"{size_kb}KB shared", geomean_gain(name, scale)])

    for bits in (0, 1, 2, 3):
        name = register_prefetcher(
            f"tour-bits-{bits}",
            lambda n=bits: tcp_with_pht(8 * KB, miss_index_bits=n),
        )
        rows.append(["index bits", f"8KB PHT, n={bits}", geomean_gain(name, scale)])

    for depth in (1, 2, 3):
        name = register_prefetcher(
            f"tour-depth-{depth}",
            lambda k=depth: TagCorrelatingPrefetcher(
                TCPConfig(history_length=k, pht=PHTConfig(sets=256, ways=8))
            ),
        )
        rows.append(["THT depth", f"k={depth}", geomean_gain(name, scale)])

    register_prefetcher("tour-multi2", lambda: MultiTargetTCP(targets=2))
    register_prefetcher("tour-stride", StrideFilteredTCP)
    rows.append(["variant", "base TCP-8K", geomean_gain("tcp-8k", scale)])
    rows.append(["variant", "multi-target (2)", geomean_gain("tour-multi2", scale)])
    rows.append(["variant", "stride-filtered", geomean_gain("tour-stride", scale)])

    print(
        format_table(
            ["study", "design point", "geomean IPC gain %"],
            rows,
            title=(
                "TCP design-space tour on "
                + ", ".join(WORKLOADS)
                + f" (scale={scale.name.lower()})"
            ),
        )
    )
    print(
        "\nExpected shapes: the size curve flattens past 8KB; 0-1 index bits\n"
        "are comparable and more degrade; k=2 is the paper's sweet spot; the\n"
        "Section 6 variants trade traffic (multi-target) or PHT capacity\n"
        "(stride filter) for coverage."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
