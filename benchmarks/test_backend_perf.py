"""The backend layer: parity with, and speedup over, the python backend.

The numpy batch-stepping backend (:mod:`repro.backend.vector`) and the
compiled-epilogue native backend (:mod:`repro.backend.native`) claim
to be pure performance changes.  This module checks both halves of
that claim, per backend:

* **parity** — on the same trace and configuration each contender
  must commit exactly the same cycles, instructions, and hierarchy
  statistics as the ``python`` reference backend, including for the
  configurations it handles by falling back to the reference loop;
* **performance** — the contender/python throughput ratios measured
  by :func:`repro.bench.backend.run_backend_bench` must not regress by
  more than 20% against the committed baseline (``BENCH_backend.json``
  at the repository root), and the committed native ratio itself must
  clear the 3x floor the backend exists to provide.  Ratios compare
  two backends timed on the same interpreter and host, so the gates
  are meaningful on any CI machine even though raw accesses/sec are
  not.

Scale selection follows the shared benchmark convention
(``REPRO_BENCH_SCALE``); the regression gate uses fewer repeats at
``quick`` scale, trading noise margin for runtime, which the 20%
tolerance absorbs.  Note the gate compares ratios measured at possibly
different scales: at ``quick`` scale the short cold-start-dominated
traces batch almost nothing, so the fresh ratio reflects mostly the
scalar epilogue — the committed baseline's floor still holds because
the epilogue alone (interpreted for numpy, compiled for native) clears
it.
"""

import json
import sys
import warnings
from pathlib import Path

import pytest

from repro.backend import get_backend
from repro.backend.native import build as native_build
from repro.bench.backend import SCHEMA, run_backend_bench
from repro.memory import MemoryHierarchy
from repro.sim.config import SimulationConfig
from repro.workloads import Scale, generate

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_backend.json"

#: covers the batched path (none, nextline, tcp-8k) and every fallback
#: reason the batch engines know (dbcp-2m observes the access stream,
#: hybrid-8k gates L1 promotions).
PARITY_PREFETCHERS = ("none", "nextline", "tcp-8k", "dbcp-2m", "hybrid-8k")

CONTENDERS = ("numpy", "native")


def _require(contender: str) -> None:
    if contender == "native" and native_build.load() is None:
        pytest.skip(f"native extension unavailable ({native_build.load_error()})")


def _run_both(contender: str, workload: str, prefetcher: str, warmup: int = 0):
    """Run one trace under the python backend and one contender."""
    trace = generate(workload, Scale.QUICK)
    config = SimulationConfig.for_prefetcher(prefetcher)

    machines = {}
    results = {}
    for name in ("python", contender):
        machine = MemoryHierarchy(config.hierarchy)
        machine.attach_prefetcher(config.build_prefetcher())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            results[name] = get_backend(name).run(
                trace, machine, config.core, warmup=warmup
            )
        machines[name] = machine
    return results, machines


@pytest.mark.parametrize("contender", CONTENDERS)
@pytest.mark.parametrize("prefetcher", PARITY_PREFETCHERS)
@pytest.mark.parametrize("workload", ("swim", "mcf"))
def test_backends_commit_identical_results(contender, workload, prefetcher):
    """Every contender agrees bit-for-bit with the reference backend."""
    _require(contender)
    results, machines = _run_both(contender, workload, prefetcher)
    assert results[contender].cycles == results["python"].cycles
    assert results[contender].instructions == results["python"].instructions
    assert results[contender].accesses == results["python"].accesses
    assert machines[contender].stats == machines["python"].stats


@pytest.mark.parametrize("contender", CONTENDERS)
def test_backends_match_with_warmup(contender):
    """Warmup bookkeeping (snapshot point, measured window) also agrees."""
    _require(contender)
    results, machines = _run_both(contender, "mcf", "tcp-8k", warmup=1000)
    assert results[contender].cycles == results["python"].cycles
    assert results[contender].instructions == results["python"].instructions
    assert machines[contender].stats == machines["python"].stats
    assert machines[contender].warmup_stats == machines["python"].warmup_stats


def test_committed_native_baseline_clears_three_x():
    """The committed baseline carries a native arm at >=3x geomean.

    This gates the repository artifact, not the current host: the
    whole point of the compiled epilogue is a >=3x geomean over the
    python reference on the fig11 mix at standard scale, and the
    committed BENCH_backend.json is the proof.  Regenerate it with
    `repro-tcp bench --backend native` (or the default two-arm run)
    on a machine with a C compiler if this fires.
    """
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    assert baseline["schema"] == SCHEMA
    speedups = baseline["speedups"]
    assert "native" in speedups, (
        "committed BENCH_backend.json has no native arm; regenerate it "
        "on a machine with a C compiler"
    )
    geomean = speedups["native"]["geomean_speedup"]
    assert geomean >= 3.0, (
        f"committed native geomean speedup {geomean:.2f}x is below the "
        f"3x floor the compiled epilogue is required to provide"
    )


def test_backend_speedup_has_not_regressed(scale):
    """Fresh contender/python ratios stay within 20% of the baseline.

    This is the CI backend-parity gate.  It re-measures the full
    default grid (which also re-asserts bit-identical results — the
    bench raises on any divergence) and compares per-contender geomean
    speedups; a >20% drop means an engine change gave back that
    backend's win.  Contenders absent from the fresh run (no compiler
    on this host, or ``REPRO_NATIVE=0``) are not gated here — the
    committed-baseline test above still enforces the artifact.
    """
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    assert baseline["schema"] == SCHEMA, (
        "BENCH_backend.json was written by an incompatible benchmark "
        "version; regenerate it with `repro-tcp bench --backend native`"
    )
    repeats = 2 if scale is Scale.QUICK else 3
    fresh = run_backend_bench(scale=scale, repeats=repeats, log=sys.stderr)
    for contender, fresh_stats in fresh["speedups"].items():
        committed = baseline["speedups"].get(contender)
        if committed is None:
            continue
        floor = committed["geomean_speedup"] * 0.8
        assert fresh_stats["geomean_speedup"] >= floor, (
            f"{contender} backend speedup regressed: fresh geomean "
            f"{fresh_stats['geomean_speedup']:.2f}x is below 80% of the "
            f"committed baseline ({committed['geomean_speedup']:.2f}x)"
        )
