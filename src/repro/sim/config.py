"""Simulation configuration: machine + prefetcher selection.

``SimulationConfig`` bundles the core and hierarchy parameters (whose
defaults are the paper's Table 1) with a prefetcher factory.  Factories
— rather than instances — are used throughout so that every run gets a
cold prefetcher, and so configurations are picklable/hashable for the
sweep cache.

``PREFETCHERS`` is the registry of named factories used by the CLI,
the benches, and the examples: ``none``, ``tcp-8k``, ``tcp-8m``,
``dbcp-2m``, ``hybrid-8k``, ``stride``, ``stream``, ``markov``,
``nextline``, ``tcp-stride``, ``tcp-multi2``, ``tcp-conf``, ``tcp-look2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

from repro.core import (
    ConfidenceFilteredTCP,
    LookaheadTCP,
    MultiTargetTCP,
    StrideFilteredTCP,
    hybrid_8k,
    tcp_8k,
    tcp_8m,
)
from repro.cpu import CoreParams
from repro.memory import HierarchyParams
from repro.prefetchers import (
    DeadBlockCorrelatingPrefetcher,
    MarkovPrefetcher,
    NextLinePrefetcher,
    NullPrefetcher,
    Prefetcher,
    StreamBufferPrefetcher,
    StridePrefetcher,
)

__all__ = ["PREFETCHERS", "SimulationConfig", "prefetcher_factory"]

PrefetcherFactory = Callable[[], Prefetcher]

PREFETCHERS: Dict[str, PrefetcherFactory] = {
    "none": NullPrefetcher,
    "nextline": NextLinePrefetcher,
    "stride": StridePrefetcher,
    "stream": StreamBufferPrefetcher,
    "markov": MarkovPrefetcher,
    "dbcp-2m": DeadBlockCorrelatingPrefetcher,
    "tcp-8k": tcp_8k,
    "tcp-8m": tcp_8m,
    "hybrid-8k": hybrid_8k,
    "tcp-stride": StrideFilteredTCP,
    "tcp-multi2": MultiTargetTCP,
    "tcp-conf": ConfidenceFilteredTCP,
    "tcp-look2": LookaheadTCP,
}


def prefetcher_factory(name: str) -> PrefetcherFactory:
    """Resolve a registry name to its factory (KeyError lists options)."""
    try:
        return PREFETCHERS[name]
    except KeyError:
        raise KeyError(
            f"unknown prefetcher {name!r}; choose from {sorted(PREFETCHERS)}"
        ) from None


def register_prefetcher(name: str, factory: PrefetcherFactory) -> str:
    """Add (or replace) a named prefetcher factory.

    Experiments that sweep prefetcher parameters (e.g. the Figure 13
    PHT sizes) register one factory per design point; the name keeps
    :class:`SimulationConfig` hashable for the result cache.  Returns
    the name for chaining.
    """
    PREFETCHERS[name] = factory
    return name


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to run one simulation."""

    prefetcher: str = "none"
    core: CoreParams = field(default_factory=CoreParams)
    hierarchy: HierarchyParams = field(default_factory=HierarchyParams)
    #: label used in result tables; defaults to the prefetcher name.
    label: Optional[str] = None
    #: runtime invariant-checking tier ("off" | "cheap" | "full");
    #: None defers to the ``REPRO_SANITIZE`` environment variable.
    #: Checking never changes simulated results, so this field is
    #: excluded from the store's config fingerprint.
    sanitize: Optional[str] = None
    #: simulation backend ("python" | "numpy"); None defers to the
    #: ``REPRO_BACKEND`` environment variable (default "python").
    #: Backends are required to be bit-identical, so the field is
    #: ``repr=False``: it stays out of ``repr()``-derived store
    #: fingerprints and golden-corpus filenames — results computed by
    #: either backend are interchangeable checkpoints.  Equality and
    #: hashing still include it, so the in-process result cache keys
    #: runs per backend (the differential tests rely on that).
    backend: Optional[str] = field(default=None, repr=False)
    #: number of cores sharing the L2/bus/DRAM; 1 = the classic
    #: single-core machine.  ``repr=False`` plus the custom
    #: ``__repr__`` below keep single-core fingerprints byte-identical
    #: to what they were before the multicore dimension existed —
    #: the dimension only enters ``repr()`` (and hence store/golden
    #: fingerprints) when a mix is actually configured.
    cores: int = field(default=1, repr=False)
    #: benchmark per core (``mix[i]`` runs on core ``i``); None for
    #: single-core runs.  Fingerprinted via the custom ``__repr__``.
    mix: Optional[Tuple[str, ...]] = field(default=None, repr=False)
    #: share one PHT across all cores' prefetchers (private per-core
    #: PHTs otherwise).  Only meaningful with a mix.
    shared_pht: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.sanitize is not None and self.sanitize not in ("off", "cheap", "full"):
            raise ValueError(
                f"sanitize must be off, cheap, or full, got {self.sanitize!r}"
            )
        if self.backend is not None and not isinstance(self.backend, str):
            raise ValueError(f"backend must be a name or None, got {self.backend!r}")
        if self.mix is not None and not isinstance(self.mix, tuple):
            # JSON wire round-trips deliver lists; keep the config
            # hashable by coercing through the frozen-dataclass wall.
            object.__setattr__(self, "mix", tuple(self.mix))
        if not isinstance(self.cores, int) or self.cores < 1:
            raise ValueError(f"cores must be a positive int, got {self.cores!r}")
        if self.mix is not None and len(self.mix) != self.cores:
            raise ValueError(
                f"mix has {len(self.mix)} benchmarks but cores={self.cores}"
            )
        if self.mix is None and self.cores != 1:
            raise ValueError("cores > 1 requires a mix (one benchmark per core)")
        if self.shared_pht and self.mix is None:
            raise ValueError("shared_pht is only meaningful with a mix")

    def __repr__(self) -> str:
        # Reproduce the pre-multicore auto-repr byte-for-byte for
        # single-core configs: store fingerprints and golden-corpus
        # filenames are repr-derived, and every existing checkpoint
        # must keep its key.  The multicore dimension is appended only
        # when actually in use.
        base = (
            f"{self.__class__.__name__}("
            f"prefetcher={self.prefetcher!r}, core={self.core!r}, "
            f"hierarchy={self.hierarchy!r}, label={self.label!r}, "
            f"sanitize={self.sanitize!r})"
        )
        if self.mix is None and self.cores == 1 and not self.shared_pht:
            return base
        return (
            base[:-1]
            + f", cores={self.cores!r}, mix={self.mix!r}, "
            + f"shared_pht={self.shared_pht!r})"
        )

    def resolved_label(self) -> str:
        return self.label if self.label is not None else self.prefetcher

    def build_prefetcher(self) -> Prefetcher:
        """Instantiate a cold prefetcher for one run."""
        return prefetcher_factory(self.prefetcher)()

    def with_hierarchy(self, **overrides: object) -> "SimulationConfig":
        """Copy with hierarchy parameter overrides."""
        return replace(self, hierarchy=replace(self.hierarchy, **overrides))  # type: ignore[arg-type]

    @staticmethod
    def baseline() -> "SimulationConfig":
        """No prefetching, paper's Table 1 machine."""
        return SimulationConfig(prefetcher="none", label="base")

    @staticmethod
    def ideal_l2() -> "SimulationConfig":
        """The Figure 1 machine: every L2 data access hits."""
        config = SimulationConfig(prefetcher="none", label="ideal-l2")
        return config.with_hierarchy(ideal_l2=True)

    @staticmethod
    def for_prefetcher(name: str) -> "SimulationConfig":
        """Standard machine with the named prefetcher attached.

        The hybrid gets the dedicated L1/L2 prefetch bus the paper adds
        in Section 5.2.2; everything else uses the shared bus.
        """
        config = SimulationConfig(prefetcher=name)
        if name.startswith("hybrid"):
            config = config.with_hierarchy(dedicated_prefetch_bus=True)
        return config
