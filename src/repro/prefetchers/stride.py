"""Stride prefetching with a Reference Prediction Table (Baer & Chen).

The paper's related work (Section 7, [2]) describes the classic
per-load stride prefetcher: a PC-indexed table remembers each load's
last address and stride and, once the stride has been confirmed by a
two-bit state machine, prefetches ``address + stride * lookahead``.

We drive it from the L1 miss stream (consistent with every other
prefetcher in this repo — see the base-class docstring) and key the
Reference Prediction Table by the missing instruction's PC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.prefetchers.base import MissEvent, Prefetcher, PrefetchRequest
from repro.util.bitops import is_power_of_two
from repro.util.lruset import LRUSet

__all__ = ["StrideConfig", "StridePrefetcher"]

# Two-bit confidence states of the classic RPT.
_INITIAL, _TRANSIENT, _STEADY, _NO_PRED = 0, 1, 2, 3


@dataclass(frozen=True)
class StrideConfig:
    """Reference Prediction Table geometry."""

    sets: int = 64
    ways: int = 4
    #: how many strides ahead to prefetch once in the steady state.
    lookahead: int = 2
    #: bytes of storage per RPT entry (PC tag + last block + stride + state).
    entry_bytes: int = 13

    def __post_init__(self) -> None:
        if not is_power_of_two(self.sets):
            raise ValueError(f"RPT set count must be a power of two, got {self.sets}")
        if self.lookahead <= 0:
            raise ValueError(f"lookahead must be positive, got {self.lookahead}")


class _RPTEntry:
    __slots__ = ("last_block", "stride", "state")

    def __init__(self, last_block: int) -> None:
        self.last_block = last_block
        self.stride = 0
        self.state = _INITIAL


class StridePrefetcher(Prefetcher):
    """PC-indexed stride prefetcher (Reference Prediction Table)."""

    def __init__(self, config: StrideConfig = StrideConfig()) -> None:
        super().__init__("stride")
        self.config = config
        self._sets: List[LRUSet[int, _RPTEntry]] = [
            LRUSet(config.ways) for _ in range(config.sets)
        ]

    def observe_miss(self, miss: MissEvent) -> List[PrefetchRequest]:
        self.stats.lookups += 1
        cfg = self.config
        index = (miss.pc >> 2) & (cfg.sets - 1)
        lru = self._sets[index]
        entry = lru.get(miss.pc)
        if entry is None:
            lru.put(miss.pc, _RPTEntry(miss.block))
            return []

        observed = miss.block - entry.last_block
        self.stats.updates += 1
        if observed == entry.stride and observed != 0:
            # Stride confirmed: strengthen confidence.
            entry.state = _STEADY if entry.state in (_TRANSIENT, _STEADY) else _TRANSIENT
        else:
            if entry.state == _STEADY:
                entry.state = _INITIAL
            elif entry.state == _INITIAL:
                entry.state = _TRANSIENT
            else:
                entry.state = _NO_PRED
            entry.stride = observed
        entry.last_block = miss.block

        if entry.state != _STEADY or entry.stride == 0:
            return []
        self.stats.predictions += cfg.lookahead
        stride = entry.stride
        return [
            PrefetchRequest(miss.block + stride * step)
            for step in range(1, cfg.lookahead + 1)
            if miss.block + stride * step > 0
        ]

    def storage_bytes(self) -> int:
        return self.config.sets * self.config.ways * self.config.entry_bytes

    def reset(self) -> None:
        super().reset()
        for lru in self._sets:
            lru.clear()
