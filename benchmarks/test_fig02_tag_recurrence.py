"""Regenerate Figure 2: unique tags and recurrences per tag."""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig02_tag_recurrence(benchmark, scale, strict):
    result = run_once(benchmark, run_experiment, "fig2", scale)
    print()
    print(result.render())

    unique = result.series["unique_tags"]
    occurrences = result.series["mean_tag_occurrences"]
    # Every benchmark's miss stream has at least a handful of tags, and
    # tags recur (each appears more than once on average).
    assert all(value >= 2 for value in unique.values())
    assert all(value > 1.0 for value in occurrences.values())
    # The art-analogue's signature (paper: 98 tags recurring millions of
    # times): a small tag set with very heavy recurrence.
    assert unique["art"] < 100
    assert occurrences["art"] > 100
    if strict:
        # Large-working-set benchmarks carry the most tags (paper names
        # apsi, gap, wupwise, lucas, applu, swim as the heavy group).
        assert unique["wupwise"] > unique["art"]
