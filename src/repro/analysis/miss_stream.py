"""Capture the L1 data-cache miss stream of a workload.

The paper's Section 3 profiling "only track[s] miss address traces from
the L1 data cache: tags corresponding to cache hits are not counted".
This module replays a trace through a bare L1 (the Table 1 geometry,
no timing, no L2) and returns the sequence of misses as numpy arrays —
the input to every Figure 2–7/15 analysis and to offline prefetcher
studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

import numpy as np

from repro.memory.address import CacheGeometry
from repro.workloads import Scale, Trace, generate

__all__ = ["MissStream", "capture_miss_stream"]

#: process-level cache: the Section 3 analyses all share miss streams.
_CACHE: Dict[Tuple[str, int, CacheGeometry], "MissStream"] = {}


@dataclass
class MissStream:
    """The L1 miss stream of one workload (parallel arrays)."""

    workload: str
    geometry: CacheGeometry
    #: L1 set index of each miss.
    indices: np.ndarray
    #: L1 tag of each miss.
    tags: np.ndarray
    #: L1 block address number of each miss.
    blocks: np.ndarray
    #: total demand accesses replayed (for miss-rate context).
    accesses: int

    def __len__(self) -> int:
        return len(self.indices)

    @property
    def miss_rate(self) -> float:
        return len(self.indices) / self.accesses if self.accesses else 0.0


def capture_miss_stream(
    workload: Union[str, Trace],
    scale: Scale = Scale.STANDARD,
    geometry: CacheGeometry = CacheGeometry(32 * 1024, 1, 32),
) -> MissStream:
    """Replay ``workload`` through a bare L1 and record every miss.

    The default geometry is the paper's 32 KB direct-mapped L1 with
    32 B blocks.  Results for named workloads are memoised per process.
    """
    if isinstance(workload, str):
        key = (workload, scale.accesses, geometry)
        cached = _CACHE.get(key)
        if cached is not None:
            return cached
        trace = generate(workload, scale)
    else:
        key = None
        trace = workload

    blocks, indices, tags = geometry.decompose_array(trace.addrs)
    sets = geometry.sets
    resident = [-1] * sets  # per-set resident block (direct-mapped)
    miss_positions = []
    append = miss_positions.append
    if geometry.ways == 1:
        for position in range(len(blocks)):
            index = indices[position]
            block = blocks[position]
            if resident[index] != block:
                resident[index] = block
                append(position)
    else:
        from repro.util.lruset import LRUSet

        lru_sets = [LRUSet(geometry.ways) for _ in range(sets)]
        for position in range(len(blocks)):
            lru = lru_sets[indices[position]]
            block = int(blocks[position])
            if lru.get(block) is None:
                lru.put(block, True)
                append(position)

    positions = np.asarray(miss_positions, dtype=np.int64)
    stream = MissStream(
        workload=trace.name,
        geometry=geometry,
        indices=indices[positions].copy(),
        tags=tags[positions].copy(),
        blocks=blocks[positions].copy(),
        accesses=len(blocks),
    )
    if key is not None:
        _CACHE[key] = stream
    return stream
