"""Per-set tag-sequence statistics (Figures 5–7 of the paper).

A *three-tag sequence* is a window of three consecutive miss tags
observed at one cache set — the correlation unit of a k = 2 TCP.  From
a workload's miss stream this module computes:

* Figure 5: the number of unique sequences as a fraction of the
  ``unique_tags ** length`` upper limit (small fraction = strong
  correlation; crafty/twolf-style random scans approach the limit);
* Figure 6: the absolute number of unique sequences and the mean
  number of times each recurs;
* Figure 7: the mean number of distinct sets each sequence appears in
  (the inter-set sharing that lets one PHT entry serve many sets) and
  the mean recurrences per (sequence, set) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

from repro.analysis.miss_stream import MissStream, capture_miss_stream
from repro.workloads import Scale, Trace

__all__ = ["SequenceStats", "sequence_stats"]


@dataclass(frozen=True)
class SequenceStats:
    """Tag-sequence recurrence metrics of one workload's miss stream."""

    workload: str
    length: int
    #: total sequence windows observed (≈ misses − warm sets × (k−1)).
    windows: int
    # --- Figure 5/6 ---
    unique_sequences: int
    unique_tags: int
    mean_sequence_occurrences: float
    # --- Figure 7 ---
    mean_sets_per_sequence: float
    mean_occurrences_per_sequence_set: float

    @property
    def fraction_of_upper_limit(self) -> float:
        """Unique sequences over the ``tags ** length`` random limit."""
        limit = self.unique_tags ** self.length
        if limit == 0:
            return 0.0
        return min(1.0, self.unique_sequences / limit)


def sequence_stats(
    workload: Union[str, Trace, MissStream],
    scale: Scale = Scale.STANDARD,
    length: int = 3,
) -> SequenceStats:
    """Compute Figure 5/6/7 metrics for ``workload``.

    ``length`` is the sequence window (the paper analyses 3).
    """
    if length < 1:
        raise ValueError(f"sequence length must be positive, got {length}")
    if isinstance(workload, MissStream):
        stream = workload
    else:
        stream = capture_miss_stream(workload, scale)

    seq_counts: Dict[Tuple[int, ...], int] = {}
    seq_set_counts: Dict[Tuple[Tuple[int, ...], int], int] = {}
    unique_tags = set()
    history: Dict[int, Tuple[int, ...]] = {}
    windows = 0

    indices = stream.indices
    tags = stream.tags
    for position in range(len(stream)):
        index = int(indices[position])
        tag = int(tags[position])
        unique_tags.add(tag)
        window = history.get(index, ()) + (tag,)
        if len(window) > length:
            window = window[1:]
        history[index] = window
        if len(window) == length:
            windows += 1
            seq_counts[window] = seq_counts.get(window, 0) + 1
            key = (window, index)
            seq_set_counts[key] = seq_set_counts.get(key, 0) + 1

    unique = len(seq_counts)
    if unique == 0:
        return SequenceStats(stream.workload, length, 0, 0, len(unique_tags), 0.0, 0.0, 0.0)

    return SequenceStats(
        workload=stream.workload,
        length=length,
        windows=windows,
        unique_sequences=unique,
        unique_tags=len(unique_tags),
        mean_sequence_occurrences=windows / unique,
        mean_sets_per_sequence=len(seq_set_counts) / unique,
        mean_occurrences_per_sequence_set=windows / len(seq_set_counts),
    )
