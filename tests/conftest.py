"""Shared pytest configuration for the repro test suite."""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/golden/*.json from the current simulator "
        "instead of comparing against it (commit the diff deliberately)",
    )
