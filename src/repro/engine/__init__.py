"""The simulation engine layer.

This package owns the contracts the per-access hot path is built from,
separated from the concrete machine models in :mod:`repro.memory` and
:mod:`repro.cpu`:

:mod:`repro.engine.events`
    The slotted, frozen event/outcome protocol that crosses layer
    boundaries: :class:`MissEvent`, :class:`AccessEvent`,
    :class:`EvictionEvent` flowing from the hierarchy to observers, and
    :class:`AccessOutcome` flowing back to the CPU model.
:mod:`repro.engine.component`
    The :class:`Component` interface every memory-system building block
    (cache, MSHR file, bus, DRAM, prefetcher) implements: one
    ``access(event) -> outcome`` entry point plus ``finalize()`` /
    ``reset()`` lifecycle hooks.
:mod:`repro.engine.probes`
    Pluggable observation taps (:class:`Probe`) the CPU loop fires at
    periodic marks — progress heartbeats and the runtime sanitizer
    attach here instead of as inline branches in the hot loop.

The hot path itself lives in :meth:`repro.memory.hierarchy.
MemoryHierarchy.access_time` (a flat, allocation-free fast path) and
:meth:`repro.cpu.core.OutOfOrderCore.run`; this package defines what
crosses their boundaries.
"""

from repro.engine.component import Component
from repro.engine.events import (
    AccessEvent,
    AccessOutcome,
    EvictionEvent,
    MemoryEvent,
    MissEvent,
)
from repro.engine.probes import (
    MetricsProbe,
    Probe,
    ProgressProbe,
    SanitizerProbe,
    resolve_probes,
)

__all__ = [
    "AccessEvent",
    "AccessOutcome",
    "Component",
    "EvictionEvent",
    "MemoryEvent",
    "MetricsProbe",
    "MissEvent",
    "Probe",
    "ProgressProbe",
    "SanitizerProbe",
    "resolve_probes",
]
