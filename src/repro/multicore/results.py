"""Result containers for multi-core mix runs.

A :class:`MixResult` is the multicore analogue of
:class:`repro.sim.results.SimResult`: one cell = one mix (N benchmarks
co-scheduled on N cores sharing L2/bus/DRAM) under one configuration.
It carries one :class:`MixCoreResult` per core — the core timing
outcome, the core's private :class:`~repro.memory.hierarchy.
HierarchyStats`, its prefetcher counters, and the shared-resource
:class:`CoreAttribution` — plus the mix-level metric helpers (weighted
speedup and harmonic-mean fairness against solo baselines).

``MixResult`` is store/fabric compatible by construction: it offers
the same ``to_dict`` / ``from_dict`` / ``validate`` / ``summary``
surface as ``SimResult`` (including the ``backend_fallback``
provenance attribute), and ``SimResult.from_dict`` dispatches mix
payloads here, so mix cells ride the persistent store, the shard
merge, and the fleet wire without any machinery changes.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional

from repro.cpu.core import CoreResult
from repro.memory.hierarchy import HierarchyStats

__all__ = ["CoreAttribution", "MixCoreResult", "MixResult"]


@dataclass
class CoreAttribution:
    """Shared-resource attribution for one core of a mix run.

    These counters exist only in multicore runs: they say how much of
    the *shared* hierarchy a core consumed or lost to its neighbours.
    They are observation-only — accumulating them never changes
    simulated timing (the 1-core differential oracle pins that).
    """

    #: cycles this core's L1/L2 bus commands and data returns spent
    #: queued behind transfers already occupying the shared bus.
    bus_stall_cycles: float = 0.0
    #: shared-L2 lines this core owned when the run ended.
    l2_lines_owned: int = 0
    #: fraction of all resident shared-L2 lines owned at end of run.
    l2_occupancy_share: float = 0.0
    #: this core's prefetched L2 lines evicted unused by *another*
    #: core's fill (the canonical cross-core interference event).
    prefetches_evicted_by_others: int = 0
    #: other cores' L2 lines this core's fills evicted.
    cross_core_evictions: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class MixCoreResult:
    """Outcome of one core (one benchmark stream) inside a mix."""

    core_id: int
    workload: str
    core: CoreResult
    memory: HierarchyStats
    prefetcher_name: str
    prefetcher_storage_bytes: int
    prefetcher_predictions: int
    attribution: CoreAttribution = field(default_factory=CoreAttribution)

    @property
    def ipc(self) -> float:
        return self.core.ipc

    def to_dict(self) -> Dict[str, Any]:
        return {
            "core_id": self.core_id,
            "workload": self.workload,
            "core": asdict(self.core),
            "memory": asdict(self.memory),
            "prefetcher_name": self.prefetcher_name,
            "prefetcher_storage_bytes": self.prefetcher_storage_bytes,
            "prefetcher_predictions": self.prefetcher_predictions,
            "attribution": self.attribution.to_dict(),
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "MixCoreResult":
        try:
            return MixCoreResult(
                core_id=int(payload["core_id"]),
                workload=str(payload["workload"]),
                core=CoreResult(**payload["core"]),
                memory=HierarchyStats(**payload["memory"]),
                prefetcher_name=str(payload["prefetcher_name"]),
                prefetcher_storage_bytes=int(payload["prefetcher_storage_bytes"]),
                prefetcher_predictions=int(payload["prefetcher_predictions"]),
                attribution=CoreAttribution(**payload["attribution"]),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed MixCoreResult payload: {exc}") from exc

    def validate(self) -> None:
        """Per-core invariants (mirrors ``SimResult.validate``)."""
        core = self.core
        if core.instructions <= 0 or core.accesses <= 0:
            raise ValueError(
                f"core {self.core_id} ({self.workload}): non-positive work: "
                f"instructions={core.instructions}, accesses={core.accesses}"
            )
        if not math.isfinite(core.cycles) or core.cycles <= 0:
            raise ValueError(
                f"core {self.core_id}: cycles must be finite and positive, "
                f"got {core.cycles}"
            )
        if not math.isfinite(self.ipc) or self.ipc <= 0:
            raise ValueError(
                f"core {self.core_id}: IPC must be finite and positive, "
                f"got {self.ipc}"
            )
        m = self.memory
        for stat_field in fields(m):
            value = getattr(m, stat_field.name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValueError(
                    f"core {self.core_id}: counter {stat_field.name} must be "
                    f"a non-negative int, got {value!r}"
                )
        if m.l1_hits + m.l1_misses != m.demand_accesses:
            raise ValueError(
                f"core {self.core_id}: L1 hits+misses ({m.l1_hits}+"
                f"{m.l1_misses}) != demand accesses ({m.demand_accesses})"
            )
        if m.loads + m.stores != m.demand_accesses:
            raise ValueError(
                f"core {self.core_id}: loads+stores ({m.loads}+{m.stores}) "
                f"!= demand accesses ({m.demand_accesses})"
            )
        if m.l2_demand_hits + m.l2_demand_misses != m.l2_demand_accesses:
            raise ValueError(
                f"core {self.core_id}: L2 hits+misses != L2 demand accesses"
            )
        if self.prefetcher_storage_bytes < 0 or self.prefetcher_predictions < 0:
            raise ValueError(
                f"core {self.core_id}: prefetcher counters must be non-negative"
            )
        a = self.attribution
        if not math.isfinite(a.bus_stall_cycles) or a.bus_stall_cycles < 0:
            raise ValueError(
                f"core {self.core_id}: bus_stall_cycles must be finite and "
                f"non-negative, got {a.bus_stall_cycles}"
            )
        if a.l2_lines_owned < 0 or a.prefetches_evicted_by_others < 0:
            raise ValueError(
                f"core {self.core_id}: attribution counters must be non-negative"
            )
        if not 0.0 <= a.l2_occupancy_share <= 1.0:
            raise ValueError(
                f"core {self.core_id}: l2_occupancy_share outside [0, 1]: "
                f"{a.l2_occupancy_share}"
            )


@dataclass
class MixResult:
    """Outcome of simulating one workload mix under one configuration."""

    workload: str  # canonical mix cell name ("a+b+c")
    config_label: str
    per_core: List[MixCoreResult]
    shared_pht: bool = False

    def __post_init__(self) -> None:
        # Provenance, not a dataclass field (same contract as
        # SimResult): mix runs always execute on the reference core
        # engine, and that fact must never enter equality or hashing.
        self.backend_fallback: Optional[str] = None

    @property
    def cores(self) -> int:
        return len(self.per_core)

    @property
    def ipc(self) -> float:
        """Aggregate throughput: sum of per-core IPC."""
        return sum(core.ipc for core in self.per_core)

    def core_for(self, core_id: int) -> MixCoreResult:
        return self.per_core[core_id]

    # -- mix-level metrics (need solo baselines) -----------------------

    def speedups(self, solos: Mapping[str, Any]) -> List[float]:
        """Per-core slowdown-adjusted speedups ``IPC_mix / IPC_solo``.

        ``solos`` maps benchmark name -> solo result (anything with an
        ``ipc`` attribute) for every benchmark in the mix; values below
        1.0 mean the core ran slower under contention than alone.
        """
        ratios = []
        for core in self.per_core:
            solo = solos.get(core.workload)
            if solo is None:
                raise KeyError(
                    f"no solo baseline for {core.workload!r} "
                    f"(core {core.core_id})"
                )
            ratios.append(core.ipc / solo.ipc)
        return ratios

    def weighted_speedup(self, solos: Mapping[str, Any]) -> float:
        """Sum of per-core ``IPC_mix / IPC_solo`` (system throughput)."""
        return sum(self.speedups(solos))

    def hmean_fairness(self, solos: Mapping[str, Any]) -> float:
        """Harmonic mean of the per-core speedups (fairness metric).

        Dominated by the slowest core: a mix that starves one stream
        scores low even when aggregate throughput is high.
        """
        ratios = self.speedups(solos)
        return len(ratios) / sum(1.0 / r for r in ratios)

    # -- SimResult-compatible surface ----------------------------------

    def summary(self) -> str:
        cores = " ".join(
            f"c{core.core_id}:{core.workload}={core.ipc:.3f}"
            for core in self.per_core
        )
        return (
            f"{self.workload:<24} {self.config_label:<10} "
            f"ipc_sum={self.ipc:6.3f} {cores}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form; ``per_core`` marks it as a mix
        payload for ``SimResult.from_dict`` dispatch."""
        payload: Dict[str, Any] = {
            "workload": self.workload,
            "config_label": self.config_label,
            "per_core": [core.to_dict() for core in self.per_core],
            "shared_pht": self.shared_pht,
        }
        if self.backend_fallback is not None:
            payload["backend_fallback"] = self.backend_fallback
        return payload

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "MixResult":
        try:
            result = MixResult(
                workload=str(payload["workload"]),
                config_label=str(payload["config_label"]),
                per_core=[
                    MixCoreResult.from_dict(core) for core in payload["per_core"]
                ],
                shared_pht=bool(payload.get("shared_pht", False)),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed MixResult payload: {exc}") from exc
        fallback = payload.get("backend_fallback")
        if fallback is not None:
            result.backend_fallback = str(fallback)
        return result

    def validate(self) -> None:
        """Check the invariants every genuine mix run satisfies."""
        if not self.per_core:
            raise ValueError("a mix result needs at least one core")
        expected = self.workload.split("+")
        if len(expected) == len(self.per_core):
            for core, name in zip(self.per_core, expected):
                if core.workload != name:
                    raise ValueError(
                        f"core {core.core_id} runs {core.workload!r} but the "
                        f"cell name says {name!r}"
                    )
        for position, core in enumerate(self.per_core):
            if core.core_id != position:
                raise ValueError(
                    f"per-core results out of order: position {position} "
                    f"holds core {core.core_id}"
                )
            core.validate()
        share = sum(core.attribution.l2_occupancy_share for core in self.per_core)
        if share > 1.0 + 1e-9:
            raise ValueError(
                f"per-core L2 occupancy shares sum to {share} > 1"
            )
