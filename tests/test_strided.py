"""Tests for repro.core.strided (Figure 15 machinery)."""

import pytest

from repro.core.strided import StridedSequenceDetector, is_strided, strided_fraction


class TestIsStrided:
    def test_positive_stride(self):
        assert is_strided([1, 3, 5])

    def test_negative_stride(self):
        assert is_strided([9, 6, 3])

    def test_zero_stride_rejected(self):
        assert not is_strided([4, 4, 4])

    def test_broken_stride(self):
        assert not is_strided([1, 2, 4])

    def test_too_short(self):
        assert not is_strided([1])
        assert not is_strided([])

    def test_pair_is_strided_if_nonzero(self):
        assert is_strided([1, 2])
        assert not is_strided([2, 2])


class TestDetector:
    def test_requires_two_confirmations_at_depth_3(self):
        detector = StridedSequenceDetector(sets=4, depth=3)
        assert detector.observe(0, 10) is None  # first
        assert detector.observe(0, 12) is None  # stride 2, 1 confirmation
        assert detector.observe(0, 14) == 16    # stride 2 confirmed twice

    def test_prediction_continues(self):
        detector = StridedSequenceDetector(sets=4, depth=3)
        for tag in (10, 12, 14):
            detector.observe(0, tag)
        assert detector.observe(0, 16) == 18

    def test_broken_stride_resets(self):
        detector = StridedSequenceDetector(sets=4, depth=3)
        for tag in (10, 12, 14):
            detector.observe(0, tag)
        assert detector.observe(0, 99) is None
        assert detector.observe(0, 100) is None  # new stride, 1 confirmation
        assert detector.observe(0, 101) == 102

    def test_sets_are_independent(self):
        detector = StridedSequenceDetector(sets=4, depth=3)
        detector.observe(0, 10)
        detector.observe(0, 12)
        assert detector.observe(1, 14) is None  # set 1 cold
        assert detector.observe(0, 14) == 16

    def test_zero_stride_never_predicts(self):
        detector = StridedSequenceDetector(sets=2, depth=3)
        for _ in range(5):
            result = detector.observe(0, 7)
        assert result is None

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            StridedSequenceDetector(sets=4, depth=1)

    def test_reset(self):
        detector = StridedSequenceDetector(sets=2, depth=3)
        for tag in (1, 2, 3):
            detector.observe(0, tag)
        detector.reset()
        assert detector.observe(0, 4) is None
        assert detector.strided_hits == 0


class TestStridedFraction:
    def test_fully_strided_stream(self):
        indices = [0] * 10
        tags = list(range(10))
        assert strided_fraction(indices, tags) == 1.0

    def test_fully_random_constant(self):
        indices = [0] * 10
        tags = [5] * 10
        assert strided_fraction(indices, tags) == 0.0

    def test_mixed(self):
        indices = [0] * 6
        tags = [1, 2, 3, 3, 3, 3]  # windows: (1,2,3)s, (2,3,3), (3,3,3)x2
        assert strided_fraction(indices, tags) == pytest.approx(0.25)

    def test_intra_set_only(self):
        # A globally-strided stream spread across sets has no intra-set
        # windows of length 3 until each set has seen 3 misses.
        indices = [0, 1, 2, 0, 1, 2, 0, 1, 2]
        tags = [1, 2, 3, 4, 5, 6, 7, 8, 9]
        # per set: (1,4,7), (2,5,8), (3,6,9) -> all strided
        assert strided_fraction(indices, tags) == 1.0

    def test_empty(self):
        assert strided_fraction([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            strided_fraction([0], [1, 2])

    def test_custom_depth(self):
        indices = [0] * 4
        tags = [1, 2, 4, 8]
        # depth 2: windows (1,2), (2,4), (4,8): all pairs with nonzero
        # stride count as strided
        assert strided_fraction(indices, tags, depth=2) == 1.0
