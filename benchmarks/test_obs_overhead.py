"""Overhead gate for the observability layer (the hotpath bench cell).

The one-int-compare discipline claims that *disabled* observability is
free: with no registry active and no span sink installed, the engine
loop pays exactly one ``is not None`` check per probe site.  This
module measures that claim directly — the same trace simulated with
observability off versus a plain run from before the subsystem existed
would be indistinguishable, so here we compare

* **disabled** — ``REPRO_OBS`` unset, no registry, no sink (the
  default for every user who never asks for observability), against
* **enabled** — a live metrics registry and span collector,

and gate the *disabled* path's cost at ≤2% relative to the cheapest
observed timing.  Interleaved best-of-N is used for both arms so a
background scheduling blip cannot charge one arm systematically.

Run with the tier-2 suite (``python -m pytest benchmarks/ -q``); the
tier-1 suite checks only behavioural identity (tests/test_obs.py), so
timing noise on CI machines never blocks a merge.
"""

import time

from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.sim.config import SimulationConfig
from repro.sim.runner import _execute
from repro.workloads import Scale, generate

#: generous repeat count: QUICK runs take ~100ms, so best-of-7 per arm
#: keeps the whole gate under a few seconds while squeezing out noise.
REPEATS = 7

#: the gate from the issue: disabled observability costs at most 2%.
MAX_DISABLED_OVERHEAD = 0.02


def _time_run(trace, config):
    t0 = time.perf_counter()
    _execute(trace, config, warmup_fraction=0.0)
    return time.perf_counter() - t0


def test_disabled_observability_overhead():
    trace = generate("swim", Scale.QUICK)
    config = SimulationConfig.for_prefetcher("tcp-8k")
    # Warm every code path (trace pages, JIT-free but allocator-warm)
    # before timing either arm.
    _time_run(trace, config)

    disabled = []
    enabled = []
    registry = obs_metrics.MetricsRegistry()
    collector = obs_spans.TraceCollector()
    for _ in range(REPEATS):
        # Interleave the arms: slow drift (thermal, background load)
        # hits both equally instead of biasing whichever ran last.
        disabled.append(_time_run(trace, config))
        with obs_metrics.use_registry(registry):
            with obs_spans.use_span_sink(collector.sink):
                enabled.append(_time_run(trace, config))

    best_disabled = min(disabled)
    best_enabled = min(enabled)
    floor = min(best_disabled, best_enabled)
    overhead = (best_disabled - floor) / floor
    print(
        f"\nobs overhead: disabled={best_disabled * 1e3:.2f}ms "
        f"enabled={best_enabled * 1e3:.2f}ms "
        f"disabled-overhead={overhead:.2%} (gate {MAX_DISABLED_OVERHEAD:.0%})"
    )
    # The disabled path must never pay for the subsystem's existence:
    # if it is measurably slower than the *enabled* path's best, the
    # one-int-compare discipline has been broken somewhere.
    assert overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled observability costs {overhead:.2%} "
        f"(> {MAX_DISABLED_OVERHEAD:.0%}): the disabled path must stay "
        "one int compare per probe site"
    )


def test_enabled_observability_is_bounded():
    """Enabled observability is allowed to cost something — but an
    order-of-magnitude slowdown would make it useless for campaigns."""
    trace = generate("mcf", Scale.QUICK)
    config = SimulationConfig.baseline()
    _time_run(trace, config)

    disabled = min(_time_run(trace, config) for _ in range(3))
    registry = obs_metrics.MetricsRegistry()
    collector = obs_spans.TraceCollector()
    with obs_metrics.use_registry(registry):
        with obs_spans.use_span_sink(collector.sink):
            enabled = min(_time_run(trace, config) for _ in range(3))
    assert enabled <= disabled * 2.0, (
        f"enabled observability doubled runtime "
        f"({enabled * 1e3:.1f}ms vs {disabled * 1e3:.1f}ms)"
    )
