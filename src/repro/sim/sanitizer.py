"""Tiered runtime invariant checking for the simulator.

A paper reproduction's worst failure mode is a *silently wrong*
result: an MSHR leak, a cache set holding more lines than its
associativity, stats that stop conserving — all of which masquerade as
accuracy/coverage shifts in a prefetcher comparison.  This module
makes the simulator prove its own internal consistency while it runs.

Tiers (``REPRO_SANITIZE`` or :attr:`SimulationConfig.sanitize`):

``off``
    No checking; the hot loop pays one integer compare per access.
``cheap``
    O(1) conservation checks every ``CHEAP_INTERVAL`` accesses: the
    stats equalities (hits + misses == accesses, ...), MSHR and
    prefetch-queue occupancy bounds, and per-bus timestamp
    monotonicity.  Designed for ≤ 10% overhead on real campaigns.
``full``
    Everything in ``cheap`` plus structural scans every
    ``FULL_INTERVAL`` accesses: cache sets (occupancy ≤ ways, no
    duplicate tags), THT rows (length == k, tag domains), PHT sets
    (occupancy ≤ ways, successor lists ≤ targets), and prefetch-address
    round-trips through the L1 geometry.  Large structures are sampled
    with a rotating cursor so every set is eventually visited; the
    end-of-run :meth:`Sanitizer.finalize` scans everything completely
    and checks the prefetch conservation law that only holds once
    residual prefetches are accounted.

Violations raise :class:`repro.sim.resilience.InvariantViolation`
carrying the invariant's name and a snapshot of the offending state;
the supervisor classifies it as non-retryable (deterministic breakage
— re-running the same broken code cannot help).

The module also hosts the ``state-corrupt`` fault-injection hooks the
tests use to prove each invariant actually fires:
:func:`schedule_state_corruption` arms a corruption that
:func:`corrupt_state` applies to a live simulator mid-run.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Tuple

from repro.sim.resilience import InvariantViolation

__all__ = [
    "CHEAP_INTERVAL",
    "CORRUPTION_KINDS",
    "FULL_INTERVAL",
    "LEVELS",
    "SANITIZE_ENV",
    "Sanitizer",
    "build_sanitizer",
    "consume_scheduled_corruption",
    "corrupt_state",
    "sanitize_level",
    "schedule_state_corruption",
]

SANITIZE_ENV = "REPRO_SANITIZE"
LEVELS = ("off", "cheap", "full")

#: accesses between cheap-tier check points.
CHEAP_INTERVAL = 8192
#: accesses between full-tier check points.
FULL_INTERVAL = 1024
#: sets visited per structure per periodic full-tier scan.
SCAN_SAMPLE = 64


def sanitize_level(explicit: Optional[str] = None) -> str:
    """Resolve the sanitize tier: explicit config > environment > off."""
    level = explicit if explicit is not None else os.environ.get(SANITIZE_ENV, "off")
    level = level.strip().lower() or "off"
    if level not in LEVELS:
        raise ValueError(
            f"unknown sanitize level {level!r}; choose from {', '.join(LEVELS)}"
        )
    return level


def build_sanitizer(explicit: Optional[str] = None) -> Optional["Sanitizer"]:
    """A :class:`Sanitizer` for the resolved tier, or None when off."""
    level = sanitize_level(explicit)
    if level == "off":
        return None
    return Sanitizer(level)


class Sanitizer:
    """Stateful invariant checker attached to one simulation run.

    One instance per run: it tracks previous timestamps (for
    monotonicity) and rotating scan cursors, so it must not be shared
    across runs.
    """

    def __init__(self, level: str) -> None:
        if level not in ("cheap", "full"):
            raise ValueError(f"sanitizer level must be cheap or full, got {level!r}")
        self.level = level
        self.interval = FULL_INTERVAL if level == "full" else CHEAP_INTERVAL
        #: number of check points executed (cheap + full).
        self.checks = 0
        self._last_commit = float("-inf")
        self._last_dispatch = float("-inf")
        #: bus name -> last observed ``next_free`` (monotonicity).
        self._bus_marks: Dict[str, float] = {}
        #: structure name -> rotating scan cursor (full tier).
        self._cursors: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def require(
        self, condition: bool, invariant: str, message: str, **snapshot: Any
    ) -> None:
        """Raise a structured :class:`InvariantViolation` unless ``condition``."""
        if condition:
            return
        detail = message
        if snapshot:
            detail += " [" + ", ".join(
                f"{key}={value!r}" for key, value in sorted(snapshot.items())
            ) + "]"
        raise InvariantViolation(
            f"invariant {invariant!r} violated: {detail}",
            invariant=invariant,
            snapshot=snapshot,
        )

    # ------------------------------------------------------------------
    # Core-side checks (called from the simulation loop)
    # ------------------------------------------------------------------

    def check_core(
        self, rob_len: int, window: int, last_commit: float, now_dispatch: float
    ) -> None:
        """ROB occupancy bound and commit/dispatch monotonicity."""
        self.require(
            rob_len <= window,
            "core-window-occupancy",
            "in-flight accesses exceed the instruction window",
            rob_len=rob_len, window=window,
        )
        self.require(
            last_commit >= self._last_commit,
            "core-commit-monotonic",
            "commit time moved backwards",
            last_commit=last_commit, previous=self._last_commit,
        )
        self.require(
            now_dispatch >= self._last_dispatch,
            "core-dispatch-monotonic",
            "dispatch time moved backwards",
            now_dispatch=now_dispatch, previous=self._last_dispatch,
        )
        self._last_commit = last_commit
        self._last_dispatch = now_dispatch

    # ------------------------------------------------------------------
    # Hierarchy-side checks
    # ------------------------------------------------------------------

    def check(self, hierarchy: Any, now: float = 0.0) -> None:
        """One periodic check point over the hierarchy's live state."""
        self.checks += 1
        self._check_stats(hierarchy)
        self._check_mshr(hierarchy)
        self._check_buses(hierarchy)
        if self.level == "full":
            self._scan_structures(hierarchy, sample=SCAN_SAMPLE)

    def finalize(self, hierarchy: Any) -> None:
        """End-of-run check: complete scans + prefetch conservation.

        Must run *after* :meth:`MemoryHierarchy.finalize` so residual
        unused prefetches have been accounted — only then does every
        issued prefetch have exactly one fate (useful, evicted unused,
        or residual unused).
        """
        self.checks += 1
        self._check_stats(hierarchy)
        self._check_mshr(hierarchy)
        self._check_buses(hierarchy)
        s = hierarchy.stats
        accounted = (
            s.useful_prefetches
            + s.prefetch_evicted_unused
            + s.prefetch_residual_unused
        )
        self.require(
            s.prefetches_issued == accounted,
            "prefetch-conservation",
            "issued prefetches do not sum to useful + evicted + residual",
            issued=s.prefetches_issued,
            useful=s.useful_prefetches,
            evicted_unused=s.prefetch_evicted_unused,
            residual_unused=s.prefetch_residual_unused,
        )
        if self.level == "full":
            self._scan_structures(hierarchy, sample=None)

    # -- multicore shared-L2 -------------------------------------------

    def check_shared_l2(self, fabric: Any, sample: Optional[int] = None) -> None:
        """Shared-L2 invariants for a multicore fabric.

        Per set: occupancy within associativity, and every resident
        line has a valid owner in the fabric's ownership map.  With
        ``sample=None`` (the end-of-run call) the scan is complete and
        additionally proves the owner map is an exact *bijection* with
        the resident lines — a stale owner entry means an eviction was
        attributed to the wrong core.
        """
        l2d = fabric.l2d
        geometry = l2d.geometry
        owners = fabric.owner
        cores = fabric.cores
        for index in self._scan_range("shared-l2", geometry.sets, sample):
            lines = l2d.resident_lines(index)
            self.require(
                len(lines) <= geometry.ways,
                "shared-l2-occupancy",
                "shared L2 set holds more lines than its associativity",
                set=index, occupancy=len(lines), ways=geometry.ways,
            )
            for line in lines:
                owner = owners.get((index, line.tag))
                self.require(
                    owner is not None and 0 <= owner < cores,
                    "shared-l2-owner",
                    "resident shared-L2 line has no valid owner",
                    set=index, tag=line.tag, owner=owner, cores=cores,
                )
        if sample is None:
            resident = fabric.resident_line_count()
            self.require(
                len(owners) == resident,
                "shared-l2-owner-bijection",
                "ownership map does not match the resident shared-L2 lines",
                owners=len(owners), resident=resident,
            )

    # -- cheap tier ----------------------------------------------------

    def _check_stats(self, hierarchy: Any) -> None:
        s = hierarchy.stats
        self.require(
            s.l1_hits + s.l1_misses == s.demand_accesses,
            "stats-l1-conservation",
            "L1 hits + misses != demand accesses",
            l1_hits=s.l1_hits, l1_misses=s.l1_misses,
            demand_accesses=s.demand_accesses,
        )
        self.require(
            s.loads + s.stores == s.demand_accesses,
            "stats-rw-conservation",
            "loads + stores != demand accesses",
            loads=s.loads, stores=s.stores, demand_accesses=s.demand_accesses,
        )
        self.require(
            s.l2_demand_hits + s.l2_demand_misses == s.l2_demand_accesses,
            "stats-l2-conservation",
            "L2 hits + misses != L2 demand accesses",
            l2_demand_hits=s.l2_demand_hits, l2_demand_misses=s.l2_demand_misses,
            l2_demand_accesses=s.l2_demand_accesses,
        )
        self.require(
            s.prefetches_issued <= s.prefetches_requested,
            "prefetch-issue-bound",
            "more prefetches issued than requested",
            issued=s.prefetches_issued, requested=s.prefetches_requested,
        )
        self.require(
            s.useful_prefetches + s.prefetch_evicted_unused <= s.prefetches_issued,
            "prefetch-fate-bound",
            "prefetch fates exceed prefetches issued",
            useful=s.useful_prefetches,
            evicted_unused=s.prefetch_evicted_unused,
            issued=s.prefetches_issued,
        )

    def _check_mshr(self, hierarchy: Any) -> None:
        mshr = hierarchy.mshr
        self.require(
            len(mshr._inflight) <= mshr.entries,
            "mshr-occupancy",
            "in-flight misses exceed the MSHR file",
            inflight=len(mshr._inflight), entries=mshr.entries,
        )
        limit = hierarchy.params.max_outstanding_prefetches
        self.require(
            len(hierarchy._pf_inflight) <= limit,
            "prefetch-queue-occupancy",
            "outstanding prefetches exceed the queue bound",
            inflight=len(hierarchy._pf_inflight), limit=limit,
        )

    def _check_buses(self, hierarchy: Any) -> None:
        buses = [
            hierarchy.l1l2_addr_bus,
            hierarchy.l1l2_data_bus,
            hierarchy.mem_addr_bus,
            hierarchy.mem_data_bus,
        ]
        if hierarchy.prefetch_bus is not None:
            buses.append(hierarchy.prefetch_bus)
        marks = self._bus_marks
        for bus in buses:
            previous = marks.get(bus.name, float("-inf"))
            self.require(
                bus.next_free >= previous,
                "bus-time-monotonic",
                f"bus {bus.name!r} schedule moved backwards",
                bus=bus.name, next_free=bus.next_free, previous=previous,
            )
            marks[bus.name] = bus.next_free

    # -- full tier -----------------------------------------------------

    def _scan_range(self, name: str, total: int, sample: Optional[int]) -> range:
        """Indices to visit this scan: everything, or a rotating window."""
        if sample is None or sample >= total:
            return range(total)
        cursor = self._cursors.get(name, 0) % total
        self._cursors[name] = (cursor + sample) % total
        # A window that wraps is visited as two calls' worth eventually;
        # clamping keeps the per-check cost constant.
        return range(cursor, min(cursor + sample, total))

    def _scan_structures(self, hierarchy: Any, sample: Optional[int]) -> None:
        for cache in (hierarchy.l1d, hierarchy.l1i, hierarchy.l2d, hierarchy.l2i):
            self._scan_cache(cache, sample)
        prefetcher = hierarchy.prefetcher
        if prefetcher is None:
            return
        sanitize_check = getattr(prefetcher, "sanitize_check", None)
        if sanitize_check is not None:
            sanitize_check(self.require)
        tht = getattr(prefetcher, "tht", None)
        if tht is not None:
            self._scan_tht(tht, hierarchy.params.l1d, sample)
        pht = getattr(prefetcher, "pht", None)
        if pht is not None:
            self._scan_pht(pht, sample)

    def _scan_cache(self, cache: Any, sample: Optional[int]) -> None:
        geometry = cache.geometry
        for index in self._scan_range(cache.name, geometry.sets, sample):
            lines = cache.resident_lines(index)
            self.require(
                len(lines) <= geometry.ways,
                "cache-set-occupancy",
                f"{cache.name} set holds more lines than its associativity",
                cache=cache.name, set=index,
                occupancy=len(lines), ways=geometry.ways,
            )
            tags = [line.tag for line in lines]
            self.require(
                len(set(tags)) == len(tags),
                "cache-set-duplicate",
                f"{cache.name} set holds duplicate blocks",
                cache=cache.name, set=index, tags=tags,
            )
            for tag in tags:
                self.require(
                    isinstance(tag, int) and tag >= 0,
                    "cache-tag-domain",
                    f"{cache.name} line tag outside the address domain",
                    cache=cache.name, set=index, tag=tag,
                )

    def _scan_tht(self, tht: Any, l1_geometry: Any, sample: Optional[int]) -> None:
        self.require(
            len(tht._history) == tht.rows,
            "tht-row-count",
            "THT row storage does not match its geometry",
            stored=len(tht._history), rows=tht.rows,
        )
        # The THT is indexed by the L1 miss index, so a reconstructed
        # prefetch address must round-trip through the L1 geometry —
        # only checkable when the table actually mirrors the L1 sets.
        roundtrip = tht.rows == l1_geometry.sets
        for index in self._scan_range("tht", tht.rows, sample):
            row = tht._history[index]
            self.require(
                len(row) == tht.depth,
                "tht-history-length",
                "THT history length != k",
                row=index, length=len(row), k=tht.depth,
            )
            for tag in row:
                self.require(
                    isinstance(tag, int) and tag >= 0,
                    "tht-tag-domain",
                    "THT tag outside the address domain",
                    row=index, tag=tag,
                )
                if roundtrip:
                    block = l1_geometry.compose_block(tag, index)
                    self.require(
                        l1_geometry.split_block(block) == (tag, index),
                        "prefetch-address-roundtrip",
                        "reconstructed prefetch address does not round-trip",
                        row=index, tag=tag, block=block,
                    )

    def _scan_pht(self, pht: Any, sample: Optional[int]) -> None:
        config = pht.config
        for index in self._scan_range("pht", config.sets, sample):
            lru = pht._sets[index]
            self.require(
                len(lru) <= config.ways,
                "pht-set-occupancy",
                "PHT set holds more entries than its associativity",
                set=index, occupancy=len(lru), ways=config.ways,
            )
            for entry_tag, successors in lru.items():
                self.require(
                    1 <= len(successors) <= config.targets,
                    "pht-target-bound",
                    "PHT successor list outside [1, targets]",
                    set=index, entry=entry_tag,
                    successors=len(successors), targets=config.targets,
                )
        if sample is None:
            self.require(
                pht.occupancy() <= config.sets * config.ways,
                "pht-occupancy",
                "PHT valid entries exceed its geometry",
                occupancy=pht.occupancy(),
                capacity=config.sets * config.ways,
            )


# ---------------------------------------------------------------------------
# State corruption (fault injection for the sanitizer itself)
# ---------------------------------------------------------------------------

#: corruption kinds ``corrupt_state`` can apply; each is caught by a
#: different invariant family.  ``stats-drift`` breaks the L1
#: conservation equality (cheap tier); ``mshr-overflow`` overfills the
#: MSHR file (cheap tier); ``cache-dup`` plants a duplicate block in an
#: L2 set (full tier); ``tht-shape`` breaks a THT row's history length
#: (full tier; falls back to ``stats-drift`` without a TCP attached).
CORRUPTION_KINDS = ("stats-drift", "mshr-overflow", "cache-dup", "tht-shape")

_PENDING_CORRUPTION: Optional[str] = None


def schedule_state_corruption(kind: str = "stats-drift") -> None:
    """Arm a state corruption for the next simulation run.

    The worker's fault injector calls this; the runner consumes it and
    applies :func:`corrupt_state` once the run is past warmup (so the
    damage cannot be cancelled by the warmup-snapshot subtraction).
    """
    if kind not in CORRUPTION_KINDS:
        raise ValueError(
            f"unknown corruption kind {kind!r}; choose from {CORRUPTION_KINDS}"
        )
    global _PENDING_CORRUPTION
    _PENDING_CORRUPTION = kind


def consume_scheduled_corruption() -> Optional[str]:
    """Return and clear the armed corruption kind, if any."""
    global _PENDING_CORRUPTION
    kind = _PENDING_CORRUPTION
    _PENDING_CORRUPTION = None
    return kind


def corrupt_state(hierarchy: Any, prefetcher: Any, kind: str) -> None:
    """Deliberately break one simulator invariant (tests only)."""
    if kind == "tht-shape" and getattr(prefetcher, "tht", None) is None:
        kind = "stats-drift"
    if kind == "stats-drift":
        hierarchy.stats.l1_hits += 1
        return
    if kind == "mshr-overflow":
        mshr = hierarchy.mshr
        # Negative block keys cannot collide with real blocks; the
        # far-future completion keeps them from being reaped.
        for extra in range(mshr.entries + 1):
            mshr._inflight[-(extra + 1)] = 1e18
        return
    if kind == "cache-dup":
        from repro.memory.cache import CacheLine

        lru = hierarchy.l2d._sets[0]
        resident = [line.tag for _, line in lru.items()]
        tag = resident[0] if resident else 7
        # Two entries with the same tag under different keys: the
        # duplicate-tag scan fires regardless of set occupancy.
        lru._entries[-1] = CacheLine(tag)
        lru._entries[-2] = CacheLine(tag)
        return
    if kind == "tht-shape":
        # Rows are immutable tuples; replace row 0 with an over-long one.
        prefetcher.tht._history[0] = prefetcher.tht._history[0] + (0,)
        return
    raise ValueError(f"unknown corruption kind {kind!r}")
