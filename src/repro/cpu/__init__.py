"""The out-of-order processor timing model.

The paper evaluates on an aggressive 8-issue out-of-order SimpleScalar
core (128-entry RUU, 128-entry LSQ, Table 1).  What that core does to
memory latency — and what this package reproduces — is:

* overlap independent long-latency misses up to the capacity of the
  instruction window (memory-level parallelism);
* serialize *dependent* misses (pointer chasing defeats the window);
* tolerate L2-hit latency almost entirely ("the overall latency is
  10 cycles, which can usually be tolerated"), while L2 misses "fill
  the instruction window up with dependent instructions and thus stall
  the whole processor" (Section 5.1).

:class:`repro.cpu.core.OutOfOrderCore` is a trace-driven timing model
implementing exactly those mechanisms: in-order dispatch at the issue
width, a window occupancy limit, dependence-driven issue, and in-order
commit.  IPC falls out of the final commit time.
"""

from repro.cpu.core import CoreParams, CoreResult, OutOfOrderCore

__all__ = ["CoreParams", "CoreResult", "OutOfOrderCore"]
