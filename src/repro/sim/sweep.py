"""Configuration sweeps over the benchmark suite.

The paper's evaluation is a matrix: {configurations} × {benchmarks}.
``Sweep`` runs that matrix (reusing the runner's result cache) and
produces the derived tables the figures plot: per-benchmark IPC
improvement over the no-prefetch baseline, suite geomeans, and the
L2-access breakdowns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.config import SimulationConfig
from repro.sim.resilience import CampaignReport
from repro.sim.results import SuiteResult
from repro.sim.runner import simulate_suite
from repro.util.tables import format_table
from repro.workloads import BENCHMARK_ORDER, Scale

__all__ = ["Sweep", "improvement_table"]


class Sweep:
    """Run a list of configurations over the suite and compare them."""

    def __init__(
        self,
        configs: Sequence[SimulationConfig],
        scale: Scale = Scale.STANDARD,
        benchmarks: Optional[Tuple[str, ...]] = None,
    ) -> None:
        if not configs:
            raise ValueError("a sweep needs at least one configuration")
        labels = [config.resolved_label() for config in configs]
        if len(set(labels)) != len(labels):
            raise ValueError(f"sweep labels must be unique, got {labels}")
        self.configs = list(configs)
        self.scale = scale
        self.benchmarks = benchmarks if benchmarks is not None else BENCHMARK_ORDER
        self._results: Optional[Dict[str, SuiteResult]] = None

    def prewarm(
        self,
        jobs: int = 0,
        retries: int = 2,
        timeout: Optional[float] = None,
        stall_timeout: Optional[float] = None,
        worker_mode: Optional[str] = None,
    ) -> CampaignReport:
        """Run this sweep's matrix under the fault-tolerant supervisor.

        Fills the result cache (and the persistent store, when active)
        in parallel with per-job retries/timeouts (``stall_timeout``
        arms the heartbeat watchdog instead of a wall-clock budget); a
        subsequent :meth:`run` then replays from cache.  ``worker_mode``
        selects the warm pool (default) or per-attempt workers.
        Returns the campaign report — callers that need all-or-nothing
        semantics can ``report.raise_if_failed()``.
        """
        from repro.sim.parallel import prewarm

        return prewarm(
            self.configs,
            self.scale,
            self.benchmarks,
            jobs=jobs,
            retries=retries,
            timeout=timeout,
            stall_timeout=stall_timeout,
            worker_mode=worker_mode,
        )

    def run(self) -> Dict[str, SuiteResult]:
        """Execute (or return the already-executed) sweep."""
        if self._results is None:
            self._results = {
                config.resolved_label(): simulate_suite(
                    config, self.scale, self.benchmarks
                )
                for config in self.configs
            }
        return self._results

    def improvements(self, baseline_label: str = "base") -> Dict[str, Dict[str, float]]:
        """Per-config, per-benchmark IPC improvement (%) over a baseline.

        The baseline configuration must be part of the sweep.
        """
        results = self.run()
        if baseline_label not in results:
            raise KeyError(
                f"baseline {baseline_label!r} is not in this sweep "
                f"({sorted(results)})"
            )
        baseline = results[baseline_label]
        return {
            label: suite.improvements_over(baseline)
            for label, suite in results.items()
            if label != baseline_label
        }

    def geomean_improvements(self, baseline_label: str = "base") -> Dict[str, float]:
        """Suite-wide improvement (%) per configuration."""
        results = self.run()
        baseline = results[baseline_label]
        return {
            label: suite.geomean_improvement(baseline)
            for label, suite in results.items()
            if label != baseline_label
        }


def improvement_table(
    improvements: Dict[str, Dict[str, float]],
    benchmarks: Iterable[str] = BENCHMARK_ORDER,
    title: Optional[str] = None,
) -> str:
    """Render a per-benchmark improvement matrix as an ASCII table.

    Rows are benchmarks (paper order), columns are configurations, and
    a final ``geomean`` row carries the suite-wide ratio geomeans.
    """
    labels = list(improvements)
    headers = ["benchmark"] + labels
    rows: List[List[object]] = []
    names = [name for name in benchmarks if all(name in improvements[l] for l in labels)]
    for name in names:
        rows.append([name] + [improvements[label][name] for label in labels])
    geomeans: List[object] = ["geomean"]
    for label in labels:
        ratios = [1.0 + improvements[label][name] / 100.0 for name in names]
        product = 1.0
        for ratio in ratios:
            product *= ratio
        geomeans.append((product ** (1.0 / len(ratios)) - 1.0) * 100.0 if ratios else 0.0)
    rows.append(geomeans)
    return format_table(headers, rows, title=title)
