"""The simulated memory hierarchy of the paper's Table 1.

This module wires the caches, MSHRs, buses, and DRAM into the machine
the CPU timing model talks to:

* 32 KB direct-mapped L1 data cache, 32 B blocks, 64 MSHRs;
* 32 KB 4-way L1 instruction cache, 32 B blocks;
* separate 1 MB 4-way L2 instruction and data caches, 64 B blocks,
  12-cycle latency;
* 70-cycle main memory;
* a 32-byte-wide L1/L2 bus clocked at the core frequency, a narrower
  L2/memory bus, and (for the hybrid prefetcher of Section 5.2.2) an
  optional dedicated L1/L2 prefetch bus.

The hierarchy is also the observation point for prefetchers (Figure 10
of the paper): every L1 demand miss is reported to the attached
prefetcher, whose prefetch requests fill **L2 only** — except for the
hybrid's explicitly gated promotions into L1, which wait until the
dead-block predictor declares the victim line dead.

Statistics follow the paper's Figure 12 taxonomy of L2 accesses:

``prefetched original``
    demand L2 accesses that were covered by a prefetch (they hit on a
    block carrying the prefetch bit, or merge with an in-flight
    prefetch);
``non-prefetched original``
    the remaining demand L2 accesses;
``prefetched extra``
    prefetch work that never covered a demand access — redundant
    prefetches to resident blocks, prefetched blocks evicted unused,
    and prefetched blocks still unused when the run ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Optional, Tuple

from repro.memory.address import CacheGeometry
from repro.memory.bus import Bus
from repro.memory.cache import SetAssociativeCache
from repro.memory.dram import MainMemory
from repro.memory.mshr import MSHRFile
from repro.prefetchers.base import (
    AccessEvent,
    EvictionEvent,
    MissEvent,
    Prefetcher,
    PrefetchRequest,
)

__all__ = ["AccessResult", "HierarchyParams", "HierarchyStats", "MemoryHierarchy"]

#: Gate deciding whether a pending L1 promotion may evict ``victim`` now.
#: Signature: (victim_line, set_index, now) -> bool.
L1PromotionGate = Callable[[object, int, float], bool]


@dataclass(frozen=True)
class HierarchyParams:
    """Machine parameters (defaults reproduce the paper's Table 1)."""

    l1d: CacheGeometry = CacheGeometry(32 * 1024, 1, 32)
    l1i: CacheGeometry = CacheGeometry(32 * 1024, 4, 32)
    l2: CacheGeometry = CacheGeometry(1024 * 1024, 4, 64)
    l1_hit_latency: int = 2
    l2_hit_latency: int = 12
    memory_latency: int = 70
    l1l2_bus_bytes_per_cycle: int = 32
    mem_bus_bytes_per_cycle: int = 32
    mshr_entries: int = 64
    memory_concurrency: int = 12
    #: outstanding-prefetch cap; excess predictions are dropped (the
    #: "overflow the outgoing prefetch buffer" effect of Section 5.2.2).
    max_outstanding_prefetches: int = 32
    #: cycles between observing a miss and launching its prefetches.
    prefetch_issue_delay: int = 2
    #: prefetches have low priority: when the memory bus backlog exceeds
    #: this many cycles the prefetch is cancelled rather than queued
    #: behind demand traffic (Section 5.2.2: low-priority prefetches can
    #: be "delayed, canceled, superseded by accesses").
    prefetch_busy_threshold: float = 60.0
    #: a pending L1 promotion is abandoned after this many cycles: once
    #: the prediction horizon has passed, the demand access has already
    #: been served through the normal path and installing the block
    #: would only displace newer data.
    promotion_ttl: float = 8192.0
    #: recency position for prefetch fills in L2: "lru" (low-priority
    #: insertion — a useless prefetch is evicted first and cannot
    #: displace the demand working set) or "mru" (classic insertion).
    prefetch_insert_policy: str = "lru"
    #: dedicated L1/L2 prefetch bus (hybrid prefetcher only).
    dedicated_prefetch_bus: bool = False
    #: force every L2 data access to hit (the paper's Figure 1 study).
    ideal_l2: bool = False
    #: model the instruction-fetch path (L1I/L2I).
    model_icache: bool = True

    def __post_init__(self) -> None:
        if self.l2.block_bytes < self.l1d.block_bytes:
            raise ValueError("L2 blocks must be at least as large as L1 blocks")
        if self.l2.block_bytes % self.l1d.block_bytes != 0:
            raise ValueError("L2 block size must be a multiple of L1 block size")
        if self.prefetch_insert_policy not in ("lru", "mru"):
            raise ValueError(
                f"prefetch insert policy must be 'lru' or 'mru', "
                f"got {self.prefetch_insert_policy!r}"
            )


@dataclass
class HierarchyStats:
    """Counters accumulated over one simulation run."""

    demand_accesses: int = 0
    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_demand_accesses: int = 0
    l2_demand_hits: int = 0
    l2_demand_misses: int = 0
    prefetched_original: int = 0
    prefetches_requested: int = 0
    prefetches_issued: int = 0
    prefetch_redundant: int = 0
    prefetch_dropped_queue: int = 0
    prefetch_dropped_busy: int = 0
    prefetch_evicted_unused: int = 0
    prefetch_residual_unused: int = 0
    useful_prefetches: int = 0
    l1_promotions: int = 0
    l1_promotion_hits: int = 0
    writebacks_l1: int = 0
    writebacks_l2: int = 0
    ifetch_accesses: int = 0
    ifetch_misses: int = 0
    mshr_merges: int = 0
    mshr_full_stalls: int = 0

    def snapshot(self) -> "HierarchyStats":
        """Copy of the current counters (taken at the end of warmup)."""
        return HierarchyStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def since(self, warmup: "HierarchyStats") -> "HierarchyStats":
        """Counters accumulated after the ``warmup`` snapshot."""
        return HierarchyStats(
            **{
                f.name: getattr(self, f.name) - getattr(warmup, f.name)
                for f in fields(self)
            }
        )

    @property
    def non_prefetched_original(self) -> int:
        """Demand L2 accesses not covered by a prefetch."""
        return self.l2_demand_accesses - self.prefetched_original

    @property
    def prefetched_extra(self) -> int:
        """Prefetch work that never covered a demand access."""
        return (
            self.prefetch_redundant
            + self.prefetch_evicted_unused
            + self.prefetch_residual_unused
        )

    @property
    def l1_miss_rate(self) -> float:
        """L1D demand miss rate."""
        if self.demand_accesses == 0:
            return 0.0
        return self.l1_misses / self.demand_accesses

    @property
    def l2_demand_miss_rate(self) -> float:
        """L2 miss rate over demand accesses only."""
        if self.l2_demand_accesses == 0:
            return 0.0
        return self.l2_demand_misses / self.l2_demand_accesses

    def breakdown_vs_original(self) -> Dict[str, float]:
        """Figure 12's three categories, normalised to original accesses."""
        original = max(self.l2_demand_accesses, 1)
        return {
            "prefetched_original": self.prefetched_original / original,
            "non_prefetched_original": self.non_prefetched_original / original,
            "prefetched_extra": self.prefetched_extra / original,
        }


@dataclass
class AccessResult:
    """Outcome of one demand access (returned to the CPU model)."""

    completion: float
    l1_hit: bool
    l2_hit: bool = True


class MemoryHierarchy:
    """L1D/L1I + L2 + memory with buses, MSHRs, and a prefetch port."""

    def __init__(self, params: Optional[HierarchyParams] = None) -> None:
        self.params = params or HierarchyParams()
        p = self.params
        self.l1d = SetAssociativeCache(p.l1d, "L1D")
        self.l1i = SetAssociativeCache(p.l1i, "L1I")
        self.l2d = SetAssociativeCache(p.l2, "L2D")
        self.l2i = SetAssociativeCache(p.l2, "L2I")
        # Split-transaction links: separate address (command) and data
        # channels per bus, so commands never queue behind data beats
        # scheduled for future return times.
        self.l1l2_addr_bus = Bus("L1/L2-addr", p.l1l2_bus_bytes_per_cycle)
        self.l1l2_data_bus = Bus("L1/L2-data", p.l1l2_bus_bytes_per_cycle)
        self.mem_addr_bus = Bus("L2/mem-addr", p.mem_bus_bytes_per_cycle)
        self.mem_data_bus = Bus("L2/mem-data", p.mem_bus_bytes_per_cycle)
        self.memory = MainMemory(
            p.memory_latency, self.mem_data_bus, self.mem_addr_bus, p.memory_concurrency
        )
        self.mshr = MSHRFile(p.mshr_entries)
        self.prefetch_bus: Optional[Bus] = None
        if p.dedicated_prefetch_bus:
            self.prefetch_bus = Bus("L1/L2-prefetch", p.l1l2_bus_bytes_per_cycle)
        self.stats = HierarchyStats()

        # L1-block-number -> L2 split precomputation.
        self._l2_shift = p.l2.offset_bits - p.l1d.offset_bits
        self._l2_index_mask = p.l2.sets - 1

        self.prefetcher: Optional[Prefetcher] = None
        self._needs_access = False
        self._needs_evict = False
        self._l1_gate: Optional[L1PromotionGate] = None
        self._promotions_enabled = False
        #: per-L1-set pending promotion: set index -> (l1 block, ready time)
        self._pending_l1: Dict[int, Tuple[int, float]] = {}
        #: completion times of in-flight prefetch fetches (bounded queue)
        self._pf_inflight: List[float] = []
        self._last_ifetch_block = -1
        #: snapshot of the counters at the end of warmup (None = no warmup).
        self.warmup_stats: Optional[HierarchyStats] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def attach_prefetcher(self, prefetcher: Optional[Prefetcher]) -> None:
        """Attach (or detach, with None) the prefetch engine."""
        self.prefetcher = prefetcher
        self._needs_access = bool(prefetcher and prefetcher.needs_access_stream)
        self._needs_evict = bool(prefetcher and prefetcher.needs_eviction_stream)
        gate = getattr(prefetcher, "l1_promotion_gate", None)
        self._l1_gate = gate
        self._promotions_enabled = gate is not None

    # ------------------------------------------------------------------
    # Demand access path
    # ------------------------------------------------------------------

    def access(
        self,
        now: float,
        index: int,
        tag: int,
        block: int,
        is_write: bool,
        pc: int,
    ) -> AccessResult:
        """Perform one demand data access; return its completion time.

        ``index``/``tag``/``block`` are the L1-geometry split of the
        address (precomputed by the simulator's vectorised front end).
        """
        stats = self.stats
        stats.demand_accesses += 1
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1

        if self._promotions_enabled and self._pending_l1:
            self._try_promote(index, now)

        line = self.l1d.lookup(index, tag, is_write, now)
        if line is not None:
            stats.l1_hits += 1
            if self._promotions_enabled and line.prefetched:
                line.prefetched = False
                stats.l1_promotion_hits += 1
                # A hit on a promoted line is a miss the prefetcher
                # prevented: train it as a virtual miss so the chain of
                # predictions continues instead of starving once its own
                # promotions hide the miss stream.
                if self.prefetcher is not None:
                    self._run_prefetcher(MissEvent(index, tag, block, pc, is_write, now))
            if self._needs_access:
                requests = self.prefetcher.observe_access(  # type: ignore[union-attr]
                    AccessEvent(index, tag, block, pc, is_write, True, now)
                )
                if requests:
                    for request in requests:
                        self.issue_prefetch(request, now + self.params.prefetch_issue_delay)
            return AccessResult(now + self.params.l1_hit_latency, True)

        # ----- L1 miss -------------------------------------------------
        stats.l1_misses += 1
        if self._needs_access:
            requests = self.prefetcher.observe_access(  # type: ignore[union-attr]
                AccessEvent(index, tag, block, pc, is_write, False, now)
            )
            if requests:
                for request in requests:
                    self.issue_prefetch(request, now + self.params.prefetch_issue_delay)

        if self._promotions_enabled:
            pending = self._pending_l1.get(index)
            if pending is not None and pending[0] == block:
                # The demand beat the promotion; the normal fill below
                # supersedes it.  Promoting later would only displace
                # whatever replaced this block in the meantime.
                del self._pending_l1[index]

        merged = self.mshr.lookup(block, now)
        if merged is not None:
            stats.mshr_merges += 1
            return AccessResult(merged, False)

        start = self.mshr.acquire(now)
        stats.mshr_full_stalls = self.mshr.full_stalls
        data_ready, l2_hit = self._demand_l2(start, block)
        # Data return to L1 over the L1/L2 data channel.
        xfer = self.l1l2_data_bus.request(data_ready, self.params.l1d.block_bytes)
        completion = xfer + self.l1l2_data_bus.beats(self.params.l1d.block_bytes)
        self.mshr.register(block, completion, now)

        self._fill_l1(index, tag, completion, prefetched=False, dirty=is_write)

        if self.prefetcher is not None:
            self._run_prefetcher(MissEvent(index, tag, block, pc, is_write, now))
        return AccessResult(completion, False, l2_hit)

    def _demand_l2(self, now: float, l1_block: int) -> Tuple[float, bool]:
        """Demand-fetch an L1 block from L2 (or memory through L2).

        Returns ``(time data is available at the L2 port, l2_hit)``.
        """
        p = self.params
        stats = self.stats
        request_start = self.l1l2_addr_bus.request(now + p.l1_hit_latency, 0)
        arrival = request_start + 1
        stats.l2_demand_accesses += 1

        l2_block = l1_block >> self._l2_shift
        l2_index = l2_block & self._l2_index_mask
        l2_tag = l2_block >> p.l2.index_bits

        line = self.l2d.lookup(l2_index, l2_tag, False, arrival)
        if line is not None or p.ideal_l2:
            stats.l2_demand_hits += 1
            data_ready = arrival + p.l2_hit_latency
            if line is not None:
                if line.prefetched:
                    line.prefetched = False
                    stats.prefetched_original += 1
                    stats.useful_prefetches += 1
                if line.fill_time > arrival:
                    # Prefetch (or earlier demand fill) still in flight:
                    # the demand merges with it.
                    data_ready = max(data_ready, line.fill_time)
            return data_ready, True

        # ----- L2 miss: fetch from main memory -------------------------
        stats.l2_demand_misses += 1
        done = self.memory.fetch(arrival + p.l2_hit_latency, p.l2.block_bytes)
        self._fill_l2(l2_index, l2_tag, done, prefetched=False)
        return done, False

    def _fill_l1(
        self, index: int, tag: int, now: float, prefetched: bool, dirty: bool
    ) -> None:
        """Install a block in L1D, handling eviction side effects."""
        eviction = self.l1d.fill(index, tag, now, prefetched=prefetched, dirty=dirty)
        if eviction is None:
            return
        if eviction.dirty:
            self.stats.writebacks_l1 += 1
            self.l1l2_data_bus.request(now, self.params.l1d.block_bytes)
        if self._needs_evict:
            victim = eviction.line
            block = (victim.tag << self.params.l1d.index_bits) | index
            self.prefetcher.observe_eviction(  # type: ignore[union-attr]
                EvictionEvent(
                    index, victim.tag, block, now, victim.fill_time, victim.last_access
                )
            )

    def _fill_l2(self, index: int, tag: int, now: float, prefetched: bool) -> None:
        """Install a block in L2D, handling eviction side effects.

        Prefetch fills insert at the LRU position (low-priority
        insertion): a wrong prefetch is the first thing evicted instead
        of displacing the demand working set's recency order.
        """
        lru_insert = prefetched and self.params.prefetch_insert_policy == "lru"
        eviction = self.l2d.fill(index, tag, now, prefetched=prefetched,
                                 lru_insert=lru_insert)
        if eviction is None:
            return
        if eviction.line.prefetched:
            self.stats.prefetch_evicted_unused += 1
        if eviction.dirty:
            self.stats.writebacks_l2 += 1
            self.memory.writeback(now, self.params.l2.block_bytes)

    # ------------------------------------------------------------------
    # Instruction fetch path
    # ------------------------------------------------------------------

    def instruction_fetch(self, now: float, pc: int) -> float:
        """Fetch the instruction block holding ``pc``.

        Returns the extra frontend latency (0 for the common sequential
        hit).  Instruction misses go to the dedicated L2I (Table 1 has
        separate 1 MB L2 I and D caches) and then to memory.
        """
        p = self.params
        block = pc >> p.l1i.offset_bits
        if block == self._last_ifetch_block:
            return 0.0
        self._last_ifetch_block = block
        self.stats.ifetch_accesses += 1
        index = block & (p.l1i.sets - 1)
        tag = block >> p.l1i.index_bits
        if self.l1i.lookup(index, tag, False, now) is not None:
            return 0.0
        self.stats.ifetch_misses += 1
        l2_block = block >> self._l2_shift
        l2_index = l2_block & self._l2_index_mask
        l2_tag = l2_block >> p.l2.index_bits
        arrival = self.l1l2_addr_bus.request(now, 0) + 1
        if self.l2i.lookup(l2_index, l2_tag, False, arrival) is not None:
            ready = arrival + p.l2_hit_latency
        else:
            ready = self.memory.fetch(arrival + p.l2_hit_latency, p.l2.block_bytes)
            self.l2i.fill(l2_index, l2_tag, ready)
        self.l1i.fill(index, tag, ready)
        return max(0.0, ready - now)

    # ------------------------------------------------------------------
    # Prefetch path
    # ------------------------------------------------------------------

    def _run_prefetcher(self, miss: MissEvent) -> None:
        """Feed one miss to the prefetcher and issue what it predicts."""
        requests = self.prefetcher.observe_miss(miss)  # type: ignore[union-attr]
        if not requests:
            return
        launch = miss.now + self.params.prefetch_issue_delay
        for request in requests:
            self.issue_prefetch(request, launch)

    def issue_prefetch(self, request: PrefetchRequest, now: float) -> bool:
        """Issue one prefetch into L2; returns True if a fetch started.

        The request is dropped (with accounting) when the target is
        already resident or in flight, or when the outstanding-prefetch
        queue is full.
        """
        p = self.params
        stats = self.stats
        stats.prefetches_requested += 1
        l1_block = request.block
        l2_block = l1_block >> self._l2_shift
        l2_index = l2_block & self._l2_index_mask
        l2_tag = l2_block >> p.l2.index_bits

        resident = self.l2d.probe(l2_index, l2_tag)
        if resident is not None:
            stats.prefetch_redundant += 1
            if request.into_l1 and self._promotions_enabled:
                # Already in L2 — only the L1 promotion remains useful.
                ready = max(now, resident.fill_time)
                self._pending_l1[l1_block & (p.l1d.sets - 1)] = (l1_block, ready)
            return False

        inflight = self._pf_inflight
        if inflight:
            self._pf_inflight = inflight = [t for t in inflight if t > now]
        if len(inflight) >= p.max_outstanding_prefetches:
            stats.prefetch_dropped_queue += 1
            return False
        # The prefetch's data return would want the memory data channel
        # around now + command + array latency; anything booked beyond
        # that horizon is genuine backlog from demand traffic, and a
        # low-priority prefetch yields to it (Section 5.2.2).
        if self.memory.backlog(now) > p.prefetch_busy_threshold:
            stats.prefetch_dropped_busy += 1
            return False

        # The predictor sits at the L2 controller (Figure 10); an
        # L2-only prefetch touches just the L2/memory link.
        done = self.memory.fetch(now + p.l2_hit_latency, p.l2.block_bytes)
        inflight.append(done)
        stats.prefetches_issued += 1
        self._fill_l2(l2_index, l2_tag, done, prefetched=True)
        if request.into_l1 and self._promotions_enabled:
            self._pending_l1[l1_block & (p.l1d.sets - 1)] = (l1_block, done)
        return True

    def _try_promote(self, index: int, now: float) -> None:
        """Attempt the pending L2→L1 promotion for set ``index``.

        The promotion happens only when the prefetched data has arrived
        in L2 and the dead-block gate approves evicting the current L1
        victim (Section 5.2.2: "update L1 only after the corresponding
        cache line is predicted dead").
        """
        pending = self._pending_l1.get(index)
        if pending is None:
            return
        l1_block, ready = pending
        if ready > now:
            return
        p = self.params
        if now - ready > p.promotion_ttl:
            del self._pending_l1[index]
            return
        l2_block = l1_block >> self._l2_shift
        l2_index = l2_block & self._l2_index_mask
        l2_tag = l2_block >> p.l2.index_bits
        if self.l2d.probe(l2_index, l2_tag) is None:
            del self._pending_l1[index]
            return
        tag = l1_block >> p.l1d.index_bits
        if self.l1d.probe(index, tag) is not None:
            del self._pending_l1[index]
            return
        victim = self.l1d.victim_line(index)
        if victim is not None and not self._l1_gate(victim, index, now):  # type: ignore[misc]
            return  # victim still live; retry on a later access
        # The promotion reads the block out of L2: refresh its recency
        # and consume the prefetch bit (the prefetch is now useful).
        l2_line = self.l2d.lookup(l2_index, l2_tag, False, now)
        if l2_line is not None and l2_line.prefetched:
            l2_line.prefetched = False
            self.stats.useful_prefetches += 1
        bus = self.prefetch_bus if self.prefetch_bus is not None else self.l1l2_data_bus
        start = bus.request(now, p.l1d.block_bytes)
        self._fill_l1(index, tag, start + bus.beats(p.l1d.block_bytes), prefetched=True, dirty=False)
        self.stats.l1_promotions += 1
        del self._pending_l1[index]

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------

    def mark_warmup_end(self) -> None:
        """Snapshot the counters; ``measured_stats`` subtracts them."""
        self.warmup_stats = self.stats.snapshot()

    def measured_stats(self) -> HierarchyStats:
        """Counters for the measurement window (post-warmup)."""
        if self.warmup_stats is None:
            return self.stats
        return self.stats.since(self.warmup_stats)

    def finalize(self) -> None:
        """Account for prefetched blocks still unused at end of run."""
        residual = 0
        for index in range(self.params.l2.sets):
            for line in self.l2d.resident_lines(index):
                if line.prefetched:
                    residual += 1
        self.stats.prefetch_residual_unused += residual

    def reset(self) -> None:
        """Re-create all state for a fresh run (same configuration)."""
        self.__init__(self.params)  # type: ignore[misc]
