"""Tests for the live-time analysis (repro.analysis.livetime)."""

import numpy as np
import pytest

from repro.analysis import live_time_stats
from repro.memory.address import CacheGeometry
from repro.workloads import Scale
from repro.workloads.trace import Trace

SMALL = CacheGeometry(4 * 32, 1, 32)  # 4 sets


def make_trace(addrs):
    n = len(addrs)
    return Trace(
        name="t",
        addrs=np.asarray(addrs, dtype=np.uint64),
        pcs=np.zeros(n, dtype=np.uint64),
        is_load=np.ones(n, dtype=bool),
        gaps=np.zeros(n, dtype=np.uint16),
        deps=np.zeros(n, dtype=np.int32),
    )


class TestLiveTimes:
    def test_known_generation(self):
        span = SMALL.sets * SMALL.block_bytes
        # block A: touched at 0,1,2 (live 2), evicted at 5 (dead 3)
        trace = make_trace([0, 0, 0, 64, 96, span])
        stats = live_time_stats(trace, geometry=SMALL)
        assert stats.generations == 1
        assert stats.mean_live == 2.0
        assert stats.mean_dead == 3.0
        assert stats.dead_to_live_ratio == pytest.approx(1.5)

    def test_single_touch_blocks_have_zero_live(self):
        span = SMALL.sets * SMALL.block_bytes
        trace = make_trace([0, span, 0, span])
        stats = live_time_stats(trace, geometry=SMALL)
        assert stats.generations == 3
        assert stats.mean_live == 0.0

    def test_repeatability_on_regular_generations(self):
        span = SMALL.sets * SMALL.block_bytes
        # block 0 alternates with its conflict partner: every generation
        # has identical live time (two touches)
        pattern = [0, 0, span, span]
        trace = make_trace(pattern * 10)
        stats = live_time_stats(trace, geometry=SMALL)
        assert stats.live_time_repeatability == 1.0

    def test_empty_when_no_evictions(self):
        trace = make_trace([0, 32, 64, 96])  # all distinct sets, no conflicts
        stats = live_time_stats(trace, geometry=SMALL)
        assert stats.generations == 0
        assert stats.mean_live == 0.0

    def test_suite_workload_has_dead_dominated_blocks(self):
        stats = live_time_stats("applu", Scale.QUICK)
        # sweeps: short live bursts, long dead tails (the timekeeping
        # premise the hybrid's gate relies on)
        assert stats.generations > 100
        assert stats.dead_to_live_ratio > 10.0

    def test_percentiles_ordered(self):
        stats = live_time_stats("swim", Scale.QUICK)
        assert stats.median_live <= stats.p90_live
