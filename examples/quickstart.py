#!/usr/bin/env python3
"""Quickstart: simulate one benchmark with and without TCP.

Runs the swim-analogue workload (a memory-bound scientific sweep, one
of the paper's showcase benchmarks) on the paper's Table 1 machine
three ways — no prefetcher, TCP-8K, and the 2 MB DBCP baseline — and
prints IPC, miss rates, and the Figure 12 L2-access taxonomy.

Usage::

    python examples/quickstart.py [benchmark] [scale]

e.g. ``python examples/quickstart.py mcf standard``.
"""

import sys

from repro import Scale, SimulationConfig, simulate
from repro.workloads import SUITE


def main() -> int:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "swim"
    scale = Scale[(sys.argv[2] if len(sys.argv) > 2 else "quick").upper()]
    if benchmark not in SUITE:
        print(f"unknown benchmark {benchmark!r}; choose from {sorted(SUITE)}")
        return 2

    print(f"benchmark: {benchmark} — {SUITE[benchmark].summary}")
    print(f"scale:     {scale.name.lower()} (~{scale.accesses:,} memory accesses)\n")

    base = simulate(benchmark, SimulationConfig.baseline(), scale)
    print(f"no prefetcher : IPC {base.ipc:6.3f}   "
          f"L1 miss {base.memory.l1_miss_rate:6.2%}   "
          f"L2 miss {base.memory.l2_demand_miss_rate:6.2%}")

    for name in ("tcp-8k", "dbcp-2m"):
        result = simulate(benchmark, SimulationConfig.for_prefetcher(name), scale)
        gain = result.improvement_over(base)
        budget = result.prefetcher_storage_bytes / 1024
        print(f"{name:13s} : IPC {result.ipc:6.3f} ({gain:+5.1f}%)  "
              f"L2 miss {result.memory.l2_demand_miss_rate:6.2%}   "
              f"table {budget:7.0f} KB")
        taxonomy = result.memory.breakdown_vs_original()
        print("                L2 accesses: "
              + ", ".join(f"{key.replace('_', ' ')} {value:.0%}"
                          for key, value in taxonomy.items()))

    print("\nThe paper's claim: the few-KB tag-correlating table matches or "
          "beats megabyte-scale address correlation.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
