"""Offline prefetcher evaluation on a captured miss stream.

Timing simulation answers "how much faster"; researchers iterating on
predictor designs first want the cheaper questions: of the misses in
this stream, how many would the predictor have *predicted* (coverage),
and how many of its predictions were *right* (accuracy)?  This module
replays a miss stream through any :class:`repro.prefetchers.base.
Prefetcher` and scores its predictions against the stream itself —
no caches, no buses, two orders of magnitude faster than timing runs.

Scoring model: a prediction of block B issued at miss position *i*
counts as correct if B is demanded within ``horizon`` subsequent
misses.  The horizon bounds both staleness (a prefetch used a million
misses later would long since have been evicted) and the cost of the
search.

This is the standard trace-based prefetcher-evaluation methodology
(coverage/accuracy first, timing second), and it is how the table in
``examples/predictor_lab.py`` is produced.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Set, Union

from repro.analysis.miss_stream import MissStream, capture_miss_stream
from repro.prefetchers.base import MissEvent, Prefetcher
from repro.workloads import Scale, Trace

__all__ = ["PredictionScore", "score_prefetcher"]


@dataclass(frozen=True)
class PredictionScore:
    """Offline coverage/accuracy of one prefetcher on one miss stream."""

    workload: str
    prefetcher: str
    misses: int
    predictions: int
    correct: int
    covered: int
    storage_bytes: int

    @property
    def accuracy(self) -> float:
        """Fraction of predictions that came true within the horizon."""
        return self.correct / self.predictions if self.predictions else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of misses that an earlier prediction anticipated."""
        return self.covered / self.misses if self.misses else 0.0

    @property
    def predictions_per_miss(self) -> float:
        """Traffic proxy: prefetch requests per observed miss."""
        return self.predictions / self.misses if self.misses else 0.0


def score_prefetcher(
    prefetcher: Prefetcher,
    workload: Union[str, Trace, MissStream],
    scale: Scale = Scale.STANDARD,
    horizon: int = 512,
) -> PredictionScore:
    """Replay a miss stream through ``prefetcher`` and score it.

    The prefetcher sees exactly what it would see at the L1 miss port
    (index, tag, block, PC of 0 — offline scoring has no PCs for
    streams captured without them).  Its requests are matched against
    the next ``horizon`` misses of the stream.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if isinstance(workload, MissStream):
        stream = workload
    else:
        stream = capture_miss_stream(workload, scale)

    n = len(stream)
    indices = stream.indices
    tags = stream.tags
    blocks = stream.blocks

    # sliding window: block -> number of outstanding predictions of it
    outstanding: Dict[int, int] = {}
    window: Deque[Set[int]] = deque()
    predictions = 0
    correct = 0
    covered = 0

    for position in range(n):
        block = int(blocks[position])

        # score: was this miss anticipated?
        hits = outstanding.get(block, 0)
        if hits:
            covered += 1
            correct += hits
            outstanding[block] = 0  # each prediction pays out once
        # age out the horizon
        window.append(set())
        if len(window) > horizon:
            for stale in window.popleft():
                remaining = outstanding.get(stale, 0)
                if remaining > 0:
                    outstanding[stale] = remaining - 1

        requests = prefetcher.observe_miss(
            MissEvent(int(indices[position]), int(tags[position]), block, 0, False,
                      float(position))
        )
        for request in requests:
            predictions += 1
            outstanding[request.block] = outstanding.get(request.block, 0) + 1
            window[-1].add(request.block)

    return PredictionScore(
        workload=stream.workload,
        prefetcher=prefetcher.name,
        misses=n,
        predictions=predictions,
        correct=correct,
        covered=covered,
        storage_bytes=prefetcher.storage_bytes(),
    )
