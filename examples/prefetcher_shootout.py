#!/usr/bin/env python3
"""Prefetcher shootout across workload classes.

The paper's introduction motivates correlation prefetching with the
limits of simpler schemes: stride prefetchers only catch constant
strides, stream buffers only sequential runs, Markov tables pay an
address-indexed storage bill.  This example pits every prefetcher in
the registry against four contrasting workload classes:

* ``swim``  — regular multi-array sweeps (stride/stream food, but the
  tag patterns also repeat across sets);
* ``mcf``   — serialized pointer chasing (only correlation helps);
* ``twolf`` — drifting random probes (nothing should help; watch the
  traffic cost);
* ``art``   — a small tag working set looped over (correlation
  heaven).

For each pair it reports IPC improvement, prefetch coverage, traffic
overhead, and the hardware budget — the trade-off space the paper's
Figure 11/12 argue about.

Usage: ``python examples/prefetcher_shootout.py [scale]``
"""

import sys

from repro import Scale, SimulationConfig, simulate
from repro.util.tables import format_table

WORKLOADS = ("swim", "mcf", "twolf", "art")
PREFETCHERS = ("nextline", "stride", "stream", "markov", "dbcp-2m", "tcp-8k", "tcp-8m")


def main() -> int:
    scale = Scale[(sys.argv[1] if len(sys.argv) > 1 else "quick").upper()]
    rows = []
    for workload in WORKLOADS:
        base = simulate(workload, SimulationConfig.baseline(), scale)
        for name in PREFETCHERS:
            result = simulate(workload, SimulationConfig.for_prefetcher(name), scale)
            memory = result.memory
            coverage = memory.prefetched_original / max(memory.l2_demand_accesses, 1)
            extra = memory.prefetched_extra / max(memory.l2_demand_accesses, 1)
            rows.append(
                [
                    workload,
                    name,
                    result.improvement_over(base),
                    coverage * 100.0,
                    extra * 100.0,
                    result.prefetcher_storage_bytes / 1024,
                ]
            )
    print(
        format_table(
            ["workload", "prefetcher", "IPC gain %", "coverage %", "extra traffic %", "budget KB"],
            rows,
            title=f"Prefetcher shootout (scale={scale.name.lower()})",
        )
    )
    print(
        "\nReading guide: coverage is the share of demand L2 accesses the\n"
        "prefetcher pre-issued (Figure 12's 'prefetched original'); extra\n"
        "traffic is prefetch work that never helped. TCP-8K should match\n"
        "or beat the address-based tables at a fraction of their budget."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
