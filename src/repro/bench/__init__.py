"""Performance harness for the simulator's per-access hot path.

The engine refactor (slotted events, precomputed geometry, the flat
:meth:`~repro.memory.hierarchy.MemoryHierarchy.access_time` fast path,
bulk ``tolist`` trace conversion) is a pure performance change — every
simulated number is bit-identical — so it needs its own measurement to
exist as a result.  This package provides it:

:mod:`repro.bench.legacy`
    A reference driver that replays the *seed tree's* per-access call
    pattern (per-element numpy scalar indexing, ``int()`` conversions,
    the outcome-allocating structured ``access()`` wrapper, inline
    mark bookkeeping) against the same hierarchy.  Timing the same
    machine under both drivers yields a speedup ratio that is
    meaningful across hosts, unlike raw accesses/sec.
:mod:`repro.bench.hotpath`
    The benchmark proper: times the engine loop and the legacy driver
    over the Figure 11 workload mix for a set of prefetchers and emits
    ``BENCH_hotpath.json``.
:mod:`repro.bench.campaign`
    The campaign-layer benchmark: runs the fig11 cell mix through
    ``prewarm`` twice — the seed per-attempt pathway vs the warm
    worker pool with the mmap-backed trace cache — enforces per-cell
    result equality, and emits ``BENCH_campaign.json``.
:mod:`repro.bench.backend`
    The backend-layer benchmark: pits the numpy batch-stepping backend
    against the ``python`` reference per (workload, prefetcher) cell,
    enforces bit-identical results, and emits ``BENCH_backend.json``.

Run them with ``repro-tcp bench`` / ``repro-tcp bench --campaign`` /
``repro-tcp bench --backend numpy`` (see ``docs/usage.md``) or
``python -m repro.bench``.
"""

from repro.bench.backend import run_backend_bench
from repro.bench.campaign import run_campaign_bench
from repro.bench.hotpath import run_hotpath_bench

__all__ = ["run_backend_bench", "run_campaign_bench", "run_hotpath_bench"]
