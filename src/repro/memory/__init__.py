"""The memory-system substrate: caches, buses, DRAM, and the hierarchy.

This package implements everything below the core that the paper's
evaluation machine contains (Table 1 of the paper): a 32 KB
direct-mapped L1 data cache with 32 B blocks and 64 MSHRs, a 1 MB 4-way
L2 with 64 B blocks and 12-cycle latency, 70-cycle main memory, and
occupancy-modelled L1/L2 and L2/memory buses (plus the optional
dedicated prefetch bus used by the hybrid prefetcher of Section 5.2.2).

The top-level object is :class:`repro.memory.hierarchy.MemoryHierarchy`,
which the CPU timing model calls once per memory access and which feeds
L1 miss events to whatever prefetcher is attached.
"""

from repro.memory.address import CacheGeometry
from repro.memory.bus import Bus
from repro.memory.cache import CacheLine, Eviction, SetAssociativeCache
from repro.memory.dram import MainMemory
from repro.memory.hierarchy import AccessResult, HierarchyParams, MemoryHierarchy
from repro.memory.mshr import MSHRFile

__all__ = [
    "AccessResult",
    "Bus",
    "CacheGeometry",
    "CacheLine",
    "Eviction",
    "HierarchyParams",
    "MSHRFile",
    "MainMemory",
    "MemoryHierarchy",
    "SetAssociativeCache",
]
