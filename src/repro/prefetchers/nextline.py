"""Sequential next-line prefetching.

The simplest hardware prefetcher: on a miss to block B, prefetch
B+1..B+degree.  It needs no tables at all and serves as the sanity
baseline that any correlation prefetcher must beat on non-sequential
workloads (and that is hard to beat on purely sequential ones).
"""

from __future__ import annotations

from typing import List

from repro.prefetchers.base import MissEvent, Prefetcher, PrefetchRequest

__all__ = ["NextLinePrefetcher"]


class NextLinePrefetcher(Prefetcher):
    """Prefetch the ``degree`` blocks following each miss."""

    def __init__(self, degree: int = 1) -> None:
        if degree <= 0:
            raise ValueError(f"prefetch degree must be positive, got {degree}")
        super().__init__(f"nextline-{degree}")
        self.degree = degree

    def observe_miss(self, miss: MissEvent) -> List[PrefetchRequest]:
        self.stats.lookups += 1
        self.stats.predictions += self.degree
        return [PrefetchRequest(miss.block + offset) for offset in range(1, self.degree + 1)]

    def storage_bytes(self) -> int:
        return 0
