"""Stream-buffer prefetching (Jouppi, ISCA 1990).

The paper's related work [10]: on a miss that does not match any
existing stream, allocate a stream buffer that prefetches successive
blocks; a miss that matches the head of a buffer consumes the entry and
extends the stream.

In this trace-driven reproduction the buffers hold block *numbers*; a
matched block is reported as a prefetch hit by the hierarchy because
the matched entry was prefetched into L2 ahead of time (the buffers
here steer *which* blocks to prefetch; the storage itself is L2, which
is the configuration Jouppi's follow-ups and this paper's Figure 10
placement imply for an L2-side prefetcher).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.prefetchers.base import MissEvent, Prefetcher, PrefetchRequest

__all__ = ["StreamBufferConfig", "StreamBufferPrefetcher"]


@dataclass(frozen=True)
class StreamBufferConfig:
    """Stream buffer file geometry."""

    buffers: int = 8
    depth: int = 4
    #: bytes per buffer entry (block address + valid bit).
    entry_bytes: int = 5

    def __post_init__(self) -> None:
        if self.buffers <= 0 or self.depth <= 0:
            raise ValueError("stream buffer count and depth must be positive")


class _Stream:
    __slots__ = ("next_block", "last_use")

    def __init__(self, next_block: int, now: float) -> None:
        self.next_block = next_block
        self.last_use = now


class StreamBufferPrefetcher(Prefetcher):
    """A file of sequential stream buffers with LRU allocation."""

    def __init__(self, config: StreamBufferConfig = StreamBufferConfig()) -> None:
        super().__init__("stream")
        self.config = config
        self._streams: List[Optional[_Stream]] = [None] * config.buffers

    def _match(self, block: int) -> Optional[_Stream]:
        """Find a stream whose window covers ``block``."""
        depth = self.config.depth
        for stream in self._streams:
            if stream is not None and 0 <= block - stream.next_block < depth:
                return stream
        return None

    def observe_miss(self, miss: MissEvent) -> List[PrefetchRequest]:
        self.stats.lookups += 1
        cfg = self.config
        stream = self._match(miss.block)
        if stream is not None:
            # Stream hit: advance past the consumed block, refill the
            # window so the buffer stays `depth` blocks ahead.
            consumed = miss.block - stream.next_block + 1
            first_new = stream.next_block + cfg.depth
            stream.next_block += consumed
            stream.last_use = miss.now
            self.stats.predictions += consumed
            self.stats.updates += 1
            return [PrefetchRequest(first_new + i) for i in range(consumed)]

        # Allocate a new stream over the LRU buffer.
        slot = 0
        oldest = float("inf")
        for position, existing in enumerate(self._streams):
            if existing is None:
                slot = position
                break
            if existing.last_use < oldest:
                oldest = existing.last_use
                slot = position
        self._streams[slot] = _Stream(miss.block + 1, miss.now)
        self.stats.predictions += cfg.depth
        return [PrefetchRequest(miss.block + 1 + i) for i in range(cfg.depth)]

    def storage_bytes(self) -> int:
        return self.config.buffers * self.config.depth * self.config.entry_bytes

    def reset(self) -> None:
        super().reset()
        self._streams = [None] * self.config.buffers
