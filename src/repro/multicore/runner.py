"""execute_mix(): one cold N-core machine over one workload mix.

The multicore analogue of :func:`repro.sim.runner._execute`.  Builds
one :class:`~repro.multicore.engine.SharedFabric`, one
:class:`~repro.multicore.engine.CoreHierarchy` + cold prefetcher per
core, attaches the same observation probes the single-core path uses
(heartbeat/fault hooks on core 0, metrics and the sanitizer per core,
plus the shared-L2 ownership check), interleaves the cores with
:func:`~repro.multicore.engine.run_cores`, and assembles a
:class:`~repro.multicore.results.MixResult`.

Mix runs always execute on the reference (pure-Python) core engine —
the numpy/native batch engines are single-stream by design — and the
result records that via ``backend_fallback="multicore"`` through the
existing provenance path.
"""

from __future__ import annotations

from typing import Any, List

from repro.engine.probes import MetricsProbe, Probe, ProgressProbe, SanitizerProbe
from repro.obs import metrics as obs_metrics
from repro.sim import resilience, sanitizer as sanitizer_mod
from repro.sim.config import SimulationConfig
from repro.sim.runner import WARMUP_FRACTION
from repro.multicore.engine import (
    CoreHierarchy,
    CoreRunner,
    SharedFabric,
    offset_trace,
    run_cores,
)
from repro.multicore.results import MixCoreResult, MixResult
from repro.workloads import generate

__all__ = ["execute_mix"]

#: provenance marker recorded on every mix result: the run executed on
#: the reference core engine's multicore front end.
MULTICORE_FALLBACK = "multicore"


class SharedL2Probe(Probe):
    """Periodic shared-L2 ownership/occupancy invariant check.

    Attached (once, to core 0) alongside the per-core sanitizers: at
    each mark it runs the sampled shared-L2 scan, and at finalize the
    complete owner-map bijection check.  Read-only, like every probe.
    """

    def __init__(self, sanitizer: Any, fabric: SharedFabric) -> None:
        self.sanitizer = sanitizer
        self.fabric = fabric
        self.interval = int(sanitizer.interval)

    def on_mark(self, mark: Any, hierarchy: Any) -> None:
        self.sanitizer.check_shared_l2(
            self.fabric, sample=sanitizer_mod.SCAN_SAMPLE
        )

    def on_finalize(self, hierarchy: Any) -> None:
        self.sanitizer.check_shared_l2(self.fabric, sample=None)


def _share_pht(prefetchers: List[Any], names: Any) -> None:
    """Point every core's prefetcher at core 0's PHT."""
    shared = getattr(prefetchers[0], "pht", None)
    if shared is None:
        raise ValueError(
            f"shared_pht requires a prefetcher with a PHT; "
            f"{prefetchers[0].name!r} has none"
        )
    for prefetcher in prefetchers[1:]:
        try:
            prefetcher.pht = shared
        except AttributeError as exc:
            raise ValueError(
                f"prefetcher {prefetcher.name!r} cannot share a PHT: {exc}"
            ) from exc


def execute_mix(
    config: SimulationConfig,
    accesses: int,
    warmup_fraction: float = WARMUP_FRACTION,
) -> MixResult:
    """Run one cold N-core machine over ``config.mix``."""
    if config.mix is None:
        raise ValueError("execute_mix requires a configuration with a mix")
    if not 0 <= warmup_fraction < 1:
        raise ValueError(
            f"warmup fraction must be in [0, 1), got {warmup_fraction}"
        )
    names = config.mix
    fabric = SharedFabric(config.hierarchy, len(names))
    corruption = sanitizer_mod.consume_scheduled_corruption()
    registry = obs_metrics.active_registry()

    runners: List[CoreRunner] = []
    hierarchies: List[CoreHierarchy] = []
    prefetchers: List[Any] = []
    probe_lists: List[List[Probe]] = []
    for core_id, name in enumerate(names):
        trace = offset_trace(generate(name, accesses), core_id)
        hierarchy = CoreHierarchy(config.hierarchy, fabric, core_id)
        prefetcher = config.build_prefetcher()
        hierarchy.attach_prefetcher(prefetcher)
        warmup = int(len(trace) * warmup_fraction)

        probes: List[Probe] = []
        if core_id == 0 and (
            resilience.heartbeat_active()
            or corruption is not None
            or resilience.shutdown_watch_active()
        ):
            # Same contract as the single-core runner: heartbeats and
            # fault injection ride core 0's marks (all cores walk
            # equal-length traces, so core 0's progress is the mix's).
            pending = [corruption]

            def progress(done: int, total: int, sim_time: float) -> None:
                if pending[0] is not None and done > warmup:
                    kind, pending[0] = pending[0], None
                    sanitizer_mod.corrupt_state(hierarchy, prefetcher, kind)
                if resilience.shutdown_requested():
                    raise resilience.CampaignInterrupted(
                        "graceful shutdown requested mid-simulation"
                    )
                resilience.emit_heartbeat(done, total, sim_time)

            probes.append(ProgressProbe(progress))
        if registry is not None:
            probes.append(MetricsProbe(registry))
        sanitizer = sanitizer_mod.build_sanitizer(config.sanitize)
        if sanitizer is not None:
            probes.append(SanitizerProbe(sanitizer))
            if core_id == 0:
                probes.append(SharedL2Probe(sanitizer, fabric))

        runners.append(
            CoreRunner(core_id, trace, hierarchy, config.core, warmup, probes)
        )
        hierarchies.append(hierarchy)
        prefetchers.append(prefetcher)
        probe_lists.append(probes)

    if config.shared_pht:
        _share_pht(prefetchers, names)

    core_results = run_cores(runners)
    fabric.finalize()
    for hierarchy, probes in zip(hierarchies, probe_lists):
        for probe in probes:
            probe.on_finalize(hierarchy)

    per_core = [
        MixCoreResult(
            core_id=core_id,
            workload=name,
            core=core_results[core_id],
            memory=hierarchies[core_id].measured_stats(),
            prefetcher_name=prefetchers[core_id].name,
            prefetcher_storage_bytes=prefetchers[core_id].storage_bytes(),
            prefetcher_predictions=prefetchers[core_id].stats.predictions,
            attribution=fabric.attributions[core_id],
        )
        for core_id, name in enumerate(names)
    ]
    result = MixResult(
        workload="+".join(names),
        config_label=config.resolved_label(),
        per_core=per_core,
        shared_pht=config.shared_pht,
    )
    result.backend_fallback = MULTICORE_FALLBACK
    return result
