"""Figure 14: prefetching into L2 (TCP-8K) vs into L1 (Hybrid-8K).

The hybrid fills L2 immediately and promotes into L1 only once the
timekeeping dead-block predictor declares the victim line dead, using a
dedicated L1/L2 prefetch bus (Section 5.2.2).  The paper finds the
hybrid helps most where the dead-block predictor works best (gcc, art,
applu, mgrid, swim, mcf) and concludes that prefetching to L2 already
captures most of the benefit on an aggressive out-of-order core.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.base import ExperimentResult, suite_order
from repro.sim import SimulationConfig, simulate
from repro.util.stats import geometric_mean
from repro.workloads import Scale

__all__ = ["run"]


def run(
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = suite_order(benchmarks)
    series: Dict[str, Dict[str, float]] = {"tcp-8k": {}, "hybrid-8k": {}, "promotions": {}}
    rows = []
    for name in names:
        base = simulate(name, SimulationConfig.baseline(), scale)
        tcp = simulate(name, SimulationConfig.for_prefetcher("tcp-8k"), scale)
        hybrid = simulate(name, SimulationConfig.for_prefetcher("hybrid-8k"), scale)
        tcp_gain = tcp.improvement_over(base)
        hybrid_gain = hybrid.improvement_over(base)
        series["tcp-8k"][name] = tcp_gain
        series["hybrid-8k"][name] = hybrid_gain
        series["promotions"][name] = float(hybrid.memory.l1_promotions)
        rows.append(
            [
                name,
                tcp_gain,
                hybrid_gain,
                hybrid.memory.l1_promotions,
                hybrid.memory.l1_promotion_hits,
            ]
        )

    geomeans = {
        label: (geometric_mean(1.0 + v / 100.0 for v in series[label].values()) - 1.0)
        * 100.0
        for label in ("tcp-8k", "hybrid-8k")
    }
    rows.append(["geomean", geomeans["tcp-8k"], geomeans["hybrid-8k"], "-", "-"])

    helped = [
        name
        for name in names
        if series["hybrid-8k"][name] > series["tcp-8k"][name] + 0.5
    ]
    notes = [
        f"Suite geomean: TCP-8K {geomeans['tcp-8k']:+.1f}%, Hybrid-8K "
        f"{geomeans['hybrid-8k']:+.1f}%.",
        "Hybrid further improves: " + (", ".join(helped) if helped else "none")
        + " (paper: gcc, art, applu, mgrid, swim, mcf).",
        "Prefetching into L2 captures most of the benefit; L1 prefetching "
        "pays only with an accurate dead-block predictor and spare "
        "L1/L2 bandwidth — the paper's Section 5.2.2 conclusion.",
    ]
    return ExperimentResult(
        experiment="fig14",
        title="Prefetching into L2 (TCP-8K) vs into L1 (Hybrid-8K)",
        headers=["benchmark", "tcp-8k %", "hybrid-8k %", "promotions", "promotion hits"],
        rows=rows,
        series=series,
        notes=notes,
    )
