"""Regenerate Figure 6: unique 3-tag sequences and recurrences."""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig06_sequence_recurrence(benchmark, scale, strict):
    result = run_once(benchmark, run_experiment, "fig6", scale)
    print()
    print(result.render())

    unique = result.series["unique_sequences"]
    occurrences = result.series["mean_sequence_occurrences"]
    assert all(value >= 1 for value in unique.values())
    assert all(value >= 1.0 for value in occurrences.values())
    if strict:
        # The art-analogue's tiny looped tag set produces the paper's
        # signature: few unique sequences, each recurring heavily.
        assert occurrences["art"] > 20
        # The pointer-chasing mcf-analogue has the opposite profile:
        # many unique sequences (paper: mcf has the most, 7M+).
        assert unique["mcf"] > unique["art"]
