"""Regenerate Figure 5: unique 3-tag sequences vs the random limit."""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig05_sequence_fraction(benchmark, scale, strict):
    result = run_once(benchmark, run_experiment, "fig5", scale)
    print()
    print(result.render())

    fraction = result.series["fraction_of_limit"]
    assert all(0.0 <= value <= 1.0 for value in fraction.values())
    if strict:
        # Strong correlation: the structured scientific benchmarks sit
        # far below the random limit...
        for name in ("swim", "applu", "wupwise", "art"):
            assert fraction[name] < 0.05, f"{name} at {fraction[name]:.2%}"
        # ...while the random-scan benchmarks (paper: crafty, twolf)
        # have visibly more random sequences than the structured ones.
        structured_max = max(fraction[n] for n in ("swim", "applu", "art"))
        assert fraction["twolf"] > structured_max
        assert fraction["crafty"] > structured_max
