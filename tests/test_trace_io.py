"""Tests for trace persistence (repro.workloads.io)."""

import json

import numpy as np
import pytest

from repro.workloads import Scale, generate, load_trace, save_trace
from repro.workloads.io import FORMAT_VERSION


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = generate("mcf", Scale.QUICK)
        path = save_trace(trace, tmp_path / "mcf")
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.base_ipc == trace.base_ipc
        assert (loaded.addrs == trace.addrs).all()
        assert (loaded.pcs == trace.pcs).all()
        assert (loaded.is_load == trace.is_load).all()
        assert (loaded.gaps == trace.gaps).all()
        assert (loaded.deps == trace.deps).all()

    def test_npz_suffix_added(self, tmp_path):
        trace = generate("fma3d", Scale.QUICK)
        path = save_trace(trace, tmp_path / "dump")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.sim import SimulationConfig, simulate

        trace = generate("eon", Scale.QUICK)
        loaded = load_trace(save_trace(trace, tmp_path / "eon"))
        a = simulate(trace, SimulationConfig.baseline())
        b = simulate(loaded, SimulationConfig.baseline())
        assert a.ipc == b.ipc


class TestValidation:
    def test_not_a_trace_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ValueError, match="missing"):
            load_trace(path)

    def test_version_mismatch(self, tmp_path):
        trace = generate("fma3d", Scale.QUICK)
        path = save_trace(trace, tmp_path / "old")
        # rewrite with a bogus version
        with np.load(path) as archive:
            data = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = FORMAT_VERSION + 999
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_truncated_arrays_rejected(self, tmp_path):
        trace = generate("fma3d", Scale.QUICK)
        path = save_trace(trace, tmp_path / "cut")
        with np.load(path) as archive:
            data = {key: archive[key] for key in archive.files}
        data["addrs"] = data["addrs"][:10]
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_trace(path)
