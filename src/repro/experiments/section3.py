"""Shared driver for the Section 3 profiling figures (2-7 and 15).

All six figures are different projections of the same L1D miss-stream
profile, so they share one cached computation per (benchmark, scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis import (
    MissStream,
    SequenceStats,
    TagStats,
    capture_miss_stream,
    sequence_stats,
    tag_stats,
)
from repro.core.strided import strided_fraction
from repro.workloads import Scale

__all__ = ["MissProfile", "profile"]

_CACHE: Dict[Tuple[str, int], "MissProfile"] = {}


@dataclass(frozen=True)
class MissProfile:
    """Everything Section 3 reports about one benchmark's miss stream."""

    workload: str
    stream_length: int
    miss_rate: float
    tags: TagStats
    sequences: SequenceStats
    strided_fraction: float


def profile(name: str, scale: Scale = Scale.STANDARD) -> MissProfile:
    """Compute (or fetch) the full Section 3 profile of a benchmark."""
    key = (name, scale.accesses)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    stream: MissStream = capture_miss_stream(name, scale)
    result = MissProfile(
        workload=name,
        stream_length=len(stream),
        miss_rate=stream.miss_rate,
        tags=tag_stats(stream),
        sequences=sequence_stats(stream),
        strided_fraction=strided_fraction(stream.indices, stream.tags),
    )
    _CACHE[key] = result
    return result
