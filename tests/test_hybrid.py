"""Tests for the hybrid TCP (prefetch into L1, dead-block gated)."""

import pytest

from repro.core import HybridTCP, hybrid_8k
from repro.memory import HierarchyParams, MemoryHierarchy
from repro.memory.cache import CacheLine
from repro.prefetchers.base import EvictionEvent, MissEvent


def miss(block, now=0.0):
    return MissEvent(block & 1023, block >> 10, block, 0x1000, False, now)


class TestHybridPrefetcher:
    def test_requests_marked_into_l1(self):
        prefetcher = hybrid_8k()
        requests = []
        for block in [(1 << 10) | 5, (2 << 10) | 5, (3 << 10) | 5,
                      (1 << 10) | 5, (2 << 10) | 5]:
            requests = prefetcher.observe_miss(miss(block))
        assert requests
        assert all(request.into_l1 for request in requests)

    def test_gate_denies_live_victim(self):
        prefetcher = hybrid_8k()
        victim = CacheLine(0x7, fill_time=100.0)
        victim.last_access = 200.0
        # just accessed: definitely alive
        assert not prefetcher.l1_promotion_gate(victim, 3, 210.0)
        assert prefetcher.promotions_denied == 1

    def test_gate_approves_long_dead_victim(self):
        prefetcher = hybrid_8k()
        victim = CacheLine(0x7, fill_time=100.0)
        victim.last_access = 150.0
        assert prefetcher.l1_promotion_gate(victim, 3, 1_000_000.0)
        assert prefetcher.promotions_approved == 1

    def test_gate_uses_live_time_history(self):
        prefetcher = hybrid_8k()
        block = (0x7 << 10) | 3
        # teach the predictor this block lives ~10000 cycles
        prefetcher.observe_eviction(
            EvictionEvent(3, 0x7, block, 20_000.0, 0.0, 10_000.0)
        )
        victim = CacheLine(0x7, fill_time=50_000.0)
        victim.last_access = 55_000.0
        # idle 5000 < 2x live-time 10000: still considered live
        assert not prefetcher.l1_promotion_gate(victim, 3, 60_000.0)
        # idle 25000 > 20000: dead
        assert prefetcher.l1_promotion_gate(victim, 3, 80_000.0)

    def test_storage_includes_deadblock_table(self):
        prefetcher = hybrid_8k()
        base = prefetcher.tht.storage_bytes() + prefetcher.pht.storage_bytes()
        assert prefetcher.storage_bytes() == base + prefetcher.deadblock.storage_bytes()

    def test_reset(self):
        prefetcher = hybrid_8k()
        victim = CacheLine(0x7, fill_time=0.0)
        prefetcher.l1_promotion_gate(victim, 0, 1e9)
        prefetcher.reset()
        assert prefetcher.promotions_approved == 0
        assert prefetcher.deadblock.evictions_recorded == 0


class TestPromotionMachinery:
    """End-to-end promotion through the hierarchy with a scripted gate."""

    def _hierarchy(self):
        params = HierarchyParams(dedicated_prefetch_bus=True, model_icache=False)
        return MemoryHierarchy(params)

    def _access(self, h, block, now):
        return h.access(now, block & 1023, block >> 10, block, False, 0x1000)

    def test_promotion_turns_miss_into_hit(self):
        h = self._hierarchy()
        prefetcher = hybrid_8k()
        prefetcher.l1_promotion_gate = lambda victim, index, now: True
        h.attach_prefetcher(prefetcher)
        set_index = 5
        blocks = [(tag << 10) | set_index for tag in (1, 2, 3)]
        now = 0.0
        # two laps teach the cyclic pattern and queue promotions
        for _ in range(2):
            for block in blocks:
                now = self._access(h, block, now).completion + 400.0
                h.l1d.invalidate(set_index, block >> 10)  # force re-miss
        # third lap: promotions should now cover some accesses
        hits_before = h.stats.l1_promotion_hits
        for block in blocks:
            now = self._access(h, block, now).completion + 400.0
        assert h.stats.l1_promotions > 0
        assert h.stats.l1_promotion_hits > hits_before

    def test_promotion_denied_when_victim_alive(self):
        """With a deny-all gate and a direct-mapped set that is always
        occupied (the three tags conflict naturally), no promotion may
        ever displace the resident line."""
        h = self._hierarchy()
        prefetcher = hybrid_8k()
        prefetcher.l1_promotion_gate = lambda victim, index, now: False
        h.attach_prefetcher(prefetcher)
        set_index = 5
        blocks = [(tag << 10) | set_index for tag in (1, 2, 3)]
        now = 0.0
        for _ in range(4):
            for block in blocks:
                now = self._access(h, block, now).completion + 400.0
        assert h.stats.l1_promotions == 0
        assert h.stats.l1_promotion_hits == 0

    def test_uses_dedicated_prefetch_bus(self):
        h = self._hierarchy()
        assert h.prefetch_bus is not None
        assert h.prefetch_bus is not h.l1l2_data_bus
